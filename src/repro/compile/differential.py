"""Differential oracle for the cohort compiler.

The compiled path's correctness bar is *stricter* than the hybrid
engine's: compiling a thread changes how its generator is driven, not
which events the machine fires, so an interpreted and a compiled run of
the same shape must agree on **everything** — metrics, ``events_fired``,
the serialized :class:`~repro.experiments.common.RunRecord`, and the
Perfetto export of the full event stream — except the report's
``cohort`` accounting section and the diagnostic ``COHORT`` obs events,
which only exist on the compiled side.

:class:`CompileDifferentialHarness` mirrors
:class:`~repro.sim.hybrid.HybridDifferentialHarness`: ``check()``
raises on any difference, ``shrink()`` reduces a failing shape, and
compiled runs execute under :func:`~repro.compile.cohort.strict_cohorts`
so a cohort member diverging from its trace surfaces as
:class:`~repro.errors.CompileDivergence` with a first-divergent-effect
diagnosis instead of silently bailing out and (correctly) masking the
compiler bug.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..sim.hybrid import diff_paths
from .cohort import strict_cohorts

__all__ = [
    "comparable_compile_report",
    "CompileDifferentialResult",
    "CompileDifferentialHarness",
]


def comparable_compile_report(report) -> dict:
    """Full report serialisation minus only the ``cohort`` section.

    Unlike hybrid comparisons, ``events_fired`` stays in: the compiled
    path must not change the event structure at all.
    """
    from ..metrics.serialize import report_to_dict

    out = report_to_dict(report)
    out.pop("cohort", None)
    return out


def _with_compiled(kwargs: dict, compiled: bool) -> dict:
    from ..config import MachineConfig

    out = dict(kwargs)
    config = out.get("config")
    if config is None:
        out["config"] = MachineConfig(compiled=compiled)
    else:
        out["config"] = replace(config, compiled=compiled)
    return out


@dataclass
class CompileDifferentialResult:
    """One interpreted-vs-compiled comparison of a single shape."""

    app: str
    shape: dict
    interpreted: Any  #: interpreted MachineReport (ground truth)
    compiled: Any  #: compiled MachineReport
    diff: list[str] = field(default_factory=list)
    records_equal: bool = True
    perfetto_equal: bool = True

    @property
    def identical(self) -> bool:
        return not self.diff and self.records_equal and self.perfetto_equal

    def describe(self) -> str:
        shape = " ".join(f"{k}={v}" for k, v in self.shape.items())
        if self.diff:
            return f"{self.app} {shape}: DIVERGED at {', '.join(self.diff[:4])}"
        if not self.records_equal:
            return f"{self.app} {shape}: RunRecords differ"
        if not self.perfetto_equal:
            return f"{self.app} {shape}: Perfetto exports differ"
        cohort = self.compiled.cohort or {}
        return (
            f"{self.app} {shape}: identical "
            f"(occupancy {cohort.get('occupancy', 0.0):.2f}, "
            f"{cohort.get('compiled_effects', 0)} compiled effects)"
        )


class CompileDifferentialHarness:
    """Differential oracle: the interpreter is ground truth.

    ``harness.check(n_pes=4, n=64, h=2)`` runs the shape interpreted
    and compiled (strict), compares reports, RunRecords and Perfetto
    exports, and raises ``AssertionError`` naming the differing paths
    (after shrinking the shape) on any mismatch.
    """

    def __init__(self, app: str = "sort", **base_kwargs: Any) -> None:
        self.app = app
        self.base_kwargs = base_kwargs

    # -- execution ----------------------------------------------------
    def _run(self, compiled: bool, shape: dict, obs=None):
        from ..api import get_app, result_ok
        from ..errors import ProgramError

        fn = get_app(self.app)
        kwargs = _with_compiled({**self.base_kwargs, **shape}, compiled)
        kwargs["obs"] = obs
        if compiled:
            with strict_cohorts():
                result = fn(**kwargs)
        else:
            result = fn(**kwargs)
        if not result_ok(result):
            raise ProgramError(f"{self.app} {shape} failed self-verification")
        return result.report

    def _run_record(self, report, shape: dict) -> dict:
        from ..metrics.serialize import run_record_from_report, run_record_to_dict

        n_pes = report.config.n_pes
        n = shape.get("n", 0)
        return run_record_to_dict(
            run_record_from_report(
                self.app,
                n_pes,
                n // n_pes if n_pes else 0,
                shape.get("h", 1),
                report,
                True,
            )
        )

    def _perfetto(self, compiled: bool, shape: dict) -> dict:
        from ..obs import Category, EventBus, RingRecorder
        from ..obs.perfetto import to_perfetto

        bus = EventBus()
        rec = RingRecorder(bus)
        report = self._run(compiled, shape, obs=bus)
        events = [ev for ev in rec.events if ev.category is not Category.COHORT]
        return to_perfetto(events, n_pes=report.config.n_pes)

    def run_pair(self, **shape: Any) -> CompileDifferentialResult:
        """Run the shape both ways and compare all three serialisations."""
        interpreted = self._run(False, shape)
        compiled = self._run(True, shape)
        diff = diff_paths(
            comparable_compile_report(interpreted),
            comparable_compile_report(compiled),
        )
        records_equal = self._run_record(interpreted, shape) == self._run_record(
            compiled, shape
        )
        perfetto_equal = self._perfetto(False, shape) == self._perfetto(True, shape)
        return CompileDifferentialResult(
            self.app, shape, interpreted, compiled, diff, records_equal, perfetto_equal
        )

    def check(self, **shape: Any) -> CompileDifferentialResult:
        """Assert full identity for one shape; returns the result."""
        result = self.run_pair(**shape)
        if not result.identical:
            small = self.shrink(dict(shape))
            raise AssertionError(
                f"compiled diverged from interpreted: {result.describe()}\n"
                f"minimal failing shape: {small.shape}\n"
                f"diff paths: {small.diff[:8]}"
            )
        return result

    # -- diagnosis ----------------------------------------------------
    def shrink(self, shape: dict) -> CompileDifferentialResult:
        """Greedy-halve n, then h, then n_pes while the shape still fails."""
        from ..errors import ProgramError

        current = self.run_pair(**shape)
        if current.identical:
            return current
        shrinking = True
        while shrinking:
            shrinking = False
            for axis in ("n", "h", "n_pes"):
                value = current.shape.get(axis)
                while isinstance(value, int) and value > 1:
                    candidate = {**current.shape, axis: value // 2}
                    try:
                        attempt = self.run_pair(**candidate)
                    except ProgramError:
                        break
                    if attempt.identical:
                        break
                    current = attempt
                    value = current.shape[axis]
                    shrinking = True
        return current
