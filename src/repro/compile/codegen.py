"""EM-C AST → native Python generator functions (the fast EMC tier).

The trace IR in :mod:`repro.compile.trace` is the portable reference
form, but its VM still pays one dispatch per opcode.  This module
compiles an EM-C thread straight to Python source — guest variables
become Python locals, pure arithmetic stays a single expression, and
every effectful builtin becomes an inline ``yield`` — and ``exec``\\ s it
into a generator function with the same ``(ctx, *args)`` calling
convention as the interpreter's thread functions.

The contract is the one the whole subsystem rests on: charge-for-charge
and effect-for-effect identity with :class:`repro.emc.interp._Interp`.
Constant cycle charges are summed at *codegen* time and spilled into the
``_p`` pending accumulator at region boundaries (branches, loops,
flushes) — legal because pending only becomes observable when flushed as
one ``Compute`` — and every runtime error path reproduces the
interpreter's exception type and message text exactly.  Shapes the
generator cannot prove it translates faithfully raise
:class:`~repro.compile.lower_emc.LoweringError`, exactly like the trace
lowering, and the caller falls back a tier.
"""

from __future__ import annotations

import re
from typing import Callable

from ..core.effects import (
    BarrierWait,
    Compute,
    FusedRead,
    FusedReadPair,
    RemoteRead,
    RemoteReadPair,
    RemoteWrite,
    Spawn,
    SwitchNow,
    TokenAdvance,
    TokenWait,
)
from ..emc import ast
from ..emc.costs import EmcCosts
from ..errors import EmcRuntimeError, MemoryFault, ProgramError
from ..packet.address import GlobalAddress
from .lower_emc import LoweringError, _collect_decls
from .trace import _as_index, _fail

__all__ = ["codegen_thread"]

#: Binary operators with a direct Python spelling (same precedence is
#: irrelevant — codegen fully parenthesises).
_PY_ARITH = {"+": "+", "-": "-", "*": "*"}
_PY_CMPS = {"==": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

_ATOM = re.compile(r"^(?:[A-Za-z_][A-Za-z0-9_]*|\d+)$")
_INT_LIT = re.compile(r"^\d+$")


def _div(a, b, line):
    """Replicates the interpreter's ``/``: C-truncating for int/int."""
    try:
        if isinstance(a, int) and isinstance(b, int):
            q = abs(a) // abs(b)
            return q if (a >= 0) == (b >= 0) else -q
        return a / b
    except ZeroDivisionError:
        raise _fail(line, "division by zero") from None


def _mod(a, b, line):
    """Replicates the interpreter's ``%``: C-truncating remainder."""
    if not (isinstance(a, int) and isinstance(b, int)):
        raise _fail(line, "'%' needs integer operands")
    try:
        return a - b * (a // b if (a >= 0) == (b >= 0) else -(abs(a) // abs(b)))
    except ZeroDivisionError:
        raise _fail(line, "division by zero") from None


def _emits(expr) -> bool:
    """Does generating this expression emit statements (vs a pure
    inline Python expression)?  Anything that yields, mutates state, or
    needs a try/except lands as statements; when a *later* sibling
    emits, earlier siblings must be materialised first to keep the
    interpreter's left-to-right evaluation order observable."""
    kind = type(expr)
    if kind is ast.Literal or kind is ast.VarRef:
        return False
    if kind is ast.UnaryOp:
        return _emits(expr.operand)
    if kind is ast.BinOp:
        if expr.op in ("&&", "||"):
            return True
        return _emits(expr.left) or _emits(expr.right)
    if kind is ast.Call:
        return expr.name not in ("pe", "npes")
    return True  # MemLoad and anything unknown


#: Builtins that flush pending and yield one effect.
_EFFECTFUL = frozenset(
    ("rread", "rread2", "rblock", "rwrite", "spawn", "barrier_wait",
     "token_wait", "token_advance", "switch_now")
)


class _CodeGen:
    def __init__(self, program: ast.Program, tdef: ast.ThreadDef, env: dict, costs: EmcCosts) -> None:
        self.program = program
        self.tdef = tdef
        self.env = env
        self.costs = costs
        self.lines: list[str] = []
        self.depth = 1
        self.acc = 0  # codegen-time constant pending charge
        self.ntmp = 0
        self.declared_somewhere = _collect_decls(tdef.body)
        #: (wrapped, break_flag_name or None) per enclosing loop.
        self.loop_stack: list[tuple[bool, str | None]] = []
        #: exec-globals: helpers, effect types, and env host objects.
        self.globals: dict[str, object] = {
            "Compute": Compute,
            "FusedRead": FusedRead,
            "FusedReadPair": FusedReadPair,
            "RemoteRead": RemoteRead,
            "RemoteReadPair": RemoteReadPair,
            "RemoteWrite": RemoteWrite,
            "Spawn": Spawn,
            "BarrierWait": BarrierWait,
            "TokenWait": TokenWait,
            "TokenAdvance": TokenAdvance,
            "SwitchNow": SwitchNow,
            "GlobalAddress": GlobalAddress,
            "EmcRuntimeError": EmcRuntimeError,
            "MemoryFault": MemoryFault,
            "ProgramError": ProgramError,
            "_idx": _as_index,
            "_fail": _fail,
            "_div": _div,
            "_mod": _mod,
            "_threads": frozenset(program.threads),
        }

    # -- infrastructure ------------------------------------------------
    def w(self, line: str) -> None:
        self.lines.append("    " * self.depth + line)

    def tmp(self) -> str:
        self.ntmp += 1
        return f"_t{self.ntmp}"

    def atom(self, e: str) -> str:
        """Materialise ``e`` into a name/number atom (forcing its
        evaluation — and any error it would raise — *now*)."""
        if _ATOM.match(e):
            return e
        t = self.tmp()
        self.w(f"{t} = {e}")
        return t

    def force(self, e: str) -> None:
        """Evaluate ``e`` for its raise-behaviour even though the value
        is discarded (atoms cannot raise once resolvable)."""
        if not _ATOM.match(e):
            self.w(f"_ = {e}")

    def spill(self) -> None:
        if self.acc:
            self.w(f"_p += {self.acc}")
            self.acc = 0

    def flush(self) -> None:
        """Spill and emit the pending→Compute flush (the interpreter's
        ``flush()``, with the shared per-thread Compute cache)."""
        self.spill()
        self.w("if _p:")
        self.w("    _e = _cg(_p)")
        self.w("    if _e is None:")
        self.w("        _e = _cc[_p] = Compute(_p)")
        self.w("    yield _e")
        self.w("    _p = 0")

    def bail(self, node, reason: str) -> LoweringError:
        line = getattr(node, "line", 0)
        return LoweringError(
            f"thread {self.tdef.name!r} line {line}: {reason} (interpreter fallback)"
        )

    # -- declaredness --------------------------------------------------
    def resolve(self, ref: ast.VarRef, declared: set[str]) -> str:
        name = ref.name
        if name in declared:
            return "v_" + name
        if name in self.declared_somewhere:
            raise self.bail(ref, f"use of {name!r} not dominated by its declaration")
        if name in self.env:
            g = "E_" + name
            self.globals[g] = self.env[name]
            return g
        raise self.bail(ref, f"undefined variable {name!r}")

    # -- expressions ---------------------------------------------------
    def gen_expr(self, expr, declared: set[str], as_bool: bool = False) -> str:
        kind = type(expr)
        if kind is ast.Literal:
            return repr(expr.value)
        if kind is ast.VarRef:
            return self.resolve(expr, declared)
        if kind is ast.MemLoad:
            return self.gen_memload(expr, declared)
        if kind is ast.UnaryOp:
            operand = self.gen_expr(expr.operand, declared)
            self.acc += self.costs.unary_op
            if expr.op == "-":
                return f"(-{operand})"
            return f"(0 if {operand} else 1)"
        if kind is ast.BinOp:
            return self.gen_binop(expr, declared, as_bool)
        if kind is ast.Call:
            return self.gen_call(expr, declared)
        raise self.bail(expr, f"unknown expression {expr!r}")

    def gen_memload(self, expr: ast.MemLoad, declared: set[str]) -> str:
        ix = self.atom(self.gen_expr(expr.index, declared))
        self.acc += self.costs.mem_index + self.costs.mem_access
        if _INT_LIT.match(ix):
            i = ix
        else:
            i = self.tmp()
            self.w(f"{i} = {ix} if {ix}.__class__ is int else _idx({ix}, {expr.line})")
        self.w(f"if {i} < 0 or {i} >= _msz:")
        self.w(f'    raise MemoryFault("access [%d, %d) outside memory of %d words" % ({i}, {i} + 1, _msz))')
        self.w("_mem.reads += 1")
        t = self.tmp()
        self.w(f"{t} = _mwg({i}, 0)")
        return t

    def gen_binop(self, expr: ast.BinOp, declared: set[str], as_bool: bool) -> str:
        op = expr.op
        if op in ("&&", "||"):
            return self.gen_logic(expr, declared)
        ls = self.gen_expr(expr.left, declared)
        if _emits(expr.right):
            ls = self.atom(ls)
        rs = self.gen_expr(expr.right, declared)
        if op in _PY_ARITH:
            self.acc += self.costs.binop(op)
            return f"({ls} {_PY_ARITH[op]} {rs})"
        if op in _PY_CMPS:
            self.acc += self.costs.binop(op)
            if as_bool:
                return f"({ls} {_PY_CMPS[op]} {rs})"
            return f"(1 if {ls} {_PY_CMPS[op]} {rs} else 0)"
        if op == "/":
            self.acc += self.costs.div_op
            return f"_div({ls}, {rs}, {expr.line})"
        if op == "%":
            self.acc += self.costs.mod_op
            return f"_mod({ls}, {rs}, {expr.line})"
        raise self.bail(expr, f"unknown operator {op!r}")

    def gen_logic(self, expr: ast.BinOp, declared: set[str]) -> str:
        """Short-circuit ``&&`` / ``||``: the right side (and its
        charges) only on the fall-through path, result normalised 1/0."""
        left = self.gen_expr(expr.left, declared)
        self.acc += self.costs.alu_op
        dst = self.tmp()
        self.spill()  # unconditional charges; the branch splits acc
        cond = left if expr.op == "&&" else f"not {left}" if _ATOM.match(left) else f"not ({left})"
        self.w(f"if {cond}:")
        self.depth += 1
        right = self.gen_expr(expr.right, declared, as_bool=True)
        self.spill()
        self.w(f"{dst} = 1 if {right} else 0")
        self.depth -= 1
        self.w("else:")
        self.w(f"    {dst} = {0 if expr.op == '&&' else 1}")
        return dst

    def gen_call(self, expr: ast.Call, declared: set[str]) -> str:
        name = expr.name

        def need(n: int) -> None:
            # Arity is static in the source; a mismatch is a *runtime*
            # error in the interpreter, so reproduce it by falling back.
            if len(expr.args) != n:
                raise self.bail(expr, f"{name}() takes {n} arguments, got {len(expr.args)}")

        if name == "pe":
            need(0)
            self.acc += self.costs.call_overhead
            return "_pe"
        if name == "npes":
            need(0)
            self.acc += self.costs.call_overhead
            return "_npes"
        # Every other builtin emits statements, so argument values are
        # pinned to atoms first (left-to-right, like the interpreter).
        args = [self.atom(self.gen_expr(a, declared)) for a in expr.args]
        self.acc += self.costs.call_overhead
        line = expr.line

        if name in _EFFECTFUL:
            return self.gen_effect(expr, args)
        if name == "token_reset":
            need(1)
            self.w(f"{args[0]}.reset()")
            return "0"
        if name == "compute":
            need(1)
            arg = expr.args[0]
            if type(arg) is ast.Literal and isinstance(arg.value, (int, float)):
                self.acc += int(arg.value)
            else:
                self.w(f"_p += int({args[0]})")
            return "0"
        if name == "at":
            need(2)
            self.acc += self.costs.mem_index
            t = self.tmp()
            self.w("try:")
            self.w(f"    {t} = {args[0]}[int({args[1]})]")
            self.w("except (TypeError, IndexError):")
            self.w(f'    raise _fail({line}, "bad at() access: " + repr([{args[0]}, {args[1]}])) from None')
            return t
        if name == "len":
            need(1)
            t = self.tmp()
            self.w("try:")
            self.w(f"    {t} = len({args[0]})")
            self.w("except TypeError:")
            self.w(f'    raise _fail({line}, "len() of non-sequence " + repr({args[0]})) from None')
            return t
        if name == "print":
            joined = ", ".join(f"str({a})" for a in args)
            self.w(f'_st.setdefault("emc_output", []).append(" ".join(({joined})))')
            return "0"
        raise self.bail(expr, f"unknown builtin {name!r}")

    def gen_effect(self, expr: ast.Call, args: list[str]) -> str:
        """One effectful builtin: flush pending, then an inline yield
        through the same validation the trace VM replicates."""
        name = expr.name
        line = expr.line

        def need(n: int) -> None:
            if len(args) != n:
                raise self.bail(expr, f"{name}() takes {n} arguments, got {len(args)}")

        def pe_check(e: str) -> str:
            x = self.tmp()
            self.w(f"{x} = int({e})")
            self.w(f"if not 0 <= {x} < _npes:")
            self.w(f'    raise ProgramError("global address names PE %d of %d" % ({x}, _npes))')
            return x

        if name == "spawn":
            if len(args) < 2:
                raise self.bail(expr, "spawn() needs (pe, name, args...)")
            target = expr.args[1]
            if type(target) is ast.Literal:
                if not isinstance(target.value, str):
                    raise self.bail(expr, "spawn() target must be a string thread name")
                if target.value not in self.program.threads:
                    raise self.bail(expr, f"spawn of unknown thread {target.value!r}")
            else:
                self.w(f"if not isinstance({args[1]}, str):")
                self.w(f'    raise _fail({line}, "spawn() target must be a string thread name")')
                self.w(f"if {args[1]} not in _threads:")
                self.w(f'    raise _fail({line}, "spawn of unknown thread " + repr({args[1]}))')
            self.flush()
            rest = ", ".join(args[2:])
            rest = f"({rest},)" if rest else "()"
            self.w(f"yield Spawn(int({args[0]}), {args[1]}, {rest})")
            return "0"

        if name == "rread":
            need(2)
            # Fuse a pending compute charge into the read packet.  The
            # conversions are probed first: on any failure the charge
            # still flushes as its own Compute before the unfused path
            # re-raises the identical error (the interpreter's order).
            self.spill()
            a = self.tmp()
            x = self.tmp()
            t = self.tmp()
            self.w(f"{a} = None")
            self.w("if _p:")
            self.w("    try:")
            self.w(f"        {x} = int({args[0]})")
            self.w(f"        if 0 <= {x} < _npes:")
            self.w(f"            {a} = GlobalAddress({x}, int({args[1]}))")
            self.w("    except Exception:")
            self.w(f"        {a} = None")
            self.w(f"if {a} is not None:")
            self.w(f"    {t} = yield FusedRead(_p, {a})")
            self.w("    _p = 0")
            self.w("else:")
            self.w("    if _p:")
            self.w("        _e = _cg(_p)")
            self.w("        if _e is None:")
            self.w("            _e = _cc[_p] = Compute(_p)")
            self.w("        yield _e")
            self.w("        _p = 0")
            self.w(f"    {x} = int({args[0]})")
            self.w(f"    if not 0 <= {x} < _npes:")
            self.w(
                f'        raise ProgramError("global address names PE %d of %d" % ({x}, _npes))'
            )
            self.w(f"    {t} = yield RemoteRead(GlobalAddress({x}, int({args[1]})))")
            return t
        if name == "rread2":
            need(3)
            self.spill()
            a = self.tmp()
            b = self.tmp()
            x = self.tmp()
            t = self.tmp()
            self.w(f"{a} = {b} = None")
            self.w("if _p:")
            self.w("    try:")
            self.w(f"        {x} = int({args[0]})")
            self.w(f"        if 0 <= {x} < _npes:")
            self.w(f"            {a} = GlobalAddress({x}, int({args[1]}))")
            self.w(f"            {b} = GlobalAddress({x}, int({args[2]}))")
            self.w("    except Exception:")
            self.w(f"        {a} = None")
            self.w(f"if {a} is not None and {b} is not None:")
            self.w(f"    {t} = yield FusedReadPair(_p, {a}, {b})")
            self.w("    _p = 0")
            self.w("else:")
            self.w("    if _p:")
            self.w("        _e = _cg(_p)")
            self.w("        if _e is None:")
            self.w("            _e = _cc[_p] = Compute(_p)")
            self.w("        yield _e")
            self.w("        _p = 0")
            self.w(f"    {x} = int({args[0]})")
            self.w(f"    if not 0 <= {x} < _npes:")
            self.w(
                f'        raise ProgramError("global address names PE %d of %d" % ({x}, _npes))'
            )
            self.w(
                f"    {t} = yield RemoteReadPair(GlobalAddress({x}, int({args[1]})),"
                f" GlobalAddress({x}, int({args[2]})))"
            )
            self.w(f"{t} = list({t})")
            return t
        self.flush()
        if name == "rblock":
            need(3)
            t = self.tmp()
            self.w(f"{t} = yield ctx.read_block(ctx.ga(int({args[0]}), int({args[1]})), int({args[2]}))")
            self.w(f"{t} = list({t})")
            return t
        if name == "rwrite":
            need(3)
            x = pe_check(args[0])
            self.w(f"yield RemoteWrite(GlobalAddress({x}, int({args[1]})), {args[2]})")
            return "0"
        if name == "barrier_wait":
            need(1)
            self.w(f"yield BarrierWait({args[0]})")
            return "0"
        if name == "token_wait":
            need(2)
            self.w(f"yield TokenWait({args[0]}, int({args[1]}))")
            return "0"
        if name == "token_advance":
            need(1)
            self.w(f"yield TokenAdvance({args[0]})")
            return "0"
        # switch_now
        need(0)
        self.w("yield SwitchNow()")
        return "0"

    # -- statements ----------------------------------------------------
    def gen_block(self, block: ast.Block, declared: set[str]) -> None:
        for stmt in block.statements:
            self.gen_stmt(stmt, declared)

    def _indented(self, block: ast.Block, declared: set[str]) -> None:
        """Generate a suite one level in; never leaves it empty."""
        self.depth += 1
        mark = len(self.lines)
        self.gen_block(block, declared)
        self.spill()
        if len(self.lines) == mark:
            self.w("pass")
        self.depth -= 1

    def gen_stmt(self, stmt, declared: set[str]) -> None:
        kind = type(stmt)
        if kind is ast.VarDecl or kind is ast.Assign:
            if kind is ast.Assign and stmt.name not in declared:
                raise self.bail(stmt, f"assignment to possibly-undeclared {stmt.name!r}")
            # A VarDecl's value may still reference an *env* binding of
            # the same name (scope-then-env), so it is generated before
            # the name becomes a local.
            value = self.gen_expr(stmt.value, declared)
            self.acc += self.costs.assign
            declared.add(stmt.name)
            self.w(f"v_{stmt.name} = {value}")
        elif kind is ast.MemStore:
            # Index pins before the value evaluates (interpreter order).
            ix = self.atom(self.gen_expr(stmt.index, declared))
            val = self.atom(self.gen_expr(stmt.value, declared))
            self.acc += self.costs.mem_index + self.costs.mem_access
            if _INT_LIT.match(ix):
                i = ix
            else:
                i = self.tmp()
                self.w(f"{i} = {ix} if {ix}.__class__ is int else _idx({ix}, {stmt.line})")
            self.w(f"if {i} < 0 or {i} >= _msz:")
            self.w(f'    raise MemoryFault("access [%d, %d) outside memory of %d words" % ({i}, {i} + 1, _msz))')
            self.w("if _mem._watches:")
            self.w(f"    _mem._watch_hit({i}, 1)")
            self.w("_mem.writes += 1")
            self.w(f"_mw[{i}] = {val}")
        elif kind is ast.ExprStmt:
            self.force(self.gen_expr(stmt.expr, declared))
        elif kind is ast.Block:
            self.gen_block(stmt, declared)
        elif kind is ast.If:
            cond = self.gen_expr(stmt.condition, declared, as_bool=True)
            self.acc += self.costs.branch
            self.spill()
            self.w(f"if {cond}:")
            then_declared = set(declared)
            self._indented(stmt.then_block, then_declared)
            if stmt.else_block is not None:
                self.w("else:")
                else_declared = set(declared)
                self._indented(stmt.else_block, else_declared)
                declared |= then_declared & else_declared
        elif kind is ast.While:
            self.spill()
            self.w("while 1:")
            self.depth += 1
            cond = self.gen_expr(stmt.condition, declared, as_bool=True)
            self.acc += self.costs.branch
            self.spill()
            cond = cond if _ATOM.match(cond) else f"({cond})"
            self.w(f"if not {cond}:")
            self.w("    break")
            self.gen_loop_body(stmt.body, declared)
            self.acc += self.costs.loop_back
            self.spill()
            self.depth -= 1
        elif kind is ast.For:
            if stmt.init is not None:
                self.gen_stmt(stmt.init, declared)
            self.spill()
            self.w("while 1:")
            self.depth += 1
            if stmt.condition is not None:
                cond = self.gen_expr(stmt.condition, declared, as_bool=True)
                self.acc += self.costs.branch
                self.spill()
                cond = cond if _ATOM.match(cond) else f"({cond})"
                self.w(f"if not {cond}:")
                self.w("    break")
            self.gen_loop_body(stmt.body, declared)
            if stmt.step is not None:
                self.gen_stmt(stmt.step, set(declared))
            self.acc += self.costs.loop_back
            self.spill()
            self.depth -= 1
        elif kind is ast.Break:
            if not self.loop_stack:
                raise self.bail(stmt, "break outside a loop")
            wrapped, flag = self.loop_stack[-1]
            self.spill()
            if wrapped:
                self.w(f"{flag} = 1")
            self.w("break")
        elif kind is ast.Continue:
            if not self.loop_stack:
                raise self.bail(stmt, "continue outside a loop")
            wrapped, _flag = self.loop_stack[-1]
            self.spill()
            if not wrapped:
                raise self.bail(stmt, "continue outside its loop body")  # pragma: no cover
            self.w("break")
        elif kind is ast.Return:
            if stmt.value is not None:
                self.force(self.gen_expr(stmt.value, declared))
            self.flush()
            self.w("return")
        else:
            raise self.bail(stmt, f"unknown statement {stmt!r}")

    def gen_loop_body(self, body: ast.Block, declared: set[str]) -> None:
        """Loop body with EM-C break/continue semantics.

        ``continue`` must still reach the step and ``loop_back`` charge,
        so a body containing one runs inside a single-pass ``for``
        wrapper whose ``break`` is the continue; a real ``break`` then
        sets a flag checked right after the wrapper.  A body with only
        ``break`` maps straight onto Python's (both skip ``loop_back``).
        """
        has_break, has_continue = _scan_bc(body)
        body_declared = set(declared)
        if not has_continue:
            self.loop_stack.append((False, None))
            mark = len(self.lines)
            self.gen_block(body, body_declared)
            self.spill()
            if len(self.lines) == mark:
                self.w("pass")
            self.loop_stack.pop()
            return
        flag = None
        if has_break:
            flag = f"_brk{len(self.loop_stack)}"
            self.w(f"{flag} = 0")
        self.w(f"for _l{len(self.loop_stack)} in (0,):")
        self.loop_stack.append((True, flag))
        self._indented(body, body_declared)
        self.loop_stack.pop()
        if has_break:
            self.w(f"if {flag}:")
            self.w("    break")

    # -- finalization --------------------------------------------------
    def build(self) -> tuple[str, dict]:
        tdef = self.tdef
        n = len(tdef.params)
        prefix = f"thread {tdef.name!r} takes {n} arguments, got "
        self.w(f"if len(args) != {n}:")
        self.w(f"    raise EmcRuntimeError({prefix!r} + str(len(args)))")
        for i, p in enumerate(tdef.params):
            self.w(f"v_{p} = args[{i}]")
        self.w("_pe = ctx.pe; _npes = ctx.n_pes")
        self.w("_mem = ctx.mem; _msz = _mem.size; _mw = _mem._words; _mwg = _mw.get")
        self.w("_st = ctx.state")
        self.w("_p = 0; _cc = {}; _cg = _cc.get")
        declared = set(tdef.params)
        self.gen_block(tdef.body, declared)
        # Thread-end flush; its yield also guarantees the compiled text
        # is a generator function even for an effect-free body.
        self.flush()
        src = f"def _gen_{tdef.name}(ctx, *args):\n" + "\n".join(self.lines) + "\n"
        return src, self.globals


def _scan_bc(block: ast.Block) -> tuple[bool, bool]:
    """(has_break, has_continue) belonging to *this* loop level — the
    walk stops at nested loops, which own their own."""
    has_break = has_continue = False

    def walk(stmt) -> None:
        nonlocal has_break, has_continue
        kind = type(stmt)
        if kind is ast.Break:
            has_break = True
        elif kind is ast.Continue:
            has_continue = True
        elif kind is ast.Block:
            for s in stmt.statements:
                walk(s)
        elif kind is ast.If:
            walk(stmt.then_block)
            if stmt.else_block is not None:
                walk(stmt.else_block)

    walk(block)
    return has_break, has_continue


def codegen_thread(
    program: ast.Program, tdef: ast.ThreadDef, env: dict, costs: EmcCosts
) -> Callable:
    """Compile one thread definition to a Python generator function.

    Returns a function with the interpreter's ``(ctx, *args)`` calling
    convention; raises :class:`LoweringError` when the shape cannot be
    generated faithfully.  The produced source is attached as
    ``__emc_codegen_source__`` for tests and diagnostics.
    """
    gen = _CodeGen(program, tdef, env, costs)
    src, globals_ = gen.build()
    code = compile(src, f"<emc-codegen:{tdef.name}>", "exec")
    exec(code, globals_)
    fn = globals_[f"_gen_{tdef.name}"]
    fn.__name__ = tdef.name
    fn.__qualname__ = f"emc.{tdef.name}"
    fn.__doc__ = f"EM-C thread {tdef.name!r} (python codegen)."
    fn.__emc_codegen_source__ = src
    return fn
