"""Symbolic trace recorder for ``repro.core.threadlib`` generator threads.

The generator front-end of the cohort compiler.  :func:`record_thread`
runs one *representative* thread body inside a recording sandbox: the
``ThreadCtx`` it receives mimics the real context, but every value a
member could legitimately differ in — the PE number, ``n_pes``, the
invocation arguments, and every split-phase resume value — is replaced
by a tracked placeholder.  The run produces a flat, parameterized
effect trace: a list of effect opcodes whose operand slots are small
expression trees over ``('pe',)``/``('arg', i)``/``('resume', k)``
leaves rather than concrete values.

The sandbox is deliberately conservative.  A thread qualifies only when
its *control flow and effect operands* are functions of those tracked
leaves alone:

* ``ctx.mem``, ``ctx.state`` and ``ctx.tid`` access aborts recording —
  a thread reading shared per-PE state is not pure in its arguments, so
  a recorded trace could silently go stale.
* Resume values are fully opaque: they may be passed through into later
  effect operands (the classic read→write forwarding loop), but any
  *computation* on one (arithmetic, comparison, branching, unpacking)
  aborts recording.  Threads whose control flow depends on remote data
  (e.g. the bitonic merge) are exactly the ones a shape-keyed cohort
  cannot represent; they stay on the interpreter, per thread.
* Branches on argument-derived values record :data:`GUARD` entries with
  the branch outcome the representative took.  A candidate member joins
  the cohort only if every argument-only guard evaluates identically
  for *its* bindings; guards that involve resume values are re-checked
  live during replay and trigger the per-thread bailout protocol (see
  :mod:`repro.compile.cohort`).

Aborting is signalled with :class:`RecordingUnsupported`, which the
cohort manager converts into a silent per-thread fall back to the
ordinary interpreted generator — recording never changes observable
behaviour, it only ever declines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from ..errors import ProgramError

__all__ = [
    "RecordingUnsupported",
    "RecordedTrace",
    "record_thread",
    "eval_expr",
]

#: Hard cap on recorded trace length; longer shapes (unbounded loops
#: over huge n) would make admission-time guard checks themselves a
#: cost centre, defeating the amortization the cohort exists for.
MAX_TRACE_OPS = 4096

_GUARD = "guard"
_EFF = "eff"


class RecordingUnsupported(Exception):
    """The thread's shape cannot be recorded; fall back to the interpreter.

    ``reason`` is a short machine-readable category (``"state"``,
    ``"mem"``, ``"hostcall"``, ``"operand"``, ...) surfaced in the
    cohort report's per-reason bail breakdown.
    """

    def __init__(self, message: str = "", reason: str = "other") -> None:
        super().__init__(message)
        self.reason = reason


# ----------------------------------------------------------------------
# Expression trees
#
# ('const', v) | ('arg', i) | ('pe',) | ('npes',) | ('resume', k)
# ('bin', op, a, b) | ('neg', a) | ('cmp', op, a, b) | ('truth', a)
# ('ga', e_pe, e_off) | ('seq', (e, ...))
# ----------------------------------------------------------------------

def eval_expr(expr: tuple, pe: int, n_pes: int, args: tuple, resumes, ga):
    """Evaluate an operand expression under one member's bindings.

    ``resumes`` is the member's received-resume list (indexable by the
    ``('resume', k)`` leaf); ``ga`` is the member context's address
    constructor so per-member PE bounds checks raise exactly the
    interpreter's :class:`~repro.errors.ProgramError`.
    """
    tag = expr[0]
    if tag == "const":
        return expr[1]
    if tag == "arg":
        return args[expr[1]]
    if tag == "pe":
        return pe
    if tag == "npes":
        return n_pes
    if tag == "resume":
        return resumes[expr[1]]
    if tag == "bin":
        a = eval_expr(expr[2], pe, n_pes, args, resumes, ga)
        b = eval_expr(expr[3], pe, n_pes, args, resumes, ga)
        return _BIN_FNS[expr[1]](a, b)
    if tag == "neg":
        return -eval_expr(expr[1], pe, n_pes, args, resumes, ga)
    if tag == "cmp":
        a = eval_expr(expr[2], pe, n_pes, args, resumes, ga)
        b = eval_expr(expr[3], pe, n_pes, args, resumes, ga)
        return _CMP_FNS[expr[1]](a, b)
    if tag == "truth":
        return bool(eval_expr(expr[1], pe, n_pes, args, resumes, ga))
    if tag == "ga":
        return ga(
            eval_expr(expr[1], pe, n_pes, args, resumes, ga),
            eval_expr(expr[2], pe, n_pes, args, resumes, ga),
        )
    if tag == "seq":
        return [eval_expr(e, pe, n_pes, args, resumes, ga) for e in expr[1]]
    if tag == "tup":
        return tuple(eval_expr(e, pe, n_pes, args, resumes, ga) for e in expr[1])
    raise AssertionError(f"unknown expr tag {tag!r}")


_BIN_FNS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "floordiv": lambda a, b: a // b,
    "mod": lambda a, b: a % b,
    "lshift": lambda a, b: a << b,
    "rshift": lambda a, b: a >> b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "pow": lambda a, b: a**b,
    "min": min,
    "max": max,
}

_CMP_FNS = {
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
}


def _has_resume(expr: tuple) -> bool:
    tag = expr[0]
    if tag == "resume":
        return True
    if tag in ("const", "arg", "pe", "npes"):
        return False
    if tag in ("neg", "truth"):
        return _has_resume(expr[1])
    if tag in ("bin", "cmp"):
        return _has_resume(expr[2]) or _has_resume(expr[3])
    if tag == "ga":
        return _has_resume(expr[1]) or _has_resume(expr[2])
    if tag in ("seq", "tup"):
        return any(_has_resume(e) for e in expr[1])
    raise AssertionError(f"unknown expr tag {tag!r}")


# ----------------------------------------------------------------------
# Tracked values
# ----------------------------------------------------------------------


def _to_expr(value: Any) -> tuple:
    """Lift a guest value into an operand expression (or refuse)."""
    if isinstance(value, _Sym):
        return value._e
    if isinstance(value, (bool, int, str, float)) or value is None:
        return ("const", value)
    if isinstance(value, tuple):
        return ("tup", tuple(_to_expr(v) for v in value))
    if isinstance(value, list):
        return ("seq", tuple(_to_expr(v) for v in value))
    raise RecordingUnsupported(f"cannot parameterize operand {type(value).__name__}")


class _Sym:
    """Base for tracked values: a concrete value plus its expression."""

    __slots__ = ("_c", "_e", "_rec")

    def __init__(self, concrete, expr, rec) -> None:
        self._c = concrete
        self._e = expr
        self._rec = rec

    def __getattr__(self, name):
        # Safety net: a method/attribute we did not explicitly model
        # must abort recording, never leak an AttributeError into the
        # guest body.
        raise RecordingUnsupported(
            f"attribute {name!r} on a tracked {type(self).__name__} value",
            reason="operand",
        )


def _unsupported(op_name: str):
    def method(self, *args, **kwargs):
        raise RecordingUnsupported(
            f"{op_name} on a tracked {type(self).__name__} value",
            reason="operand",
        )

    method.__name__ = op_name
    return method


class _SymInt(_Sym):
    """A tracked integer: arithmetic builds expressions, branching guards."""

    __slots__ = ()

    def _lift(self, other):
        if isinstance(other, _SymInt):
            return other._c, other._e
        if isinstance(other, bool) or not isinstance(other, int):
            raise RecordingUnsupported(
                f"mixed arithmetic with {type(other).__name__}"
            )
        return other, ("const", other)

    def _bin(self, op, other, swap=False):
        oc, oe = self._lift(other)
        a, b = ((oc, self._c), (oe, self._e)) if swap else ((self._c, oc), (self._e, oe))
        try:
            concrete = _BIN_FNS[op](a[0], a[1])
        except ZeroDivisionError:
            # The representative itself divides by zero; let the real
            # interpreter raise it with full guest context.
            raise RecordingUnsupported("division by zero while recording") from None
        return _SymInt(concrete, ("bin", op, b[0], b[1]), self._rec)

    def __add__(self, other):
        return self._bin("add", other)

    def __radd__(self, other):
        return self._bin("add", other, swap=True)

    def __sub__(self, other):
        return self._bin("sub", other)

    def __rsub__(self, other):
        return self._bin("sub", other, swap=True)

    def __mul__(self, other):
        return self._bin("mul", other)

    def __rmul__(self, other):
        return self._bin("mul", other, swap=True)

    def __floordiv__(self, other):
        return self._bin("floordiv", other)

    def __rfloordiv__(self, other):
        return self._bin("floordiv", other, swap=True)

    def __mod__(self, other):
        return self._bin("mod", other)

    def __rmod__(self, other):
        return self._bin("mod", other, swap=True)

    def __lshift__(self, other):
        return self._bin("lshift", other)

    def __rlshift__(self, other):
        return self._bin("lshift", other, swap=True)

    def __rshift__(self, other):
        return self._bin("rshift", other)

    def __rrshift__(self, other):
        return self._bin("rshift", other, swap=True)

    def __and__(self, other):
        return self._bin("and", other)

    def __rand__(self, other):
        return self._bin("and", other, swap=True)

    def __or__(self, other):
        return self._bin("or", other)

    def __ror__(self, other):
        return self._bin("or", other, swap=True)

    def __xor__(self, other):
        return self._bin("xor", other)

    def __rxor__(self, other):
        return self._bin("xor", other, swap=True)

    def __pow__(self, other):
        return self._bin("pow", other)

    def __rpow__(self, other):
        return self._bin("pow", other, swap=True)

    def __neg__(self):
        return _SymInt(-self._c, ("neg", self._e), self._rec)

    def __pos__(self):
        return self

    def _cmp(self, op, other):
        oc, oe = self._lift(other)
        outcome = _CMP_FNS[op](self._c, oc)
        self._rec.guard(("cmp", op, self._e, oe), outcome)
        return outcome

    def __lt__(self, other):
        return self._cmp("lt", other)

    def __le__(self, other):
        return self._cmp("le", other)

    def __gt__(self, other):
        return self._cmp("gt", other)

    def __ge__(self, other):
        return self._cmp("ge", other)

    def __eq__(self, other):
        if isinstance(other, _SymInt) or isinstance(other, int):
            return self._cmp("eq", other)
        return NotImplemented

    def __ne__(self, other):
        if isinstance(other, _SymInt) or isinstance(other, int):
            return self._cmp("ne", other)
        return NotImplemented

    def __bool__(self):
        outcome = bool(self._c)
        self._rec.guard(("truth", self._e), outcome)
        return outcome

    def __index__(self):
        # range()/indexing forces a concrete int: pin the value with an
        # equality guard so every cohort member must agree on it.
        self._rec.guard(("cmp", "eq", self._e, ("const", self._c)), True)
        return self._c

    def bit_length(self):
        # ilog2() and friends: pin the operand, return the concrete.
        self._rec.guard(("cmp", "eq", self._e, ("const", self._c)), True)
        return self._c.bit_length()

    __hash__ = _unsupported("__hash__")
    __str__ = _unsupported("__str__")
    __format__ = _unsupported("__format__")
    __truediv__ = _unsupported("__truediv__")
    __rtruediv__ = _unsupported("__rtruediv__")
    __divmod__ = _unsupported("__divmod__")
    __rdivmod__ = _unsupported("__rdivmod__")
    __abs__ = _unsupported("__abs__")
    __invert__ = _unsupported("__invert__")
    __iter__ = _unsupported("__iter__")
    __getitem__ = _unsupported("__getitem__")


class _Opaque(_Sym):
    """A resume value: pass-through only, every operation aborts."""

    __slots__ = ()


for _name in (
    "__add__", "__radd__", "__sub__", "__rsub__", "__mul__", "__rmul__",
    "__floordiv__", "__rfloordiv__", "__truediv__", "__rtruediv__",
    "__mod__", "__rmod__", "__lshift__", "__rlshift__", "__rshift__",
    "__rrshift__", "__and__", "__rand__", "__or__", "__ror__",
    "__xor__", "__rxor__", "__pow__", "__rpow__", "__neg__", "__pos__",
    "__abs__", "__invert__", "__lt__", "__le__", "__gt__", "__ge__",
    "__eq__", "__ne__", "__bool__", "__index__", "__hash__", "__str__",
    "__format__", "__iter__", "__getitem__", "__len__", "__contains__",
):
    setattr(_Opaque, _name, _unsupported(_name))
del _name


class _SymObj(_Sym):
    """A tracked non-int argument (token, barrier): opaque pass-through."""

    __slots__ = ()


for _name in (
    "__lt__", "__le__", "__gt__", "__ge__", "__bool__", "__index__",
    "__hash__", "__str__", "__format__", "__iter__", "__getitem__",
    "__len__", "__contains__", "__call__",
):
    setattr(_SymObj, _name, _unsupported(_name))
del _name


class _SymGA(_Sym):
    """A tracked global address built by ``ctx.ga``; pass-through only."""

    __slots__ = ()


for _name in (
    "__add__", "__radd__", "__sub__", "__lt__", "__le__", "__gt__",
    "__ge__", "__bool__", "__hash__", "__str__", "__format__",
    "__iter__", "__getitem__",
):
    setattr(_SymGA, _name, _unsupported(_name))
del _name


# ----------------------------------------------------------------------
# The recording context
# ----------------------------------------------------------------------

#: Effects whose yield suspends the thread and produces a resume value.
_SUSPENDING = frozenset({"read", "read_pair", "read_block", "barrier_wait",
                         "token_wait", "switch", "call"})


class _RecCtx:
    """A ``ThreadCtx`` stand-in that records instead of executing."""

    __slots__ = ("_rec", "pe", "n_pes")

    def __init__(self, rec: "_Recorder", pe, n_pes) -> None:
        self._rec = rec
        self.pe = pe
        self.n_pes = n_pes

    # -- blocked surfaces ------------------------------------------------
    @property
    def mem(self):
        raise RecordingUnsupported("thread touches ctx.mem", reason="mem")

    @property
    def state(self):
        raise RecordingUnsupported("thread touches ctx.state", reason="state")

    @property
    def tid(self):
        raise RecordingUnsupported("thread touches ctx.tid", reason="tid")

    def host(self, fn, *args):
        # Host computations are data-dependent by definition: the pure
        # symbolic tier cannot model them.  The live tier can.
        raise RecordingUnsupported("thread makes a host call", reason="hostcall")

    # -- addressing ------------------------------------------------------
    def ga(self, pe, offset):
        pe_e = _to_expr(pe)
        off_e = _to_expr(offset)
        if _has_resume(pe_e) or _has_resume(off_e):
            # An address built from remote data is data-dependent
            # communication; the per-member bounds check could diverge.
            raise RecordingUnsupported("global address built from a resume value")
        pe_c = pe._c if isinstance(pe, _Sym) else pe
        if not isinstance(pe_c, int) or not (0 <= pe_c < self._rec.n_pes_c):
            # The representative itself faults; let the interpreter
            # raise the real ProgramError in guest context.
            raise RecordingUnsupported("representative global address out of bounds")
        return _SymGA(None, ("ga", pe_e, off_e), self._rec)

    # -- effect constructors --------------------------------------------
    def _eff(self, method: str, *operands):
        return self._rec.effect(method, tuple(_to_expr(v) for v in operands))

    def compute(self, cycles):
        cyc = _to_expr(cycles)
        cyc_c = cycles._c if isinstance(cycles, _Sym) else cycles
        if not isinstance(cyc_c, int) or cyc_c < 0:
            raise RecordingUnsupported("non-constant-sign compute charge")
        return self._rec.effect("compute", (cyc,))

    def read(self, addr):
        return self._eff("read", addr)

    def read_pair(self, addr_a, addr_b):
        return self._eff("read_pair", addr_a, addr_b)

    def read_block(self, addr, count):
        return self._eff("read_block", addr, count)

    def write(self, addr, value):
        return self._eff("write", addr, value)

    def write_block(self, addr, values):
        return self._eff("write_block", addr, values)

    def spawn(self, pe, func, *args):
        if not isinstance(func, str):
            raise RecordingUnsupported("spawn of a non-literal thread name")
        return self._eff("spawn", pe, func, *args)

    def call(self, pe, func, *args):
        if not isinstance(func, str):
            raise RecordingUnsupported("call of a non-literal thread name")
        return self._eff("call", pe, func, *args)

    def reply(self, continuation, value):
        return self._eff("reply", continuation, value)

    def barrier_wait(self, barrier):
        return self._eff("barrier_wait", barrier)

    def token_wait(self, token, seq):
        return self._eff("token_wait", token, seq)

    def token_advance(self, token):
        return self._eff("token_advance", token)

    def switch(self):
        return self._eff("switch")


class _Marker:
    """Yielded by the sandbox ctx; the recorder checks provenance."""

    __slots__ = ("index", "method")

    def __init__(self, index: int, method: str) -> None:
        self.index = index
        self.method = method


@dataclass(frozen=True)
class RecordedTrace:
    """A parameterized effect trace shared by one cohort.

    ``ops`` is a flat list of ``('guard', expr, expected)`` and
    ``('eff', method, operand_exprs, suspends, resume_index)`` entries.
    ``static_guards`` indexes the guards free of resume leaves — the
    ones admission can check up front; the rest are validated live
    during replay.
    """

    func_name: str
    n_args: int
    ops: tuple
    static_guards: tuple
    n_resumes: int
    n_effects: int

    def admits(self, pe: int, n_pes: int, args: tuple) -> bool:
        """Would this member take every recorded argument-only branch?"""
        if len(args) != self.n_args:
            return False
        ops = self.ops
        try:
            for idx in self.static_guards:
                _, expr, expected = ops[idx]
                if eval_expr(expr, pe, n_pes, args, (), None) != expected:
                    return False
        except (TypeError, ValueError, ZeroDivisionError, IndexError):
            return False
        return True


class _Recorder:
    __slots__ = ("ops", "n_resumes", "n_effects", "n_pes_c", "_next_marker")

    def __init__(self, n_pes_c: int) -> None:
        self.ops: list = []
        self.n_resumes = 0
        self.n_effects = 0
        self.n_pes_c = n_pes_c
        self._next_marker: _Marker | None = None

    def _grow(self) -> None:
        if len(self.ops) >= MAX_TRACE_OPS:
            raise RecordingUnsupported(f"trace longer than {MAX_TRACE_OPS} ops")

    def guard(self, expr: tuple, outcome: bool) -> None:
        self._grow()
        self.ops.append((_GUARD, expr, outcome))

    def effect(self, method: str, operands: tuple) -> _Marker:
        self._grow()
        suspends = method in _SUSPENDING
        resume_index = self.n_resumes if suspends else -1
        self.ops.append((_EFF, method, operands, suspends, resume_index))
        self.n_effects += 1
        if suspends:
            self.n_resumes += 1
        marker = _Marker(len(self.ops) - 1, method)
        self._next_marker = marker
        return marker


def _close(gen) -> None:
    try:
        gen.close()
    except Exception:
        pass  # a finally block hitting the sandbox must not mask the bail


def record_thread(func: Callable, pe: int, n_pes: int, args: tuple) -> RecordedTrace:
    """Symbolically execute ``func`` once and return its effect trace.

    ``pe``/``n_pes``/``args`` are the representative's concrete
    bindings: recording follows the exact branches this member takes,
    pinning each with a guard.  Raises :class:`RecordingUnsupported`
    when the body does anything the sandbox cannot parameterize.
    """
    rec = _Recorder(n_pes)
    ctx = _RecCtx(
        rec,
        _SymInt(pe, ("pe",), rec),
        _SymInt(n_pes, ("npes",), rec),
    )
    sym_args = tuple(
        _SymInt(a, ("arg", i), rec)
        if isinstance(a, int) and not isinstance(a, bool)
        else _SymObj(a, ("arg", i), rec)
        for i, a in enumerate(args)
    )
    try:
        gen = func(ctx, *sym_args)
    except RecordingUnsupported:
        raise
    except Exception as exc:
        raise RecordingUnsupported(f"thread body raised at setup: {exc!r}") from None
    if not hasattr(gen, "send"):
        raise RecordingUnsupported("thread function is not a generator")
    send = None
    try:
        while True:
            try:
                yielded = gen.send(send)
            except StopIteration:
                break
            marker = rec._next_marker
            rec._next_marker = None
            if yielded is not marker:
                # The body yielded something it did not just build via
                # this ctx (stored effect, foreign object): bail.
                raise RecordingUnsupported("yield of a non-ctx-constructed effect")
            op = rec.ops[marker.index]
            if op[3]:  # suspends
                send = _Opaque(None, ("resume", op[4]), rec)
            else:
                send = None
    except RecordingUnsupported:
        _close(gen)
        raise
    except ProgramError:
        _close(gen)
        raise RecordingUnsupported("representative raised ProgramError") from None
    except Exception as exc:
        _close(gen)
        raise RecordingUnsupported(f"thread body raised: {exc!r}") from None
    static = tuple(
        i
        for i, op in enumerate(rec.ops)
        if op[0] == _GUARD and not _has_resume(op[1])
    )
    return RecordedTrace(
        func_name=getattr(func, "__name__", "?"),
        n_args=len(args),
        ops=tuple(rec.ops),
        static_guards=static,
        n_resumes=rec.n_resumes,
        n_effects=rec.n_effects,
    )
