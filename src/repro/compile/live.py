"""Live-tracing tier of the cohort compiler (data-dependent recording).

The pure symbolic recorder (:mod:`repro.compile.recorder`) refuses any
thread that touches ``ctx.state``/``ctx.mem`` or computes on a resume
value — which is every native app worker.  This module records such
threads *live*: the representative's real generator runs to completion
doing its real work, wrapped so that every state read is captured as a
positional ``load`` op, every branch outcome as a ``guard``, every
``ctx.host`` call as an opaque ``host`` op whose concrete result is
memoized, and every effect as a parameterized ``eff`` op.  The result
is a :class:`LiveTrace` — a straight-line program over SSA slots that
later same-shape threads replay through a generated Python generator
(one ``yield`` per effect, adjacent compute+read pairs fused into
:class:`~repro.core.effects.FusedRead`) instead of resuming the guest
frame.

Replay re-checks every data-dependent guard against the member's live
state; the first mismatch hands the thread to :func:`catch_up`, which
re-executes the guest from the top against the memoized loads/hosts/
resumes — mutations are *not* re-applied, memo queues serve them — and
then yields the residual effects live.  Divergence therefore never
changes observable behaviour; it only costs the replayed prefix again.

Admission is split by guard class:

* **class 1** — guards over ``pe``/``n_pes``/``args`` only: checked at
  admission (vectorized over the member batch with numpy when
  available) and *skipped* in the generated replay.
* **class 2** — guards whose slots resolve through load chains rooted
  at ``ctx.state``: evaluated per member against creation-time state as
  a heuristic, and still replay-checked.  Expressions the trace itself
  saw with conflicting outcomes (a loop flag flipping) are excluded.
* **class 3** — guards touching host results or resume values: replay
  checked only.

Traces live in a cross-run registry keyed weakly by function, so warm
runs skip re-tracing entirely; :func:`clear_registry` restores a cold
start for benchmarks and tests.
"""

from __future__ import annotations

import weakref
from collections import deque
from typing import Any, Callable

from ..core.effects import (
    BarrierWait,
    Compute,
    FusedRead,
    FusedReadPair,
    RemoteRead,
    RemoteReadBlock,
    RemoteReadPair,
    RemoteWrite,
    RemoteWriteBlock,
    SwitchNow,
    TokenAdvance,
    TokenWait,
)
from .recorder import (
    _BIN_FNS,
    _CMP_FNS,
    RecordingUnsupported,
    _Sym,
    _SymGA,
    _SymInt,
)

try:  # pragma: no cover - exercised via the no-numpy fallback test
    import numpy as np

    HAVE_NUMPY = True
except Exception:  # pragma: no cover
    np = None
    HAVE_NUMPY = False

__all__ = [
    "HAVE_NUMPY",
    "LiveTrace",
    "catch_up",
    "clear_registry",
    "lookup_traces",
    "register_trace",
    "run_tracer",
    "assign_traces",
    "assign_traces_memo",
]

#: Hard cap on live trace length (the whole thread body, loops unrolled).
MAX_LIVE_OPS = 65536

#: Hard cap on registered traces per (function, arity) shape.
MAX_TRACES_PER_KEY = 512

#: Class-1 guards beyond this many are left replay-checked instead of
#: joining the admission set (keeps admission itself cheap).
MAX_ADMISSION_GUARDS = 96

#: Suspending effect constructors (resume value arrives at the yield).
_SUSPENDING = frozenset(
    {"read", "read_pair", "read_block", "barrier_wait", "token_wait", "switch"}
)

_EFFECT_CLASSES = {
    "compute": Compute,
    "read": RemoteRead,
    "read_pair": RemoteReadPair,
    "read_block": RemoteReadBlock,
    "write": RemoteWrite,
    "write_block": RemoteWriteBlock,
    "barrier_wait": BarrierWait,
    "token_wait": TokenWait,
    "token_advance": TokenAdvance,
    "switch": SwitchNow,
}

#: Resumes that are protocol ``None`` (no data flows back into the body).
_NONE_RESUMES = frozenset({"barrier_wait", "token_wait", "switch"})


class _Memo:
    """Concrete values observed while tracing/replaying one thread.

    ``catch_up`` consumes these as FIFO queues so a re-executed guest
    prefix sees exactly the values the traced run saw, without
    re-applying host mutations or re-issuing effects.
    """

    __slots__ = ("loads", "hosts", "resumes")

    def __init__(self) -> None:
        self.loads: deque = deque()
        self.hosts: deque = deque()
        self.resumes: deque = deque()


# ----------------------------------------------------------------------
# Expression helpers
#
# Leaves: ('const',v) ('arg',i) ('pe',) ('npes',) ('slot',k) ('st',) ('mem',)
# Inner:  ('bin',op,a,b) ('neg',a) ('cmp',op,a,b) ('truth',a) ('ga',a,b)
#         ('list',(e,..)) ('tup',(e,..)) ('item',base,key) ('attr',base,name)
#         ('len',base) ('none',e) ('param',j)
# ----------------------------------------------------------------------


def _to_live_expr(value: Any) -> tuple:
    if isinstance(value, _Sym):
        return value._e
    if isinstance(value, (bool, int, float, str)) or value is None:
        return ("const", value)
    if isinstance(value, tuple):
        return ("tup", tuple(_to_live_expr(v) for v in value))
    if isinstance(value, list):
        return ("list", tuple(_to_live_expr(v) for v in value))
    raise RecordingUnsupported(
        f"cannot parameterize live operand {type(value).__name__}",
        reason="operand",
    )


def _deep_conc(value: Any):
    """Strip tracing wrappers recursively (for real calls/constructors).

    Only exact ``list``/``tuple`` containers are rebuilt — NamedTuples
    like :class:`~repro.packet.address.GlobalAddress` must keep their
    type.
    """
    if isinstance(value, _Sym):
        return value._c
    if type(value) is list:
        return [_deep_conc(v) for v in value]
    if type(value) is tuple:
        return tuple(_deep_conc(v) for v in value)
    return value


def _leaves(expr: tuple, out: set) -> set:
    tag = expr[0]
    if tag in ("const", "arg", "pe", "npes", "slot", "st", "mem", "param"):
        out.add(tag)
    elif tag in ("neg", "truth", "len", "none"):
        _leaves(expr[1], out)
    elif tag in ("bin", "cmp"):
        _leaves(expr[2], out)
        _leaves(expr[3], out)
    elif tag == "ga":
        _leaves(expr[1], out)
        _leaves(expr[2], out)
    elif tag in ("list", "tup"):
        for e in expr[1]:
            _leaves(e, out)
    elif tag == "item":
        _leaves(expr[1], out)
        _leaves(expr[2], out)
    elif tag == "attr":
        _leaves(expr[1], out)
    else:  # pragma: no cover
        raise AssertionError(f"unknown expr tag {tag!r}")
    return out


def _is_static(expr: tuple) -> bool:
    """Does the expression depend only on (pe, n_pes, args, consts)?"""
    return _leaves(expr, set()) <= {"const", "arg", "pe", "npes"}


# ----------------------------------------------------------------------
# Tracked values (live flavour)
# ----------------------------------------------------------------------


def _live_abort(op_name: str, reason: str):
    def method(self, *args, **kwargs):
        raise RecordingUnsupported(
            f"{op_name} on a live-traced {type(self._c).__name__} value",
            reason=reason,
        )

    method.__name__ = op_name
    return method


class _LiveVal(_Sym):
    """A live-traced non-int value: reads record loads, branches guard."""

    __slots__ = ()

    def _cmp(self, op, other):
        if isinstance(other, _Sym):
            oc, oe = other._c, other._e
        else:
            oc, oe = other, ("const", other)
        try:
            outcome = _CMP_FNS[op](self._c, oc)
        except Exception as exc:
            raise RecordingUnsupported(
                f"comparison failed while tracing: {exc!r}", reason="operand"
            ) from None
        if not isinstance(outcome, bool):
            raise RecordingUnsupported("non-bool comparison", reason="operand")
        self._rec.guard(("cmp", op, self._e, oe), outcome)
        return outcome

    def __eq__(self, other):
        return self._cmp("eq", other)

    def __ne__(self, other):
        return self._cmp("ne", other)

    def __lt__(self, other):
        return self._cmp("lt", other)

    def __le__(self, other):
        return self._cmp("le", other)

    def __gt__(self, other):
        return self._cmp("gt", other)

    def __ge__(self, other):
        return self._cmp("ge", other)

    def __bool__(self):
        outcome = bool(self._c)
        self._rec.guard(("truth", self._e), outcome)
        return outcome

    def __len__(self):
        n = len(self._c)
        self._rec.guard(("cmp", "eq", ("len", self._e), ("const", n)), True)
        return n

    def __getitem__(self, key):
        if isinstance(key, _Sym):
            kc, ke = key._c, key._e
        else:
            kc, ke = key, ("const", key)
        try:
            value = self._c[kc]
        except Exception as exc:
            raise RecordingUnsupported(
                f"subscript failed while tracing: {exc!r}", reason="operand"
            ) from None
        return self._rec.load_value(value, ("item", self._e, ke))

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        try:
            c = object.__getattribute__(self, "_c")
            rec = object.__getattribute__(self, "_rec")
            e = object.__getattribute__(self, "_e")
        except AttributeError:
            raise AttributeError(name) from None
        try:
            value = getattr(c, name)
        except AttributeError:
            raise RecordingUnsupported(
                f"missing attribute {name!r} while tracing", reason="operand"
            ) from None
        return rec.load_value(value, ("attr", e, name))

    def __iter__(self):
        c = self._c
        if not isinstance(c, (list, tuple)):
            raise RecordingUnsupported(
                "iteration over a live-traced non-sequence", reason="operand"
            )
        n = len(c)
        self._rec.guard(("cmp", "eq", ("len", self._e), ("const", n)), True)
        return iter(
            [
                self._rec.load_value(c[i], ("item", self._e, ("const", i)))
                for i in range(n)
            ]
        )


for _name, _reason in (
    ("__setitem__", "state-write"),
    ("__delitem__", "state-write"),
    ("__call__", "call"),
    ("__hash__", "operand"),
    ("__contains__", "operand"),
    ("__add__", "operand"),
    ("__radd__", "operand"),
    ("__sub__", "operand"),
    ("__rsub__", "operand"),
    ("__mul__", "operand"),
    ("__rmul__", "operand"),
    ("__truediv__", "operand"),
    ("__rtruediv__", "operand"),
    ("__floordiv__", "operand"),
    ("__rfloordiv__", "operand"),
    ("__mod__", "operand"),
    ("__rmod__", "operand"),
    ("__lshift__", "operand"),
    ("__rlshift__", "operand"),
    ("__rshift__", "operand"),
    ("__rrshift__", "operand"),
    ("__and__", "operand"),
    ("__rand__", "operand"),
    ("__or__", "operand"),
    ("__ror__", "operand"),
    ("__xor__", "operand"),
    ("__rxor__", "operand"),
    ("__pow__", "operand"),
    ("__rpow__", "operand"),
    ("__neg__", "operand"),
    ("__pos__", "operand"),
    ("__abs__", "operand"),
    ("__invert__", "operand"),
    ("__index__", "operand"),
    ("__str__", "operand"),
    ("__format__", "operand"),
):
    setattr(_LiveVal, _name, _live_abort(_name, _reason))
del _name, _reason


def _wrap(rec, value, expr):
    """Wrap a concrete value for the guest: ints track, the rest trace."""
    if isinstance(value, bool):
        return _LiveVal(value, expr, rec)
    if isinstance(value, int):
        return _SymInt(value, expr, rec)
    return _LiveVal(value, expr, rec)


# ----------------------------------------------------------------------
# The live recorder and its ThreadCtx stand-in
# ----------------------------------------------------------------------


class _LiveRecorder:
    __slots__ = (
        "ops",
        "n_slots",
        "host_fns",
        "n_effects",
        "memo",
        "last_effect_obj",
        "last_eff",
    )

    def __init__(self) -> None:
        self.ops: list = []
        self.n_slots = 0
        self.host_fns: list = []
        self.n_effects = 0
        self.memo = _Memo()
        self.last_effect_obj = None
        self.last_eff: tuple | None = None  # (method, dst, suspends)

    def _grow(self) -> None:
        if len(self.ops) >= MAX_LIVE_OPS:
            raise RecordingUnsupported(
                f"live trace longer than {MAX_LIVE_OPS} ops", reason="trace-cap"
            )

    def guard(self, expr: tuple, outcome) -> None:
        self._grow()
        self.ops.append(("guard", expr, outcome))

    def load_value(self, value, src_expr: tuple):
        """Record a state load into a fresh slot; return the wrapped value."""
        self._grow()
        k = self.n_slots
        self.n_slots += 1
        self.ops.append(("load", k, src_expr))
        self.memo.loads.append(value)
        e = ("slot", k)
        if value is None:
            self.guard(("none", e), True)
            return None
        return _wrap(self, value, e)

    def host_call(self, fn, arg_exprs: tuple, result):
        self._grow()
        try:
            j = self.host_fns.index(fn)
        except ValueError:
            j = len(self.host_fns)
            self.host_fns.append(fn)
        k = self.n_slots
        self.n_slots += 1
        self.ops.append(("host", k, j, tuple(arg_exprs)))
        self.memo.hosts.append(result)
        e = ("slot", k)
        if result is None:
            self.guard(("none", e), True)
            return None
        return _wrap(self, result, e)

    def effect(self, method: str, operand_exprs: tuple, suspends: bool) -> int:
        self._grow()
        if suspends:
            dst = self.n_slots
            self.n_slots += 1
        else:
            dst = -1
        self.ops.append(("eff", method, tuple(operand_exprs), suspends, dst))
        self.n_effects += 1
        return dst


class _LiveCtx:
    """A ``ThreadCtx`` stand-in that records *and* executes for real."""

    __slots__ = ("_rec", "_real", "pe", "n_pes")

    def __init__(self, rec: _LiveRecorder, real_ctx) -> None:
        self._rec = rec
        self._real = real_ctx
        self.pe = _SymInt(real_ctx.pe, ("pe",), rec)
        self.n_pes = _SymInt(real_ctx.n_pes, ("npes",), rec)

    @property
    def mem(self):
        return _LiveVal(self._real.mem, ("mem",), self._rec)

    @property
    def state(self):
        return _LiveVal(self._real.state, ("st",), self._rec)

    @property
    def tid(self):
        raise RecordingUnsupported("thread touches ctx.tid", reason="tid")

    def ga(self, pe, offset):
        pe_e = _to_live_expr(pe)
        off_e = _to_live_expr(offset)
        # Build the REAL address: an out-of-bounds PE raises the real
        # ProgramError inside the guest, exactly as the interpreter.
        real = self._real.ga(_deep_conc(pe), _deep_conc(offset))
        return _SymGA(real, ("ga", pe_e, off_e), self._rec)

    def host(self, fn, *args):
        if isinstance(fn, _Sym):
            raise RecordingUnsupported(
                "host function is itself a traced value", reason="hostcall"
            )
        exprs = tuple(_to_live_expr(a) for a in args)
        result = fn(*[_deep_conc(a) for a in args])
        return self._rec.host_call(fn, exprs, result)

    # -- effect constructors --------------------------------------------
    def _eff(self, method: str, operands: tuple):
        rec = self._rec
        exprs = tuple(_to_live_expr(v) for v in operands)
        real = getattr(self._real, method)(*[_deep_conc(v) for v in operands])
        suspends = method in _SUSPENDING
        dst = rec.effect(method, exprs, suspends)
        rec.last_effect_obj = real
        rec.last_eff = (method, dst, suspends)
        return real

    def compute(self, cycles):
        return self._eff("compute", (cycles,))

    def read(self, addr):
        return self._eff("read", (addr,))

    def read_pair(self, addr_a, addr_b):
        return self._eff("read_pair", (addr_a, addr_b))

    def read_block(self, addr, count):
        return self._eff("read_block", (addr, count))

    def write(self, addr, value):
        return self._eff("write", (addr, value))

    def write_block(self, addr, values):
        return self._eff("write_block", (addr, values))

    def barrier_wait(self, barrier):
        return self._eff("barrier_wait", (barrier,))

    def token_wait(self, token, seq):
        return self._eff("token_wait", (token, seq))

    def token_advance(self, token):
        return self._eff("token_advance", (token,))

    def switch(self):
        return self._eff("switch", ())

    def spawn(self, pe, func, *args):
        raise RecordingUnsupported(
            "spawn inside a live-traced thread", reason="unsupported-effect"
        )

    def call(self, pe, func, *args):
        raise RecordingUnsupported(
            "call inside a live-traced thread", reason="unsupported-effect"
        )

    def reply(self, continuation, value):
        raise RecordingUnsupported(
            "reply inside a live-traced thread", reason="unsupported-effect"
        )


# ----------------------------------------------------------------------
# The tracer drive loop (this generator IS the thread)
# ----------------------------------------------------------------------


def _wrap_resume(rec: _LiveRecorder, method: str, dst: int, value):
    rec.memo.resumes.append(value)
    if method in _NONE_RESUMES:
        return None
    e = ("slot", dst)
    if value is None:
        rec.guard(("none", e), True)
        return None
    return _wrap(rec, value, e)


def run_tracer(func: Callable, ctx, args: tuple, on_abort, on_trace):
    """Run ``func`` for real while recording a :class:`LiveTrace`.

    Returns the generator the EXU drives.  ``on_abort(exc)`` fires if
    recording bails (the thread itself still completes correctly, via
    catch-up or passthrough); ``on_trace(trace)`` fires on success.
    """
    rec = _LiveRecorder()
    lctx = _LiveCtx(rec, ctx)
    sym_args = tuple(
        _SymInt(a, ("arg", i), rec)
        if isinstance(a, int) and not isinstance(a, bool)
        else _LiveVal(a, ("arg", i), rec)
        for i, a in enumerate(args)
    )

    def driver():
        try:
            gen = func(lctx, *sym_args)
        except RecordingUnsupported as exc:
            on_abort(exc)
            yield from func(ctx, *args)
            return
        if not hasattr(gen, "send"):
            on_abort(RecordingUnsupported("not a generator", reason="other"))
            return
        send = None
        n_sent = 0
        while True:
            try:
                yielded = gen.send(send)
            except StopIteration:
                break
            except RecordingUnsupported as exc:
                # Flavour A: a wrapper aborted inside the guest frame
                # (before applying the faulting op).  The generator is
                # dead; re-execute against the memo and carry on live.
                on_abort(exc)
                yield from catch_up(func, ctx, args, rec.memo, n_sent)
                return
            last = rec.last_effect_obj
            rec.last_effect_obj = None
            if yielded is not last:
                # Flavour B: the body yielded something it did not just
                # build via this ctx.  The generator is alive — forward
                # the foreign object and fall through to passthrough.
                on_abort(
                    RecordingUnsupported(
                        "yield of a non-ctx-constructed effect",
                        reason="foreign-yield",
                    )
                )
                send = yield yielded
                while True:
                    try:
                        yielded = gen.send(send)
                    except StopIteration:
                        return
                    send = yield yielded
            method, dst, suspends = rec.last_eff
            value = yield yielded
            n_sent += 1
            if suspends:
                send = _wrap_resume(rec, method, dst, value)
            else:
                send = None
        on_trace(_finalize(rec, func, len(args)))

    return driver()


# ----------------------------------------------------------------------
# LiveTrace: finalize, admission, generated replay
# ----------------------------------------------------------------------


class LiveTrace:
    """One straight-line traced thread shape, replayable per member."""

    __slots__ = (
        "func",
        "func_name",
        "n_args",
        "ops",
        "host_fns",
        "n_slots",
        "n_effects",
        "admission",
        "class2",
        "skip_set",
        "arg_pins",
        "yields_before",
        "params",
        "n_members",
        "_replay_fn",
    )

    def __init__(self, func, n_args, ops, host_fns, n_slots, n_effects):
        self.func = func
        self.func_name = getattr(func, "__name__", "?")
        self.n_args = n_args
        self.ops = ops
        self.host_fns = host_fns
        self.n_slots = n_slots
        self.n_effects = n_effects
        self.admission: tuple = ()  # ((expr, outcome), ...) class-1, deduped
        self.class2: tuple = ()  # ((subst_expr, outcome), ...)
        self.skip_set: frozenset = frozenset()
        self.arg_pins: dict = {}  # arg index -> pinned const
        self.yields_before: tuple = ()
        self.params: tuple = ()  # static operand subtrees -> P columns
        #: Cross-run member count; the representative is member 0, so
        #: the first-ever replay locksteps against a real shadow and
        #: later ones are sampled every VALIDATE_STRIDE.
        self.n_members = 1
        self._replay_fn = None

    # -- admission -------------------------------------------------------
    def admits(self, pe: int, n_pes: int, args: tuple, state) -> bool:
        """Scalar admission: class-1 guards, then class-2 heuristics."""
        if len(args) != self.n_args:
            return False
        try:
            for expr, outcome in self.admission:
                if _eval_scalar(expr, pe, n_pes, args, None, None, state, None, None) != outcome:
                    return False
            for expr, outcome in self.class2:
                if _eval_scalar(expr, pe, n_pes, args, None, None, state, None, None) != outcome:
                    return False
        except Exception:
            return False
        return True

    def admits_class2(self, pe: int, n_pes: int, args: tuple, state) -> bool:
        try:
            for expr, outcome in self.class2:
                if _eval_scalar(expr, pe, n_pes, args, None, None, state, None, None) != outcome:
                    return False
        except Exception:
            return False
        return True

    def diverge(self, ctx, A, M, op_idx, mgr):
        """Replay guard mismatch: silent hand-off to catch-up."""
        mgr.replay_divergences += 1
        mgr._emit("catchup", ctx.pe, self.func_name, op_idx)
        return catch_up(self.func, ctx, tuple(A), M, self.yields_before[op_idx])

    def replay_fn(self):
        if self._replay_fn is None:
            self._replay_fn = _codegen_replay(self)
        return self._replay_fn

    def param_row(self, pe: int, n_pes: int, args: tuple) -> tuple:
        """Scalar fallback: one member's static operand row."""
        return tuple(
            _eval_scalar(e, pe, n_pes, args, None, None, None, None, None)
            for e in self.params
        )

    def param_table(self, members, n_pes: int) -> list:
        """Vectorized operand table: one row per member, one column per
        static operand, evaluated with numpy over the whole batch.
        ``members`` is a list of ``(pe, args)``.  Values come back as
        Python ints (``tolist``), never numpy scalars."""
        if not self.params:
            return [()] * len(members)
        if not HAVE_NUMPY or len(members) < 2:
            return [self.param_row(pe, n_pes, args) for pe, args in members]
        try:
            pes = np.array([m[0] for m in members], dtype=np.int64)
            argcols = [
                np.array([m[1][i] for m in members], dtype=np.int64)
                for i in range(self.n_args)
            ]
            cols = []
            for e in self.params:
                v = _vec_eval(e, pes, argcols, n_pes)
                if hasattr(v, "tolist"):
                    cols.append(v.tolist())
                else:
                    cols.append([v] * len(members))
            return [tuple(c[i] for c in cols) for i in range(len(members))]
        except Exception:
            return [self.param_row(pe, n_pes, args) for pe, args in members]


def _canon_guard(op) -> tuple:
    return (op[1], op[2])


def _finalize(rec: _LiveRecorder, func, n_args: int) -> LiveTrace:
    ops = tuple(rec.ops)
    trace = LiveTrace(func, n_args, ops, list(rec.host_fns), rec.n_slots, rec.n_effects)

    # Slot definitions for class-2 substitution: slot -> defining expr
    # (loads only; host/resume slots are not substitutable).
    defs: dict[int, tuple] = {}
    for op in ops:
        if op[0] == "load":
            defs[op[1]] = op[2]

    def subst(e: tuple):
        """Rewrite slot refs through load chains; None if not possible."""
        tag = e[0]
        if tag == "slot":
            d = defs.get(e[1])
            return subst(d) if d is not None else None
        if tag in ("const", "arg", "pe", "npes", "st", "mem"):
            return e
        if tag in ("neg", "truth", "len", "none"):
            inner = subst(e[1])
            return None if inner is None else (tag, inner)
        if tag in ("bin", "cmp"):
            a, b = subst(e[2]), subst(e[3])
            return None if a is None or b is None else (tag, e[1], a, b)
        if tag == "item":
            a, b = subst(e[1]), subst(e[2])
            return None if a is None or b is None else (tag, a, b)
        if tag == "attr":
            a = subst(e[1])
            return None if a is None else (tag, a, e[2])
        if tag in ("list", "tup"):
            parts = tuple(subst(x) for x in e[1])
            return None if any(p is None for p in parts) else (tag, parts)
        if tag == "ga":
            a, b = subst(e[1]), subst(e[2])
            return None if a is None or b is None else (tag, a, b)
        return None

    admission: list = []
    seen_adm: set = set()
    class2: dict = {}
    conflicted: set = set()
    skip: set = set()
    arg_pins: dict = {}
    for idx, op in enumerate(ops):
        if op[0] != "guard":
            continue
        expr, outcome = op[1], op[2]
        if _is_static(expr):
            key = (expr, outcome)
            if key in seen_adm:
                skip.add(idx)
            elif len(admission) < MAX_ADMISSION_GUARDS:
                admission.append(key)
                seen_adm.add(key)
                skip.add(idx)
                if (
                    expr[0] == "cmp"
                    and expr[1] == "eq"
                    and outcome is True
                    and expr[2][0] == "arg"
                    and expr[3][0] == "const"
                ):
                    arg_pins[expr[2][1]] = expr[3][1]
            continue
        leaves = _leaves(expr, set())
        if "mem" in leaves:
            continue  # memory-rooted loads: replay-check only
        sub = subst(expr)
        if sub is None or not (_leaves(sub, set()) <= {"const", "arg", "pe", "npes", "st"}):
            continue  # class 3: replay-check only
        if sub in class2 and class2[sub] != outcome:
            conflicted.add(sub)
        else:
            class2[sub] = outcome
    trace.admission = tuple(admission)
    trace.class2 = tuple(
        (e, o) for e, o in class2.items() if e not in conflicted
    )
    trace.skip_set = frozenset(skip)
    trace.arg_pins = arg_pins

    yields_before = []
    n = 0
    for op in ops:
        yields_before.append(n)
        if op[0] == "eff":
            n += 1
    trace.yields_before = tuple(yields_before)

    # Flat operand tables: hoist every maximal static (pe/args-only)
    # non-leaf subtree of the ops into a ``('param', j)`` column.  At
    # join time the columns are evaluated for the whole admitted batch
    # in one vectorized pass (numpy) and each member replays against
    # its own row.
    params: list = []
    pidx: dict = {}

    def rewrite(e: tuple) -> tuple:
        tag = e[0]
        if tag in ("const", "pe", "npes", "arg", "st", "mem", "slot", "param"):
            return e
        if tag == "ga":
            # Never hoisted whole: ctx.ga re-runs the PE bounds check
            # per member, and the table evaluator has no ga binding.
            return (tag, rewrite(e[1]), rewrite(e[2]))
        if _is_static(e):
            j = pidx.get(e)
            if j is None:
                j = pidx[e] = len(params)
                params.append(e)
            return ("param", j)
        if tag in ("neg", "truth", "len", "none"):
            return (tag, rewrite(e[1]))
        if tag in ("bin", "cmp"):
            return (tag, e[1], rewrite(e[2]), rewrite(e[3]))
        if tag in ("ga", "item"):
            return (tag, rewrite(e[1]), rewrite(e[2]))
        if tag == "attr":
            return (tag, rewrite(e[1]), e[2])
        if tag in ("list", "tup"):
            return (tag, tuple(rewrite(x) for x in e[1]))
        return e

    new_ops: list = []
    for op in ops:
        if op[0] == "load":
            new_ops.append((op[0], op[1], rewrite(op[2])))
        elif op[0] == "guard":
            new_ops.append((op[0], rewrite(op[1]), op[2]))
        elif op[0] == "host":
            new_ops.append((op[0], op[1], op[2], tuple(rewrite(a) for a in op[3])))
        else:
            new_ops.append(
                (op[0], op[1], tuple(rewrite(a) for a in op[2]), op[3], op[4])
            )
    trace.ops = tuple(new_ops)
    trace.params = tuple(params)
    return trace


# ----------------------------------------------------------------------
# Scalar and vectorized expression evaluation
# ----------------------------------------------------------------------


def _eval_scalar(e, pe, n_pes, args, S, P, st, mem, ga):
    tag = e[0]
    if tag == "const":
        return e[1]
    if tag == "slot":
        return S[e[1]]
    if tag == "param":
        return P[e[1]]
    if tag == "arg":
        return args[e[1]]
    if tag == "pe":
        return pe
    if tag == "npes":
        return n_pes
    if tag == "st":
        return st
    if tag == "mem":
        return mem
    if tag == "bin":
        return _BIN_FNS[e[1]](
            _eval_scalar(e[2], pe, n_pes, args, S, P, st, mem, ga),
            _eval_scalar(e[3], pe, n_pes, args, S, P, st, mem, ga),
        )
    if tag == "cmp":
        return _CMP_FNS[e[1]](
            _eval_scalar(e[2], pe, n_pes, args, S, P, st, mem, ga),
            _eval_scalar(e[3], pe, n_pes, args, S, P, st, mem, ga),
        )
    if tag == "neg":
        return -_eval_scalar(e[1], pe, n_pes, args, S, P, st, mem, ga)
    if tag == "truth":
        return bool(_eval_scalar(e[1], pe, n_pes, args, S, P, st, mem, ga))
    if tag == "ga":
        return ga(
            _eval_scalar(e[1], pe, n_pes, args, S, P, st, mem, ga),
            _eval_scalar(e[2], pe, n_pes, args, S, P, st, mem, ga),
        )
    if tag == "item":
        return _eval_scalar(e[1], pe, n_pes, args, S, P, st, mem, ga)[
            _eval_scalar(e[2], pe, n_pes, args, S, P, st, mem, ga)
        ]
    if tag == "attr":
        return getattr(_eval_scalar(e[1], pe, n_pes, args, S, P, st, mem, ga), e[2])
    if tag == "len":
        return len(_eval_scalar(e[1], pe, n_pes, args, S, P, st, mem, ga))
    if tag == "none":
        return _eval_scalar(e[1], pe, n_pes, args, S, P, st, mem, ga) is None
    if tag == "list":
        return [_eval_scalar(x, pe, n_pes, args, S, P, st, mem, ga) for x in e[1]]
    if tag == "tup":
        return tuple(_eval_scalar(x, pe, n_pes, args, S, P, st, mem, ga) for x in e[1])
    raise AssertionError(f"unknown expr tag {tag!r}")


def _vec_eval(e, pes, argcols, n_pes):
    """Vectorized class-1 evaluation over member columns (numpy)."""
    tag = e[0]
    if tag == "const":
        return e[1]
    if tag == "pe":
        return pes
    if tag == "npes":
        return n_pes
    if tag == "arg":
        return argcols[e[1]]
    if tag == "bin":
        a = _vec_eval(e[2], pes, argcols, n_pes)
        b = _vec_eval(e[3], pes, argcols, n_pes)
        op = e[1]
        if op == "min":
            return np.minimum(a, b)
        if op == "max":
            return np.maximum(a, b)
        return _BIN_FNS[op](a, b)
    if tag == "neg":
        return -_vec_eval(e[1], pes, argcols, n_pes)
    if tag == "cmp":
        return _CMP_FNS[e[1]](
            _vec_eval(e[2], pes, argcols, n_pes),
            _vec_eval(e[3], pes, argcols, n_pes),
        )
    if tag == "truth":
        v = _vec_eval(e[1], pes, argcols, n_pes)
        return v.astype(bool) if hasattr(v, "astype") else bool(v)
    raise LookupError(f"non-vectorizable expr {tag!r}")


# ----------------------------------------------------------------------
# Generated replay (whole-trace Python codegen)
# ----------------------------------------------------------------------

_BIN_SRC = {
    "add": "+",
    "sub": "-",
    "mul": "*",
    "floordiv": "//",
    "mod": "%",
    "lshift": "<<",
    "rshift": ">>",
    "and": "&",
    "or": "|",
    "xor": "^",
    "pow": "**",
}

_CMP_SRC = {"lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!="}


def _esrc(e) -> str:
    tag = e[0]
    if tag == "const":
        return repr(e[1])
    if tag == "pe":
        return "_pe"
    if tag == "npes":
        return "_npes"
    if tag == "arg":
        return f"A[{e[1]}]"
    if tag == "slot":
        return f"S[{e[1]}]"
    if tag == "param":
        return f"P[{e[1]}]"
    if tag == "st":
        return "_st"
    if tag == "mem":
        return "_mem"
    if tag == "bin":
        sym = _BIN_SRC.get(e[1])
        a, b = _esrc(e[2]), _esrc(e[3])
        if sym is not None:
            return f"({a} {sym} {b})"
        return f"{e[1]}({a}, {b})"  # min / max
    if tag == "neg":
        return f"(-{_esrc(e[1])})"
    if tag == "cmp":
        return f"({_esrc(e[2])} {_CMP_SRC[e[1]]} {_esrc(e[3])})"
    if tag == "truth":
        return f"bool({_esrc(e[1])})"
    if tag == "ga":
        return f"_ga({_esrc(e[1])}, {_esrc(e[2])})"
    if tag == "item":
        return f"{_esrc(e[1])}[{_esrc(e[2])}]"
    if tag == "attr":
        return f"{_esrc(e[1])}.{e[2]}"
    if tag == "len":
        return f"len({_esrc(e[1])})"
    if tag == "none":
        return f"({_esrc(e[1])} is None)"
    if tag == "list":
        return "[" + ", ".join(_esrc(x) for x in e[1]) + "]"
    if tag == "tup":
        parts = [_esrc(x) for x in e[1]]
        if len(parts) == 1:
            return f"({parts[0]},)"
        return "(" + ", ".join(parts) + ")"
    raise AssertionError(f"unknown expr tag {tag!r}")


_CTOR_VARS = {
    "read": "_R",
    "read_pair": "_RP",
    "read_block": "_RB",
    "write": "_W",
    "barrier_wait": "_BW",
    "token_wait": "_TW",
    "token_advance": "_TA",
    "switch": "_SW",
}


def _codegen_replay(trace: LiveTrace):
    src: list = []
    emit = src.append
    emit("def _replay(ctx, A, P, M, mgr):")
    emit("    _pe = ctx.pe; _npes = ctx.n_pes; _st = ctx.state; _mem = ctx.mem; _ga = ctx.ga")
    emit(f"    S = [None] * {trace.n_slots}")
    emit("    ML = M.loads.append; MH = M.hosts.append; MR = M.resumes.append")
    emit("    if False: yield")
    ops = trace.ops
    skip = trace.skip_set
    consts: dict = {}
    const_list: list = []
    i = 0
    n_ops = len(ops)
    while i < n_ops:
        op = ops[i]
        tag = op[0]
        if tag == "load":
            emit(f"    S[{op[1]}] = {_esrc(op[2])}; ML(S[{op[1]}])")
        elif tag == "guard":
            if i not in skip:
                cond = _esrc(op[1])
                emit(f"    if not {cond}:" if op[2] else f"    if {cond}:")
                emit(f"        return (yield from TR.diverge(ctx, A, M, {i}, mgr))")
        elif tag == "host":
            args_src = ", ".join(_esrc(a) for a in op[3])
            emit(f"    S[{op[1]}] = F[{op[2]}]({args_src}); MH(S[{op[1]}])")
        else:  # eff
            method, exprs, suspends, dst = op[1], op[2], op[3], op[4]
            nxt = ops[i + 1] if i + 1 < n_ops else None
            if (
                method == "compute"
                and nxt is not None
                and nxt[0] == "eff"
                and nxt[1] in ("read", "read_pair")
            ):
                # Fuse the adjacent compute + remote read into one yield.
                cyc = _esrc(exprs[0])
                if nxt[1] == "read":
                    ctor = f"_FR({cyc}, {_esrc(nxt[2][0])})"
                else:
                    ctor = f"_FRP({cyc}, {_esrc(nxt[2][0])}, {_esrc(nxt[2][1])})"
                d = nxt[4]
                emit(f"    S[{d}] = yield {ctor}; MR(S[{d}])")
                i += 2
                continue
            if method == "compute":
                e = exprs[0]
                if e[0] == "const":
                    j = consts.get(e[1])
                    if j is None:
                        j = consts[e[1]] = len(const_list)
                        const_list.append(Compute(e[1]))
                    emit(f"    yield C[{j}]")
                else:
                    emit(f"    yield _C({_esrc(e)})")
            elif method == "write_block":
                emit(
                    f"    yield _WB({_esrc(exprs[0])}, tuple({_esrc(exprs[1])}))"
                )
            else:
                var = _CTOR_VARS[method]
                call = f"{var}({', '.join(_esrc(x) for x in exprs)})"
                if suspends:
                    emit(f"    S[{dst}] = yield {call}; MR(S[{dst}])")
                else:
                    emit(f"    yield {call}")
        i += 1
    emit(f"    mgr.compiled_effects += {trace.n_effects}")
    ns = {
        "TR": trace,
        "F": trace.host_fns,
        "C": const_list,
        "_C": Compute,
        "_FR": FusedRead,
        "_FRP": FusedReadPair,
        "_R": RemoteRead,
        "_RP": RemoteReadPair,
        "_RB": RemoteReadBlock,
        "_W": RemoteWrite,
        "_WB": RemoteWriteBlock,
        "_BW": BarrierWait,
        "_TW": TokenWait,
        "_TA": TokenAdvance,
        "_SW": SwitchNow,
    }
    exec("\n".join(src), ns)
    return ns["_replay"]


def replay_member(trace: LiveTrace, ctx, args, P, mgr):
    """Fast-path member generator: the compiled trace replay."""
    return trace.replay_fn()(ctx, args, P, _Memo(), mgr)


# ----------------------------------------------------------------------
# Catch-up: re-execute the guest prefix against the memo, then go live
# ----------------------------------------------------------------------


def _shim_wrap(v, m: _Memo):
    if v is None or isinstance(v, (bool, int, float, complex, str, bytes)):
        return v
    return _ShimVal(v, m)


def _shim_unwrap(v):
    if isinstance(v, _ShimVal):
        return v._v
    if type(v) is list:
        return [_shim_unwrap(x) for x in v]
    if type(v) is tuple:
        return tuple(_shim_unwrap(x) for x in v)
    return v


class _ShimVal:
    """Catch-up stand-in: serve memoized loads until drained, then real."""

    __slots__ = ("_v", "_m")

    def __init__(self, v, m: _Memo) -> None:
        object.__setattr__(self, "_v", v)
        object.__setattr__(self, "_m", m)

    def __getitem__(self, key):
        m = self._m
        if m.loads:
            return _shim_wrap(m.loads.popleft(), m)
        return self._v[key]

    def __getattr__(self, name):
        if name.startswith("_"):
            raise AttributeError(name)
        m = object.__getattribute__(self, "_m")
        if m.loads:
            return _shim_wrap(m.loads.popleft(), m)
        return getattr(object.__getattribute__(self, "_v"), name)

    def __setattr__(self, name, value):
        setattr(self._v, name, value)

    def __setitem__(self, key, value):
        # Writes are never memoized (they abort tracing), so by the
        # time a re-executed prefix reaches one the queues are drained:
        # apply it to the real object, exactly once.
        self._v[key] = _shim_unwrap(value)

    def __delitem__(self, key):
        del self._v[key]

    def __call__(self, *args, **kwargs):
        return self._v(
            *[_shim_unwrap(a) for a in args],
            **{k: _shim_unwrap(v) for k, v in kwargs.items()},
        )

    def __iter__(self):
        m = self._m
        v = self._v
        if m.loads and isinstance(v, (list, tuple)):
            out = []
            for i in range(len(v)):
                if m.loads:
                    out.append(_shim_wrap(m.loads.popleft(), m))
                else:
                    out.append(v[i])
            return iter(out)
        return iter(v)

    def __len__(self):
        return len(self._v)

    def __bool__(self):
        return bool(self._v)

    def __contains__(self, item):
        return _shim_unwrap(item) in self._v

    def __eq__(self, other):
        return self._v == _shim_unwrap(other)

    def __ne__(self, other):
        return self._v != _shim_unwrap(other)

    def __hash__(self):
        return hash(self._v)


class _ShimCtx:
    """A ``ThreadCtx`` stand-in for catch-up re-execution."""

    __slots__ = ("_real", "_m", "pe", "n_pes")

    def __init__(self, real, memo: _Memo) -> None:
        self._real = real
        self._m = memo
        self.pe = real.pe
        self.n_pes = real.n_pes

    @property
    def mem(self):
        return _ShimVal(self._real.mem, self._m)

    @property
    def state(self):
        return _ShimVal(self._real.state, self._m)

    @property
    def tid(self):
        return self._real.tid

    def ga(self, pe, offset):
        return self._real.ga(_shim_unwrap(pe), _shim_unwrap(offset))

    def host(self, fn, *args):
        m = self._m
        if m.hosts:
            # The traced run already executed this host call and applied
            # its side effects; serve the memoized result instead.
            return _shim_wrap(m.hosts.popleft(), m)
        return self._real.host(
            _shim_unwrap(fn), *[_shim_unwrap(a) for a in args]
        )


def _shim_fwd(name: str):
    def method(self, *args):
        return getattr(self._real, name)(*[_shim_unwrap(a) for a in args])

    method.__name__ = name
    return method


for _name in (
    "compute",
    "read",
    "read_pair",
    "read_block",
    "write",
    "write_block",
    "spawn",
    "call",
    "reply",
    "barrier_wait",
    "token_wait",
    "token_advance",
    "switch",
):
    setattr(_ShimCtx, _name, _shim_fwd(_name))
del _name


def catch_up(func: Callable, ctx, args: tuple, memo: _Memo, n_yields: int):
    """Residual interpreter tail after an abort or replay divergence.

    Re-runs ``func`` from the top with a :class:`_ShimCtx`: the first
    ``n_yields`` effects (already delivered to the EXU) are swallowed,
    with suspending resumes served from the memo; once the queues drain
    the re-execution has caught up with reality and the remaining
    effects pass through live.
    """
    gen = func(_ShimCtx(ctx, memo), *args)
    send = None
    for _ in range(n_yields):
        try:
            eff = gen.send(send)
        except StopIteration:
            return
        send = (
            _shim_wrap(memo.resumes.popleft(), memo) if eff.suspends else None
        )
    while True:
        try:
            eff = gen.send(send)
        except StopIteration:
            return
        send = yield eff


# ----------------------------------------------------------------------
# Validated members: scalar op walker locksteps a shim-fed shadow
# ----------------------------------------------------------------------


def _walk(trace: LiveTrace, ctx, args: tuple, P, memo: _Memo):
    """Unfused scalar replay: yields ('eff', e) items, or ('diverge', i)."""
    pe, n_pes = ctx.pe, ctx.n_pes
    st, mem, ga = ctx.state, ctx.mem, ctx.ga
    S = [None] * trace.n_slots
    F = trace.host_fns
    for idx, op in enumerate(trace.ops):
        tag = op[0]
        try:
            if tag == "load":
                S[op[1]] = v = _eval_scalar(op[2], pe, n_pes, args, S, P, st, mem, ga)
                memo.loads.append(v)
            elif tag == "guard":
                if _eval_scalar(op[1], pe, n_pes, args, S, P, st, mem, ga) != op[2]:
                    yield ("diverge", idx)
                    return
            elif tag == "host":
                S[op[1]] = v = F[op[2]](
                    *[_eval_scalar(a, pe, n_pes, args, S, P, st, mem, ga) for a in op[3]]
                )
                memo.hosts.append(v)
            else:  # eff
                eff = getattr(ctx, op[1])(
                    *[_eval_scalar(a, pe, n_pes, args, S, P, st, mem, ga) for a in op[2]]
                )
                if op[3]:
                    S[op[4]] = yield ("eff", eff)
                else:
                    yield ("eff", eff)
        except GeneratorExit:
            raise
        except Exception:
            yield ("diverge", idx)
            return


def replay_validated_live(trace: LiveTrace, cohort, ctx, args: tuple, P, mgr):
    """Lockstep live member: walker produces, a real shadow verifies.

    The walker pushes every load/host value onto the shared memo; the
    shadow — the real guest generator running against a
    :class:`_ShimCtx` over the same memo — consumes them, so host
    mutations happen exactly once.  Effects are compared one by one;
    a mismatch is the per-thread bailout (strict → CompileDivergence),
    a walker guard divergence silently hands over to the shadow, which
    is a correctly-positioned real execution.
    """
    memo = _Memo()
    shadow = trace.func(_ShimCtx(ctx, memo), *args)
    walker = _walk(trace, ctx, args, P, memo)

    def stepper():
        send = None
        n = 0
        while True:
            try:
                item = walker.send(send)
            except StopIteration:
                item = None
            if item is None:
                # Trace complete — the shadow must finish too.
                try:
                    s_eff = shadow.send(send)
                except StopIteration:
                    mgr.compiled_effects += n
                    return
                mgr._bailout(cohort, ctx.pe, n, None, s_eff)
                while True:
                    send2 = yield s_eff
                    try:
                        s_eff = shadow.send(send2)
                    except StopIteration:
                        return
            if item[0] == "diverge":
                # By-design data divergence: silent shadow takeover.
                mgr.replay_divergences += 1
                mgr._emit("catchup", ctx.pe, trace.func_name, item[1])
                while True:
                    try:
                        s_eff = shadow.send(send)
                    except StopIteration:
                        return
                    send = yield s_eff
            eff = item[1]
            try:
                s_eff = shadow.send(send)
            except StopIteration:
                mgr._bailout(cohort, ctx.pe, n, eff, None)
                return
            if type(s_eff) is not type(eff) or s_eff != eff:
                mgr._bailout(cohort, ctx.pe, n, eff, s_eff)
                send = yield s_eff
                while True:
                    try:
                        s_eff = shadow.send(send)
                    except StopIteration:
                        return
                    send = yield s_eff
            send = yield s_eff
            n += 1

    return stepper()


class LiveCohort:
    """Per-run stats for the members replaying one LiveTrace."""

    __slots__ = ("trace", "members", "validated", "bailouts")

    def __init__(self, trace: LiveTrace) -> None:
        self.trace = trace
        self.members = 0
        self.validated = 0
        self.bailouts = 0


# ----------------------------------------------------------------------
# Cross-run trace registry and batched admission
# ----------------------------------------------------------------------

_REGISTRY: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Cross-run admission memo: func -> {(pe, args): [traces, MRU-first]}.
#: Deterministic sweeps re-spawn the same (pe, args) members run after
#: run, and the trace that admitted a member once admits it again — so
#: a verified memo hit replaces the linear guard scan over every
#: registered trace (the scan is quadratic in member count when each
#: data-dependent member records its own shape).  Each entry keeps a
#: short most-recent-first candidate list, not a single trace: a sweep
#: cycling through shapes (the fig6 h sweep) maps the same (pe, args)
#: to a different trace per point, and a single slot would thrash.
_ADMIT_MEMO: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()

#: Admission-memo entries per function before the memo recycles.
MAX_MEMO_PER_FUNC = 65536

#: Candidate traces remembered per (pe, args) key.
MAX_MEMO_CANDIDATES = 8


def lookup_traces(func: Callable, n_args: int) -> list:
    per = _REGISTRY.get(func)
    if per is None:
        return []
    return per.get(n_args, [])


def register_trace(trace: LiveTrace) -> bool:
    """Add a freshly recorded trace; returns False on dedup/cap drop."""
    per = _REGISTRY.setdefault(trace.func, {})
    traces = per.setdefault(trace.n_args, [])
    if len(traces) >= MAX_TRACES_PER_KEY:
        return False
    for t in traces:
        if t.ops == trace.ops and t.host_fns == trace.host_fns:
            return False
    traces.append(trace)
    return True


def clear_registry() -> None:
    """Forget all recorded traces (cold-start for benchmarks/tests)."""
    _REGISTRY.clear()
    _ADMIT_MEMO.clear()


def assign_traces(traces: list, members: list) -> list:
    """Admission for a batch: pick each member's trace (or None).

    ``members`` is a list of ``(pe, n_pes, args, state)``.  Class-1
    guard masks are evaluated vectorized over numpy member columns when
    available (one column per int argument plus the PE column); class-2
    guards are checked scalar per surviving member.
    """
    n = len(members)
    result: list = [None] * n
    if not traces or not n:
        return result
    masks = None
    if HAVE_NUMPY and n > 1:
        try:
            n_pes = members[0][1]
            n_args = traces[0].n_args
            if all(
                len(m[2]) == n_args
                and all(isinstance(a, int) and not isinstance(a, bool) for a in m[2])
                for m in members
            ):
                pes = np.array([m[0] for m in members], dtype=np.int64)
                argcols = [
                    np.array([m[2][i] for m in members], dtype=np.int64)
                    for i in range(n_args)
                ]
                masks = []
                for t in traces:
                    mask = np.ones(n, dtype=bool)
                    for expr, outcome in t.admission:
                        v = _vec_eval(expr, pes, argcols, n_pes)
                        mask &= np.asarray(v == outcome, dtype=bool)
                    masks.append(mask)
        except Exception:
            masks = None
    for i, (pe, n_pes, args, state) in enumerate(members):
        for j, t in enumerate(traces):
            if len(args) != t.n_args:
                continue
            if masks is not None:
                if not masks[j][i]:
                    continue
                if not t.admits_class2(pe, n_pes, args, state):
                    continue
                result[i] = t
                break
            if t.admits(pe, n_pes, args, state):
                result[i] = t
                break
    return result


def assign_traces_memo(func: Callable, traces: list, members: list) -> tuple:
    """Memo-first batch admission; returns ``(assigned, guards_checked)``.

    Each member is first checked against the trace that admitted the
    same ``(pe, args)`` key last time (one trace's guards); only memo
    misses fall back to the :func:`assign_traces` scan over every
    registered trace.  Deterministic sweeps hit the memo on every run
    after the first, turning admission from O(traces x guards) into
    O(guards) per member.  Members with unhashable args always scan.
    """
    n = len(members)
    result: list = [None] * n
    if not traces or not n:
        return result, 0
    memo = _ADMIT_MEMO.get(func)
    if memo is None:
        memo = _ADMIT_MEMO[func] = {}
    checked = 0
    misses = []
    keys: list = [None] * n
    for i, (pe, n_pes, args, state) in enumerate(members):
        try:
            candidates = memo.get((pe, args))
        except TypeError:
            misses.append(i)
            continue
        keys[i] = (pe, args)
        for t in candidates or ():
            checked += len(t.admission) + len(t.class2)
            if len(args) == t.n_args and t.admits(pe, n_pes, args, state):
                result[i] = t
                if t is not candidates[0]:
                    candidates.remove(t)
                    candidates.insert(0, t)
                break
        else:
            misses.append(i)
    if misses:
        scanned = assign_traces(traces, [members[i] for i in misses])
        checked += sum(
            len(t.admission) + len(t.class2) for t in traces
        ) * len(misses)
        if len(memo) > MAX_MEMO_PER_FUNC:
            memo.clear()
        for i, tr in zip(misses, scanned):
            result[i] = tr
            if tr is not None and keys[i] is not None:
                candidates = memo.setdefault(keys[i], [])
                if tr not in candidates:
                    candidates.insert(0, tr)
                    del candidates[MAX_MEMO_CANDIDATES:]
                else:
                    candidates.remove(tr)
                    candidates.insert(0, tr)
    return result, checked
