"""The compiled effect-trace IR and its register VM.

Both compile front-ends target the same intermediate form: a flat
sequence of opcode tuples over a numbered register file, where guest
computation is folded into ``CHARGE`` opcodes (cycle budgets, summed
into one pending :class:`~repro.core.effects.Compute` exactly as the
EM-C interpreter's ``flush`` does) and every machine interaction is an
``EFF_*`` opcode with *operand slots* — register numbers naming the PE
id, partner, address offset or burst cost instead of concrete values.

:func:`run_trace` is the batched stepper's inner engine: one plain
Python generator whose ``while``/``elif`` dispatch replaces the EM-C
tree walker's recursive ``yield from`` chains.  It yields exactly the
effect objects the interpreter would (constructed through the same
:class:`~repro.core.threadlib.ThreadCtx` entry points, so address
validation and error text are shared, not re-implemented), which is
what keeps compiled runs byte-identical downstream — the EXU cannot
tell the two front-ends apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..core.effects import (
    BarrierWait,
    Compute,
    FusedRead,
    FusedReadPair,
    RemoteRead,
    RemoteReadPair,
    RemoteWrite,
    Spawn,
    SwitchNow,
    TokenAdvance,
    TokenWait,
)
from ..errors import EmcRuntimeError, MemoryFault, ProgramError
from ..packet.address import GlobalAddress

__all__ = ["TraceProgram", "run_trace", "OPCODE_NAMES"]

# ----------------------------------------------------------------------
# Opcodes.  Plain ints; tuples are (opcode, dst, operands..., [line]).
# Ordered roughly by dynamic frequency in the paper workloads — the VM
# dispatch chain below tests them in this order.
# ----------------------------------------------------------------------
ADD = 0
CHARGE = 1  # (CHARGE, cycles): pending += cycles
MOVE = 2
LT = 3
JF = 4  # (JF, src, target): jump when falsy
JUMP = 5
SUB = 6
MEM_LOAD = 7  # (MEM_LOAD, dst, idx, line)
MEM_STORE = 8  # (MEM_STORE, idx, val, line)
MUL = 9
EQ = 10
GE = 11
LE = 12
GT = 13
NE = 14
DIV = 15  # (DIV, dst, a, b, line): C-truncating for int/int
MOD = 16  # (MOD, dst, a, b, line): C-truncating remainder, ints only
JT = 17  # (JT, src, target): jump when truthy
BOOL = 18  # (BOOL, dst, src): 1/0 of truthiness
NOTB = 19  # (NOTB, dst, src): logical not, 1/0
NEG = 20
AT = 21  # (AT, dst, seq, idx, line)
LEN = 22  # (LEN, dst, src, line)
CHARGE_REG = 23  # (CHARGE_REG, src): pending += int(R[src])
PRINT = 24  # (PRINT, dst, argregs)
TOKEN_RESET = 25  # (TOKEN_RESET, dst, src)
# Effect opcodes: flush pending as one Compute, then yield.
EFF_READ = 26  # (EFF_READ, dst, pe, off)
EFF_READ2 = 27  # (EFF_READ2, dst, pe, off_a, off_b)
EFF_RBLOCK = 28  # (EFF_RBLOCK, dst, pe, off, count)
EFF_WRITE = 29  # (EFF_WRITE, dst, pe, off, val)
EFF_SPAWN = 30  # (EFF_SPAWN, dst, line, pe, name, argregs)
EFF_BARRIER = 31  # (EFF_BARRIER, dst, src)
EFF_TOKENW = 32  # (EFF_TOKENW, dst, tok, seq)
EFF_TOKENA = 33  # (EFF_TOKENA, dst, tok)
EFF_SWITCH = 34  # (EFF_SWITCH, dst)
RET = 35  # flush pending and end the thread
# Fused opcodes (peephole products; semantics = the unfused sequence).
CJF = 36  # (CJF, charge, src, target): CHARGE then JF
CJUMP = 37  # (CJUMP, charge, target): CHARGE then JUMP
CMPJF = 38  # (CMPJF, cmp_opcode, a, b, charge, target): cmp+CHARGE+JF
MEMCPY = 39  # (MEMCPY, dst_idx, src_idx, load_line, store_line)

#: Debug names, indexed by opcode (``repro.compile`` diagnostics only).
OPCODE_NAMES = (
    "ADD", "CHARGE", "MOVE", "LT", "JF", "JUMP", "SUB", "MEM_LOAD",
    "MEM_STORE", "MUL", "EQ", "GE", "LE", "GT", "NE", "DIV", "MOD",
    "JT", "BOOL", "NOTB", "NEG", "AT", "LEN", "CHARGE_REG", "PRINT",
    "TOKEN_RESET", "EFF_READ", "EFF_READ2", "EFF_RBLOCK", "EFF_WRITE",
    "EFF_SPAWN", "EFF_BARRIER", "EFF_TOKENW", "EFF_TOKENA",
    "EFF_SWITCH", "RET", "CJF", "CJUMP", "CMPJF", "MEMCPY",
)


@dataclass(frozen=True)
class TraceProgram:
    """One thread shape compiled to the trace IR.

    The register file layout is ``[params | locals/temps | constants]``;
    ``reg_init`` preloads the constant tail (literals, host objects from
    the EM-C environment), and ``pe_reg``/``npes_reg`` are filled from
    the :class:`~repro.core.threadlib.ThreadCtx` at start, so one
    program is shared by every thread of the cohort — per-member state
    lives entirely in the register file of its own :func:`run_trace`
    frame.
    """

    name: str
    ops: tuple[tuple, ...]
    n_regs: int
    n_params: int
    reg_init: tuple[tuple[int, Any], ...]
    pe_reg: int
    npes_reg: int
    spawn_names: frozenset[str]

    def disassemble(self) -> str:
        """Human-readable listing (tests and debugging)."""
        lines = []
        for i, op in enumerate(self.ops):
            lines.append(f"{i:4d}  {OPCODE_NAMES[op[0]]:<11s} {op[1:]}")
        return "\n".join(lines)


def _fail(line: int, message: str) -> EmcRuntimeError:
    return EmcRuntimeError(f"EM-C runtime error at line {line}: {message}")


def _as_index(value: Any, line: int) -> int:
    """Replicates ``_Interp._as_index`` (shared error text matters)."""
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise _fail(line, f"memory index must be numeric, got {value!r}")
    index = int(value)
    if index != value:
        raise _fail(line, f"memory index must be integral, got {value!r}")
    return index


def run_trace(prog: TraceProgram, ctx, args: tuple):
    """Execute one compiled thread against a live ctx (generator).

    Effect-for-effect and cycle-for-cycle identical to running the
    thread's source through :class:`repro.emc.interp._Interp`: charges
    accumulate into ``pending`` and flush as a single ``Compute``
    immediately before every effectful builtin and at thread end.
    """
    if len(args) != prog.n_params:
        raise EmcRuntimeError(
            f"thread {prog.name!r} takes {prog.n_params} arguments, got {len(args)}"
        )
    R: list[Any] = [None] * prog.n_regs
    for reg, value in prog.reg_init:
        R[reg] = value
    R[: len(args)] = args
    R[prog.pe_reg] = ctx.pe
    R[prog.npes_reg] = ctx.n_pes
    ops = prog.ops
    mem = ctx.mem
    mem_size = mem.size
    mem_words = mem._words
    n_pes = ctx.n_pes
    # Repeated charge sums share one immutable Compute per value — the
    # engine treats effects as values and never mutates them.
    computes: dict[int, Compute] = {}
    cget = computes.get
    pc = 0
    pending = 0
    while True:
        op = ops[pc]
        o = op[0]
        pc += 1
        if o == ADD:
            R[op[1]] = R[op[2]] + R[op[3]]
        elif o == CMPJF:
            # cmp, charge, branch-if-false — exactly the unfused order
            # (a raising comparison leaves pending uncharged, as the
            # three-op sequence would).
            c = op[1]
            if c == LT:
                taken = R[op[2]] < R[op[3]]
            elif c == GE:
                taken = R[op[2]] >= R[op[3]]
            elif c == LE:
                taken = R[op[2]] <= R[op[3]]
            elif c == GT:
                taken = R[op[2]] > R[op[3]]
            elif c == EQ:
                taken = R[op[2]] == R[op[3]]
            else:
                taken = R[op[2]] != R[op[3]]
            pending += op[4]
            if not taken:
                pc = op[5]
        elif o == CJUMP:
            pending += op[1]
            pc = op[2]
        elif o == CJF:
            pending += op[1]
            if not R[op[2]]:
                pc = op[3]
        elif o == CHARGE:
            pending += op[1]
        elif o == MOVE:
            R[op[1]] = R[op[2]]
        elif o == LT:
            R[op[1]] = 1 if R[op[2]] < R[op[3]] else 0
        elif o == JF:
            if not R[op[1]]:
                pc = op[2]
        elif o == JUMP:
            pc = op[1]
        elif o == SUB:
            R[op[1]] = R[op[2]] - R[op[3]]
        elif o == MEMCPY:
            v = R[op[2]]
            i = v if v.__class__ is int else _as_index(v, op[3])
            if i < 0 or i >= mem_size:
                raise MemoryFault(
                    f"access [{i}, {i + 1}) outside memory of {mem_size} words"
                )
            mem.reads += 1
            v = mem_words.get(i, 0)
            w = R[op[1]]
            i = w if w.__class__ is int else _as_index(w, op[4])
            if i < 0 or i >= mem_size:
                raise MemoryFault(
                    f"access [{i}, {i + 1}) outside memory of {mem_size} words"
                )
            if mem._watches:
                mem._watch_hit(i, 1)
            mem.writes += 1
            mem_words[i] = v
        elif o == MEM_LOAD:
            v = R[op[2]]
            i = v if v.__class__ is int else _as_index(v, op[3])
            if i < 0 or i >= mem_size:
                raise MemoryFault(
                    f"access [{i}, {i + 1}) outside memory of {mem_size} words"
                )
            mem.reads += 1
            R[op[1]] = mem_words.get(i, 0)
        elif o == MEM_STORE:
            v = R[op[1]]
            i = v if v.__class__ is int else _as_index(v, op[3])
            if i < 0 or i >= mem_size:
                raise MemoryFault(
                    f"access [{i}, {i + 1}) outside memory of {mem_size} words"
                )
            if mem._watches:
                mem._watch_hit(i, 1)
            mem.writes += 1
            mem_words[i] = R[op[2]]
        elif o == MUL:
            R[op[1]] = R[op[2]] * R[op[3]]
        elif o == EQ:
            R[op[1]] = 1 if R[op[2]] == R[op[3]] else 0
        elif o == GE:
            R[op[1]] = 1 if R[op[2]] >= R[op[3]] else 0
        elif o == LE:
            R[op[1]] = 1 if R[op[2]] <= R[op[3]] else 0
        elif o == GT:
            R[op[1]] = 1 if R[op[2]] > R[op[3]] else 0
        elif o == NE:
            R[op[1]] = 1 if R[op[2]] != R[op[3]] else 0
        elif o == DIV:
            a, b = R[op[2]], R[op[3]]
            try:
                if isinstance(a, int) and isinstance(b, int):
                    q = abs(a) // abs(b)
                    R[op[1]] = q if (a >= 0) == (b >= 0) else -q
                else:
                    R[op[1]] = a / b
            except ZeroDivisionError:
                raise _fail(op[4], "division by zero") from None
        elif o == MOD:
            a, b = R[op[2]], R[op[3]]
            if not (isinstance(a, int) and isinstance(b, int)):
                raise _fail(op[4], "'%' needs integer operands")
            try:
                R[op[1]] = a - b * (
                    a // b if (a >= 0) == (b >= 0) else -(abs(a) // abs(b))
                )
            except ZeroDivisionError:
                raise _fail(op[4], "division by zero") from None
        elif o == JT:
            if R[op[1]]:
                pc = op[2]
        elif o == BOOL:
            R[op[1]] = 1 if R[op[2]] else 0
        elif o == NOTB:
            R[op[1]] = 0 if R[op[2]] else 1
        elif o == NEG:
            R[op[1]] = -R[op[2]]
        elif o == AT:
            a, b = R[op[2]], R[op[3]]
            try:
                R[op[1]] = a[int(b)]
            except (TypeError, IndexError):
                raise _fail(op[4], f"bad at() access: {[a, b]!r}") from None
        elif o == LEN:
            try:
                R[op[1]] = len(R[op[2]])
            except TypeError:
                raise _fail(op[3], f"len() of non-sequence {R[op[2]]!r}") from None
        elif o == CHARGE_REG:
            pending += int(R[op[1]])
        elif o == PRINT:
            ctx.state.setdefault("emc_output", []).append(
                " ".join(str(R[r]) for r in op[2])
            )
            R[op[1]] = 0
        elif o == TOKEN_RESET:
            R[op[2]].reset()
            R[op[1]] = 0
        elif o == EFF_READ:
            if pending:
                # Fuse the pending compute charge into the read packet.
                # Probe the operand conversions first: on any failure
                # the charge must still flush as its own Compute before
                # the original path re-raises the identical error.
                addr = None
                try:
                    pe = int(R[op[2]])
                    if 0 <= pe < n_pes:
                        addr = GlobalAddress(pe, int(R[op[3]]))
                except Exception:
                    pass
                if addr is not None:
                    R[op[1]] = yield FusedRead(pending, addr)
                    pending = 0
                    continue
                eff = cget(pending)
                if eff is None:
                    eff = computes[pending] = Compute(pending)
                yield eff
                pending = 0
            pe = int(R[op[2]])
            if not 0 <= pe < n_pes:
                raise ProgramError(f"global address names PE {pe} of {n_pes}")
            R[op[1]] = yield RemoteRead(GlobalAddress(pe, int(R[op[3]])))
        elif o == EFF_READ2:
            if pending:
                addr_a = addr_b = None
                try:
                    pe = int(R[op[2]])
                    if 0 <= pe < n_pes:
                        addr_a = GlobalAddress(pe, int(R[op[3]]))
                        addr_b = GlobalAddress(pe, int(R[op[4]]))
                except Exception:
                    addr_a = None
                if addr_a is not None and addr_b is not None:
                    pair = yield FusedReadPair(pending, addr_a, addr_b)
                    R[op[1]] = list(pair)
                    pending = 0
                    continue
                eff = cget(pending)
                if eff is None:
                    eff = computes[pending] = Compute(pending)
                yield eff
                pending = 0
            pe = int(R[op[2]])
            if not 0 <= pe < n_pes:
                raise ProgramError(f"global address names PE {pe} of {n_pes}")
            pair = yield RemoteReadPair(
                GlobalAddress(pe, int(R[op[3]])), GlobalAddress(pe, int(R[op[4]]))
            )
            R[op[1]] = list(pair)
        elif o == EFF_RBLOCK:
            if pending:
                eff = cget(pending)
                if eff is None:
                    eff = computes[pending] = Compute(pending)
                yield eff
                pending = 0
            block = yield ctx.read_block(
                ctx.ga(int(R[op[2]]), int(R[op[3]])), int(R[op[4]])
            )
            R[op[1]] = list(block)
        elif o == EFF_WRITE:
            if pending:
                eff = cget(pending)
                if eff is None:
                    eff = computes[pending] = Compute(pending)
                yield eff
                pending = 0
            pe = int(R[op[2]])
            if not 0 <= pe < n_pes:
                raise ProgramError(f"global address names PE {pe} of {n_pes}")
            yield RemoteWrite(GlobalAddress(pe, int(R[op[3]])), R[op[4]])
            R[op[1]] = 0
        elif o == EFF_SPAWN:
            name = R[op[4]]
            if not isinstance(name, str):
                raise _fail(op[2], "spawn() target must be a string thread name")
            if name not in prog.spawn_names:
                raise _fail(op[2], f"spawn of unknown thread {name!r}")
            if pending:
                eff = cget(pending)
                if eff is None:
                    eff = computes[pending] = Compute(pending)
                yield eff
                pending = 0
            yield Spawn(int(R[op[3]]), name, tuple(R[r] for r in op[5]))
            R[op[1]] = 0
        elif o == EFF_BARRIER:
            if pending:
                eff = cget(pending)
                if eff is None:
                    eff = computes[pending] = Compute(pending)
                yield eff
                pending = 0
            yield BarrierWait(R[op[2]])
            R[op[1]] = 0
        elif o == EFF_TOKENW:
            if pending:
                eff = cget(pending)
                if eff is None:
                    eff = computes[pending] = Compute(pending)
                yield eff
                pending = 0
            yield TokenWait(R[op[2]], int(R[op[3]]))
            R[op[1]] = 0
        elif o == EFF_TOKENA:
            if pending:
                eff = cget(pending)
                if eff is None:
                    eff = computes[pending] = Compute(pending)
                yield eff
                pending = 0
            yield TokenAdvance(R[op[2]])
            R[op[1]] = 0
        elif o == EFF_SWITCH:
            if pending:
                eff = cget(pending)
                if eff is None:
                    eff = computes[pending] = Compute(pending)
                yield eff
                pending = 0
            yield SwitchNow()
            R[op[1]] = 0
        elif o == RET:
            break
        else:  # pragma: no cover - lowering emits only the above
            raise _fail(0, f"unknown trace opcode {o}")
    if pending:
        yield Compute(pending)
