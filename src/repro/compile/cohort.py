"""Cohort matcher and batched stepper for compiled thread execution.

One :class:`CohortManager` lives on each machine built with
``MachineConfig(compiled=True)``.  :meth:`CohortManager.instantiate` is
the single entry point, called by ``EMX.create_thread`` in place of the
plain ``func(ctx, *args)`` generator construction, and returns a
generator with the exact same yield protocol — the EXU cannot tell the
difference.  Internally it routes each new thread down one of three
paths:

**EM-C threads** (functions tagged ``__emc_thread__`` by
:class:`repro.emc.interp.CompiledProgram`) are compiled once per thread
definition and shared by every instance: first the Python code
generator (:mod:`repro.compile.codegen`), then the flat trace VM
(:mod:`repro.compile.trace`) when codegen declines, then the reference
AST interpreter.  Both compile tiers bail out under exactly the
conditions where their semantics could drift (:class:`LoweringError`),
so the fallback chain never changes observable behaviour.

**Generator threads** are grouped into *cohorts* keyed by
``(function, arg count)``.  The first instance of a shape is recorded
symbolically (:mod:`repro.compile.recorder`) into a parameterized
effect trace; later instances join an existing cohort when every
argument-only guard of its trace evaluates to the recorded outcome
under their own ``(pe, n_pes, args)`` bindings, and otherwise record a
new trace (different branch outcomes are a different shape).  Cohort
members replay the shared trace through a flat operand table — one
list lookup plus one ``yield`` per effect instead of resuming the
guest frame — with resume values forwarded into the operand slots that
reference them.

**Membership validation.**  Recording proves the trace faithful for
the representative; sampled members (the first joiner, then every
``VALIDATE_STRIDE``-th) replay in *lockstep* with a real interpreted
generator, comparing every effect.  The first divergence triggers the
per-thread bailout: the member silently continues on its interpreted
generator — already advanced to the right point by the lockstep — and
the event is counted and mirrored onto the obs bus as a ``COHORT``
event.  With ``strict`` set (the differential harness does this), a
divergence raises :class:`~repro.errors.CompileDivergence` carrying
the first-divergent-effect diagnosis instead.

Threads carrying a call continuation, threads whose shape the recorder
declines, and shapes that keep failing to record fall back to the
interpreter per-thread — never per-run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable

from ..errors import CompileDivergence
from ..obs.events import CohortEvent
from .codegen import codegen_thread
from .lower_emc import LoweringError, lower_thread
from .recorder import (
    RecordedTrace,
    RecordingUnsupported,
    _has_resume,
    eval_expr,
    record_thread,
)
from .trace import run_trace

__all__ = [
    "CohortManager",
    "Cohort",
    "VALIDATE_STRIDE",
    "strict_cohorts",
    "strict_default",
]

#: Default for :attr:`CohortManager.strict` on new managers; flipped by
#: :func:`strict_cohorts` so harnesses reach managers built deep inside
#: an app call.
_STRICT_DEFAULT = False


@contextmanager
def strict_cohorts():
    """Make cohort managers built inside the block raise on divergence.

    The differential harness and the divergence tests run under this so
    a validated member's bailout — silent, by design, in production —
    surfaces as :class:`~repro.errors.CompileDivergence` instead.
    """
    global _STRICT_DEFAULT
    prev = _STRICT_DEFAULT
    _STRICT_DEFAULT = True
    try:
        yield
    finally:
        _STRICT_DEFAULT = prev


def strict_default() -> bool:
    """Is :func:`strict_cohorts` currently active?

    ``ExecutionPlan.validate()`` consults this to flag the inert
    combination *strict without compiled* — the strict flag only binds
    to cohort managers, which exist only on compiled machines.
    """
    return _STRICT_DEFAULT

#: Lockstep-validate the first member joining a cohort after the
#: representative, then every VALIDATE_STRIDE-th joiner.
VALIDATE_STRIDE = 64

#: Give up on a (function, arity) shape after this many failed
#: recordings; later instances skip straight to the interpreter.
_MAX_RECORD_FAILURES = 2


class Cohort:
    """One trace shape plus the members executing it."""

    __slots__ = ("trace", "func", "plan", "members", "validated", "bailouts")

    def __init__(self, trace: RecordedTrace, func: Callable) -> None:
        self.trace = trace
        self.func = func
        #: Flat effect plan: (method name, operand exprs, any operand
        #: references a resume, resume slot index or -1).
        self.plan = tuple(
            (op[1], op[2], any(_has_resume(e) for e in op[2]), op[4])
            for op in trace.ops
            if op[0] == "eff"
        )
        self.members = 0
        self.validated = 0
        self.bailouts = 0


class CohortManager:
    """Per-machine compile cache, cohort table, and statistics."""

    def __init__(self, machine) -> None:
        self._machine = machine
        self._obs = machine.obs
        #: Raise CompileDivergence instead of bailing out silently —
        #: set by the differential harness and divergence tests.
        self.strict = _STRICT_DEFAULT
        # EM-C tier cache: (id(CompiledProgram), thread name) -> (tier, obj)
        self._emc_cache: dict[tuple[int, str], tuple[str, Any]] = {}
        self._emc_programs: list = []  # keep cache keys' referents alive
        # Generator cohorts: (func, n_args) -> [Cohort, ...]
        self._cohorts: dict[tuple, list[Cohort]] = {}
        self._record_failures: dict[tuple, int] = {}
        # Counters (reported via summary()):
        self.emc_codegen_threads = 0
        self.emc_trace_threads = 0
        self.emc_interp_threads = 0
        self.gen_compiled_threads = 0
        self.gen_interpreted_threads = 0
        self.gen_validated_threads = 0
        self.records = 0
        self.record_failures = 0
        self.bailouts = 0
        self.compiled_effects = 0
        self.guards_checked = 0
        self.drained = False

    # ------------------------------------------------------------------
    # Entry point (called by EMX.create_thread)
    # ------------------------------------------------------------------
    def instantiate(self, func: Callable, ctx, args: tuple, cont):
        """Build the generator for one new thread, compiled when possible."""
        if cont is not None:
            # Call-continuation threads are rare and reply-bearing;
            # keep them on the interpreter.
            self.gen_interpreted_threads += 1
            return func(ctx, *args, cont)
        emc = getattr(func, "__emc_thread__", None)
        if emc is not None:
            return self._emc_instantiate(func, emc, ctx, args)
        return self._gen_instantiate(func, ctx, args)

    # ------------------------------------------------------------------
    # EM-C front-end: per-definition tiered compile
    # ------------------------------------------------------------------
    def _emc_instantiate(self, func, emc, ctx, args):
        program, tdef = emc
        key = (id(program), tdef.name)
        entry = self._emc_cache.get(key)
        if entry is None:
            entry = self._emc_compile(program, tdef, ctx.pe)
            self._emc_cache[key] = entry
            self._emc_programs.append(program)
        tier, obj = entry
        if tier == "codegen":
            self.emc_codegen_threads += 1
            return obj(ctx, *args)
        if tier == "trace":
            self.emc_trace_threads += 1
            return run_trace(obj, ctx, args)
        self.emc_interp_threads += 1
        return func(ctx, *args)

    def _emc_compile(self, program, tdef, pe: int) -> tuple[str, Any]:
        try:
            fn = codegen_thread(program.ast, tdef, program.env, program.costs)
            self._emit("emc_codegen", pe, tdef.name, len(tdef.params))
            return ("codegen", fn)
        except LoweringError:
            pass
        try:
            prog = lower_thread(program.ast, tdef, program.env, program.costs)
            self._emit("emc_trace", pe, tdef.name, len(prog.ops))
            return ("trace", prog)
        except LoweringError:
            self._emit("emc_interp", pe, tdef.name, 0)
            return ("interp", None)

    # ------------------------------------------------------------------
    # Generator front-end: record, match, replay
    # ------------------------------------------------------------------
    def _gen_instantiate(self, func, ctx, args):
        key = (func, len(args))
        if self._record_failures.get(key, 0) >= _MAX_RECORD_FAILURES:
            self.gen_interpreted_threads += 1
            return func(ctx, *args)
        cohorts = self._cohorts.setdefault(key, [])
        for cohort in cohorts:
            trace = cohort.trace
            self.guards_checked += len(trace.static_guards)
            if trace.admits(ctx.pe, ctx.n_pes, args):
                return self._join(cohort, ctx, args)
        try:
            trace = record_thread(func, ctx.pe, ctx.n_pes, args)
        except RecordingUnsupported as exc:
            n = self._record_failures.get(key, 0) + 1
            self._record_failures[key] = n
            self.record_failures += 1
            self.gen_interpreted_threads += 1
            self._emit("record_bail", ctx.pe, getattr(func, "__name__", "?"), n)
            return func(ctx, *args)
        cohort = Cohort(trace, func)
        cohorts.append(cohort)
        self.records += 1
        self._emit("record", ctx.pe, trace.func_name, trace.n_effects)
        return self._join(cohort, ctx, args)

    def _join(self, cohort: Cohort, ctx, args):
        index = cohort.members
        cohort.members += 1
        self.gen_compiled_threads += 1
        if index > 0 and index % VALIDATE_STRIDE == 1:
            cohort.validated += 1
            self.gen_validated_threads += 1
            return self._replay_validated(cohort, ctx, args)
        return self._replay(cohort, ctx, args)

    def _replay(self, cohort: Cohort, ctx, args):
        """Fast member stepper: flat operand table, one yield per effect."""
        pe, n_pes, ga = ctx.pe, ctx.n_pes, ctx.ga
        plan = cohort.plan

        def stepper():
            resumes: list = [None] * cohort.trace.n_resumes
            # Operand table: effects free of resume references are
            # materialized once up front (ctx.ga re-runs the PE bounds
            # check per member); resume-forwarding slots stay lazy.
            table = [
                getattr(ctx, method)(
                    *(eval_expr(e, pe, n_pes, args, resumes, ga) for e in exprs)
                )
                if not lazy
                else None
                for method, exprs, lazy, _r in plan
            ]
            n = 0
            for i, (method, exprs, lazy, ridx) in enumerate(plan):
                eff = table[i]
                if lazy:
                    eff = getattr(ctx, method)(
                        *(eval_expr(e, pe, n_pes, args, resumes, ga) for e in exprs)
                    )
                value = yield eff
                n += 1
                if ridx >= 0:
                    resumes[ridx] = value
            self.compiled_effects += n

        return stepper()

    def _replay_validated(self, cohort: Cohort, ctx, args):
        """Lockstep member: replay while mirroring a real generator.

        The interpreted twin is advanced effect-by-effect alongside the
        trace; any mismatch is the first divergence, and the twin — by
        construction suspended exactly where the thread diverged —
        simply takes over.  That *is* the per-thread bailout.
        """
        pe, n_pes, ga = ctx.pe, ctx.n_pes, ctx.ga
        plan = cohort.plan
        manager = self

        def stepper():
            real = cohort.func(ctx, *args)
            resumes: list = [None] * cohort.trace.n_resumes
            send = None
            n = 0
            for method, exprs, _lazy, ridx in plan:
                try:
                    real_eff = real.send(send)
                except StopIteration:
                    manager._bailout(cohort, ctx.pe, n, "trace outlives thread", None)
                    return
                eff = getattr(ctx, method)(
                    *(eval_expr(e, pe, n_pes, args, resumes, ga) for e in exprs)
                )
                if type(real_eff) is not type(eff) or real_eff != eff:
                    manager._bailout(cohort, ctx.pe, n, eff, real_eff)
                    send = yield real_eff
                    while True:
                        try:
                            real_eff = real.send(send)
                        except StopIteration:
                            return
                        send = yield real_eff
                value = yield eff
                n += 1
                send = value
                if ridx >= 0:
                    resumes[ridx] = value
            manager.compiled_effects += n
            try:
                real_eff = real.send(send)
            except StopIteration:
                return
            manager._bailout(cohort, ctx.pe, n, None, real_eff)
            while True:
                send = yield real_eff
                try:
                    real_eff = real.send(send)
                except StopIteration:
                    return

        return stepper()

    def _bailout(self, cohort: Cohort, pe: int, position: int, compiled, interpreted):
        cohort.bailouts += 1
        self.bailouts += 1
        self._emit("bailout", pe, cohort.trace.func_name, position)
        if self.strict:
            raise CompileDivergence(
                f"cohort {cohort.trace.func_name!r} diverged at effect "
                f"{position}: compiled path produced {compiled!r}, "
                f"interpreter produced {interpreted!r}"
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _emit(self, kind: str, pe: int, name: str, n: int) -> None:
        obs = self._obs
        if obs is not None:
            obs.emit(CohortEvent(self._machine.engine.now, pe, kind, name, n))

    def on_drain(self) -> None:
        """Engine finish hook: mark the run complete for the summary."""
        self.drained = True

    def summary(self) -> dict:
        """The ``MachineReport.cohort`` section (diagnostic only)."""
        compiled = (
            self.emc_codegen_threads
            + self.emc_trace_threads
            + self.gen_compiled_threads
        )
        total = compiled + self.emc_interp_threads + self.gen_interpreted_threads
        cohorts = [c for cs in self._cohorts.values() for c in cs]
        return {
            "emc_codegen_threads": self.emc_codegen_threads,
            "emc_trace_threads": self.emc_trace_threads,
            "emc_interp_threads": self.emc_interp_threads,
            "gen_compiled_threads": self.gen_compiled_threads,
            "gen_interpreted_threads": self.gen_interpreted_threads,
            "gen_validated_threads": self.gen_validated_threads,
            "cohorts": len(cohorts),
            "max_cohort_members": max((c.members for c in cohorts), default=0),
            "records": self.records,
            "record_failures": self.record_failures,
            "bailouts": self.bailouts,
            "compiled_effects": self.compiled_effects,
            "guards_checked": self.guards_checked,
            "occupancy": (compiled / total) if total else 0.0,
        }
