"""Cohort matcher and batched stepper for compiled thread execution.

One :class:`CohortManager` lives on each machine built with
``MachineConfig(compiled=True)``.  :meth:`CohortManager.instantiate` is
the single entry point, called by ``EMX.create_thread`` in place of the
plain ``func(ctx, *args)`` generator construction, and returns a
generator with the exact same yield protocol — the EXU cannot tell the
difference.  Internally it routes each new thread down one of three
paths:

**EM-C threads** (functions tagged ``__emc_thread__`` by
:class:`repro.emc.interp.CompiledProgram`) are compiled once per thread
definition and shared by every instance: first the Python code
generator (:mod:`repro.compile.codegen`), then the flat trace VM
(:mod:`repro.compile.trace`) when codegen declines, then the reference
AST interpreter.  Both compile tiers bail out under exactly the
conditions where their semantics could drift (:class:`LoweringError`),
so the fallback chain never changes observable behaviour.

**Generator threads** are grouped into *cohorts* keyed by
``(function, arg count)``.  The first instance of a shape is recorded
symbolically (:mod:`repro.compile.recorder`) into a parameterized
effect trace; later instances join an existing cohort when every
argument-only guard of its trace evaluates to the recorded outcome
under their own ``(pe, n_pes, args)`` bindings, and otherwise record a
new trace (different branch outcomes are a different shape).  Cohort
members replay the shared trace through a flat operand table — one
list lookup plus one ``yield`` per effect instead of resuming the
guest frame — with resume values forwarded into the operand slots that
reference them.

**Membership validation.**  Recording proves the trace faithful for
the representative; sampled members (the first joiner, then every
``VALIDATE_STRIDE``-th) replay in *lockstep* with a real interpreted
generator, comparing every effect.  The first divergence triggers the
per-thread bailout: the member silently continues on its interpreted
generator — already advanced to the right point by the lockstep — and
the event is counted and mirrored onto the obs bus as a ``COHORT``
event.  With ``strict`` set (the differential harness does this), a
divergence raises :class:`~repro.errors.CompileDivergence` carrying
the first-divergent-effect diagnosis instead.

**Live-traced threads.**  Shapes the pure recorder declines — native
app workers touching ``ctx.state``/``ctx.mem`` — go to the live tier
(:mod:`repro.compile.live`): a representative runs for real while its
loads, branch outcomes, host calls, and effects are recorded into a
:class:`~repro.compile.live.LiveTrace`; on later *runs* same-shape
threads replay the trace through a generated stepper.  Generator
instantiation is *deferred*: ``instantiate`` returns a lazy wrapper
and the real tier decision for every thread created so far happens at
the first advance, so whatever part of a spawn burst is pending gets
admitted in one batch (numpy-masked when the burst is wide; in
practice admission is dominated by the cross-run ``(pe, args)`` memo,
which re-admits each deterministic member for the cost of one trace's
guards).

Threads carrying a call continuation, threads no tier can record, and
shapes that keep failing to record fall back to the interpreter
per-thread — never per-run.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable

from ..errors import CompileDivergence
from ..obs.events import CohortEvent
from .codegen import codegen_thread
from . import live as _live
from .live import (
    LiveCohort,
    assign_traces_memo,
    lookup_traces,
    register_trace,
    replay_member,
    replay_validated_live,
    run_tracer,
)
from .lower_emc import LoweringError, lower_thread
from .recorder import (
    RecordedTrace,
    RecordingUnsupported,
    _has_resume,
    eval_expr,
    record_thread,
)
from .trace import run_trace

__all__ = [
    "CohortManager",
    "Cohort",
    "VALIDATE_STRIDE",
    "strict_cohorts",
    "strict_default",
]

#: Default for :attr:`CohortManager.strict` on new managers; flipped by
#: :func:`strict_cohorts` so harnesses reach managers built deep inside
#: an app call.
_STRICT_DEFAULT = False


@contextmanager
def strict_cohorts():
    """Make cohort managers built inside the block raise on divergence.

    The differential harness and the divergence tests run under this so
    a validated member's bailout — silent, by design, in production —
    surfaces as :class:`~repro.errors.CompileDivergence` instead.
    """
    global _STRICT_DEFAULT
    prev = _STRICT_DEFAULT
    _STRICT_DEFAULT = True
    try:
        yield
    finally:
        _STRICT_DEFAULT = prev


def strict_default() -> bool:
    """Is :func:`strict_cohorts` currently active?

    ``ExecutionPlan.validate()`` consults this to flag the inert
    combination *strict without compiled* — the strict flag only binds
    to cohort managers, which exist only on compiled machines.
    """
    return _STRICT_DEFAULT

#: Lockstep-validate the first member joining a cohort after the
#: representative, then every VALIDATE_STRIDE-th joiner.
VALIDATE_STRIDE = 64

#: Give up on a (function, arity) shape after this many failed
#: recordings; later instances skip straight to the interpreter.
_MAX_RECORD_FAILURES = 2


class Cohort:
    """One trace shape plus the members executing it."""

    __slots__ = ("trace", "func", "plan", "members", "validated", "bailouts")

    def __init__(self, trace: RecordedTrace, func: Callable) -> None:
        self.trace = trace
        self.func = func
        #: Flat effect plan: (method name, operand exprs, any operand
        #: references a resume, resume slot index or -1).
        self.plan = tuple(
            (op[1], op[2], any(_has_resume(e) for e in op[2]), op[4])
            for op in trace.ops
            if op[0] == "eff"
        )
        self.members = 0
        self.validated = 0
        self.bailouts = 0


class _Pending:
    """One deferred generator thread awaiting its tier decision."""

    __slots__ = ("func", "ctx", "args", "fallback", "inner", "live_tr", "P")

    def __init__(self, func, ctx, args, fallback) -> None:
        self.func = func
        self.ctx = ctx
        self.args = args
        #: The real guest generator, built eagerly so creation-time
        #: errors (and non-generator bodies) keep interpreter timing.
        self.fallback = fallback
        self.inner = None  # resolved generator, set by _resolve_pending
        self.live_tr = None  # batch-assigned LiveTrace, if any
        self.P: tuple = ()  # its operand-table row


class CohortManager:
    """Per-machine compile cache, cohort table, and statistics."""

    def __init__(self, machine) -> None:
        self._machine = machine
        self._obs = machine.obs
        #: Raise CompileDivergence instead of bailing out silently —
        #: set by the differential harness and divergence tests.
        self.strict = _STRICT_DEFAULT
        # EM-C tier cache: (id(CompiledProgram), thread name) -> (tier, obj)
        self._emc_cache: dict[tuple[int, str], tuple[str, Any]] = {}
        self._emc_programs: list = []  # keep cache keys' referents alive
        # Generator cohorts: (func, n_args) -> [Cohort, ...]
        self._cohorts: dict[tuple, list[Cohort]] = {}
        self._record_failures: dict[tuple, int] = {}
        # Live tier state:
        self._pending: list[_Pending] = []
        self._pure_declined: set[tuple] = set()
        self._live_cohorts: dict[int, LiveCohort] = {}
        self._live_attempts: dict[tuple, int] = {}
        self._live_successes: dict[tuple, int] = {}
        # Counters (reported via summary()):
        self.emc_codegen_threads = 0
        self.emc_trace_threads = 0
        self.emc_interp_threads = 0
        self.gen_compiled_threads = 0
        self.gen_interpreted_threads = 0
        self.gen_validated_threads = 0
        self.gen_traced_threads = 0
        self.gen_replayed_threads = 0
        self.records = 0
        self.record_failures = 0
        self.record_failure_reasons: dict[str, int] = {}
        self.live_traces = 0
        self.replay_divergences = 0
        self.bailouts = 0
        self.compiled_effects = 0
        self.guards_checked = 0
        self.drained = False

    # ------------------------------------------------------------------
    # Entry point (called by EMX.create_thread)
    # ------------------------------------------------------------------
    def instantiate(self, func: Callable, ctx, args: tuple, cont):
        """Build the generator for one new thread, compiled when possible."""
        if cont is not None:
            # Call-continuation threads are rare and reply-bearing;
            # keep them on the interpreter.
            self.gen_interpreted_threads += 1
            return func(ctx, *args, cont)
        emc = getattr(func, "__emc_thread__", None)
        if emc is not None:
            return self._emc_instantiate(func, emc, ctx, args)
        return self._gen_instantiate(func, ctx, args)

    # ------------------------------------------------------------------
    # EM-C front-end: per-definition tiered compile
    # ------------------------------------------------------------------
    def _emc_instantiate(self, func, emc, ctx, args):
        program, tdef = emc
        key = (id(program), tdef.name)
        entry = self._emc_cache.get(key)
        if entry is None:
            entry = self._emc_compile(program, tdef, ctx.pe)
            self._emc_cache[key] = entry
            self._emc_programs.append(program)
        tier, obj = entry
        if tier == "codegen":
            self.emc_codegen_threads += 1
            return obj(ctx, *args)
        if tier == "trace":
            self.emc_trace_threads += 1
            return run_trace(obj, ctx, args)
        self.emc_interp_threads += 1
        return func(ctx, *args)

    def _emc_compile(self, program, tdef, pe: int) -> tuple[str, Any]:
        try:
            fn = codegen_thread(program.ast, tdef, program.env, program.costs)
            self._emit("emc_codegen", pe, tdef.name, len(tdef.params))
            return ("codegen", fn)
        except LoweringError:
            pass
        try:
            prog = lower_thread(program.ast, tdef, program.env, program.costs)
            self._emit("emc_trace", pe, tdef.name, len(prog.ops))
            return ("trace", prog)
        except LoweringError:
            self._emit("emc_interp", pe, tdef.name, 0)
            return ("interp", None)

    # ------------------------------------------------------------------
    # Generator front-end: record, match, replay
    # ------------------------------------------------------------------
    def _gen_instantiate(self, func, ctx, args):
        fallback = func(ctx, *args)
        if not hasattr(fallback, "send"):
            # Plain-function "thread": already fully executed, exactly
            # as the interpreter path would have.
            self.gen_interpreted_threads += 1
            return fallback
        entry = _Pending(func, ctx, args, fallback)
        self._pending.append(entry)
        return self._deferred(entry)

    def _deferred(self, entry: _Pending):
        # Generator: nothing runs until the EXU's first advance, by
        # which point every thread of the spawn burst is pending and
        # live-trace admission can run batched over all of them.
        if entry.inner is None:
            self._resolve_pending()
        yield from entry.inner

    def _resolve_pending(self) -> None:
        while self._pending:
            pending, self._pending = self._pending, []
            self._batch_live_assign(pending)
            for entry in pending:
                if entry.inner is None:
                    entry.inner = self._resolve_one(entry)

    def _batch_live_assign(self, pending: list) -> None:
        """Vectorized admission of the burst against registered traces."""
        by_key: dict[tuple, list[_Pending]] = {}
        for entry in pending:
            by_key.setdefault((entry.func, len(entry.args)), []).append(entry)
        for (func, n_args), group in by_key.items():
            traces = lookup_traces(func, n_args)
            if not traces:
                continue
            members = [(e.ctx.pe, e.ctx.n_pes, e.args, e.ctx.state) for e in group]
            assigned, checked = assign_traces_memo(func, traces, members)
            self.guards_checked += checked
            # One operand-table evaluation per trace over its members.
            per_trace: dict[int, list[_Pending]] = {}
            for entry, tr in zip(group, assigned):
                if tr is not None:
                    entry.live_tr = tr
                    per_trace.setdefault(id(tr), []).append(entry)
            for sub in per_trace.values():
                tr = sub[0].live_tr
                rows = tr.param_table([(e.ctx.pe, e.args) for e in sub], sub[0].ctx.n_pes)
                for entry, row in zip(sub, rows):
                    entry.P = row

    def _resolve_one(self, entry: _Pending):
        func, ctx, args = entry.func, entry.ctx, entry.args
        key = (func, len(args))
        # 1. Existing pure cohorts.
        cohorts = self._cohorts.setdefault(key, [])
        for cohort in cohorts:
            trace = cohort.trace
            self.guards_checked += len(trace.static_guards)
            if trace.admits(ctx.pe, ctx.n_pes, args):
                return self._join(cohort, ctx, args)
        # 2. Pure symbolic recording (free of state/host dependence).
        if key not in self._pure_declined:
            try:
                trace = record_thread(func, ctx.pe, ctx.n_pes, args)
            except RecordingUnsupported:
                # Not a failure: the live tier below handles it.
                self._pure_declined.add(key)
            else:
                cohort = Cohort(trace, func)
                cohorts.append(cohort)
                self.records += 1
                self._emit("record", ctx.pe, trace.func_name, trace.n_effects)
                return self._join(cohort, ctx, args)
        # 3. Registered live trace admitted for this member (batched).
        if entry.live_tr is not None:
            return self._join_live(entry.live_tr, ctx, args, entry.P)
        # 4. Record a new live trace, budget permitting.
        if self._can_trace(key, bool(lookup_traces(func, len(args)))):
            self._live_attempts[key] = self._live_attempts.get(key, 0) + 1
            return self._trace_live(func, ctx, args, key)
        # 5. Interpreter.
        self.gen_interpreted_threads += 1
        return entry.fallback

    def _can_trace(self, key: tuple, proven: bool) -> bool:
        """Trace budget: two cold attempts per run; once the function is
        *proven* traceable (a registered trace exists, or one landed this
        run) every unadmitted member records its own shape."""
        if self._record_failures.get(key, 0) >= _MAX_RECORD_FAILURES:
            return False
        if proven or self._live_successes.get(key, 0) > 0:
            return True
        return self._live_attempts.get(key, 0) < 2

    def _trace_live(self, func, ctx, args, key: tuple):
        name = getattr(func, "__name__", "?")

        def on_abort(exc) -> None:
            n = self._record_failures.get(key, 0) + 1
            self._record_failures[key] = n
            self.record_failures += 1
            reason = getattr(exc, "reason", "other")
            self.record_failure_reasons[reason] = (
                self.record_failure_reasons.get(reason, 0) + 1
            )
            self.gen_interpreted_threads += 1
            self._emit("record_bail", ctx.pe, name, n)

        def on_trace(trace) -> None:
            self.gen_traced_threads += 1
            self._live_successes[key] = self._live_successes.get(key, 0) + 1
            if register_trace(trace):
                self.live_traces += 1
            self._emit("trace", ctx.pe, trace.func_name, trace.n_effects)

        return run_tracer(func, ctx, args, on_abort, on_trace)

    def _join_live(self, trace, ctx, args, P):
        lc = self._live_cohorts.get(id(trace))
        if lc is None:
            lc = LiveCohort(trace)
            self._live_cohorts[id(trace)] = lc
        index = trace.n_members
        trace.n_members += 1
        lc.members += 1
        self.gen_replayed_threads += 1
        # Cross-run sampling: the trace's first-ever replay (the traced
        # representative is member 0), then every VALIDATE_STRIDE-th,
        # replays in lockstep with a real shadow.  Every member always
        # re-checks the data-dependent guards inline.
        if index % VALIDATE_STRIDE == 1:
            lc.validated += 1
            self.gen_validated_threads += 1
            return replay_validated_live(trace, lc, ctx, args, P, self)
        return replay_member(trace, ctx, args, P, self)

    def _join(self, cohort: Cohort, ctx, args):
        index = cohort.members
        cohort.members += 1
        self.gen_compiled_threads += 1
        if index > 0 and index % VALIDATE_STRIDE == 1:
            cohort.validated += 1
            self.gen_validated_threads += 1
            return self._replay_validated(cohort, ctx, args)
        return self._replay(cohort, ctx, args)

    def _replay(self, cohort: Cohort, ctx, args):
        """Fast member stepper: flat operand table, one yield per effect."""
        pe, n_pes, ga = ctx.pe, ctx.n_pes, ctx.ga
        plan = cohort.plan

        def stepper():
            resumes: list = [None] * cohort.trace.n_resumes
            # Operand table: effects free of resume references are
            # materialized once up front (ctx.ga re-runs the PE bounds
            # check per member); resume-forwarding slots stay lazy.
            table = [
                getattr(ctx, method)(
                    *(eval_expr(e, pe, n_pes, args, resumes, ga) for e in exprs)
                )
                if not lazy
                else None
                for method, exprs, lazy, _r in plan
            ]
            n = 0
            for i, (method, exprs, lazy, ridx) in enumerate(plan):
                eff = table[i]
                if lazy:
                    eff = getattr(ctx, method)(
                        *(eval_expr(e, pe, n_pes, args, resumes, ga) for e in exprs)
                    )
                value = yield eff
                n += 1
                if ridx >= 0:
                    resumes[ridx] = value
            self.compiled_effects += n

        return stepper()

    def _replay_validated(self, cohort: Cohort, ctx, args):
        """Lockstep member: replay while mirroring a real generator.

        The interpreted twin is advanced effect-by-effect alongside the
        trace; any mismatch is the first divergence, and the twin — by
        construction suspended exactly where the thread diverged —
        simply takes over.  That *is* the per-thread bailout.
        """
        pe, n_pes, ga = ctx.pe, ctx.n_pes, ctx.ga
        plan = cohort.plan
        manager = self

        def stepper():
            real = cohort.func(ctx, *args)
            resumes: list = [None] * cohort.trace.n_resumes
            send = None
            n = 0
            for method, exprs, _lazy, ridx in plan:
                try:
                    real_eff = real.send(send)
                except StopIteration:
                    manager._bailout(cohort, ctx.pe, n, "trace outlives thread", None)
                    return
                eff = getattr(ctx, method)(
                    *(eval_expr(e, pe, n_pes, args, resumes, ga) for e in exprs)
                )
                if type(real_eff) is not type(eff) or real_eff != eff:
                    manager._bailout(cohort, ctx.pe, n, eff, real_eff)
                    send = yield real_eff
                    while True:
                        try:
                            real_eff = real.send(send)
                        except StopIteration:
                            return
                        send = yield real_eff
                value = yield eff
                n += 1
                send = value
                if ridx >= 0:
                    resumes[ridx] = value
            manager.compiled_effects += n
            try:
                real_eff = real.send(send)
            except StopIteration:
                return
            manager._bailout(cohort, ctx.pe, n, None, real_eff)
            while True:
                send = yield real_eff
                try:
                    real_eff = real.send(send)
                except StopIteration:
                    return

        return stepper()

    def _bailout(self, cohort: Cohort, pe: int, position: int, compiled, interpreted):
        cohort.bailouts += 1
        self.bailouts += 1
        self._emit("bailout", pe, cohort.trace.func_name, position)
        if self.strict:
            raise CompileDivergence(
                f"cohort {cohort.trace.func_name!r} diverged at effect "
                f"{position}: compiled path produced {compiled!r}, "
                f"interpreter produced {interpreted!r}"
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def _emit(self, kind: str, pe: int, name: str, n: int) -> None:
        obs = self._obs
        if obs is not None:
            obs.emit(CohortEvent(self._machine.engine.now, pe, kind, name, n))

    def on_drain(self) -> None:
        """Engine finish hook: mark the run complete for the summary."""
        self.drained = True

    def summary(self) -> dict:
        """The ``MachineReport.cohort`` section (diagnostic only)."""
        compiled = (
            self.emc_codegen_threads
            + self.emc_trace_threads
            + self.gen_compiled_threads
            + self.gen_traced_threads
            + self.gen_replayed_threads
        )
        total = compiled + self.emc_interp_threads + self.gen_interpreted_threads
        cohorts = [c for cs in self._cohorts.values() for c in cs]
        members = [c.members for c in cohorts]
        members.extend(lc.members for lc in self._live_cohorts.values())
        return {
            "emc_codegen_threads": self.emc_codegen_threads,
            "emc_trace_threads": self.emc_trace_threads,
            "emc_interp_threads": self.emc_interp_threads,
            "gen_compiled_threads": self.gen_compiled_threads,
            "gen_interpreted_threads": self.gen_interpreted_threads,
            "gen_validated_threads": self.gen_validated_threads,
            "gen_traced_threads": self.gen_traced_threads,
            "gen_replayed_threads": self.gen_replayed_threads,
            "cohorts": len(cohorts) + len(self._live_cohorts),
            "max_cohort_members": max(members, default=0),
            "records": self.records,
            "record_failures": self.record_failures,
            "record_failure_reasons": dict(self.record_failure_reasons),
            "live_traces": self.live_traces,
            "replay_divergences": self.replay_divergences,
            "bailouts": self.bailouts,
            "compiled_effects": self.compiled_effects,
            "guards_checked": self.guards_checked,
            "numpy": _live.HAVE_NUMPY,
            "occupancy": (compiled / total) if total else 0.0,
        }
