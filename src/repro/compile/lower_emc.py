"""EM-C AST → trace-IR lowering (the compile subsystem's EMC front-end).

Lowers one :class:`~repro.emc.ast.ThreadDef` into a
:class:`~repro.compile.trace.TraceProgram`.  The contract is *exact*
charge equivalence with :class:`repro.emc.interp._Interp`: every cost
the interpreter would add to its ``pending`` accumulator is emitted as
a ``CHARGE``, and because pending only becomes observable when flushed
as one summed ``Compute`` at an effect boundary, consecutive constant
charges within a straight-line region are merged statically — the sum
at every flush point is unchanged, but the VM executes one opcode where
the tree walker executed a dozen.

Anything the lowering cannot prove it translates faithfully — a
variable only conditionally declared, a use that the interpreter would
resolve dynamically, a builtin whose arity is already wrong in the
source — raises :class:`LoweringError`, and the caller falls back to
the interpreter for that thread shape.  Runtime errors the interpreter
*would* raise (undefined variable, bad spawn target) are therefore
reproduced by construction: either the lowering proves they cannot
happen, or the thread never compiles.
"""

from __future__ import annotations

from ..emc import ast
from ..emc.costs import EmcCosts
from ..errors import ReproError
from . import trace as T

__all__ = ["LoweringError", "lower_thread"]


class LoweringError(ReproError):
    """This thread shape cannot be compiled; run it interpreted."""


class _Label:
    """A forward-reference jump target, resolved at finalization."""

    __slots__ = ("pos",)

    def __init__(self) -> None:
        self.pos: int | None = None


#: Marker appended to a JF / MEM_STORE op whose value operand is a
#: fresh single-consumer temp — the peephole may fuse the producer in.
#: Stripped during final resolution.
_FUSE = object()


class _ConstReg:
    """Placeholder for a constant-pool register.

    Constants live in their own register space *above* every temp and
    variable — temps are reclaimed per statement, and a reclaimed slot
    written at runtime must never alias a register that ``reg_init``
    preloaded once at thread start.  Final numbering happens when the
    temp high-water mark is known.
    """

    __slots__ = ("index",)

    def __init__(self, index: int) -> None:
        self.index = index


#: Opcodes for EM-C binary operators (short-circuit && / || excluded).
_BINOPS = {
    "+": T.ADD, "-": T.SUB, "*": T.MUL, "==": T.EQ, "!=": T.NE,
    "<": T.LT, "<=": T.LE, ">": T.GT, ">=": T.GE, "/": T.DIV, "%": T.MOD,
}

#: Builtins lowered to a single effect opcode: name -> (arity, opcode).
_EFFECTS = {
    "rread": (2, T.EFF_READ),
    "rread2": (3, T.EFF_READ2),
    "rblock": (3, T.EFF_RBLOCK),
    "rwrite": (3, T.EFF_WRITE),
    "barrier_wait": (1, T.EFF_BARRIER),
    "token_wait": (2, T.EFF_TOKENW),
    "token_advance": (1, T.EFF_TOKENA),
    "switch_now": (0, T.EFF_SWITCH),
}


class _Lowerer:
    def __init__(self, program: ast.Program, tdef: ast.ThreadDef, env: dict, costs: EmcCosts) -> None:
        self.program = program
        self.tdef = tdef
        self.env = env
        self.costs = costs
        self.ops: list[tuple] = []
        self.labels: list[_Label] = []
        #: name -> register for params and locals (EM-C scope is flat).
        self.vars: dict[str, int] = {name: i for i, name in enumerate(tdef.params)}
        self.next_reg = len(tdef.params)
        self.max_reg = len(tdef.params)
        self.tmp_base = 0  # start of the temp window for the current stmt
        self.consts: dict[tuple, _ConstReg] = {}
        self.const_values: list[object] = []
        #: names with a VarDecl anywhere (use before definite decl is
        #: ambiguous: the interpreter would resolve scope-then-env).
        self.declared_somewhere = _collect_decls(tdef.body)
        self.loop_stack: list[tuple[_Label, _Label]] = []  # (break, continue)
        self.epilogue = self.new_label()

    # -- infrastructure ------------------------------------------------
    def new_label(self) -> _Label:
        label = _Label()
        self.labels.append(label)
        return label

    def bind(self, label: _Label) -> None:
        label.pos = len(self.ops)

    def emit(self, *op) -> None:
        self.ops.append(tuple(op))

    def emit_jf(self, cond, target: _Label, tmp_mark: int) -> None:
        """Branch-if-false; flagged fusable when ``cond`` is a temp the
        condition expression just produced (its only consumer is this
        jump — variables and constants never qualify)."""
        if type(cond) is int and cond >= tmp_mark:
            self.emit(T.JF, cond, target, _FUSE)
        else:
            self.emit(T.JF, cond, target)

    def new_var(self, name: str) -> int:
        if name not in self.vars:
            self.vars[name] = self.next_reg
            self.next_reg += 1
        return self.vars[name]

    def new_tmp(self) -> int:
        reg = self.next_reg
        self.next_reg += 1
        if self.next_reg > self.max_reg:
            self.max_reg = self.next_reg
        return reg

    def const(self, value) -> _ConstReg:
        try:
            key = (type(value).__name__, value)
            hash(value)
        except TypeError:
            key = ("id", id(value))
        reg = self.consts.get(key)
        if reg is None:
            reg = _ConstReg(len(self.const_values))
            self.consts[key] = reg
            self.const_values.append(value)
        return reg

    def bail(self, node, reason: str) -> LoweringError:
        line = getattr(node, "line", 0)
        return LoweringError(
            f"thread {self.tdef.name!r} line {line}: {reason} (interpreter fallback)"
        )

    # -- declaredness --------------------------------------------------
    def resolve(self, ref: ast.VarRef, declared: set[str]) -> int:
        """Register (or const register) for a variable reference."""
        name = ref.name
        if name in declared:
            return self.vars[name]
        if name in self.declared_somewhere:
            raise self.bail(ref, f"use of {name!r} not dominated by its declaration")
        if name in self.env:
            return self.const(self.env[name])
        raise self.bail(ref, f"undefined variable {name!r}")

    # -- expressions ---------------------------------------------------
    def lower_expr(self, expr: ast.Expr, declared: set[str], want: int | None = None) -> int:
        """Emit ops computing ``expr``; returns the result register.

        With ``want`` set, the result lands in that register (the store
        happens in the final emitted op, so ``want`` may be read by the
        expression itself — ``i = i + 1`` compiles to one ADD).
        """
        kind = type(expr)
        if kind is ast.Literal:
            reg = self.const(expr.value)
            if want is None:
                return reg
            self.emit(T.MOVE, want, reg)
            return want
        if kind is ast.VarRef:
            reg = self.resolve(expr, declared)
            if want is None or want == reg:
                return reg
            self.emit(T.MOVE, want, reg)
            return want
        if kind is ast.MemLoad:
            idx = self.lower_expr(expr.index, declared)
            self.emit(T.CHARGE, self.costs.mem_index + self.costs.mem_access)
            dst = want if want is not None else self.new_tmp()
            self.emit(T.MEM_LOAD, dst, idx, expr.line)
            return dst
        if kind is ast.UnaryOp:
            src = self.lower_expr(expr.operand, declared)
            self.emit(T.CHARGE, self.costs.unary_op)
            dst = want if want is not None else self.new_tmp()
            self.emit(T.NEG if expr.op == "-" else T.NOTB, dst, src)
            return dst
        if kind is ast.BinOp:
            return self.lower_binop(expr, declared, want)
        if kind is ast.Call:
            return self.lower_call(expr, declared, want)
        raise self.bail(expr, f"unknown expression {expr!r}")

    def lower_binop(self, expr: ast.BinOp, declared: set[str], want: int | None) -> int:
        op = expr.op
        if op in ("&&", "||"):
            # Same shape as the interpreter: left, charge alu_op, then
            # the right side only on the fall-through path.  The result
            # is always normalised to 1/0.
            tmp_mark = self.next_reg
            left = self.lower_expr(expr.left, declared)
            self.emit(T.CHARGE, self.costs.alu_op)
            dst = want if want is not None else self.new_tmp()
            short = self.new_label()
            end = self.new_label()
            if op == "&&":
                self.emit_jf(left, short, tmp_mark)
            else:
                self.emit(T.JT, left, short)
            right = self.lower_expr(expr.right, declared)
            self.emit(T.BOOL, dst, right)
            self.emit(T.JUMP, end)
            self.bind(short)
            self.emit(T.MOVE, dst, self.const(0 if op == "&&" else 1))
            self.bind(end)
            return dst
        code = _BINOPS.get(op)
        if code is None:
            raise self.bail(expr, f"unknown operator {op!r}")
        left = self.lower_expr(expr.left, declared)
        right = self.lower_expr(expr.right, declared)
        self.emit(T.CHARGE, self.costs.binop(op))
        dst = want if want is not None else self.new_tmp()
        if code in (T.DIV, T.MOD):
            self.emit(code, dst, left, right, expr.line)
        else:
            self.emit(code, dst, left, right)
        return dst

    def lower_call(self, expr: ast.Call, declared: set[str], want: int | None) -> int:
        name = expr.name
        args = [self.lower_expr(a, declared) for a in expr.args]

        def need(n: int) -> None:
            # Arity is static in the source; a mismatch is a *runtime*
            # error in the interpreter, so reproduce it by falling back.
            if len(args) != n:
                raise self.bail(expr, f"{name}() takes {n} arguments, got {len(args)}")

        self.emit(T.CHARGE, self.costs.call_overhead)
        dst = want if want is not None else self.new_tmp()

        spec = _EFFECTS.get(name)
        if spec is not None:
            need(spec[0])
            self.emit(spec[1], dst, *args)
            return dst
        if name == "spawn":
            if len(args) < 2:
                raise self.bail(expr, "spawn() needs (pe, name, args...)")
            target = expr.args[1]
            if type(target) is ast.Literal and target.value not in self.program.threads:
                raise self.bail(expr, f"spawn of unknown thread {target.value!r}")
            self.emit(T.EFF_SPAWN, dst, expr.line, args[0], args[1], tuple(args[2:]))
            return dst
        if name == "token_reset":
            need(1)
            self.emit(T.TOKEN_RESET, dst, args[0])
            return dst
        if name == "compute":
            need(1)
            arg = expr.args[0]
            if type(arg) is ast.Literal and isinstance(arg.value, (int, float)):
                self.emit(T.CHARGE, int(arg.value))
            else:
                self.emit(T.CHARGE_REG, args[0])
            self.emit(T.MOVE, dst, self.const(0))
            return dst
        if name == "at":
            need(2)
            self.emit(T.CHARGE, self.costs.mem_index)
            self.emit(T.AT, dst, args[0], args[1], expr.line)
            return dst
        if name == "len":
            need(1)
            self.emit(T.LEN, dst, args[0], expr.line)
            return dst
        if name == "pe":
            need(0)
            self.emit(T.MOVE, dst, self.pe_reg)
            return dst
        if name == "npes":
            need(0)
            self.emit(T.MOVE, dst, self.npes_reg)
            return dst
        if name == "print":
            self.emit(T.PRINT, dst, tuple(args))
            return dst
        raise self.bail(expr, f"unknown builtin {name!r}")

    # -- statements ----------------------------------------------------
    def lower_stmt(self, stmt: ast.Stmt, declared: set[str]) -> None:
        saved_tmp = self.next_reg
        self._lower_stmt(stmt, declared)
        # Temp registers are dead at statement end; reclaim the window
        # (variables declared inside the statement pin it, constants
        # live in their own space above the temp high-water mark).
        if all(v < saved_tmp for v in self.vars.values()):
            self.next_reg = saved_tmp

    def _lower_stmt(self, stmt: ast.Stmt, declared: set[str]) -> None:
        kind = type(stmt)
        if kind is ast.VarDecl or kind is ast.Assign:
            if kind is ast.Assign and stmt.name not in declared:
                raise self.bail(stmt, f"assignment to possibly-undeclared {stmt.name!r}")
            if kind is ast.VarDecl:
                # The value may still reference an *env* binding of the
                # same name (scope-then-env resolution), so the value is
                # lowered before the name becomes a local.
                value = self.lower_expr(stmt.value, declared)
                self.emit(T.CHARGE, self.costs.assign)
                reg = self.new_var(stmt.name)
                declared.add(stmt.name)
                if reg != value:
                    self.emit(T.MOVE, reg, value)
            else:
                self.lower_expr(stmt.value, declared, want=self.vars[stmt.name])
                self.emit(T.CHARGE, self.costs.assign)
        elif kind is ast.MemStore:
            idx = self.lower_expr(stmt.index, declared)
            tmp_mark = self.next_reg
            val = self.lower_expr(stmt.value, declared)
            self.emit(T.CHARGE, self.costs.mem_index + self.costs.mem_access)
            if type(val) is int and val >= tmp_mark:
                self.emit(T.MEM_STORE, idx, val, stmt.line, _FUSE)
            else:
                self.emit(T.MEM_STORE, idx, val, stmt.line)
        elif kind is ast.ExprStmt:
            self.lower_expr(stmt.expr, declared)
        elif kind is ast.Block:
            self.lower_block(stmt, declared)
        elif kind is ast.If:
            tmp_mark = self.next_reg
            cond = self.lower_expr(stmt.condition, declared)
            self.emit(T.CHARGE, self.costs.branch)
            otherwise = self.new_label()
            self.emit_jf(cond, otherwise, tmp_mark)
            then_declared = set(declared)
            self.lower_block(stmt.then_block, then_declared)
            if stmt.else_block is not None:
                end = self.new_label()
                self.emit(T.JUMP, end)
                self.bind(otherwise)
                else_declared = set(declared)
                self.lower_block(stmt.else_block, else_declared)
                self.bind(end)
                declared |= then_declared & else_declared
            else:
                self.bind(otherwise)
        elif kind is ast.While:
            cond_label = self.new_label()
            back = self.new_label()
            end = self.new_label()
            self.bind(cond_label)
            tmp_mark = self.next_reg
            cond = self.lower_expr(stmt.condition, declared)
            self.emit(T.CHARGE, self.costs.branch)
            self.emit_jf(cond, end, tmp_mark)
            self.loop_stack.append((end, back))
            self.lower_block(stmt.body, set(declared))
            self.loop_stack.pop()
            self.bind(back)
            self.emit(T.CHARGE, self.costs.loop_back)
            self.emit(T.JUMP, cond_label)
            self.bind(end)
        elif kind is ast.For:
            if stmt.init is not None:
                self._lower_stmt(stmt.init, declared)
            cond_label = self.new_label()
            cont = self.new_label()
            end = self.new_label()
            self.bind(cond_label)
            if stmt.condition is not None:
                tmp_mark = self.next_reg
                cond = self.lower_expr(stmt.condition, declared)
                self.emit(T.CHARGE, self.costs.branch)
                self.emit_jf(cond, end, tmp_mark)
            self.loop_stack.append((end, cont))
            self.lower_block(stmt.body, set(declared))
            self.loop_stack.pop()
            self.bind(cont)
            if stmt.step is not None:
                self._lower_stmt(stmt.step, set(declared))
            self.emit(T.CHARGE, self.costs.loop_back)
            self.emit(T.JUMP, cond_label)
            self.bind(end)
        elif kind is ast.Break:
            if not self.loop_stack:
                raise self.bail(stmt, "break outside a loop")
            self.emit(T.JUMP, self.loop_stack[-1][0])
        elif kind is ast.Continue:
            if not self.loop_stack:
                raise self.bail(stmt, "continue outside a loop")
            self.emit(T.JUMP, self.loop_stack[-1][1])
        elif kind is ast.Return:
            if stmt.value is not None:
                self.lower_expr(stmt.value, declared)
            self.emit(T.JUMP, self.epilogue)
        else:
            raise self.bail(stmt, f"unknown statement {stmt!r}")

    def lower_block(self, block: ast.Block, declared: set[str]) -> None:
        for stmt in block.statements:
            self.lower_stmt(stmt, declared)

    # -- finalization --------------------------------------------------
    def finalize(self) -> T.TraceProgram:
        self.bind(self.epilogue)
        self.emit(T.RET)
        ops = _merge_charges(self.ops, self.labels)
        ops = _peephole(ops, self.labels)
        const_base = self.max_reg
        resolved = _resolve(ops, const_base)
        return T.TraceProgram(
            name=self.tdef.name,
            ops=tuple(resolved),
            n_regs=const_base + len(self.const_values),
            n_params=len(self.tdef.params),
            reg_init=tuple(
                (const_base + k, v) for k, v in enumerate(self.const_values)
            ),
            pe_reg=self.pe_reg,
            npes_reg=self.npes_reg,
            spawn_names=frozenset(self.program.threads),
        )


def _collect_decls(node) -> set[str]:
    names: set[str] = set()

    def walk(stmt) -> None:
        kind = type(stmt)
        if kind is ast.VarDecl:
            names.add(stmt.name)
        elif kind is ast.Block:
            for s in stmt.statements:
                walk(s)
        elif kind is ast.If:
            walk(stmt.then_block)
            if stmt.else_block is not None:
                walk(stmt.else_block)
        elif kind is ast.While:
            walk(stmt.body)
        elif kind is ast.For:
            if stmt.init is not None:
                walk(stmt.init)
            if stmt.step is not None:
                walk(stmt.step)
            walk(stmt.body)

    walk(node)
    return names


#: Opcodes that end a straight-line region: control transfers and the
#: flush points themselves.  Constant charges never move across these
#: (a charge's *sum at the next flush* is the only observable).
_FENCES = frozenset(
    (T.JUMP, T.JF, T.JT, T.RET, T.EFF_READ, T.EFF_READ2, T.EFF_RBLOCK,
     T.EFF_WRITE, T.EFF_SPAWN, T.EFF_BARRIER, T.EFF_TOKENW, T.EFF_TOKENA,
     T.EFF_SWITCH)
)


def _merge_charges(ops: list[tuple], labels: list[_Label]) -> list[tuple]:
    """Fuse constant CHARGEs within each straight-line region.

    A region is bounded by jump/effect opcodes and by any position a
    label binds to (a join point may be entered without executing the
    charges above it).  Within a region the interpreter's ``pending``
    accumulation is order-insensitive, so the summed charge is emitted
    at the region's end.  Every label's position (referenced by a jump
    or merely bound) is rewritten as ops are dropped.
    """
    label_positions = {lab.pos for lab in labels}
    out: list[tuple] = []
    # Map original op index -> new index, for label rewriting.
    remap: dict[int, int] = {}
    acc = 0

    def flush_acc() -> None:
        nonlocal acc
        if acc:
            out.append((T.CHARGE, acc))
            acc = 0

    for i, op in enumerate(ops):
        if i in label_positions:
            flush_acc()
        remap[i] = len(out)
        if op[0] == T.CHARGE:
            acc += op[1]
            continue
        if op[0] in _FENCES:
            flush_acc()
            # Recompute: the fence itself lands after the flushed charge.
            remap[i] = len(out)
        out.append(op)
    flush_acc()
    remap[len(ops)] = len(out)
    return _rewrite_labels(out, labels, remap)


def _rewrite_labels(
    ops: list[tuple], labels: list[_Label], remap: dict[int, int]
) -> list[tuple]:
    for label in labels:
        label.pos = remap[label.pos]
    return ops


#: Fusable comparisons.  DIV/MOD carry line operands and different
#: raise behaviour, so they never fuse.
_FUSABLE_CMPS = frozenset((T.LT, T.LE, T.GT, T.GE, T.EQ, T.NE))


def _peephole(ops: list[tuple], labels: list[_Label]) -> list[tuple]:
    """Fuse hot adjacent sequences into single VM dispatches.

    Patterns (each only when no label binds *inside* the sequence, so a
    jump can never land mid-fusion; a label at the sequence start is
    fine — the fused op starts there):

    - ``cmp t; CHARGE; JF* t``      → ``CMPJF``
    - ``CHARGE; JF``                → ``CJF``
    - ``CHARGE; JUMP``              → ``CJUMP``
    - ``MEM_LOAD t; MEM_STORE* _,t``→ ``MEMCPY``

    The starred consumers only fuse when the lowering flagged them with
    ``_FUSE`` — the flag certifies the consumed register is a fresh
    temp whose *only* reader is that op, so dropping the intermediate
    write is sound (a global read count can't prove this: reclaimed
    temp registers are reused all over the program).  Loop conditions
    and back-edges hit the first three patterns every iteration; the
    fourth is the bitonic merge's element copy.
    """
    label_positions = {lab.pos for lab in labels}
    out: list[tuple] = []
    remap: dict[int, int] = {}
    i = 0
    n = len(ops)
    while i < n:
        op = ops[i]
        o = op[0]
        remap[i] = len(out)
        nxt = ops[i + 1] if i + 1 < n and i + 1 not in label_positions else None
        if (
            o in _FUSABLE_CMPS
            and nxt is not None
            and nxt[0] == T.CHARGE
            and i + 2 < n
            and i + 2 not in label_positions
            and ops[i + 2][0] == T.JF
            and ops[i + 2][-1] is _FUSE
            and ops[i + 2][1] == op[1]
        ):
            remap[i + 1] = remap[i + 2] = len(out)
            out.append((T.CMPJF, o, op[2], op[3], nxt[1], ops[i + 2][2]))
            i += 3
            continue
        if o == T.CHARGE and nxt is not None:
            if nxt[0] == T.JF:
                remap[i + 1] = len(out)
                out.append((T.CJF, op[1], nxt[1], nxt[2]))
                i += 2
                continue
            if nxt[0] == T.JUMP:
                remap[i + 1] = len(out)
                out.append((T.CJUMP, op[1], nxt[1]))
                i += 2
                continue
        if (
            o == T.MEM_LOAD
            and nxt is not None
            and nxt[0] == T.MEM_STORE
            and nxt[-1] is _FUSE
            and nxt[2] == op[1]
        ):
            remap[i + 1] = len(out)
            out.append((T.MEMCPY, nxt[1], op[2], op[3], nxt[3]))
            i += 2
            continue
        out.append(op)
        i += 1
    remap[n] = len(out)
    return _rewrite_labels(out, labels, remap)


def _resolve(ops: list[tuple], const_base: int) -> list[tuple]:
    """Resolve labels to op indices and const placeholders to registers.

    Spawn/print operands nest register lists one tuple deep, so the
    walk recurses into tuples.
    """

    def field(f):
        if isinstance(f, _Label):
            return f.pos
        if isinstance(f, _ConstReg):
            return const_base + f.index
        if isinstance(f, tuple):
            return tuple(field(x) for x in f)
        return f

    return [
        tuple(field(f) for f in op if f is not _FUSE) for op in ops
    ]


def lower_thread(
    program: ast.Program, tdef: ast.ThreadDef, env: dict, costs: EmcCosts
) -> T.TraceProgram:
    """Lower one thread definition; raises :class:`LoweringError` when
    the shape cannot be compiled faithfully."""
    lowerer = _Lowerer(program, tdef, env, costs)
    lowerer.pe_reg = lowerer.new_tmp()
    lowerer.npes_reg = lowerer.new_tmp()
    declared = set(tdef.params)
    lowerer.lower_block(tdef.body, declared)
    return lowerer.finalize()
