"""The cohort effect-trace compiler.

Two front-ends lower guest threads onto faster steppers with identical
yield protocols, and a cohort layer shares the result across every
thread of the same shape:

:mod:`repro.compile.codegen`
    EM-C AST → generated Python generator source (the fast tier).
:mod:`repro.compile.lower_emc` / :mod:`repro.compile.trace`
    EM-C AST → flat effect-opcode trace run by a register VM.
:mod:`repro.compile.recorder`
    ``threadlib`` generator → parameterized effect trace, recorded by
    symbolic execution of one representative member.
:mod:`repro.compile.cohort`
    The per-machine manager: tier selection, cohort matching, batched
    replay, per-thread bailout.
:mod:`repro.compile.differential`
    The interpreted-vs-compiled identity oracle.

Enable with ``MachineConfig(compiled=True)``, ``repro.run(...,
compiled=True)``, or ``--compiled`` on the CLI.
"""

from .cohort import CohortManager, VALIDATE_STRIDE, strict_cohorts
from .codegen import codegen_thread
from .differential import CompileDifferentialHarness, comparable_compile_report
from .lower_emc import LoweringError, lower_thread
from .recorder import RecordedTrace, RecordingUnsupported, record_thread
from .trace import TraceProgram, run_trace

__all__ = [
    "CohortManager",
    "VALIDATE_STRIDE",
    "strict_cohorts",
    "codegen_thread",
    "CompileDifferentialHarness",
    "comparable_compile_report",
    "LoweringError",
    "lower_thread",
    "RecordedTrace",
    "RecordingUnsupported",
    "record_thread",
    "TraceProgram",
    "run_trace",
]
