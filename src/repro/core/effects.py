"""Effects a guest thread may yield to the Execution Unit.

Each effect corresponds to a mechanism of the EM-X thread library.
*Suspending* effects (:class:`RemoteRead`, :class:`RemoteReadBlock`,
:class:`Call`, :class:`BarrierWait`, :class:`TokenWait`,
:class:`SwitchNow`) end the current run burst — the thread's registers
are saved and the EXU turns to the hardware FIFO.  Non-suspending
effects (:class:`Compute`, :class:`RemoteWrite`,
:class:`RemoteWriteBlock`, :class:`Spawn`, :class:`Reply`,
:class:`TokenAdvance`) are consumed inline and the generator continues
within the same burst, exactly as remote writes "do not suspend the
issuing threads" on the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

from ..errors import ThreadProtocolError
from ..packet import GlobalAddress

__all__ = [
    "Effect",
    "Compute",
    "FusedRead",
    "FusedReadPair",
    "RemoteRead",
    "RemoteReadPair",
    "RemoteReadBlock",
    "RemoteWrite",
    "RemoteWriteBlock",
    "Spawn",
    "Call",
    "Reply",
    "BarrierWait",
    "TokenWait",
    "TokenAdvance",
    "SwitchNow",
]


class Effect:
    """Marker base class; the EXU type-checks every yielded object."""

    __slots__ = ()
    #: Whether the effect ends the thread's run burst.
    suspends: bool = False


@dataclass(slots=True)
class Compute(Effect):
    """Charge ``cycles`` of computation (the thread's real work)."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ThreadProtocolError(f"negative compute cycles {self.cycles}")


@dataclass(slots=True)
class RemoteRead(Effect):
    """Split-phase read of one word at ``addr``; resumes with the value."""

    addr: GlobalAddress
    suspends = True


@dataclass(slots=True)
class FusedRead(Effect):
    """``Compute(cycles)`` immediately followed by ``RemoteRead(addr)``.

    Emitted only by the compiled cohort tiers: a trace replay knows at
    compile time that a compute charge is followed by a remote read, so
    it fuses the pair into one yield.  The EXU accounts for it exactly
    as the two-effect sequence would — same cycle charges, same packet
    offsets, same counters — so fused and unfused runs are
    byte-identical.  ``cycles`` may be zero (a bare read).
    """

    cycles: int
    addr: GlobalAddress
    suspends = True

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ThreadProtocolError(f"negative compute cycles {self.cycles}")


@dataclass(slots=True)
class FusedReadPair(Effect):
    """``Compute(cycles)`` followed by ``RemoteReadPair(a, b)``, fused."""

    cycles: int
    addr_a: GlobalAddress
    addr_b: GlobalAddress
    suspends = True

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ThreadProtocolError(f"negative compute cycles {self.cycles}")


@dataclass(slots=True)
class RemoteReadPair(Effect):
    """Split-phase read of two words through two-token direct matching.

    Both request packets depart in one burst; the thread suspends once
    and resumes with ``(value_a, value_b)`` when the second reply
    matches the first in matching memory — the Matching Unit's natural
    two-operand thread firing.  This is how the FFT reads each point's
    real and imaginary words without serialising the two latencies.
    """

    addr_a: GlobalAddress
    addr_b: GlobalAddress
    suspends = True


@dataclass(slots=True)
class RemoteReadBlock(Effect):
    """Split-phase read of ``count`` consecutive words; resumes with a list."""

    addr: GlobalAddress
    count: int
    suspends = True

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ThreadProtocolError(f"block read of {self.count} words")


@dataclass(slots=True)
class RemoteWrite(Effect):
    """One-word remote write; the thread continues immediately."""

    addr: GlobalAddress
    value: Any


@dataclass(slots=True)
class RemoteWriteBlock(Effect):
    """Block remote write; the thread continues immediately."""

    addr: GlobalAddress
    values: Sequence[Any]


@dataclass(slots=True)
class Spawn(Effect):
    """Fire-and-forget thread invocation on processor ``pe``."""

    pe: int
    func: str
    args: tuple[Any, ...] = ()


@dataclass(slots=True)
class Call(Effect):
    """Invoke a thread on ``pe`` and suspend until it replies a result.

    The callee receives the caller's continuation as its last argument
    and must ``yield Reply(continuation, value)`` exactly once.
    """

    pe: int
    func: str
    args: tuple[Any, ...] = ()
    suspends = True


@dataclass(slots=True)
class Reply(Effect):
    """Send ``value`` to a caller's continuation (a conventional return)."""

    continuation: tuple[int, int]  # (pe, continuation id)
    value: Any


@dataclass(slots=True)
class BarrierWait(Effect):
    """Arrive at an iteration barrier and wait for the global release."""

    barrier: Any  # GlobalBarrier; typed loosely to avoid an import cycle
    suspends = True


@dataclass(slots=True)
class TokenWait(Effect):
    """Wait until an :class:`~repro.core.sync.OrderToken` reaches ``seq``."""

    token: Any
    seq: int
    suspends = True


@dataclass(slots=True)
class TokenAdvance(Effect):
    """Advance an order token by one, waking the next waiter if any."""

    token: Any


@dataclass(slots=True)
class SwitchNow(Effect):
    """Explicit context switch: requeue this thread at the FIFO tail."""

    suspends = True
