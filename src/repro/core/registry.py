"""The program registry: named thread functions (template segments).

Compiled functions live in template segments on the hardware; a thread
invocation packet carries the template address.  Here, guest thread
functions are registered under a name and invocation packets carry that
name.  A thread function is a generator function whose first parameter
is the :class:`~repro.core.threadlib.ThreadCtx`.
"""

from __future__ import annotations

import inspect
from typing import Any, Callable

from ..errors import ProgramError

__all__ = ["ProgramRegistry"]

ThreadFunc = Callable[..., Any]


class ProgramRegistry:
    """Name → generator-function table shared by all processors."""

    def __init__(self) -> None:
        self._funcs: dict[str, ThreadFunc] = {}

    def register(self, func: ThreadFunc, name: str | None = None) -> str:
        """Register a thread function; returns its template name.

        The function must be a generator function (it will be driven by
        the EXU through ``send``); registering anything else fails fast
        rather than producing a confusing error at spawn time.
        """
        if not inspect.isgeneratorfunction(func):
            raise ProgramError(
                f"thread function {getattr(func, '__name__', func)!r} must be a "
                "generator function (use 'yield ctx.…' effects)"
            )
        key = name or func.__name__
        existing = self._funcs.get(key)
        if existing is not None and existing is not func:
            raise ProgramError(f"template name {key!r} already registered to a different function")
        self._funcs[key] = func
        return key

    def get(self, name: str) -> ThreadFunc:
        """Resolve a template name (raises :class:`ProgramError` if missing)."""
        try:
            return self._funcs[name]
        except KeyError:
            raise ProgramError(f"no thread function registered as {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._funcs

    def __len__(self) -> int:
        return len(self._funcs)
