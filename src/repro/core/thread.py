"""Thread objects: one generator, one activation frame, one state.

A thread "will run to completion unless it encounters any remote memory
operations or explicit thread switching" (§2.3).  The state machine
mirrors that: READY (sitting in the hardware FIFO as a packet), RUNNING
(the EXU is inside its generator), or suspended awaiting a read reply /
barrier release / token grant.  Threads never share registers; the
register image lives in the activation frame across switches.
"""

from __future__ import annotations

import enum
from typing import Any, Generator

from ..errors import ThreadProtocolError
from ..memory import ActivationFrame

__all__ = ["ThreadState", "EMThread"]

#: The guest generator type: yields effects, receives resume values.
GuestGen = Generator[Any, Any, Any]


class ThreadState(enum.Enum):
    """Lifecycle of a fine-grain thread."""

    READY = "ready"
    RUNNING = "running"
    WAIT_READ = "wait_read"
    WAIT_BARRIER = "wait_barrier"
    WAIT_TOKEN = "wait_token"
    WAIT_CALL = "wait_call"
    DONE = "done"

    # Identity hash (C slot): the legal-transition table is consulted
    # twice per burst, and Enum.__hash__ is a Python-level call.
    __hash__ = object.__hash__


#: The legal state graph, built once — ``transition`` runs on every
#: burst entry/exit, so rebuilding this dict per call is hot-path waste.
_LEGAL: dict[ThreadState, tuple[ThreadState, ...]] = {
    ThreadState.READY: (ThreadState.RUNNING,),
    ThreadState.RUNNING: (
        ThreadState.WAIT_READ,
        ThreadState.WAIT_BARRIER,
        ThreadState.WAIT_TOKEN,
        ThreadState.WAIT_CALL,
        ThreadState.READY,  # explicit SwitchNow
        ThreadState.DONE,
    ),
    ThreadState.WAIT_READ: (ThreadState.RUNNING,),
    ThreadState.WAIT_BARRIER: (ThreadState.RUNNING,),
    ThreadState.WAIT_TOKEN: (ThreadState.RUNNING,),
    ThreadState.WAIT_CALL: (ThreadState.RUNNING,),
    ThreadState.DONE: (),
}


class EMThread:
    """One fine-grain thread bound to a processor."""

    __slots__ = ("tid", "pe", "frame", "gen", "state", "name", "started", "bursts", "on_transition")

    def __init__(self, tid: int, pe: int, frame: ActivationFrame, gen: GuestGen, name: str = "") -> None:
        self.tid = tid
        self.pe = pe
        self.frame = frame
        self.gen = gen
        self.state = ThreadState.READY
        self.name = name or f"t{tid}"
        self.started = False
        self.bursts = 0
        #: Optional observer ``(thread, new_state) -> None``, called after
        #: every legal transition (installed by the machine when
        #: observability is enabled; ``None`` costs one test per switch).
        self.on_transition = None

    def transition(self, new: ThreadState) -> None:
        """Move to ``new``, enforcing the legal state graph."""
        if new not in _LEGAL[self.state]:
            raise ThreadProtocolError(
                f"illegal thread transition {self.state.value} -> {new.value} for {self.name}"
            )
        self.state = new
        if self.on_transition is not None:
            self.on_transition(self, new)

    @property
    def alive(self) -> bool:
        """True until the generator has returned."""
        return self.state is not ThreadState.DONE

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EMThread({self.name}, pe={self.pe}, state={self.state.value})"
