"""The guest-visible thread library (the paper's "C with thread library").

Each thread receives a :class:`ThreadCtx` as its first argument.  The
ctx exposes the machine's global address space, the processor's local
memory, and constructors for every effect the thread may yield.  A
typical guest loop looks exactly like the paper's sorting kernel::

    def reader(ctx, mate, base, m):
        for k in range(m):
            value = yield ctx.read(ctx.ga(mate, base + k))   # split-phase
            buffer.append(value)
            yield ctx.compute(10)                            # loop body work

Local memory access through ``ctx.mem`` is free of simulated cycles —
local loads/stores are part of the instruction budgets charged with
:meth:`ThreadCtx.compute`, matching how the paper counts run length.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..errors import ProgramError
from ..memory import LocalMemory
from ..packet import GlobalAddress
from .effects import (
    BarrierWait,
    Call,
    Compute,
    RemoteRead,
    RemoteReadBlock,
    RemoteReadPair,
    RemoteWrite,
    RemoteWriteBlock,
    Reply,
    Spawn,
    SwitchNow,
    TokenAdvance,
    TokenWait,
)
from .sync import GlobalBarrier, OrderToken

__all__ = ["ThreadCtx"]


class ThreadCtx:
    """Per-thread handle onto the machine, passed to every thread body."""

    __slots__ = ("pe", "n_pes", "mem", "state", "tid")

    def __init__(self, pe: int, n_pes: int, mem: LocalMemory, state: dict[str, Any], tid: int) -> None:
        self.pe = pe
        self.n_pes = n_pes
        self.mem = mem
        #: Per-processor guest scratch state shared by all local threads.
        self.state = state
        self.tid = tid

    # ------------------------------------------------------------------
    # Addressing
    # ------------------------------------------------------------------
    def ga(self, pe: int, offset: int) -> GlobalAddress:
        """Build a global address (processor number, local word offset)."""
        if not (0 <= pe < self.n_pes):
            raise ProgramError(f"global address names PE {pe} of {self.n_pes}")
        return GlobalAddress(pe, offset)

    # ------------------------------------------------------------------
    # Host computation
    # ------------------------------------------------------------------
    def host(self, fn, *args: Any) -> Any:
        """Run ``fn(*args)`` as an opaque host computation.

        In the interpreter this is a plain call — it yields no effect
        and charges no cycles (local computation is budgeted separately
        through :meth:`compute`).  Its purpose is to mark the boundary
        for the cohort compiler: everything inside ``fn`` is data-
        dependent guest logic the recorder should treat as a black box
        and re-execute live per thread, instead of bailing on the whole
        thread.  ``fn`` must be a module-level callable and may freely
        mutate its arguments (e.g. ``ctx.state`` entries or ``ctx.mem``
        passed explicitly).
        """
        return fn(*args)

    # ------------------------------------------------------------------
    # Effects
    # ------------------------------------------------------------------
    def compute(self, cycles: int) -> Compute:
        """Charge ``cycles`` of real computation."""
        return Compute(cycles)

    def read(self, addr: GlobalAddress) -> RemoteRead:
        """Split-phase remote read of one word (suspends; yields value)."""
        return RemoteRead(addr)

    def read_pair(self, addr_a: GlobalAddress, addr_b: GlobalAddress) -> RemoteReadPair:
        """Split-phase read of two words with direct matching.

        Suspends once; resumes with ``(value_a, value_b)`` when both
        replies have arrived (first parks in matching memory).
        """
        return RemoteReadPair(addr_a, addr_b)

    def read_block(self, addr: GlobalAddress, count: int) -> RemoteReadBlock:
        """Split-phase block read (suspends; yields a list of words)."""
        return RemoteReadBlock(addr, count)

    def write(self, addr: GlobalAddress, value: Any) -> RemoteWrite:
        """Remote write of one word (does not suspend)."""
        return RemoteWrite(addr, value)

    def write_block(self, addr: GlobalAddress, values: Sequence[Any]) -> RemoteWriteBlock:
        """Remote write of consecutive words (does not suspend)."""
        return RemoteWriteBlock(addr, tuple(values))

    def spawn(self, pe: int, func: str, *args: Any) -> Spawn:
        """Invoke thread ``func`` on ``pe`` (fire and forget)."""
        return Spawn(pe, func, args)

    def call(self, pe: int, func: str, *args: Any) -> Call:
        """Invoke ``func`` on ``pe`` and suspend until it replies."""
        return Call(pe, func, args)

    def reply(self, continuation: tuple[int, int], value: Any) -> Reply:
        """Return ``value`` to a caller's continuation."""
        return Reply(continuation, value)

    def barrier_wait(self, barrier: GlobalBarrier) -> BarrierWait:
        """Arrive at an iteration barrier and wait for the release."""
        return BarrierWait(barrier)

    def token_wait(self, token: OrderToken, seq: int) -> TokenWait:
        """Wait for merge turn ``seq`` on a local order token."""
        return TokenWait(token, seq)

    def token_advance(self, token: OrderToken) -> TokenAdvance:
        """Grant the next merge turn (wakes the parked thread, if any)."""
        return TokenAdvance(token)

    def switch(self) -> SwitchNow:
        """Explicitly yield the processor (requeue at the FIFO tail)."""
        return SwitchNow()
