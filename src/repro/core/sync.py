"""Synchronisation primitives: iteration barriers and merge-order tokens.

Two distinct mechanisms, because the paper counts their context switches
separately (Fig. 9):

* **Iteration synchronisation** — the barrier inserted at the end of
  each iteration.  Arriving threads *spin through the hardware FIFO*:
  each re-check is a context switch, so waiting threads rack up
  iteration-sync switches proportional to their wait (this is exactly
  why the paper sees iteration-sync switching overtake remote-read
  switching at 16 threads on small problems).  The global combine is
  packet-based: the last local arrival sends ``SYNC_ARRIVE`` to a hub
  processor, which broadcasts ``SYNC_RELEASE`` — the broadcast
  serialises through the hub's output port, producing realistic skew.

* **Thread synchronisation** — sorting's ordered merge.  An
  :class:`OrderToken` grants merge turns in thread order; a thread whose
  turn has not come suspends (one thread-sync switch) and is woken by a
  local resume packet when the token advances.  Direct hand-off, no
  spinning: the token holder knows exactly whom to wake.
"""

from __future__ import annotations

import itertools
from typing import Callable

from ..errors import BarrierError
from .thread import EMThread

__all__ = ["GlobalBarrier", "OrderToken"]

_barrier_ids = itertools.count()
_token_ids = itertools.count()


class GlobalBarrier:
    """A reusable machine-wide iteration barrier.

    ``parties[pe]`` threads must arrive on each processor; the barrier
    then combines across all processors and releases.  Generations make
    it reusable every iteration.  Transport (the arrive/release packets)
    is wired in by the machine via :meth:`wire`.
    """

    def __init__(self, n_pes: int, parties: list[int], hub: int = 0) -> None:
        if len(parties) != n_pes:
            raise BarrierError(f"parties list has {len(parties)} entries for {n_pes} PEs")
        if any(p < 0 for p in parties):
            raise BarrierError(f"negative party count in {parties}")
        if not (0 <= hub < n_pes):
            raise BarrierError(f"hub {hub} outside machine of {n_pes} PEs")
        self.barrier_id = next(_barrier_ids)
        self.n_pes = n_pes
        self.parties = list(parties)
        self.hub = hub
        #: PEs that participate (non-zero parties).
        self.member_pes = [pe for pe, p in enumerate(parties) if p > 0]
        if not self.member_pes:
            raise BarrierError("barrier with no participating processors")
        self.local_arrived = [0] * n_pes
        self.local_gen = [0] * n_pes
        self.released_gen = [-1] * n_pes
        self.hub_count = 0
        self.hub_gen = 0
        # Release transport, injected by the machine.
        self._send_release: Callable[[int, int], None] | None = None
        # Statistics.
        self.generations_completed = 0

    # ------------------------------------------------------------------
    def wire(self, send_release: Callable[[int, int], None]) -> None:
        """Install the release-broadcast transport (machine internal)."""
        self._send_release = send_release

    # ------------------------------------------------------------------
    def arrive(self, pe: int) -> tuple[int, bool]:
        """A thread on ``pe`` reaches the barrier.

        Returns ``(generation, last_local)``: the generation the thread
        waits for, and whether it was the last local party — in which
        case the caller (the EXU) must emit the ``SYNC_ARRIVE`` packet
        to the hub, charged at the proper cycle inside its burst.
        """
        if self.parties[pe] == 0:
            raise BarrierError(f"PE {pe} is not a member of barrier {self.barrier_id}")
        gen = self.local_gen[pe]
        self.local_arrived[pe] += 1
        if self.local_arrived[pe] > self.parties[pe]:
            raise BarrierError(
                f"barrier {self.barrier_id} overrun on PE {pe}: "
                f"{self.local_arrived[pe]} arrivals for {self.parties[pe]} parties"
            )
        last_local = self.local_arrived[pe] == self.parties[pe]
        if last_local:
            self.local_arrived[pe] = 0
            self.local_gen[pe] += 1
        return gen, last_local

    def hub_arrive(self, gen: int) -> bool:
        """Hub receives one PE's arrival; True when all have arrived."""
        if gen != self.hub_gen:
            raise BarrierError(
                f"barrier {self.barrier_id} hub saw generation {gen}, expected {self.hub_gen}"
            )
        self.hub_count += 1
        if self.hub_count == len(self.member_pes):
            self.hub_count = 0
            self.hub_gen += 1
            self.generations_completed += 1
            return True
        return False

    def broadcast_release(self, gen: int) -> None:
        """Hub broadcasts the release for ``gen`` to every member PE."""
        if self._send_release is None:
            raise BarrierError(f"barrier {self.barrier_id} not wired to a machine")
        for pe in self.member_pes:
            self._send_release(pe, gen)

    def release(self, pe: int, gen: int) -> None:
        """A release packet lands on ``pe``."""
        if gen != self.released_gen[pe] + 1:
            raise BarrierError(
                f"barrier {self.barrier_id} release gen {gen} on PE {pe}, "
                f"expected {self.released_gen[pe] + 1}"
            )
        self.released_gen[pe] = gen

    def is_open(self, pe: int, gen: int) -> bool:
        """Has generation ``gen`` been released at ``pe``?"""
        return self.released_gen[pe] >= gen


class OrderToken:
    """Grants turns in sequence 0, 1, 2, … within one processor."""

    __slots__ = ("token_id", "value", "_waiters")

    def __init__(self) -> None:
        self.token_id = next(_token_ids)
        self.value = 0
        self._waiters: dict[int, EMThread] = {}

    def holds(self, seq: int) -> bool:
        """True if turn ``seq`` is (or has been) granted."""
        return self.value >= seq

    def park(self, seq: int, thread: EMThread) -> None:
        """Register ``thread`` to be woken when ``seq`` is granted."""
        if seq in self._waiters:
            raise BarrierError(f"token {self.token_id}: two threads parked on turn {seq}")
        if self.holds(seq):
            raise BarrierError(f"token {self.token_id}: parking on already-granted turn {seq}")
        self._waiters[seq] = thread

    def advance(self) -> EMThread | None:
        """Grant the next turn; returns the thread to wake, if any."""
        self.value += 1
        return self._waiters.pop(self.value, None)

    def reset(self) -> None:
        """Restart at turn 0 (new iteration).  No waiters may remain."""
        if self._waiters:
            raise BarrierError(f"token {self.token_id} reset with waiters {sorted(self._waiters)}")
        self.value = 0

    @property
    def waiting(self) -> int:
        """Threads currently parked."""
        return len(self._waiters)
