"""Continuations: where a read reply (or call result) should land.

A remote-read packet's second word is "the return address which is often
called continuation" (§2.3).  We model a continuation as a small integer
id valid on the issuing processor; the reply packet carries it back and
the table resolves it to the suspended thread.  Ids are recycled so a
long run does not grow the table without bound.
"""

from __future__ import annotations

from typing import Any

from ..errors import SchedulerError
from .thread import EMThread

__all__ = ["ContinuationTable"]


class ContinuationTable:
    """Per-processor map of continuation id → suspended thread."""

    __slots__ = ("pe", "_slots", "_free", "_next", "registered", "resolved")

    def __init__(self, pe: int) -> None:
        self.pe = pe
        self._slots: dict[int, tuple[EMThread, Any]] = {}
        self._free: list[int] = []
        self._next = 0
        self.registered = 0
        self.resolved = 0

    def register(self, thread: EMThread, tag: Any = None) -> int:
        """Park ``thread`` and return the continuation id for the packet."""
        cid = self._free.pop() if self._free else self._next
        if cid == self._next:
            self._next += 1
        if cid in self._slots:  # pragma: no cover - invariant
            raise SchedulerError(f"continuation id {cid} already live on PE {self.pe}")
        self._slots[cid] = (thread, tag)
        self.registered += 1
        return cid

    def resolve(self, cid: int) -> tuple[EMThread, Any]:
        """Consume a continuation id, returning (thread, tag)."""
        try:
            entry = self._slots.pop(cid)
        except KeyError:
            raise SchedulerError(f"unknown continuation {cid} on PE {self.pe}") from None
        self._free.append(cid)
        self.resolved += 1
        return entry

    def peek(self, cid: int) -> tuple[EMThread, Any]:
        """Look at a continuation without consuming it (block reads)."""
        try:
            return self._slots[cid]
        except KeyError:
            raise SchedulerError(f"unknown continuation {cid} on PE {self.pe}") from None

    @property
    def outstanding(self) -> int:
        """Continuations currently awaiting replies."""
        return len(self._slots)
