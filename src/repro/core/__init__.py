"""The fine-grain multithreading runtime — the paper's core contribution.

Guest programs are written against the *thread library* model of §2.3:
explicitly-switched threads that issue split-phase remote reads, spawn
threads through packets, and synchronise through barriers and
merge-order tokens.  A thread body is a Python generator; it yields
:mod:`~repro.core.effects` objects and the Execution Unit charges cycles
and mutates machine state accordingly:

* ``yield ctx.read(addr)`` — split-phase remote read: the thread's live
  registers are saved to its activation frame, the read-request packet
  departs, and the EXU pulls the next packet from the hardware FIFO.
  The reply resumes the thread *in FIFO order*.
* ``yield ctx.write(addr, v)`` — remote write; never suspends.
* ``yield ctx.spawn(pe, fn, args)`` — thread invocation by packet.
* ``yield ctx.barrier_wait(bar)`` — iteration synchronisation.
* ``yield ctx.token_wait(tok, seq)`` / ``token_advance`` — thread
  synchronisation (sorting's ordered merge).
"""

from .continuation import ContinuationTable
from .effects import (
    BarrierWait,
    Call,
    Compute,
    Effect,
    RemoteRead,
    RemoteReadBlock,
    RemoteReadPair,
    RemoteWrite,
    RemoteWriteBlock,
    Reply,
    Spawn,
    SwitchNow,
    TokenAdvance,
    TokenWait,
)
from .registry import ProgramRegistry
from .sync import GlobalBarrier, OrderToken
from .thread import EMThread, ThreadState
from .threadlib import ThreadCtx

__all__ = [
    "Effect",
    "Compute",
    "RemoteRead",
    "RemoteReadPair",
    "RemoteReadBlock",
    "RemoteWrite",
    "RemoteWriteBlock",
    "Spawn",
    "Call",
    "Reply",
    "BarrierWait",
    "TokenWait",
    "TokenAdvance",
    "SwitchNow",
    "EMThread",
    "ThreadState",
    "ContinuationTable",
    "ProgramRegistry",
    "GlobalBarrier",
    "OrderToken",
    "ThreadCtx",
]
