"""Execution Unit: runs thread bursts and performs context switches.

The EXU is event-driven: whenever it is free and the IBU holds a packet,
it dequeues one (FIFO within priority level) and either

* invokes a new thread (``INVOKE``),
* resumes a suspended thread with a read reply (``READ_REPLY`` /
  ``BLOCK_READ_REPLY``) or a local resume (``RESUME``), or
* in EM-4 compatibility mode, services a remote read by itself.

A *burst* drives the thread's generator from (re)entry to the next
suspension point, accumulating cycles into the four accounting buckets.
Packets generated mid-burst are injected at the exact cycle offset where
their packet-generation instruction retires.  Idle gaps between bursts
while the processor still has live threads are charged to the
COMMUNICATION bucket — that is the unmasked latency the whole paper is
about.
"""

from __future__ import annotations

import math

from ..core.effects import (
    BarrierWait,
    Call,
    Compute,
    FusedRead,
    FusedReadPair,
    RemoteRead,
    RemoteReadBlock,
    RemoteReadPair,
    RemoteWrite,
    RemoteWriteBlock,
    Reply,
    Spawn,
    SwitchNow,
    TokenAdvance,
    TokenWait,
)
from ..core.thread import EMThread, ThreadState
from ..errors import CompileDivergence, SchedulerError, ThreadProtocolError
from ..metrics.counters import Bucket, SwitchKind
from ..obs.events import BarrierEvent, BurstSpan, FastForward, ThreadSwitch
from ..packet import Packet, PacketKind
from ..trace import TraceEvent

__all__ = ["ExecutionUnit"]


def _invoke_words(n_args: int) -> int:
    """Logical width of an INVOKE packet: template + frame + args words."""
    return 2 * math.ceil((2 + n_args) / 2)


class ExecutionUnit:
    """The thread-running pipeline of one EMC-Y."""

    def __init__(self, proc) -> None:
        self._proc = proc
        # Construction-time caches (machine wiring precedes processor
        # construction and is immutable afterwards): the kick/dispatch
        # path runs once per packet, so every saved attribute chain
        # shows up on the fig6 sweep.
        machine = proc.machine
        self._engine = machine.engine
        self._timing = machine.config.timing
        self._trace_on = machine.config.trace
        self._obs = machine.obs
        self.busy_until = 0
        self._kick_scheduled = False
        self._kick_time = 0
        self._kick_prov = None
        self._last_end: int | None = None
        # Hybrid fidelity dispatches wake-ups inline when no same-cycle
        # event could still reorder the FIFO, saving the kick event.
        # Requires the hybrid network's pending-delivery bookkeeping.
        self._ff_net = (
            machine.network
            if (
                machine.config.fidelity == "hybrid"
                and machine.shard is None
                and hasattr(machine.network, "deliveries_pending")
            )
            else None
        )
        self.kicks_inlined = 0

    # ------------------------------------------------------------------
    # Wake-up protocol
    # ------------------------------------------------------------------
    def notify(self) -> None:
        """The IBU queued a packet; make sure a kick is pending."""
        if self._kick_scheduled:
            return
        engine = self._engine
        net = self._ff_net
        if net is not None and self.busy_until <= engine.now:
            proc = self._proc
            now = engine.now
            if not proc._pending_enqueues.get(now) and not net.deliveries_pending(
                now, proc.pe
            ):
                # Inline kick: the EXU is free and nothing still pending
                # this cycle can change what the scheduled kick would
                # have popped — dispatch without the event.  The burst
                # itself cannot feed back into this cycle (its own
                # effects all land at or after ``now + lead_switch``).
                item = proc.ibu.pop()
                if item is None:
                    return
                pkt, extra = item
                self.kicks_inlined += 1
                self._account_gap(now)
                obs = self._obs
                if obs is not None:
                    obs.emit(FastForward(now, now, proc.pe, "kick", -1, 1))
                prev = net.prov
                net.prov = net.new_prov(now)
                try:
                    self._dispatch(pkt, extra)
                finally:
                    net.prov = prev
                if proc.ibu.queued:
                    self.notify()
                return
        self._kick_scheduled = True
        self._kick_time = max(engine.now, self.busy_until)
        if net is not None:
            self._kick_prov = net.new_prov(self._kick_time)
        engine.schedule_at(self._kick_time, self._kick)

    def _kick(self) -> None:
        net = self._ff_net
        if net is None:
            self._kick_scheduled = False
            self._kick_body()
            return
        engine = self._engine
        # Same-cycle sequencing: defer behind any pending same-cycle
        # peer that precedes us in detailed event order.  The kick stays
        # registered (``_kick_scheduled`` keeps holding) so peers still
        # see it in the pending set.
        if net.pending_predecessor(engine.now, self._proc.pe, self._kick_prov):
            engine.schedule_at(engine.now, self._kick)
            net.ff_events_saved -= 1
            return
        self._kick_scheduled = False
        prev = net.prov
        net.prov = self._kick_prov
        try:
            self._kick_body()
        finally:
            net.prov = prev

    def _kick_body(self) -> None:
        engine = self._engine
        if engine.now < self.busy_until:
            self.notify()
            return
        item = self._proc.ibu.pop()
        if item is None:
            return  # idle; the gap is charged when the next burst starts
        pkt, extra = item
        self._account_gap(engine.now)
        self._dispatch(pkt, extra)
        if self._proc.ibu.queued:
            self.notify()

    def _account_gap(self, now: int) -> None:
        if self._last_end is None or now <= self._last_end:
            return
        gap = now - self._last_end
        counters = self._proc.counters
        if self._proc.live_threads > 0:
            counters.add_cycles(Bucket.COMMUNICATION, gap)
            counters.comm_gap_count += 1
            if gap > counters.comm_gap_max:
                counters.comm_gap_max = gap
            if self._trace_on:
                self._proc.trace.append(TraceEvent(self._last_end, now, "idle"))
            obs = self._obs
            if obs is not None:
                obs.emit(BurstSpan(self._last_end, self._proc.pe, now, "idle"))
        else:
            counters.add_cycles(Bucket.IDLE, gap)

    def _switch(self, kind: SwitchKind, thread: EMThread | None = None) -> None:
        """Count one context switch and mirror it onto the event bus."""
        proc = self._proc
        proc.counters.add_switch(kind)
        obs = self._obs
        if obs is not None:
            obs.emit(
                ThreadSwitch(
                    self._engine.now,
                    proc.pe,
                    kind,
                    thread.name if thread is not None else "",
                )
            )

    # ------------------------------------------------------------------
    # Packet dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, pkt: Packet, extra: int) -> None:
        kind = pkt.kind
        timing = self._timing
        if kind is PacketKind.INVOKE:
            func_name, args, cont = pkt.data
            thread = self._proc.machine.create_thread(self._proc.pe, func_name, args, cont)
            self._run_burst(thread, None, timing.match_invoke + extra)
        elif kind in (PacketKind.READ_REPLY, PacketKind.BLOCK_READ_REPLY):
            thread, _tag = self._proc.continuations.resolve(pkt.address)
            self._run_burst(thread, pkt.data, timing.match_invoke + extra)
        elif kind is PacketKind.RESUME:
            self._dispatch_resume(pkt, extra)
        elif kind in (PacketKind.READ_REQ, PacketKind.BLOCK_READ_REQ):
            self._em4_service(pkt, extra)
        else:
            raise SchedulerError(f"EXU cannot handle packet kind {kind}")

    def _dispatch_resume(self, pkt: Packet, extra: int) -> None:
        timing = self._timing
        counters = self._proc.counters
        reason = pkt.data[0]
        if reason == "barrier":
            _, thread, barrier, gen = pkt.data
            if barrier.is_open(self._proc.pe, gen):
                self._switch(SwitchKind.ITER_SYNC, thread)
                self._run_burst(thread, None, timing.match_invoke + extra)
            else:
                # Spin re-check: a full switch through the FIFO.
                engine = self._engine
                cost = timing.match_invoke + timing.barrier_check + extra
                self._switch(SwitchKind.ITER_SYNC, thread)
                counters.add_cycles(Bucket.SWITCHING, cost)
                counters.sync_stall_cycles += cost
                t0 = engine.now
                self.busy_until = t0 + cost
                self._last_end = self.busy_until
                counters.note_active(t0, self.busy_until)
                if self._trace_on:
                    self._proc.trace.append(TraceEvent(t0, self.busy_until, "spin"))
                obs = self._obs
                if obs is not None:
                    obs.emit(
                        BurstSpan(t0, self._proc.pe, self.busy_until, "spin", thread.name)
                    )
                self._proc.schedule_enqueue(
                    self.busy_until + timing.barrier_recheck_interval, pkt
                )
        elif reason in ("token", "explicit"):
            self._run_burst(pkt.data[1], None, timing.match_invoke + extra)
        else:
            raise SchedulerError(f"unknown resume reason {reason!r}")

    def _em4_service(self, pkt: Packet, extra: int) -> None:
        """EM-4 compatibility: the EXU itself answers a remote read."""
        proc = self._proc
        timing = self._timing
        engine = self._engine
        offset = pkt.address & 0xFFFFFFFF
        if pkt.kind is PacketKind.READ_REQ:
            cost = timing.em4_read_service + extra
            cont = pkt.data
            if isinstance(cont, tuple) and cont[0] == "pair":
                _, cid, slot = cont
                reply = Packet(
                    kind=PacketKind.READ_REPLY_PAIR,
                    src=proc.pe,
                    dst=pkt.src,
                    address=cid,
                    data=(slot, proc.memory.read(offset)),
                )
            else:
                reply = Packet(
                    kind=PacketKind.READ_REPLY,
                    src=proc.pe,
                    dst=pkt.src,
                    address=cont,
                    data=proc.memory.read(offset),
                )
        else:
            cont, count = pkt.data
            cost = timing.em4_read_service + count + extra
            reply = Packet(
                kind=PacketKind.BLOCK_READ_REPLY,
                src=proc.pe,
                dst=pkt.src,
                address=cont,
                data=proc.memory.read_block(offset, count),
                words=2 * count,
            )
        proc.counters.reads_serviced += 1
        proc.counters.add_cycles(Bucket.OVERHEAD, cost)
        t0 = engine.now
        self.busy_until = t0 + cost
        self._last_end = self.busy_until
        proc.counters.note_active(t0, self.busy_until)
        if self._trace_on:
            proc.trace.append(TraceEvent(t0, self.busy_until, "service"))
        if self._obs is not None:
            self._obs.emit(BurstSpan(t0, proc.pe, self.busy_until, "service"))
        proc.obu.inject_at(self.busy_until, reply)

    # ------------------------------------------------------------------
    # Burst execution
    # ------------------------------------------------------------------
    def _run_burst(self, thread: EMThread, send_value, lead_switch: int) -> None:
        proc = self._proc
        timing = self._timing
        engine = self._engine
        counters = proc.counters
        pe = proc.pe
        obs = self._obs
        # The two per-effect timing constants, hoisted out of the loop.
        pkt_gen = timing.pkt_gen
        reg_save = timing.reg_save

        t0 = engine.now
        comp = 0
        over = 0
        sw = lead_switch
        emits: list[tuple[int, Packet]] = []
        local_resumes: list[Packet] = []  # enqueued at burst end (FIFO tail)
        mid_resumes: list[tuple[int, Packet]] = []  # token wakes, at offset

        thread.transition(ThreadState.RUNNING)
        thread.bursts += 1
        gen = thread.gen
        finished = False

        while True:
            try:
                eff = gen.send(send_value)
            except StopIteration:
                finished = True
                break
            except CompileDivergence as exc:
                # Strict-mode cohort divergence: pin the machine context
                # onto the diagnosis before it leaves the burst loop.
                exc.args = (
                    f"{exc.args[0] if exc.args else exc!r} "
                    f"[pe={pe} thread={thread.name} cycle={engine.now}]",
                )
                raise
            send_value = None
            et = type(eff)

            if et is Compute:
                comp += eff.cycles

            elif et is RemoteRead:
                over += pkt_gen
                sw += reg_save
                cid = proc.continuations.register(thread)
                emits.append(
                    (
                        comp + over + sw,
                        Packet(
                            kind=PacketKind.READ_REQ,
                            src=pe,
                            dst=eff.addr.pe,
                            address=eff.addr.packed(),
                            data=cid,
                        ),
                    )
                )
                counters.reads_issued += 1
                self._switch(SwitchKind.REMOTE_READ, thread)
                thread.transition(ThreadState.WAIT_READ)
                break

            elif et is RemoteReadPair:
                over += 2 * pkt_gen
                sw += reg_save
                cid = proc.continuations.register(thread, tag="pair")
                for slot, addr in ((0, eff.addr_a), (1, eff.addr_b)):
                    emits.append(
                        (
                            comp + over + sw,
                            Packet(
                                kind=PacketKind.READ_REQ,
                                src=pe,
                                dst=addr.pe,
                                address=addr.packed(),
                                data=("pair", cid, slot),
                            ),
                        )
                    )
                counters.reads_issued += 2
                self._switch(SwitchKind.REMOTE_READ, thread)
                thread.transition(ThreadState.WAIT_READ)
                break

            elif et is FusedRead:
                # A compiled ``Compute(c)`` + ``RemoteRead(addr)`` pair in
                # one effect: identical accounting, half the yields.
                comp += eff.cycles
                over += pkt_gen
                sw += reg_save
                cid = proc.continuations.register(thread)
                emits.append(
                    (
                        comp + over + sw,
                        Packet(
                            kind=PacketKind.READ_REQ,
                            src=pe,
                            dst=eff.addr.pe,
                            address=eff.addr.packed(),
                            data=cid,
                        ),
                    )
                )
                counters.reads_issued += 1
                self._switch(SwitchKind.REMOTE_READ, thread)
                thread.transition(ThreadState.WAIT_READ)
                break

            elif et is FusedReadPair:
                comp += eff.cycles
                over += 2 * pkt_gen
                sw += reg_save
                cid = proc.continuations.register(thread, tag="pair")
                for slot, addr in ((0, eff.addr_a), (1, eff.addr_b)):
                    emits.append(
                        (
                            comp + over + sw,
                            Packet(
                                kind=PacketKind.READ_REQ,
                                src=pe,
                                dst=addr.pe,
                                address=addr.packed(),
                                data=("pair", cid, slot),
                            ),
                        )
                    )
                counters.reads_issued += 2
                self._switch(SwitchKind.REMOTE_READ, thread)
                thread.transition(ThreadState.WAIT_READ)
                break

            elif et is RemoteReadBlock:
                over += pkt_gen
                sw += reg_save
                cid = proc.continuations.register(thread)
                emits.append(
                    (
                        comp + over + sw,
                        Packet(
                            kind=PacketKind.BLOCK_READ_REQ,
                            src=pe,
                            dst=eff.addr.pe,
                            address=eff.addr.packed(),
                            data=(cid, eff.count),
                        ),
                    )
                )
                counters.block_reads_issued += 1
                counters.block_words_requested += eff.count
                self._switch(SwitchKind.REMOTE_READ, thread)
                thread.transition(ThreadState.WAIT_READ)
                break

            elif et is RemoteWrite:
                over += pkt_gen
                emits.append(
                    (
                        comp + over + sw,
                        Packet(
                            kind=PacketKind.WRITE,
                            src=pe,
                            dst=eff.addr.pe,
                            address=eff.addr.packed(),
                            data=eff.value,
                        ),
                    )
                )
                counters.writes_issued += 1

            elif et is RemoteWriteBlock:
                n = len(eff.values)
                over += pkt_gen * max(1, n)
                base = eff.addr
                # One logical write packet per word, as the hardware does.
                for i, value in enumerate(eff.values):
                    emits.append(
                        (
                            comp + over + sw,
                            Packet(
                                kind=PacketKind.WRITE,
                                src=pe,
                                dst=base.pe,
                                address=(base + i).packed(),
                                data=value,
                            ),
                        )
                    )
                counters.writes_issued += n

            elif et is Spawn:
                words = _invoke_words(len(eff.args))
                over += pkt_gen * (words // 2)
                emits.append(
                    (
                        comp + over + sw,
                        Packet(
                            kind=PacketKind.INVOKE,
                            src=pe,
                            dst=eff.pe,
                            data=(eff.func, eff.args, None),
                            words=words,
                        ),
                    )
                )
                counters.spawns_issued += 1

            elif et is Reply:
                over += pkt_gen
                cont_pe, cid = eff.continuation
                emits.append(
                    (
                        comp + over + sw,
                        Packet(
                            kind=PacketKind.READ_REPLY,
                            src=pe,
                            dst=cont_pe,
                            address=cid,
                            data=eff.value,
                        ),
                    )
                )

            elif et is Call:
                words = _invoke_words(len(eff.args) + 1)
                over += pkt_gen * (words // 2)
                sw += reg_save
                cid = proc.continuations.register(thread)
                emits.append(
                    (
                        comp + over + sw,
                        Packet(
                            kind=PacketKind.INVOKE,
                            src=pe,
                            dst=eff.pe,
                            data=(eff.func, eff.args, (pe, cid)),
                            words=words,
                        ),
                    )
                )
                counters.spawns_issued += 1
                self._switch(SwitchKind.EXPLICIT, thread)
                thread.transition(ThreadState.WAIT_CALL)
                break

            elif et is TokenWait:
                if eff.token.holds(eff.seq):
                    comp += timing.int_op  # the successful inline check
                    continue
                sw += reg_save
                self._switch(SwitchKind.THREAD_SYNC, thread)
                eff.token.park(eff.seq, thread)
                thread.transition(ThreadState.WAIT_TOKEN)
                break

            elif et is TokenAdvance:
                comp += timing.token_update
                waiter = eff.token.advance()
                if waiter is not None:
                    mid_resumes.append(
                        (
                            comp + over + sw,
                            Packet(
                                kind=PacketKind.RESUME,
                                src=pe,
                                dst=pe,
                                data=("token", waiter),
                            ),
                        )
                    )

            elif et is BarrierWait:
                bar = eff.barrier
                sw += timing.barrier_check
                self._switch(SwitchKind.ITER_SYNC, thread)
                gen_no, last_local = bar.arrive(pe)
                if obs is not None:
                    obs.emit(BarrierEvent(engine.now, pe, bar.barrier_id, gen_no, "arrive"))
                if last_local:
                    over += pkt_gen
                    emits.append(
                        (
                            comp + over + sw,
                            Packet(
                                kind=PacketKind.SYNC_ARRIVE,
                                src=pe,
                                dst=bar.hub,
                                data=(bar.barrier_id, gen_no),
                            ),
                        )
                    )
                thread.transition(ThreadState.WAIT_BARRIER)
                local_resumes.append(
                    Packet(
                        kind=PacketKind.RESUME,
                        src=pe,
                        dst=pe,
                        data=("barrier", thread, bar, gen_no),
                    )
                )
                break

            elif et is SwitchNow:
                sw += reg_save
                self._switch(SwitchKind.EXPLICIT, thread)
                thread.transition(ThreadState.READY)
                local_resumes.append(
                    Packet(kind=PacketKind.RESUME, src=pe, dst=pe, data=("explicit", thread))
                )
                break

            else:
                raise ThreadProtocolError(
                    f"thread {thread.name} yielded {eff!r}, which is not an Effect"
                )

        if finished:
            self._finish_thread(thread)

        total = comp + over + sw
        self.busy_until = t0 + total
        self._last_end = self.busy_until
        counters.add_cycles(Bucket.COMPUTATION, comp)
        counters.add_cycles(Bucket.OVERHEAD, over)
        counters.add_cycles(Bucket.SWITCHING, sw)
        counters.note_active(t0, self.busy_until)
        if self._trace_on:
            proc.trace.append(TraceEvent(t0, self.busy_until, "burst", thread.name))
        if obs is not None:
            obs.emit(BurstSpan(t0, pe, self.busy_until, "burst", thread.name))
        if emits:
            inject_at = proc.obu.inject_at
            for off, pkt in emits:
                inject_at(t0 + off, pkt)
        if mid_resumes:
            for off, pkt in mid_resumes:
                proc.schedule_enqueue(t0 + off, pkt)
        for pkt in local_resumes:
            proc.schedule_enqueue(self.busy_until, pkt)

    def _finish_thread(self, thread: EMThread) -> None:
        proc = self._proc
        thread.transition(ThreadState.DONE)
        proc.live_threads -= 1
        proc.machine.live_threads -= 1
        proc.counters.threads_finished += 1
        proc.frames.release(thread.frame.frame_id)
