"""Input Buffer Unit: priority packet FIFOs and the by-passing DMA.

Packets arriving from the network land here.  Two levels of priority
FIFOs (8 on-chip packets each; excess spills to an on-memory buffer and
is restored later, costing an extra memory access on dequeue) feed the
EXU in FIFO order — this *is* the hardware thread scheduler.

The IBU's headline feature is the **by-passing DMA**: remote read
requests are serviced entirely inside the IBU→MCU→OBU path, "without
consuming the cycles of the Execution Unit".  The EM-4 compatibility
mode routes read requests to the EXU instead, where each one steals
cycles like a one-instruction thread — the paper's explicit contrast.

Barrier combine traffic (``SYNC_ARRIVE``/``SYNC_RELEASE``) is also
handled at the IBU level: it updates barrier state without waking the
EXU, the way the hardware's packet path touches matching memory.
"""

from __future__ import annotations

from collections import deque

from ..errors import PacketError
from ..obs.events import BurstSpan, FastForward
from ..packet import Packet, PacketKind, Priority

__all__ = ["InputBufferUnit"]


class InputBufferUnit:
    """Receive path of one EMC-Y."""

    def __init__(self, proc) -> None:
        self._proc = proc
        # Construction-time caches: the machine wires config/engine/obs
        # before building processors and never swaps them afterwards.
        machine = proc.machine
        self._machine = machine
        self._engine = machine.engine
        self._timing = machine.config.timing
        self._em4 = machine.config.em4_mode
        self._depth = machine.config.ibu_fifo_depth
        # One deque per priority level, highest first (enum-keyed dict
        # lookups were measurable on the receive path).
        self._q_high: deque = deque()
        self._q_normal: deque = deque()
        self._dma_free = 0
        self.received = 0
        self.dma_serviced = 0
        # Hybrid fidelity folds the DMA completion into the request's
        # arrival: the reply is built now, its source words are watched
        # until the service would have finished, and the completion
        # event disappears.  Sharded machines keep the event — their
        # conservative windows assume shard-local state only advances
        # at event boundaries.
        self._hybrid = (
            machine.config.fidelity == "hybrid" and machine.shard is None
        )
        self._ff_net = machine.network if self._hybrid else None
        self.dma_folds = 0

    # ------------------------------------------------------------------
    # Network-facing entry (the Switching Unit hands packets here).
    # ------------------------------------------------------------------
    def receive(self, pkt: Packet) -> None:
        """A packet arrived from the network at ``engine.now``."""
        self.received += 1
        kind = pkt.kind
        if kind in (PacketKind.READ_REQ, PacketKind.BLOCK_READ_REQ):
            if self._em4:
                self.enqueue(pkt)  # EXU will service it, EM-4 style
            else:
                self._dma_service(pkt)
            return
        if kind is PacketKind.READ_REPLY_PAIR:
            # Two-token direct matching: the Matching Unit parks the
            # first operand without waking the EXU; the second arrival
            # fires the thread with both operands in slot order.
            cid = pkt.address
            mate = self._proc.matching.offer(cid, 0, pkt.data)
            if mate is None:
                return
            (sa, va), (sb, vb) = mate
            values = (va, vb) if sa < sb else (vb, va)
            fire = Packet(
                kind=PacketKind.READ_REPLY,
                src=pkt.src,
                dst=pkt.dst,
                address=cid,
                data=values,
                priority=pkt.priority,
            )
            self.enqueue(fire)
            return
        if kind is PacketKind.SYNC_ARRIVE:
            self._machine.barrier_hub_arrive(pkt)
            return
        if kind is PacketKind.SYNC_RELEASE:
            self._machine.barrier_release(self._proc.pe, pkt)
            return
        if kind in (PacketKind.WRITE,):
            # Remote writes complete in the IBU/MCU path, EXU untouched.
            addr = pkt.address & 0xFFFFFFFF
            self._proc.memory.write(addr, pkt.data)
            return
        self.enqueue(pkt)

    # ------------------------------------------------------------------
    # FIFO thread-scheduling queue
    # ------------------------------------------------------------------
    def enqueue(self, pkt: Packet) -> None:
        """Queue a packet for the EXU (hardware FIFO scheduling)."""
        q = self._q_high if pkt.priority is Priority.HIGH else self._q_normal
        overflowed = len(q) >= self._depth
        if overflowed:
            self._proc.counters.ibu_overflows += 1
        q.append((pkt, overflowed))
        self._proc.exu.notify()

    def pop(self) -> tuple[Packet, int] | None:
        """Dequeue the next packet; returns (packet, extra_cycles).

        High-priority first, FIFO within a level.  Packets restored from
        the on-memory overflow buffer cost an extra memory access.
        """
        q = self._q_high or self._q_normal
        if q:
            pkt, overflowed = q.popleft()
            extra = self._timing.mem_exchange if overflowed else 0
            return pkt, extra
        return None

    @property
    def queued(self) -> int:
        """Packets waiting for the EXU."""
        return len(self._q_high) + len(self._q_normal)

    # ------------------------------------------------------------------
    # By-passing DMA read service (EM-X's key feature)
    # ------------------------------------------------------------------
    def _dma_service(self, pkt: Packet) -> None:
        timing = self._timing
        engine = self._engine
        if pkt.kind is PacketKind.READ_REQ:
            words = 2
        else:
            words = 2 * pkt.data[1]  # block read: data = (cont, count)
        cost = timing.ibu_dma_service + max(0, (words - 2) // 2)
        start = max(engine.now, self._dma_free)
        done = start + cost
        self._dma_free = done
        obs = self._machine.obs
        if obs is not None:
            obs.emit(BurstSpan(start, self._proc.pe, done, "dma", unit="ibu"))
        if self._hybrid:
            self._dma_fold(pkt, done)
        else:
            engine.schedule_at(done, self._dma_complete, pkt)

    def _dma_fold(self, pkt: Packet, done: int) -> None:
        """Service the read now instead of at ``done`` (hybrid fidelity).

        Reading the words early is only correct while nothing overwrites
        them before the detailed model would have read them — the memory
        watch turns any such write into a
        :class:`~repro.errors.FastForwardMiss`.  The reply enters the
        network at ``done`` exactly as the completion event would have
        injected it; when it cannot be fast-forwarded the network
        schedules its detailed send from this same call, so the event
        sits in the same within-cycle order the completion event had.
        """
        proc = self._proc
        reply, offset, span = self._build_reply(pkt)
        proc.memory.watch(offset, offset + span, done)
        proc.counters.reads_serviced += 1
        self.dma_serviced += 1
        self.dma_folds += 1
        obs = self._machine.obs
        if obs is not None:
            obs.emit(
                FastForward(self._engine.now, done, proc.pe, "dma", pkt.seq, 1)
            )
        # The reply's provenance is the elided completion event itself
        # (fire ``done``, scheduled by the handler running now).
        net = self._ff_net
        prev = net.prov
        net.prov = net.new_prov(done)
        try:
            proc.obu.inject_at(done, reply)
        finally:
            net.prov = prev

    def _dma_complete(self, pkt: Packet) -> None:
        proc = self._proc
        proc.counters.reads_serviced += 1
        self.dma_serviced += 1
        reply, _offset, _span = self._build_reply(pkt)
        proc.obu.inject(reply)

    def _build_reply(self, pkt: Packet) -> tuple[Packet, int, int]:
        """Construct the reply for a read request; returns
        ``(reply, offset, words_read)`` so the fold can watch the span."""
        proc = self._proc
        span = 1
        offset = pkt.address & 0xFFFFFFFF
        reply_priority = (
            Priority.HIGH if self._machine.config.priority_replies else Priority.NORMAL
        )
        if pkt.kind is PacketKind.READ_REQ:
            cont = pkt.data
            if isinstance(cont, tuple) and cont[0] == "pair":
                _, cid, slot = cont
                reply = Packet(
                    kind=PacketKind.READ_REPLY_PAIR,
                    src=proc.pe,
                    dst=pkt.src,
                    address=cid,
                    data=(slot, proc.memory.read(offset)),
                    priority=reply_priority,
                )
            else:
                reply = Packet(
                    kind=PacketKind.READ_REPLY,
                    src=proc.pe,
                    dst=pkt.src,
                    address=cont,
                    data=proc.memory.read(offset),
                    priority=reply_priority,
                )
        elif pkt.kind is PacketKind.BLOCK_READ_REQ:
            cont, count = pkt.data
            span = max(1, count)
            reply = Packet(
                kind=PacketKind.BLOCK_READ_REPLY,
                src=proc.pe,
                dst=pkt.src,
                address=cont,
                data=proc.memory.read_block(offset, count),
                words=2 * count,
                priority=reply_priority,
            )
        else:  # pragma: no cover - receive() filters kinds
            raise PacketError(f"DMA cannot service {pkt.kind}")
        return reply, offset, span
