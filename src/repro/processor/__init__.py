"""The EMC-Y processing element.

A single-chip pipelined RISC processor combining register-based
execution with packet-based dataflow synchronisation.  The units:

* **SU** (switching unit) — the network attachment point; modelled as
  the :meth:`~repro.processor.emcy.EMCYProcessor.deliver` entry.
* **IBU** (input buffer unit) — two priority FIFOs of 8 packets with
  overflow to memory; services remote reads through the **by-passing
  DMA** path without consuming EXU cycles (EM-X's key feature).
* **MU** (matching unit) — direct matching / thread invocation; its
  five-step cost is charged on every thread start and resume.
* **EXU** (execution unit) — runs thread bursts: charges instruction
  cycles, generates packets, performs context switches.
* **OBU** (output buffer unit) — injects packets (from the EXU *and*
  from the IBU's DMA replies) into the network.
* **MCU** (memory control unit) — word access to the 4 MB local memory.
"""

from .emcy import EMCYProcessor
from .exu import ExecutionUnit
from .ibu import InputBufferUnit
from .obu import OutputBufferUnit

__all__ = ["EMCYProcessor", "ExecutionUnit", "InputBufferUnit", "OutputBufferUnit"]
