"""The EMC-Y processing element: units, memory, and bookkeeping.

One :class:`EMCYProcessor` aggregates the local memory system (memory,
segment allocator, frame table, matching memory), the pipeline units
(IBU, EXU, OBU), the continuation table, and the per-PE counters.  The
machine attaches :meth:`deliver` (the Switching Unit's role) to the
network as this PE's packet sink.
"""

from __future__ import annotations

from ..core.continuation import ContinuationTable
from ..memory import FrameTable, LocalMemory, MatchingMemory, SegmentAllocator
from ..metrics.counters import PECounters
from ..packet import Packet
from .exu import ExecutionUnit
from .ibu import InputBufferUnit
from .obu import OutputBufferUnit

__all__ = ["EMCYProcessor"]


class EMCYProcessor:
    """One processing element of the EM-X."""

    def __init__(self, pe: int, machine) -> None:
        self.pe = pe
        self.machine = machine
        config = machine.config

        # Hybrid fidelity needs same-cycle ordering bookkeeping: local
        # enqueue events register their provenance per fire cycle so
        # the same-cycle sequencing protocol (deliveries, enqueue
        # fires, and the kick run in detailed event order) can consult
        # and defer to them.
        self._hybrid = config.fidelity == "hybrid" and machine.shard is None
        self._ff_net = machine.network if self._hybrid else None
        #: fire cycle → provenance of enqueue events scheduled but not
        #: yet fired (the sequencing protocol's pending set).
        self._pending_enqueues: dict[int, list] = {}

        # Memory system (MCU-owned resources).
        self.memory = LocalMemory(config.memory_words)
        if self._hybrid:
            self.memory.set_clock(machine.engine.clock)
        self.allocator = SegmentAllocator(config.memory_words)
        self.frames = FrameTable(self.allocator, pe)
        self.matching = MatchingMemory()
        if machine.obs is not None:
            self.matching.attach_obs(machine.obs, pe, machine.engine.clock)

        # Runtime bookkeeping.
        self.continuations = ContinuationTable(pe)
        self.counters = PECounters(pe)
        self.live_threads = 0
        #: Guest scratch shared by all threads on this PE (the apps keep
        #: their per-processor program state here).
        self.guest_state: dict = {}
        #: Burst-level trace (populated when ``config.trace`` is set).
        self.trace: list = []

        # Pipeline units.
        self.obu = OutputBufferUnit(pe, machine.engine, machine.network, machine.obs)
        self.ibu = InputBufferUnit(self)
        self.exu = ExecutionUnit(self)

    # ------------------------------------------------------------------
    def deliver(self, pkt: Packet) -> None:
        """Switching Unit entry: a packet arrived for this PE."""
        self.counters.packets_handled += 1
        self.ibu.receive(pkt)

    # ------------------------------------------------------------------
    # Local enqueue scheduling (hybrid-aware)
    # ------------------------------------------------------------------
    def schedule_enqueue(self, when: int, pkt: Packet) -> None:
        """Schedule ``pkt`` into the IBU FIFO at cycle ``when``.

        In detailed fidelity this is exactly
        ``engine.schedule_at(when, ibu.enqueue, pkt)``.  Hybrid fidelity
        stamps the event with a provenance node and registers it in the
        per-cycle pending set so the same-cycle sequencing protocol can
        order it against deliveries and the EXU kick.
        """
        engine = self.machine.engine
        if not self._hybrid:
            engine.schedule_at(when, self.ibu.enqueue, pkt)
            return
        prov = self._ff_net.new_prov(when)
        self._pending_enqueues.setdefault(when, []).append(prov)
        engine.schedule_at(when, self._fire_enqueue, when, pkt, prov)

    def _fire_enqueue(self, when: int, pkt: Packet, prov) -> None:
        net = self._ff_net
        # Same-cycle sequencing: if a pending peer on this PE precedes
        # us in detailed event order, run after it (re-append to the end
        # of this cycle's bucket; registration stays so peers see us).
        if net.pending_predecessor(when, self.pe, prov):
            self.machine.engine.schedule_at(when, self._fire_enqueue, when, pkt, prov)
            net.ff_events_saved -= 1
            return
        lst = self._pending_enqueues[when]
        lst.remove(prov)
        if not lst:
            del self._pending_enqueues[when]
        prev = net.prov
        net.prov = prov
        try:
            self.ibu.enqueue(pkt)
        finally:
            net.prov = prev

    def pending_local_events(self, cycle: int):
        """Provenance nodes of this PE's pending local events at
        ``cycle`` — scheduled-but-unfired enqueues plus the EXU kick.
        The sequencing protocol compares these against deliveries (and
        against each other) to reproduce detailed event order."""
        yield from self._pending_enqueues.get(cycle, ())
        exu = self.exu
        if exu._kick_scheduled and exu._kick_time == cycle:
            yield exu._kick_prov

    # ------------------------------------------------------------------
    def idle(self) -> bool:
        """True when this PE has no queued packets and no live threads."""
        return self.ibu.queued == 0 and self.live_threads == 0

    def stuck_report(self) -> str | None:
        """Describe live-but-unreachable work for deadlock diagnosis."""
        if self.live_threads == 0 and self.continuations.outstanding == 0:
            return None
        return (
            f"PE {self.pe}: {self.live_threads} live threads, "
            f"{self.continuations.outstanding} outstanding continuations, "
            f"{self.ibu.queued} queued packets"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EMCYProcessor(pe={self.pe}, live={self.live_threads})"
