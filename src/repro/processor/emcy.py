"""The EMC-Y processing element: units, memory, and bookkeeping.

One :class:`EMCYProcessor` aggregates the local memory system (memory,
segment allocator, frame table, matching memory), the pipeline units
(IBU, EXU, OBU), the continuation table, and the per-PE counters.  The
machine attaches :meth:`deliver` (the Switching Unit's role) to the
network as this PE's packet sink.
"""

from __future__ import annotations

from ..core.continuation import ContinuationTable
from ..memory import FrameTable, LocalMemory, MatchingMemory, SegmentAllocator
from ..metrics.counters import PECounters
from ..packet import Packet
from .exu import ExecutionUnit
from .ibu import InputBufferUnit
from .obu import OutputBufferUnit

__all__ = ["EMCYProcessor"]


class EMCYProcessor:
    """One processing element of the EM-X."""

    def __init__(self, pe: int, machine) -> None:
        self.pe = pe
        self.machine = machine
        config = machine.config

        # Memory system (MCU-owned resources).
        self.memory = LocalMemory(config.memory_words)
        self.allocator = SegmentAllocator(config.memory_words)
        self.frames = FrameTable(self.allocator, pe)
        self.matching = MatchingMemory()
        if machine.obs is not None:
            self.matching.attach_obs(machine.obs, pe, machine.engine.clock)

        # Runtime bookkeeping.
        self.continuations = ContinuationTable(pe)
        self.counters = PECounters(pe)
        self.live_threads = 0
        #: Guest scratch shared by all threads on this PE (the apps keep
        #: their per-processor program state here).
        self.guest_state: dict = {}
        #: Burst-level trace (populated when ``config.trace`` is set).
        self.trace: list = []

        # Pipeline units.
        self.obu = OutputBufferUnit(pe, machine.engine, machine.network, machine.obs)
        self.ibu = InputBufferUnit(self)
        self.exu = ExecutionUnit(self)

    # ------------------------------------------------------------------
    def deliver(self, pkt: Packet) -> None:
        """Switching Unit entry: a packet arrived for this PE."""
        self.counters.packets_handled += 1
        self.ibu.receive(pkt)

    # ------------------------------------------------------------------
    def idle(self) -> bool:
        """True when this PE has no queued packets and no live threads."""
        return self.ibu.queued == 0 and self.live_threads == 0

    def stuck_report(self) -> str | None:
        """Describe live-but-unreachable work for deadlock diagnosis."""
        if self.live_threads == 0 and self.continuations.outstanding == 0:
            return None
        return (
            f"PE {self.pe}: {self.live_threads} live threads, "
            f"{self.continuations.outstanding} outstanding continuations, "
            f"{self.ibu.queued} queued packets"
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EMCYProcessor(pe={self.pe}, live={self.live_threads})"
