"""Machine presets.

* :func:`emx80` — the prototype: 80 EMC-Y processors on the circular
  Omega network, exactly as installed at the Electrotechnical Laboratory
  in December 1995.
* :func:`paper_machine` — the paper's experimental platforms (16 or 64
  processors).
* :func:`small_machine` — small, fast machines for tests and examples.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import ConfigError
from .machine import EMX

__all__ = ["emx80", "paper_machine", "small_machine"]


def emx80(**overrides) -> EMX:
    """The 80-processor EM-X prototype."""
    return EMX(MachineConfig(n_pes=80).with_(**overrides))


def paper_machine(n_pes: int, **overrides) -> EMX:
    """One of the paper's two experiment platforms (16 or 64 PEs)."""
    if n_pes not in (16, 64):
        raise ConfigError(f"the paper evaluates P=16 and P=64, got {n_pes}")
    return EMX(MachineConfig(n_pes=n_pes).with_(**overrides))


def small_machine(n_pes: int = 4, **overrides) -> EMX:
    """A small machine for unit tests and quickstart examples."""
    return EMX(MachineConfig(n_pes=n_pes, memory_words=1 << 16).with_(**overrides))
