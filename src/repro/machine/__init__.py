"""Machine assembly: processors + network + runtime services.

:class:`~repro.machine.machine.EMX` is the user-facing facade — build
one from a :class:`~repro.config.MachineConfig`, register thread
functions, spawn initial threads, and :meth:`run`.  Presets mirror the
hardware (the 80-PE prototype) and the paper's experimental platforms
(16 and 64 processors).
"""

from .machine import EMX, MachineReport
from .presets import emx80, paper_machine, small_machine

__all__ = ["EMX", "MachineReport", "emx80", "paper_machine", "small_machine"]
