"""The EM-X machine facade.

Typical use::

    from repro import EMX, MachineConfig

    m = EMX(MachineConfig(n_pes=16))

    @m.thread
    def hello(ctx, mate):
        value = yield ctx.read(ctx.ga(mate, 0))
        yield ctx.compute(10)

    m.pes[1].memory.write(0, 42)
    m.spawn(0, "hello", 1)
    report = m.run()

The machine owns the event engine, the Omega network, the shared
program registry, and the barrier table; processors pull everything
else from it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CYCLE_SECONDS, MachineConfig
from ..core.registry import ProgramRegistry, ThreadFunc
from ..core.sync import GlobalBarrier
from ..core.thread import EMThread
from ..core.threadlib import ThreadCtx
from ..errors import ProgramError
from ..metrics.breakdown import Breakdown, aggregate_breakdown
from ..metrics.counters import PECounters, SwitchKind
from ..network import build_network
from ..network.stats import NetworkStats
from ..obs.bus import EventBus
from ..obs.events import BarrierEvent, ThreadLife
from ..packet import Packet, PacketKind
from ..processor import EMCYProcessor
from ..processor.exu import _invoke_words
from ..sim import Engine

__all__ = ["EMX", "MachineReport"]


@dataclass
class MachineReport:
    """Everything a run produced, ready for the metrics layer."""

    config: MachineConfig
    runtime_cycles: int
    events_fired: int
    counters: list[PECounters]
    network: NetworkStats
    #: Per-PE burst traces (populated when ``MachineConfig.trace`` is on).
    traces: dict[int, list] | None = None
    #: Hybrid-fidelity fast-forward accounting (``None`` for detailed
    #: runs): how many packets/cycles were advanced analytically and how
    #: many events that saved.  Diagnostic only — deliberately excluded
    #: from metric comparisons, like ``events_fired``.
    fastforward: dict | None = None
    #: Cohort-compiler accounting (``None`` unless ``compiled=True``):
    #: per-front-end thread counts, cohort census, bailouts.  Diagnostic
    #: only, excluded from metric comparisons like ``fastforward``.
    cohort: dict | None = None
    #: Window-protocol accounting for sharded runs (``None`` otherwise):
    #: protocol name, barrier/window counts, coalesce count, per-shard
    #: barrier wall time and idle windows, lookahead-matrix bounds.
    #: Diagnostic only — it depends on K and wall clocks, so it is
    #: excluded from the serialised report and all metric comparisons.
    windows: dict | None = None

    @property
    def runtime_seconds(self) -> float:
        """Wall time of the run on the simulated 20 MHz machine."""
        return self.runtime_cycles * CYCLE_SECONDS

    @property
    def breakdown(self) -> Breakdown:
        """Machine-wide cycle breakdown (Fig. 8's four components)."""
        return aggregate_breakdown(self.counters)

    def switches(self, kind: SwitchKind) -> float:
        """Average number of switches of ``kind`` per processor (Fig. 9)."""
        return sum(c.switches[kind] for c in self.counters) / len(self.counters)

    @property
    def comm_seconds(self) -> float:
        """Mean per-processor *idle* communication time in seconds."""
        comm = self.breakdown.communication / len(self.counters)
        return comm * CYCLE_SECONDS

    @property
    def comm_fig6_seconds(self) -> float:
        """Mean per-processor communication time as Fig. 6 measures it.

        The paper's communication time is the residual non-useful time:
        idle waiting for remote data *plus* the cycles burned on failed
        synchronisation re-checks while waiting for other threads — time
        lost to communication/synchronisation rather than to useful work
        or mandatory per-read switching.
        """
        n = len(self.counters)
        stalls = sum(c.sync_stall_cycles for c in self.counters)
        return (self.breakdown.communication + stalls) / n * CYCLE_SECONDS


class EMX:
    """A simulated EM-X multiprocessor."""

    def __init__(
        self, config: MachineConfig | None = None, obs: EventBus | None = None
    ) -> None:
        self.config = config or MachineConfig()
        self.config.validate()
        from ..sim import parallel  # machine ↔ parallel: lazy to break the cycle

        #: Shard context when built inside ``repro.run(..., shards=K)``;
        #: ``None`` selects the legacy sequential machine.
        self.shard = parallel.active_context()
        #: The caller's bus; in a sharded run events are captured in a
        #: per-shard log and replayed into this bus after merging.
        self._outer_obs = obs
        if self.shard is not None and obs is not None:
            from ..obs.merge import ShardEventLog

            obs = ShardEventLog()
        #: Observability bus (``None`` = tracing off; every emit site in
        #: the model guards on exactly this attribute being non-None).
        self.obs = obs
        self.engine = Engine(self.config.max_cycles)
        if self.shard is not None:
            from ..network.sharded import ShardedOmegaNetwork

            self.network = ShardedOmegaNetwork(
                self.engine, self.config, self.shard.spec.owns, obs=obs,
                spec=self.shard.spec,
            )
        else:
            self.network = build_network(self.engine, self.config, obs=obs)
        self.registry = ProgramRegistry()
        self.live_threads = 0
        self._next_tid = 0
        self._barriers: dict[int, GlobalBarrier] = {}
        self.pes = [EMCYProcessor(pe, self) for pe in range(self.config.n_pes)]
        local_events = getattr(self.network, "ff_local_events", None)
        for proc in self.pes:
            self.network.attach(proc.pe, proc.deliver)
            if local_events is not None:
                local_events[proc.pe] = proc.pending_local_events
        if self.shard is None:
            self.engine.quiescence_watcher = self._stuck_report
        #: Cohort compiler (``compiled=True`` only): intercepts thread
        #: creation to swap in compiled effect steppers.
        self.cohorts = None
        if self.config.compiled:
            from ..compile.cohort import CohortManager

            self.cohorts = CohortManager(self)
            self.engine.finish_hooks.append(self.cohorts.on_drain)

    # ------------------------------------------------------------------
    # Program loading
    # ------------------------------------------------------------------
    def register(self, func: ThreadFunc, name: str | None = None) -> str:
        """Register a thread function (a template segment)."""
        return self.registry.register(func, name)

    def thread(self, func: ThreadFunc) -> ThreadFunc:
        """Decorator form of :meth:`register`."""
        self.register(func)
        return func

    # ------------------------------------------------------------------
    # Spawning and thread creation
    # ------------------------------------------------------------------
    def spawn(self, pe: int, func_name: str, *args) -> None:
        """Inject an invocation packet for ``func_name`` on ``pe``.

        Callable before or during :meth:`run`; the packet enters the
        PE's hardware FIFO at the current simulated time.
        """
        if not (0 <= pe < self.config.n_pes):
            raise ProgramError(f"spawn on PE {pe} of {self.config.n_pes}")
        if func_name not in self.registry:
            raise ProgramError(f"spawn of unregistered thread function {func_name!r}")
        if self.shard is not None and not self.shard.spec.owns(pe):
            return  # another shard simulates this PE (setup is replicated)
        pkt = Packet(
            kind=PacketKind.INVOKE,
            src=pe,
            dst=pe,
            data=(func_name, args, None),
            words=_invoke_words(len(args)),
        )
        self.pes[pe].schedule_enqueue(self.engine.now, pkt)

    def create_thread(self, pe: int, func_name: str, args: tuple, cont) -> EMThread:
        """Instantiate a thread (EXU internal; called on INVOKE dispatch)."""
        proc = self.pes[pe]
        func = self.registry.get(func_name)
        frame = proc.frames.create()
        tid = self._next_tid
        ctx = ThreadCtx(pe, self.config.n_pes, proc.memory, proc.guest_state, tid)
        if self.cohorts is not None:
            gen = self.cohorts.instantiate(func, ctx, args, cont)
        else:
            gen = func(ctx, *args) if cont is None else func(ctx, *args, cont)
        thread = EMThread(tid, pe, frame, gen, name=f"{func_name}@{pe}")
        obs = self.obs
        if obs is not None:
            thread.on_transition = self._emit_thread_transition
            obs.emit(ThreadLife(self.engine.now, pe, tid, thread.name, "created"))
        self._next_tid += 1
        self.live_threads += 1
        proc.live_threads += 1
        proc.counters.threads_started += 1
        return thread

    def _emit_thread_transition(self, thread: EMThread, new) -> None:
        """Thread-state hook (installed only when observability is on)."""
        self.obs.emit(
            ThreadLife(self.engine.now, thread.pe, thread.tid, thread.name, new.value)
        )

    # ------------------------------------------------------------------
    # Barriers
    # ------------------------------------------------------------------
    def make_barrier(self, parties: list[int] | int, hub: int = 0) -> GlobalBarrier:
        """Create an iteration barrier.

        ``parties`` is either one count applied to every PE or a per-PE
        list; PEs with zero parties do not participate.
        """
        if isinstance(parties, int):
            parties = [parties] * self.config.n_pes
        bar = GlobalBarrier(self.config.n_pes, parties, hub)
        bar.wire(self._make_release_sender(bar))
        self._barriers[bar.barrier_id] = bar
        return bar

    def _make_release_sender(self, bar: GlobalBarrier):
        hub_obu = self.pes[bar.hub].obu

        def send_release(pe: int, gen: int) -> None:
            hub_obu.inject(
                Packet(
                    kind=PacketKind.SYNC_RELEASE,
                    src=bar.hub,
                    dst=pe,
                    data=(bar.barrier_id, gen),
                )
            )

        return send_release

    def barrier_hub_arrive(self, pkt: Packet) -> None:
        """IBU hook: a SYNC_ARRIVE packet reached the hub."""
        barrier_id, gen = pkt.data
        bar = self._barriers[barrier_id]
        if self.obs is not None:
            self.obs.emit(
                BarrierEvent(self.engine.now, pkt.src, barrier_id, gen, "hub")
            )
        if bar.hub_arrive(gen):
            bar.broadcast_release(gen)

    def barrier_release(self, pe: int, pkt: Packet) -> None:
        """IBU hook: a SYNC_RELEASE packet reached a member PE."""
        barrier_id, gen = pkt.data
        if self.obs is not None:
            self.obs.emit(BarrierEvent(self.engine.now, pe, barrier_id, gen, "release"))
        self._barriers[barrier_id].release(pe, gen)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: int | None = None) -> MachineReport:
        """Run to quiescence (or ``until``) and return the report."""
        if self.shard is not None:
            from ..sim import parallel

            return parallel.run_windowed(self, until)
        self.engine.run(until)
        finalize = getattr(self.network, "finalize_stats", None)
        if finalize is not None:
            finalize()
        runtime = max((p.counters.last_active for p in self.pes), default=0)
        for proc in self.pes:
            proc.counters.check_accounting()
        return MachineReport(
            config=self.config,
            runtime_cycles=runtime,
            events_fired=self.engine.events_fired,
            counters=[p.counters for p in self.pes],
            network=self.network.stats,
            traces=self.traces() if self.config.trace else None,
            fastforward=self._fastforward_summary(),
            cohort=self._cohort_summary(),
        )

    def _fastforward_summary(self) -> dict | None:
        """Fast-forward accounting for hybrid runs (None otherwise)."""
        if self.config.fidelity != "hybrid":
            return None
        net = self.network
        dma_folds = sum(p.ibu.dma_folds for p in self.pes)
        kicks = sum(p.exu.kicks_inlined for p in self.pes)
        return {
            "packets_forwarded": getattr(net, "ff_packets", 0),
            "packets_total": net.stats.packets,
            "transit_cycles_forwarded": getattr(net, "ff_transit_cycles", 0),
            "transit_cycles_total": net.stats.total_latency,
            "dma_folds": dma_folds,
            "kicks_inlined": kicks,
            "events_saved": getattr(net, "ff_events_saved", 0) + dma_folds + kicks,
        }

    def _cohort_summary(self) -> dict | None:
        """Cohort-compiler accounting for compiled runs (None otherwise)."""
        if self.cohorts is None:
            return None
        return self.cohorts.summary()

    def traces(self) -> dict[int, list]:
        """Per-PE trace events (requires ``MachineConfig(trace=True)``)."""
        return {proc.pe: proc.trace for proc in self.pes}

    def _stuck_report(self) -> str | None:
        reports = [r for r in (p.stuck_report() for p in self.pes) if r]
        if not reports or self.live_threads == 0:
            return None
        return "; ".join(reports[:8])
