"""Reproduction of *Fine-Grain Multithreading with the EM-X
Multiprocessor* (Sohn et al., SPAA 1997).

An event-driven simulator of the EM-X distributed-memory multiprocessor
— EMC-Y processors with by-passing DMA remote reads, hardware FIFO
thread scheduling, and a circular Omega network — plus the fine-grain
multithreading runtime, the paper's two workloads (multithreaded bitonic
sorting and FFT), and the harness regenerating every figure of the
paper's evaluation.

Quickstart — run a paper workload through the app registry::

    import repro

    report = repro.run("fft", n=1024, n_pes=16, h=4)
    print(report.runtime_cycles, report.breakdown)

Execution strategy (process sharding, hybrid fidelity, the cohort
compiler) is one object::

    report = repro.run("fft", n=1024, n_pes=16, h=4,
                       plan=repro.ExecutionPlan(shards=4))

Or drive the machine directly::

    from repro import EMX, MachineConfig

    m = EMX(MachineConfig(n_pes=4))

    @m.thread
    def reader(ctx, mate):
        value = yield ctx.read(ctx.ga(mate, 0))
        yield ctx.compute(10)

    m.pes[1].memory.write(0, 42)
    m.spawn(0, "reader", 1)
    report = m.run()
    print(report.runtime_cycles, report.network.summary())
"""

from .api import APPS, ExecutionPlan, app_names, connect, get_app, register_app, run
from .config import CLOCK_HZ, CYCLE_SECONDS, MachineConfig, TimingModel
from .core import GlobalBarrier, OrderToken, ThreadCtx
from .errors import ReproError
from .machine import EMX, MachineReport, emx80, paper_machine, small_machine
from .metrics import Breakdown, Bucket, SwitchKind, overlap_efficiency, overlap_series
from .packet import GlobalAddress

__version__ = "1.0.0"

__all__ = [
    "run",
    "connect",
    "ExecutionPlan",
    "APPS",
    "app_names",
    "get_app",
    "register_app",
    "EMX",
    "MachineConfig",
    "TimingModel",
    "MachineReport",
    "GlobalAddress",
    "GlobalBarrier",
    "OrderToken",
    "ThreadCtx",
    "Breakdown",
    "Bucket",
    "SwitchKind",
    "overlap_efficiency",
    "overlap_series",
    "ReproError",
    "emx80",
    "paper_machine",
    "small_machine",
    "CLOCK_HZ",
    "CYCLE_SECONDS",
    "__version__",
]
