"""Simulated time: integer EMC-Y cycles and conversion to wall seconds.

The whole simulator counts time in integer clock cycles of the 20 MHz
EMC-Y.  Figures in the paper report seconds, so the experiment layer
converts at the edge with :func:`cycles_to_seconds`.
"""

from __future__ import annotations

from ..config import CYCLE_SECONDS
from ..errors import SimulationError

__all__ = ["Clock", "cycles_to_seconds", "seconds_to_cycles"]


def cycles_to_seconds(cycles: int) -> float:
    """Convert an EMC-Y cycle count to seconds (50 ns per cycle)."""
    return cycles * CYCLE_SECONDS


def seconds_to_cycles(seconds: float) -> int:
    """Convert seconds to the nearest whole EMC-Y cycle count."""
    return round(seconds / CYCLE_SECONDS)


class Clock:
    """A monotonically advancing cycle counter.

    The engine owns one clock; entities read :attr:`now` and never write
    it.  Attempting to move time backwards raises
    :class:`~repro.errors.SimulationError` — that always indicates a
    scheduling bug, never a legal model state.
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise SimulationError(f"clock cannot start at negative time {start}")
        self._now = int(start)

    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    @property
    def now_seconds(self) -> float:
        """Current simulated time in seconds."""
        return cycles_to_seconds(self._now)

    def advance_to(self, when: int) -> None:
        """Move the clock forward to ``when`` cycles.

        ``when`` may equal :attr:`now` (many events share a timestamp)
        but may never precede it.
        """
        if when < self._now:
            raise SimulationError(f"clock moved backwards: {self._now} -> {when}")
        self._now = when

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Clock(now={self._now})"
