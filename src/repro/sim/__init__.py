"""Discrete-event simulation kernel.

A small, dependency-free event engine: a stable priority queue of
``(time, sequence, callback)`` entries and a run loop.  All of the EM-X
model (network deliveries, processor wake-ups, DMA completions) is
expressed as callbacks scheduled on one :class:`~repro.sim.engine.Engine`.

The production queue is a two-tier calendar queue (see
:mod:`repro.sim.queue`); :class:`ReferenceEventQueue` keeps the original
heapq implementation as a differential-testing oracle and benchmark
reference.

Two execution strategies layer on top of the kernel:
:mod:`repro.sim.parallel` shards one simulation across worker processes
under a conservative-window protocol, and :mod:`repro.sim.hybrid`
documents the ``fidelity="hybrid"`` fast-forward layer — conflict-free
windows advanced with closed-form costs, metric-identical by
construction — and provides its differential oracle
(:class:`HybridDifferentialHarness`) and miss-fallback helper
(:func:`call_with_fallback`).
"""

from .clock import Clock, cycles_to_seconds, seconds_to_cycles
from .engine import Engine
from .hybrid import (
    DifferentialResult,
    HybridDifferentialHarness,
    call_with_fallback,
    comparable_report,
    diff_paths,
)
from .queue import EventQueue, ReferenceEventQueue, ScheduledEvent

__all__ = [
    "Clock",
    "DifferentialResult",
    "Engine",
    "EventQueue",
    "HybridDifferentialHarness",
    "ReferenceEventQueue",
    "ScheduledEvent",
    "call_with_fallback",
    "comparable_report",
    "cycles_to_seconds",
    "diff_paths",
    "seconds_to_cycles",
]
