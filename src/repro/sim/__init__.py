"""Discrete-event simulation kernel.

A small, dependency-free event engine: a stable priority queue of
``(time, sequence, callback)`` entries and a run loop.  All of the EM-X
model (network deliveries, processor wake-ups, DMA completions) is
expressed as callbacks scheduled on one :class:`~repro.sim.engine.Engine`.
"""

from .clock import Clock, cycles_to_seconds, seconds_to_cycles
from .engine import Engine
from .queue import EventQueue, ScheduledEvent

__all__ = [
    "Clock",
    "Engine",
    "EventQueue",
    "ScheduledEvent",
    "cycles_to_seconds",
    "seconds_to_cycles",
]
