"""Discrete-event simulation kernel.

A small, dependency-free event engine: a stable priority queue of
``(time, sequence, callback)`` entries and a run loop.  All of the EM-X
model (network deliveries, processor wake-ups, DMA completions) is
expressed as callbacks scheduled on one :class:`~repro.sim.engine.Engine`.

The production queue is a two-tier calendar queue (see
:mod:`repro.sim.queue`); :class:`ReferenceEventQueue` keeps the original
heapq implementation as a differential-testing oracle and benchmark
reference.
"""

from .clock import Clock, cycles_to_seconds, seconds_to_cycles
from .engine import Engine
from .queue import EventQueue, ReferenceEventQueue, ScheduledEvent

__all__ = [
    "Clock",
    "Engine",
    "EventQueue",
    "ReferenceEventQueue",
    "ScheduledEvent",
    "cycles_to_seconds",
    "seconds_to_cycles",
]
