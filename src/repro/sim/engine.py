"""The discrete-event engine driving one simulated EM-X machine.

The engine owns the clock and the event queue.  Model components
schedule callbacks (`schedule`/`schedule_at`); :meth:`Engine.run` pops
events in time order until the queue drains or a cycle limit is hit.

**Hot path.**  :meth:`Engine.run` drains the calendar queue (see
:mod:`repro.sim.queue`) one *cycle batch* at a time: the clock advance,
cycle-limit check and quiescence test happen once per simulated cycle
rather than once per event, and every event of that cycle then fires
from a plain bucket list with nothing but a tombstone check per event.
Determinism is unchanged: a bucket holds its cycle's events in push
(``seq``) order, and the rare cycle whose events spilled to the far
tier falls back to single-event pops that interleave both tiers by the
same global ``(time, seq)`` order — so the firing sequence is exactly
what the reference heapq engine produces, batch drain or not.

``Engine.now`` is a plain attribute (mirrored into :class:`Clock`),
updated only here; model code reads it millions of times per run, so it
must never become a property again.

A *quiescence watcher* may be installed: when the queue drains, the
engine asks it whether the model is genuinely finished; if the watcher
reports live-but-stuck work (suspended threads with no pending wake-up)
the engine raises :class:`~repro.errors.DeadlockError` instead of
silently returning — a lost packet or an unreleasable barrier should
fail loudly.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

from ..errors import DeadlockError, SimulationError
from .clock import Clock
from .queue import EventQueue

__all__ = ["Engine"]


class Engine:
    """Event loop: a clock plus a stable event queue.

    ``queue`` defaults to the calendar :class:`EventQueue`; any object
    with the same contract (``push``/``cancel``/``pop``/``peek_time``/
    ``__len__``) works too — e.g. :class:`~repro.sim.queue.
    ReferenceEventQueue` — at the cost of the generic, non-batched run
    loop.
    """

    def __init__(self, max_cycles: int = 4_000_000_000, queue: Any | None = None) -> None:
        if max_cycles < 1:
            raise SimulationError(f"max_cycles must be positive, got {max_cycles}")
        self.clock = Clock()
        #: Current simulated cycle (plain attribute, kept equal to
        #: ``clock.now``; only the engine writes it).
        self.now = 0
        self.queue = EventQueue() if queue is None else queue
        self.max_cycles = max_cycles
        self.events_fired = 0
        #: Optional callable returning a description of stuck work, or
        #: ``None``/empty string when the model is legitimately done.
        self.quiescence_watcher: Callable[[], str | None] | None = None
        #: Callables fired once per :meth:`run` return, after the drain
        #: loop and before the quiescence check — batch dispatchers
        #: (e.g. the cohort manager) flush end-of-run accounting here.
        self.finish_hooks: list[Callable[[], None]] = []
        #: Optional head-of-cycle hook, called with the new cycle number
        #: after the clock advances and before any of that cycle's
        #: events fire.  The sharded network delivers pending packet
        #: arrivals here, so delivery order is a pure function of the
        #: simulation — independent of how the run is windowed across
        #: shard barriers.  Anything the hook schedules for the current
        #: cycle fires after the cycle's pre-existing events (normal
        #: ``seq`` order).
        self.pre_cycle: Callable[[int], None] | None = None
        # Highest cycle the generic loop has run the hook for (the
        # calendar loop visits each cycle exactly once and needs no
        # tracker).
        self._hooked_cycle = -1
        self._push = self.queue.push  # bound once: schedule() is hot
        if type(self.queue) is EventQueue:
            self._bind_fast_schedule()

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------
    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> Any:
        """Fire ``fn(*args)`` ``delay`` cycles from now; returns a handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self._push(self.now + delay, fn, *args)

    def schedule_at(self, when: int, fn: Callable[..., None], *args: Any) -> Any:
        """Fire ``fn(*args)`` at absolute cycle ``when``; returns a handle."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past: now={self.now}, when={when}")
        return self._push(when, fn, *args)

    def _bind_fast_schedule(self) -> None:
        """Shadow ``schedule``/``schedule_at`` with closures that inline
        :meth:`EventQueue.push`.

        Model code calls these two methods once per event — the single
        extra Python frame of the ``schedule → push`` chain is measurable
        on the fig6 sweep, so when the engine owns the calendar queue the
        push body is fused in.  Semantics are identical: same validation
        (``time >= now >= 0`` subsumes the queue's negative-time check),
        same ``seq`` assignment order, same handles.  Generic queues
        (e.g. :class:`~repro.sim.queue.ReferenceEventQueue`) keep the
        plain class methods.
        """
        queue = self.queue
        near = queue._near
        mask = queue._mask
        window = queue._window
        far = queue._far
        heappush = heapq.heappush
        engine = self

        def schedule(delay: int, fn: Callable[..., None], *args: Any) -> Any:
            if delay < 0:
                raise SimulationError(f"negative delay {delay}")
            time = engine.now + delay
            entry = [time, queue._seq, fn, args]
            queue._seq += 1
            if 0 <= time - queue._base < window:
                near[time & mask].append(entry)
                queue._near_n += 1
            else:
                heappush(far, entry)
            queue._live += 1
            return entry

        def schedule_at(when: int, fn: Callable[..., None], *args: Any) -> Any:
            if when < engine.now:
                raise SimulationError(
                    f"cannot schedule in the past: now={engine.now}, when={when}"
                )
            entry = [when, queue._seq, fn, args]
            queue._seq += 1
            if 0 <= when - queue._base < window:
                near[when & mask].append(entry)
                queue._near_n += 1
            else:
                heappush(far, entry)
            queue._live += 1
            return entry

        self.schedule = schedule
        self.schedule_at = schedule_at

    def cancel(self, handle: Any) -> None:
        """Cancel a scheduled event by handle (no-op if already fired)."""
        self.queue.cancel(handle)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: int | None = None) -> int:
        """Process events until quiescence, ``until``, or ``max_cycles``.

        Returns the clock value when the loop stops.  Raises
        :class:`DeadlockError` if the queue drains while the quiescence
        watcher reports stuck work, and :class:`SimulationError` if the
        cycle limit is exceeded (runaway guest program).
        """
        queue = self.queue
        if type(queue) is EventQueue:
            self._drain_calendar(queue, until)
        else:
            self._drain_generic(queue, until)
        for hook in self.finish_hooks:
            hook()
        if not queue and self.quiescence_watcher is not None:
            stuck = self.quiescence_watcher()
            if stuck:
                raise DeadlockError(f"event queue drained with live work: {stuck}")
        return self.now

    def _limit(self, until: int | None) -> int:
        return self.max_cycles if until is None else min(until, self.max_cycles)

    def _pause_or_raise(self, when: int, until: int | None) -> bool:
        """Handle the next event lying beyond the horizon; True = pause."""
        if until is not None and when <= self.max_cycles:
            # Paused by the caller's horizon, not a failure.
            self.clock.advance_to(until)
            self.now = until
            return True
        raise SimulationError(
            f"simulation exceeded max_cycles={self.max_cycles} "
            f"(next event at {when}); runaway guest program?"
        )

    def _drain_calendar(self, queue: EventQueue, until: int | None) -> None:
        """Batch-drain loop over the calendar queue's cycle buckets."""
        limit = self._limit(until)
        clock = self.clock
        while queue._live:
            t, bucket = queue.next_cycle()
            if t > limit:
                if self._pause_or_raise(t, until):
                    return
            clock.advance_to(t)
            self.now = t
            pre_cycle = self.pre_cycle
            if pre_cycle is not None:
                pre_cycle(t)
            if bucket is None:
                # Rare: this cycle's events (partly) spilled to the far
                # heap; single pops interleave both tiers by seq.
                self._drain_one_cycle_generic(queue, t)
                continue
            # Hot path: fire the whole bucket in place.  Same-cycle
            # pushes append to `bucket` while we iterate, so the index
            # runs until it falls off the (possibly growing) end —
            # IndexError is the loop exit, free in 3.11 until raised.
            # Tombstoned entries just skip.
            i = 0
            fired = 0
            try:
                while True:
                    try:
                        entry = bucket[i]
                    except IndexError:
                        break  # drained (3.11 try setup is free)
                    i += 1
                    fn = entry[2]
                    if fn is not None:
                        entry[2] = None
                        fired += 1
                        fn(*entry[3])
            finally:
                self.events_fired += fired
            bucket.clear()
            queue.finish_cycle(t, fired, i)

    def _drain_one_cycle_generic(self, queue: EventQueue, t: int) -> None:
        while True:
            if queue.peek_time() != t:
                return
            ev = queue.pop()
            self.events_fired += 1
            ev.fn(*ev.args)

    def _drain_generic(self, queue: Any, until: int | None) -> None:
        """Reference loop: one peek/pop per event, any queue object."""
        limit = self._limit(until)
        clock = self.clock
        while queue:
            when = queue.peek_time()
            assert when is not None  # queue is non-empty
            if when > limit:
                if self._pause_or_raise(when, until):
                    return
            ev = queue.pop()
            clock.advance_to(ev.time)
            self.now = ev.time
            if self.pre_cycle is not None and ev.time > self._hooked_cycle:
                self._hooked_cycle = ev.time
                self.pre_cycle(ev.time)
            self.events_fired += 1
            ev.fn(*ev.args)

    def step(self) -> bool:
        """Fire exactly one event.  Returns False when the queue is empty."""
        if not self.queue:
            return False
        ev = self.queue.pop()
        self.clock.advance_to(ev.time)
        self.now = ev.time
        self.events_fired += 1
        ev.fn(*ev.args)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Engine(now={self.now}, pending={len(self.queue)}, fired={self.events_fired})"
