"""The discrete-event engine driving one simulated EM-X machine.

The engine owns the clock and the event queue.  Model components
schedule callbacks (`schedule`/`schedule_at`); :meth:`Engine.run` pops
events in time order until the queue drains or a cycle limit is hit.

A *quiescence watcher* may be installed: when the queue drains, the
engine asks it whether the model is genuinely finished; if the watcher
reports live-but-stuck work (suspended threads with no pending wake-up)
the engine raises :class:`~repro.errors.DeadlockError` instead of
silently returning — a lost packet or an unreleasable barrier should
fail loudly.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import DeadlockError, SimulationError
from .clock import Clock
from .queue import EventQueue

__all__ = ["Engine"]


class Engine:
    """Event loop: a clock plus a stable event queue."""

    def __init__(self, max_cycles: int = 4_000_000_000) -> None:
        if max_cycles < 1:
            raise SimulationError(f"max_cycles must be positive, got {max_cycles}")
        self.clock = Clock()
        self.queue = EventQueue()
        self.max_cycles = max_cycles
        self.events_fired = 0
        #: Optional callable returning a description of stuck work, or
        #: ``None``/empty string when the model is legitimately done.
        self.quiescence_watcher: Callable[[], str | None] | None = None

    # ------------------------------------------------------------------
    # Scheduling API
    # ------------------------------------------------------------------
    @property
    def now(self) -> int:
        """Current simulated cycle."""
        return self.clock.now

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> int:
        """Fire ``fn(*args)`` ``delay`` cycles from now; returns a handle."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.queue.push(self.clock.now + delay, fn, *args)

    def schedule_at(self, when: int, fn: Callable[..., None], *args: Any) -> int:
        """Fire ``fn(*args)`` at absolute cycle ``when``; returns a handle."""
        if when < self.clock.now:
            raise SimulationError(f"cannot schedule in the past: now={self.clock.now}, when={when}")
        return self.queue.push(when, fn, *args)

    def cancel(self, handle: int) -> None:
        """Cancel a scheduled event by handle (no-op if already fired)."""
        self.queue.cancel(handle)

    # ------------------------------------------------------------------
    # Run loop
    # ------------------------------------------------------------------
    def run(self, until: int | None = None) -> int:
        """Process events until quiescence, ``until``, or ``max_cycles``.

        Returns the clock value when the loop stops.  Raises
        :class:`DeadlockError` if the queue drains while the quiescence
        watcher reports stuck work, and :class:`SimulationError` if the
        cycle limit is exceeded (runaway guest program).
        """
        limit = self.max_cycles if until is None else min(until, self.max_cycles)
        while self.queue:
            when = self.queue.peek_time()
            assert when is not None  # queue is non-empty
            if when > limit:
                if until is not None and when <= self.max_cycles:
                    # Paused by the caller's horizon, not a failure.
                    self.clock.advance_to(until)
                    return self.clock.now
                raise SimulationError(
                    f"simulation exceeded max_cycles={self.max_cycles} "
                    f"(next event at {when}); runaway guest program?"
                )
            ev = self.queue.pop()
            self.clock.advance_to(ev.time)
            self.events_fired += 1
            ev.fn(*ev.args)
        if self.quiescence_watcher is not None:
            stuck = self.quiescence_watcher()
            if stuck:
                raise DeadlockError(f"event queue drained with live work: {stuck}")
        return self.clock.now

    def step(self) -> bool:
        """Fire exactly one event.  Returns False when the queue is empty."""
        if not self.queue:
            return False
        ev = self.queue.pop()
        self.clock.advance_to(ev.time)
        self.events_fired += 1
        ev.fn(*ev.args)
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Engine(now={self.clock.now}, pending={len(self.queue)}, fired={self.events_fired})"
