"""A stable priority queue of scheduled events.

Events firing at the same cycle run in scheduling order (FIFO within a
timestamp).  Stability matters: the EM-X model leans on deterministic
ordering — e.g. the hardware FIFO thread queue and the network's
non-overtaking rule — so ties must never be broken arbitrarily.

Two implementations share one contract:

:class:`EventQueue`
    The production queue: a **two-tier calendar queue**.  A ring of
    near-future cycle buckets (one plain ``list`` per cycle in a sliding
    window) absorbs the hot path — model delays are tens of cycles, so
    virtually every push is a single ``list.append`` and every pop is an
    index bump.  Events outside the window (or scheduled behind the
    drain cursor by a paused caller) spill to a binary-heap far tier
    that the pop path consults by ``(time, seq)``.

:class:`ReferenceEventQueue`
    The original heapq implementation, kept as the obviously-correct
    oracle: property tests assert both queues produce identical pop
    order on random push/cancel workloads, and the engine benchmark
    measures the calendar queue's speedup against it on real workloads.

**Determinism argument.**  Entries carry a globally monotonic ``seq``
assigned at push.  Within a near bucket, entries are appended in push
order, so same-cycle events drain in ``seq`` order; the far heap orders
by ``(time, seq)``; and when both tiers hold events, the pop path picks
the smaller ``(time, seq)`` pair.  Every pop therefore returns the
globally minimal live ``(time, seq)`` — exactly the order the reference
heapq produces — independent of bucket-window size or spill pattern.

**Cancellation** is a *tombstone slot*: the handle returned by
:meth:`EventQueue.push` is the (opaque) mutable entry itself, and
cancelling stores ``None`` in its callable slot.  Firing tombstones the
entry the same way, so a cancel that races a same-cycle pop is a strict
no-op and ``len(queue)`` — a simple live counter — can never drift.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, NamedTuple

from ..errors import SimulationError

__all__ = ["ScheduledEvent", "EventQueue", "ReferenceEventQueue"]

# Entry layout (mutable list so the fn slot can be tombstoned in place):
_TIME, _SEQ, _FN, _ARGS = 0, 1, 2, 3


class ScheduledEvent(NamedTuple):
    """One popped event: fire ``fn(*args)`` at cycle ``time``.

    ``seq`` is a monotonically increasing tie-breaker assigned by the
    queue; callers never set it.
    """

    time: int
    seq: int
    fn: Callable[..., None]
    args: tuple[Any, ...]


class EventQueue:
    """Two-tier calendar queue with stable same-time ordering.

    ``window`` (a power of two) is the width of the near-future bucket
    ring; pushes with ``base <= time < base + window`` go to a bucket,
    the rest to the far heap.  ``base`` is the drain cursor: every event
    before it has already left the near tier.
    """

    __slots__ = ("_near", "_window", "_mask", "_base", "_far", "_seq", "_live", "_near_n")

    def __init__(self, window: int = 8192) -> None:
        if window < 1 or window & (window - 1):
            raise SimulationError(f"bucket window must be a power of two, got {window}")
        self._near: list[list] = [[] for _ in range(window)]
        self._window = window
        self._mask = window - 1
        self._base = 0  # all near-tier events with time < base are gone
        self._far: list[list] = []  # heap of entries, ordered by (time, seq)
        self._seq = 0
        self._live = 0  # live (pushed, not fired, not cancelled) events
        self._near_n = 0  # physical entries in the ring, tombstones included

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def push(self, time: int, fn: Callable[..., None], *args: Any) -> Any:
        """Schedule ``fn(*args)`` at ``time``; returns an opaque handle.

        The handle is only meaningful to :meth:`cancel`.
        """
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        entry = [time, self._seq, fn, args]
        self._seq += 1
        if 0 <= time - self._base < self._window:
            self._near[time & self._mask].append(entry)
            self._near_n += 1
        else:
            heapq.heappush(self._far, entry)
        self._live += 1
        return entry

    def cancel(self, handle: Any) -> None:
        """Cancel a previously pushed event.

        Cancellation tombstones the entry in place: the fired/cancelled
        state lives in one slot, so cancelling an already-fired (or
        already-cancelled, or unknown) handle is a silent no-op and the
        live count cannot drift even when a cancel races a same-cycle
        pop.  The tombstoned entry is physically dropped when the drain
        cursor reaches it.
        """
        if type(handle) is list and len(handle) == 4 and handle[_FN] is not None:
            handle[_FN] = None
            handle[_ARGS] = ()  # free references early
            self._live -= 1

    # ------------------------------------------------------------------
    # Draining
    # ------------------------------------------------------------------
    def _far_head(self) -> list | None:
        """The earliest live far-tier entry (drops tombstones), or None."""
        far = self._far
        while far and far[0][_FN] is None:
            heapq.heappop(far)
        return far[0] if far else None

    def _near_head(self) -> tuple[int, list] | None:
        """(time, bucket) of the earliest live near event, or ``None``.

        Scans forward from ``base`` without moving it, physically
        dropping tombstoned prefixes so repeated scans shrink.  The
        bucket's first entry is guaranteed live on return.
        """
        if self._near_n == 0:
            return None
        near, mask = self._near, self._mask
        for t in range(self._base, self._base + self._window):
            bucket = near[t & mask]
            if not bucket:
                continue
            while bucket and bucket[0][_FN] is None:
                del bucket[0]
                self._near_n -= 1
            if bucket:
                return t, bucket
            if self._near_n == 0:
                return None
        return None  # pragma: no cover - near_n would be 0 first

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest live event (min ``(time, seq)``)."""
        nb = self._near_head()
        fh = self._far_head()
        if nb is None and fh is None:
            raise SimulationError("pop() on an empty event queue")
        if nb is not None and (fh is None or (nb[0], nb[1][0][_SEQ]) < (fh[_TIME], fh[_SEQ])):
            t, bucket = nb
            entry = bucket[0]
            del bucket[0]
            self._near_n -= 1
            self._base = t  # later same-cycle pushes still land in this bucket
        else:
            entry = heapq.heappop(self._far)
        entry[_FN], fn = None, entry[_FN]  # tombstone: late cancels are no-ops
        self._live -= 1
        return ScheduledEvent(entry[_TIME], entry[_SEQ], fn, entry[_ARGS])

    def peek_time(self) -> int | None:
        """Time of the earliest live event, or ``None`` if empty."""
        nb = self._near_head()
        fh = self._far_head()
        if nb is None:
            return fh[_TIME] if fh is not None else None
        if fh is not None and fh[_TIME] < nb[0]:
            return fh[_TIME]
        return nb[0]

    # ------------------------------------------------------------------
    # Batch interface (the engine's hot path; see Engine.run)
    # ------------------------------------------------------------------
    def next_cycle(self) -> tuple[int, list | None] | None:
        """Earliest live cycle and its near bucket, for batch draining.

        Returns ``(time, bucket)`` where *bucket* is the near-ring list
        for ``time`` — or ``None`` when the far tier holds a live event
        at or before ``time``, in which case the cycle's events must be
        interleaved by ``seq`` with single :meth:`pop` calls (see
        :meth:`far_intrudes` for the standalone predicate).
        """
        nb = self._near_head()
        fh = self._far_head()
        if fh is None:
            return nb
        if nb is None:
            return fh[_TIME], None
        t = nb[0]
        if fh[_TIME] <= t:
            # The cycle lives (at least partly) in the far tier; the
            # caller must take the pop path.
            return min(fh[_TIME], t), None
        return nb

    def far_intrudes(self, time: int) -> bool:
        """True if the far tier holds a live event at or before ``time``."""
        fh = self._far_head()
        return fh is not None and fh[_TIME] <= time

    def finish_cycle(self, time: int, fired: int, consumed: int) -> None:
        """Account a fully drained near bucket and advance the cursor."""
        self._near_n -= consumed
        self._live -= fired
        self._base = time + 1


class ReferenceEventQueue:
    """The original binary-heap queue: the correctness oracle.

    Same contract as :class:`EventQueue` (opaque cancel handles, lazily
    dropped cancellations, live-only ``len``), implemented with one
    ``heapq`` plus pending/cancelled sets.  Kept for differential tests
    and as the benchmark's fixed reference point.
    """

    __slots__ = ("_heap", "_seq", "_pending", "_cancelled")

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._pending: set[int] = set()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def push(self, time: int, fn: Callable[..., None], *args: Any) -> Any:
        """Schedule ``fn(*args)`` at ``time``; returns an opaque handle."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, ScheduledEvent(time, seq, fn, args))
        self._pending.add(seq)
        return seq

    def cancel(self, handle: Any) -> None:
        """Cancel a pushed event; unknown/fired handles are no-ops."""
        if handle in self._pending:
            self._pending.discard(handle)
            self._cancelled.add(handle)

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest live event."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.seq in self._cancelled:
                self._cancelled.discard(ev.seq)
                continue
            self._pending.discard(ev.seq)
            return ev
        raise SimulationError("pop() on an empty event queue")

    def peek_time(self) -> int | None:
        """Time of the earliest live event, or ``None`` if empty."""
        while self._heap:
            ev = self._heap[0]
            if ev.seq in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(ev.seq)
                continue
            return ev.time
        return None
