"""A stable priority queue of scheduled events.

Events firing at the same cycle run in scheduling order (FIFO within a
timestamp).  Stability matters: the EM-X model leans on deterministic
ordering — e.g. the hardware FIFO thread queue and the network's
non-overtaking rule — so ties must never be broken arbitrarily.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, NamedTuple

from ..errors import SimulationError

__all__ = ["ScheduledEvent", "EventQueue"]


class ScheduledEvent(NamedTuple):
    """One queue entry: fire ``fn(*args)`` at cycle ``time``.

    ``seq`` is a monotonically increasing tie-breaker assigned by the
    queue; callers never set it.
    """

    time: int
    seq: int
    fn: Callable[..., None]
    args: tuple[Any, ...]


class EventQueue:
    """Binary-heap event queue with stable same-time ordering."""

    __slots__ = ("_heap", "_seq", "_pending", "_cancelled")

    def __init__(self) -> None:
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._pending: set[int] = set()
        self._cancelled: set[int] = set()

    def __len__(self) -> int:
        return len(self._pending)

    def __bool__(self) -> bool:
        return bool(self._pending)

    def push(self, time: int, fn: Callable[..., None], *args: Any) -> int:
        """Schedule ``fn(*args)`` at ``time``; returns a cancellation handle."""
        if time < 0:
            raise SimulationError(f"cannot schedule event at negative time {time}")
        seq = self._seq
        self._seq += 1
        heapq.heappush(self._heap, ScheduledEvent(time, seq, fn, args))
        self._pending.add(seq)
        return seq

    def cancel(self, handle: int) -> None:
        """Cancel a previously pushed event.

        Cancellation is lazy: the entry stays in the heap and is dropped
        when popped.  Cancelling an already-fired or unknown handle is a
        silent no-op (the caller cannot always know whether it raced the
        firing).
        """
        if handle in self._pending:
            self._pending.discard(handle)
            self._cancelled.add(handle)

    def pop(self) -> ScheduledEvent:
        """Remove and return the earliest live event."""
        while self._heap:
            ev = heapq.heappop(self._heap)
            if ev.seq in self._cancelled:
                self._cancelled.discard(ev.seq)
                continue
            self._pending.discard(ev.seq)
            return ev
        raise SimulationError("pop() on an empty event queue")

    def peek_time(self) -> int | None:
        """Time of the earliest live event, or ``None`` if empty."""
        while self._heap:
            ev = self._heap[0]
            if ev.seq in self._cancelled:
                heapq.heappop(self._heap)
                self._cancelled.discard(ev.seq)
                continue
            return ev.time
        return None
