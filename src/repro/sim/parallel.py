"""Conservative-window parallel simulation across forked shard workers.

``repro.run(..., plan=ExecutionPlan(shards=K))`` partitions the
machine's PEs into K contiguous shards.  Each shard is a process
running its own :class:`~repro.sim.engine.Engine` over its own PEs,
advancing in *windows* bounded by the fabric's lookahead.  Packet
delivery itself is window-independent: arrivals land at the head of
their cycle via the engine's ``pre_cycle`` hook (see
:mod:`repro.network.sharded`), so the protocol below only decides *how
far* each shard may run between barriers, never *what* it simulates.

The default ``"adaptive"`` protocol uses the per-pair lookahead matrix
``L[i][j]`` (:func:`repro.network.sharded.lookahead_matrix`) — the real
topology distance between each pair of shards.  Per barrier:

1. every shard broadcasts its boundary packets (*egress*) plus the
   earliest cycle it has any local work (engine queue or pending
   arrivals), computed *before* ingesting this round's ingress;
2. from the identical set of replies, every shard derives ``na[j]`` —
   the earliest cycle shard *j* can possibly fire anything (its own
   next work or an egress arrival addressed to it) — and relaxes it to
   the fixed point ``ea[j] = min(na[j], min_{k≠j}(ea[k] + L[k][j]))``
   (Bellman–Ford over the K shards): the earliest cycle at which *any*
   chain of cross-shard packets could give shard *j* new work;
3. the fleet *coalesces* to ``T = min(ea)`` — one barrier jumps every
   shard over the global idle gap, and ``T = ∞`` terminates the run
   everywhere at once;
4. each shard ingests the egress addressed to it and runs to its own
   horizon ``min_{k≠me}(ea[k] + L[k][me]) - 1`` — far-apart shard
   pairs legitimately synchronise less often than adjacent ones, and a
   single shard (K = 1) simply runs to completion.

Safety: any packet shard *k* injects after this barrier is injected at
cycle ``>= ea[k]`` and needs delivering on shard *me* no earlier than
``ea[k] + L[k][me]``, i.e. beyond the horizon — the pairwise egress
guard in :meth:`~repro.network.sharded.ShardedOmegaNetwork.send`
enforces exactly this bound.  Progress: the shard with minimal ``ea``
has ``ea = na`` (no chain can undercut the global minimum) and a
horizon at or past it, so every round fires at least one real event.

The legacy ``"scalar"`` protocol (every shard runs ``[T, T + L - 1]``
with the one worst-case scalar lookahead) is kept behind
:func:`window_protocol` for comparison; the adaptive protocol must —
and the benchmark gate checks it does — take strictly fewer barriers.
Either way the simulated outcome is byte-identical: windows only pace
the engines.

Transport is a full mesh of ``multiprocessing`` pipes between the
coordinating process (shard 0) and ``os.fork``'d children, mirroring
``runner.pool``'s failure policy: a shard that hits a deterministic
error broadcasts it so every process raises the same exception type,
and a shard that just dies surfaces as a loud
:class:`~repro.errors.SimulationError` (closed pipe / nonzero exit),
never a hang or a silent partial result.

At the final barrier the children ship their owned PEs' counters,
memories, traces, network statistics, event logs and window/barrier
accounting to shard 0, which merges them (deterministically — see
:mod:`repro.obs.merge` and
:func:`repro.network.sharded.merge_network_stats`) and builds the one
:class:`~repro.machine.MachineReport` the caller sees.  Every metric in
that report is a pure function of the simulated run, not the partition:
K ∈ {1, 2, 4, …} produce identical reports.  Only the report's
``windows`` diagnostics section (barrier counts and wall times) depends
on K and the protocol — it is deliberately excluded from the report's
serialised form.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import signal
import sys
import time
from dataclasses import dataclass

from ..errors import DeadlockError, SimulationError

__all__ = [
    "ShardSpec",
    "ShardContext",
    "active_context",
    "activate",
    "partition",
    "window_protocol",
    "call_app",
    "run_windowed",
]

_INF = float("inf")


def partition(n_pes: int, count: int) -> tuple[tuple[int, int], ...]:
    """Contiguous, near-equal ``(lo, hi)`` PE ranges for each shard.

    When ``count`` does not divide ``n_pes`` the remainder spreads one
    extra PE over the trailing shards (``(n_pes * i) // count`` bounds),
    so sizes differ by at most one and the ranges always tile
    ``[0, n_pes)`` exactly.
    """
    if count < 1:
        raise SimulationError(f"shard count must be at least 1, got {count}")
    if count > n_pes:
        raise SimulationError(
            f"cannot split {n_pes} PEs into {count} shards: "
            "each shard needs at least one PE"
        )
    return tuple(
        ((n_pes * i) // count, (n_pes * (i + 1)) // count) for i in range(count)
    )


@dataclass(frozen=True)
class ShardSpec:
    """This process's slice of the machine: which PEs it simulates."""

    index: int
    count: int
    bounds: tuple[tuple[int, int], ...]

    def owns(self, pe: int) -> bool:
        """Is ``pe`` simulated by this shard?  Half-open bounds, so with
        uneven partitions a boundary PE belongs to exactly one shard."""
        lo, hi = self.bounds[self.index]
        return lo <= pe < hi

    def shard_of(self, pe: int) -> int:
        """The shard index owning ``pe``; raises on out-of-range PEs
        (a PE silently owned by nobody would drop its packets)."""
        if 0 <= pe < self.bounds[-1][1]:
            for index, (lo, hi) in enumerate(self.bounds):
                if pe < hi:
                    return index
        raise SimulationError(
            f"PE {pe} outside the partitioned machine of {self.bounds[-1][1]} PEs"
        )


@dataclass
class ShardContext:
    """Active shard identity + the barrier transport, set around an app
    call so :class:`~repro.machine.EMX` can discover it at build time."""

    spec: ShardSpec
    exchange: object


_ACTIVE: ShardContext | None = None


def active_context() -> ShardContext | None:
    """The shard context the current process is running under, if any."""
    return _ACTIVE


@contextlib.contextmanager
def activate(ctx: ShardContext):
    """Scope ``ctx`` as the active shard context."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise SimulationError("nested shard contexts are not supported")
    _ACTIVE = ctx
    try:
        yield ctx
    finally:
        _ACTIVE = None


class _ShardChildDone(BaseException):
    """Raised inside child shards once their results have shipped;
    unwinds straight through the app to the fork trampoline.  Derives
    from BaseException so guest-level ``except Exception`` cannot eat
    it."""


class _RemoteShardError(Exception):
    """A peer shard reported a failure over the exchange."""

    def __init__(self, shard: int, type_name: str, message: str) -> None:
        super().__init__(f"shard {shard}: {type_name}: {message}")
        self.shard = shard
        self.type_name = type_name
        self.message = message


def _rehydrate(exc: _RemoteShardError) -> Exception:
    """Re-raise a peer's failure as its original repro error type."""
    from .. import errors

    cls = getattr(errors, exc.type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = SimulationError
    return cls(f"shard {exc.shard}: {exc.message}")


# ----------------------------------------------------------------------
# Exchanges
# ----------------------------------------------------------------------
class LoopbackExchange:
    """K = 1: the window protocol talking to itself, in-process."""

    def window_barrier(self, payload):
        return [payload]

    def gather_to_root(self, blob):
        return [blob]

    def broadcast_error(self, exc) -> None:
        pass


class PipeExchange:
    """Pairwise-pipe mesh between the K shard processes.

    Window barriers are all-to-all: each pair exchanges its (small)
    payload with the lower-indexed side sending first, sessions ordered
    by ascending peer index — each rendezvous completes without
    requiring progress from a third process, so the pattern cannot
    deadlock, and window payloads stay far below the pipe buffer.  The
    final gather is a plain fan-in to shard 0 (blobs can be large;
    children only send, the root drains them in index order).
    """

    def __init__(self, index: int, count: int, conns: list) -> None:
        self.index = index
        self.count = count
        self.conns = conns  # conns[j] = Connection to shard j (None at own slot)

    def _send(self, peer: int, blob: bytes) -> None:
        try:
            self.conns[peer].send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            raise SimulationError(
                f"shard {peer} crashed (pipe closed while sending): {exc}"
            ) from None

    def _recv(self, peer: int):
        try:
            msg = pickle.loads(self.conns[peer].recv_bytes())
        except (EOFError, OSError) as exc:
            raise SimulationError(
                f"shard {peer} crashed (pipe closed while receiving): {exc}"
            ) from None
        if msg[0] == "err":
            raise _RemoteShardError(peer, msg[1], msg[2])
        return msg

    def window_barrier(self, payload):
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        out = [None] * self.count
        out[self.index] = payload
        for peer in range(self.count):
            if peer == self.index:
                continue
            if self.index < peer:
                self._send(peer, blob)
                out[peer] = self._expect(self._recv(peer), "w", peer)
            else:
                out[peer] = self._expect(self._recv(peer), "w", peer)
                self._send(peer, blob)
        return out

    def gather_to_root(self, blob):
        if self.index == 0:
            blobs = [None] * self.count
            blobs[0] = blob
            for peer in range(1, self.count):
                blobs[peer] = self._expect(self._recv(peer), "done", peer)
            return blobs
        self._send(0, pickle.dumps(("done", blob), protocol=pickle.HIGHEST_PROTOCOL))
        return None

    @staticmethod
    def _expect(msg, tag: str, peer: int):
        if msg[0] != tag:
            raise SimulationError(
                f"shard protocol desync: expected {tag!r} from shard {peer}, "
                f"got {msg[0]!r}"
            )
        return msg[1] if tag == "done" else msg

    def broadcast_error(self, exc) -> None:
        if isinstance(exc, _ShardChildDone):
            return
        try:
            blob = pickle.dumps(("err", type(exc).__name__, str(exc)))
        except Exception:  # pragma: no cover - unpicklable message
            blob = pickle.dumps(("err", type(exc).__name__, "<unprintable>"))
        for peer, conn in enumerate(self.conns):
            if conn is None:
                continue
            try:
                conn.send_bytes(blob)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Entry point: run an app under K shards
# ----------------------------------------------------------------------
def call_app(fn, shards: int | None, kwargs: dict):
    """Call app ``fn(**kwargs)``, optionally under ``shards`` workers.

    ``shards`` of ``None``/``0`` is the legacy sequential path — the
    live network models, untouched.  ``shards >= 1`` selects the
    sharded semantics (see :mod:`repro.network.sharded`); K is clamped
    to the PE count, K = 1 runs it in-process, and K > 1 forks K - 1
    workers that replay the (deterministic, seeded) app setup and
    simulate their own PEs.  One call, one run: the machine a sharded
    app builds cannot be re-run after its report is returned.
    """
    if not shards:
        return fn(**kwargs)
    n_pes = kwargs.get("n_pes")
    if not isinstance(n_pes, int) or n_pes < 1:
        raise SimulationError(f"sharded run needs an explicit n_pes, got {n_pes!r}")
    config = kwargs.get("config")
    if config is not None and getattr(config, "fidelity", None) == "hybrid":
        # Hybrid fidelity silently degrades to detailed under shards;
        # the user-facing warning for this combination lives in
        # ExecutionPlan.validate().  Here we only mirror the fact into
        # the observation stream, where the obs bus is in reach.
        obs = kwargs.get("obs")
        if obs is not None:
            from ..obs.events import FastForward

            obs.emit(FastForward(0, 0, 0, "disabled", -1, 0))
    count = max(1, min(int(shards), n_pes))
    bounds = partition(n_pes, count)
    if count == 1:
        with activate(ShardContext(ShardSpec(0, 1, bounds), LoopbackExchange())):
            return fn(**kwargs)
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only feature
        raise SimulationError("shards > 1 requires a platform with os.fork")

    import multiprocessing

    conns = [[None] * count for _ in range(count)]
    for i in range(count):
        for j in range(i + 1, count):
            a, b = multiprocessing.Pipe()
            conns[i][j] = a
            conns[j][i] = b
    sys.stdout.flush()
    sys.stderr.flush()
    pids = []
    for index in range(1, count):
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                _keep_only(conns, index)
                ctx = ShardContext(
                    ShardSpec(index, count, bounds),
                    PipeExchange(index, count, conns[index]),
                )
                with activate(ctx):
                    fn(**kwargs)
            except _ShardChildDone:
                status = 0
            except BaseException:  # noqa: BLE001 - the err broadcast already ran
                status = 1
            os._exit(status)
        pids.append(pid)
    _keep_only(conns, 0)
    try:
        ctx = ShardContext(ShardSpec(0, count, bounds), PipeExchange(0, count, conns[0]))
        with activate(ctx):
            result = fn(**kwargs)
    except BaseException:
        _reap(pids, kill=True)
        raise
    _reap(pids, kill=False)
    return result


def _keep_only(conns: list[list], index: int) -> None:
    """Close every pipe end that does not belong to shard ``index``."""
    for i, row in enumerate(conns):
        if i == index:
            continue
        for j, conn in enumerate(row):
            if conn is not None and j != index:
                conn.close()


def _reap(pids: list[int], kill: bool) -> None:
    for pid in pids:
        if kill:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        try:
            _, status = os.waitpid(pid, 0)
        except ChildProcessError:  # pragma: no cover - already reaped
            continue
        if not kill and status != 0:
            raise SimulationError(
                f"shard worker {pid} exited with status {os.waitstatus_to_exitcode(status)}"
            )


# ----------------------------------------------------------------------
# The window protocol (driven from EMX.run)
# ----------------------------------------------------------------------
#: Active window protocol: "adaptive" (per-pair lookahead matrix,
#: coalesced windows — the default) or "scalar" (the legacy fixed-length
#: global windows, kept for comparison).  Module-level on purpose: it is
#: read inside the forked shard workers, which inherit it at fork time.
_PROTOCOLS = ("adaptive", "scalar")
_window_protocol = "adaptive"


@contextlib.contextmanager
def window_protocol(name: str):
    """Scope the window protocol for sharded runs started inside.

    Must wrap the *call* that starts the run (``repro.run(...)``):
    workers fork inside it and inherit the setting.  Both protocols
    simulate the identical machine — they differ only in how many
    barriers pace it — so this is a benchmarking/diagnostics knob, not
    a semantics switch.
    """
    if name not in _PROTOCOLS:
        raise SimulationError(
            f"unknown window protocol {name!r}; expected one of {_PROTOCOLS}"
        )
    global _window_protocol
    previous = _window_protocol
    _window_protocol = name
    try:
        yield
    finally:
        _window_protocol = previous


def _earliest_affect(na: list, matrix) -> list:
    """Relax per-shard next-work bounds over the lookahead matrix.

    ``na[j]`` is the earliest cycle shard *j* fires anything on its own
    (local queue, pending arrivals, or an egress record addressed to it
    this round).  The fixed point

        ``ea[j] = min(na[j], min_{k != j}(ea[k] + matrix[k][j]))``

    additionally admits *chains*: shard *k* may be woken early by a
    third shard and then inject toward *j*, so a direct single-hop bound
    would be unsound.  Bellman–Ford over the K shards; K - 1 passes
    reach the fixed point (the longest useful chain visits each shard
    once), usually far fewer.
    """
    count = len(na)
    ea = list(na)
    for _ in range(count - 1):
        changed = False
        for j in range(count):
            best = ea[j]
            for k in range(count):
                if k == j or ea[k] is _INF:
                    continue
                cand = ea[k] + matrix[k][j]
                if cand < best:
                    best = cand
            if best < ea[j]:
                ea[j] = best
                changed = True
        if not changed:
            break
    return ea


def run_windowed(machine, until: int | None = None):
    """Advance a sharded machine in conservative windows to completion.

    Returns the merged :class:`~repro.machine.MachineReport` in the
    coordinating process; raises :class:`_ShardChildDone` in child
    shards once their results have shipped.
    """
    ctx = machine.shard
    exchange = ctx.exchange
    engine = machine.engine
    net = machine.network
    engine.quiescence_watcher = None  # stuck work is judged globally, post-gather
    spec = ctx.spec
    me = spec.index
    count = spec.count
    protocol = _window_protocol
    matrix = net.pair_lookahead
    scalar_l = net.lookahead
    # dst PE -> owning shard, for folding egress arrivals into na[].
    shard_of = []
    for index, (lo, hi) in enumerate(spec.bounds):
        shard_of.extend([index] * (hi - lo))
    wstats = {
        "protocol": protocol,
        "rounds": 0,
        "coalesced": 0,
        "idle_windows": 0,
        "barrier_wall_seconds": 0.0,
        "log": [],
    }
    wlog = wstats["log"]
    perf = time.perf_counter
    prev_horizon: int | None = None
    try:
        while True:
            qnext = engine.queue.peek_time()
            pnext = net.pending_min()
            local_next = qnext if pnext is None else (
                pnext if qnext is None else min(qnext, pnext)
            )
            t0 = perf()
            replies = exchange.window_barrier(("w", net.take_egress(), local_next))
            barrier_dt = perf() - t0
            wstats["barrier_wall_seconds"] += barrier_dt
            # Everyone sees the identical replies, so every shard
            # derives the identical na/ea vectors — no second exchange.
            na = [_INF] * count
            for index, (_, egress, peer_next) in enumerate(replies):
                if peer_next is not None and peer_next < na[index]:
                    na[index] = peer_next
                for record in egress:
                    dst_shard = shard_of[record[5]]
                    if record[0] < na[dst_shard]:
                        na[dst_shard] = record[0]
            for index, (_, egress, _) in enumerate(replies):
                if index != me and egress:
                    net.add_ingress(egress)
            if protocol == "adaptive" and count > 1:
                ea = _earliest_affect(na, matrix)
            else:
                ea = na
            global_next = min(ea)
            if global_next is _INF:
                break
            start = int(global_next)
            if start > engine.max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={engine.max_cycles} "
                    f"(next event at {start}); runaway guest program?"
                )
            if until is not None and start > until:
                break
            if protocol == "scalar":
                horizon = start + scalar_l - 1
            elif count > 1:
                horizon = min(
                    ea[k] + matrix[k][me] for k in range(count) if k != me
                ) - 1
            else:
                horizon = until  # K = 1: nothing to synchronise with
            if until is not None and (horizon is None or horizon > until):
                horizon = until
            wstats["rounds"] += 1
            if prev_horizon is not None and start > prev_horizon + 1:
                wstats["coalesced"] += 1
            if na[me] is _INF or (horizon is not None and na[me] > horizon):
                wstats["idle_windows"] += 1
            fired_before = engine.events_fired
            engine.run(until=horizon)
            end = engine.now if horizon is None else horizon
            wlog.append((start, end, barrier_dt, engine.events_fired - fired_before))
            prev_horizon = end
    except _RemoteShardError as exc:
        raise _rehydrate(exc) from None
    except BaseException as exc:
        exchange.broadcast_error(exc)
        raise
    try:
        blobs = exchange.gather_to_root(_gather_blob(machine, wstats))
    except _RemoteShardError as exc:
        raise _rehydrate(exc) from None
    if blobs is None:
        raise _ShardChildDone()
    return _finalize(machine, blobs)


def _gather_blob(machine, window_stats: dict) -> dict:
    """Everything one shard contributes to the merged report."""
    spec = machine.shard.spec
    owned = [p for p in machine.pes if spec.owns(p.pe)]
    log = machine.obs
    return {
        "counters": {p.pe: p.counters for p in owned},
        "memory": {p.pe: p.memory._words for p in owned},
        "trace": {p.pe: p.trace for p in owned},
        "stats": machine.network.stats,
        "born": machine.network.born_counts,
        "arrive": machine.network.arrival_counts,
        "events": machine.engine.events_fired - machine.network.ticks_fired,
        "obs": log.events if log is not None else None,
        "seq_map": machine.network.seq_map if log is not None else {},
        "stuck": machine._stuck_report(),
        "windows": window_stats,
    }


def _finalize(machine, blobs: list[dict]):
    """Merge the shard blobs into the machine and build its report."""
    from ..machine.machine import MachineReport
    from ..network.sharded import merge_network_stats

    spec = machine.shard.spec
    for index, blob in enumerate(blobs):
        if index == spec.index:
            continue
        for pe, counters in blob["counters"].items():
            machine.pes[pe].counters = counters
        for pe, words in blob["memory"].items():
            machine.pes[pe].memory._words = words
        for pe, trace in blob["trace"].items():
            machine.pes[pe].trace = trace
    stuck = [s for blob in blobs if (s := blob["stuck"])]
    if stuck:
        raise DeadlockError("event queue drained with live work: " + "; ".join(stuck))
    machine.network.stats = merge_network_stats(
        [blob["stats"] for blob in blobs],
        [blob["born"] for blob in blobs],
        [blob["arrive"] for blob in blobs],
    )
    real_bus = machine._outer_obs
    if real_bus is not None:
        from ..obs.merge import merge_shard_events

        merged = merge_shard_events(
            [blob["obs"] or [] for blob in blobs],
            [blob["seq_map"] for blob in blobs],
        )
        emit = real_bus.emit
        for event in merged:
            emit(event)
    windows = _windows_section(machine, blobs, real_bus)
    runtime = max((p.counters.last_active for p in machine.pes), default=0)
    for proc in machine.pes:
        proc.counters.check_accounting()
    return MachineReport(
        config=machine.config,
        runtime_cycles=runtime,
        events_fired=sum(blob["events"] for blob in blobs),
        counters=[p.counters for p in machine.pes],
        network=machine.network.stats,
        traces=machine.traces() if machine.config.trace else None,
        windows=windows,
    )


def _windows_section(machine, blobs: list[dict], real_bus) -> dict:
    """Barrier/window diagnostics for ``MachineReport.windows``.

    Round and coalesce counts are identical on every shard (derived
    from the identical barrier replies), so the coordinator's copy
    stands for the fleet; barrier wall time and idle windows are
    genuinely per shard.  Also emits one SHARD-category
    :class:`~repro.obs.events.ShardWindow` per (shard, window) into the
    outer bus — subscribers must opt into the category, which keeps the
    default observation stream K-invariant.
    """
    net = machine.network
    own = blobs[machine.shard.spec.index]["windows"]
    matrix = net.pair_lookahead
    if matrix is not None and len(matrix) > 1:
        off_diag = [
            matrix[i][j]
            for i in range(len(matrix))
            for j in range(len(matrix))
            if i != j
        ]
        look_min, look_max = min(off_diag), max(off_diag)
    else:
        look_min = look_max = net.lookahead
    section = {
        "protocol": own["protocol"],
        "shards": len(blobs),
        "count": own["rounds"],
        "coalesced": own["coalesced"],
        "lookahead_min": look_min,
        "lookahead_max": look_max,
        "per_shard": [
            {
                "windows": len(blob["windows"]["log"]),
                "idle_windows": blob["windows"]["idle_windows"],
                "barrier_wall_seconds": round(
                    blob["windows"]["barrier_wall_seconds"], 6
                ),
            }
            for blob in blobs
        ],
    }
    if real_bus is not None:
        from ..obs.events import ShardWindow

        slices = sorted(
            (start, end, shard, barrier_dt, fired)
            for shard, blob in enumerate(blobs)
            for start, end, barrier_dt, fired in blob["windows"]["log"]
        )
        emit = real_bus.emit
        for start, end, shard, barrier_dt, fired in slices:
            emit(ShardWindow(start, end, shard, round(barrier_dt * 1e6, 1), fired))
    return section
