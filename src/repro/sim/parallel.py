"""Conservative-window parallel simulation across forked shard workers.

``repro.run(..., shards=K)`` partitions the machine's PEs into K
contiguous shards.  Each shard is a process running its own
:class:`~repro.sim.engine.Engine` over its own PEs, advancing in
lockstep *windows* of length L — the fabric lookahead (see
:func:`repro.network.sharded.lookahead`) — so no packet injected inside
a window can need delivering before the next one.  The protocol, per
window barrier:

1. every shard broadcasts its boundary packets (*egress*) plus the
   earliest cycle it has any local work (engine queue or pending
   arrivals), computed *before* ingesting this round's ingress;
2. every shard computes the identical next window start
   ``T = min(all local-next, all egress arrival cycles)`` — windows
   skip idle gaps, and ``T = ∞`` terminates the run everywhere at once;
3. each shard ingests the egress addressed to it, schedules one
   delivery drain per cycle of ``[T, T + L)``, and runs its engine to
   ``T + L - 1``.

Transport is a full mesh of ``multiprocessing`` pipes between the
coordinating process (shard 0) and ``os.fork``'d children, mirroring
``runner.pool``'s failure policy: a shard that hits a deterministic
error broadcasts it so every process raises the same exception type,
and a shard that just dies surfaces as a loud
:class:`~repro.errors.SimulationError` (closed pipe / nonzero exit),
never a hang or a silent partial result.

At the final barrier the children ship their owned PEs' counters,
memories, traces, network statistics and event logs to shard 0, which
merges them (deterministically — see :mod:`repro.obs.merge` and
:func:`repro.network.sharded.merge_network_stats`) and builds the one
:class:`~repro.machine.MachineReport` the caller sees.  Every metric in
that report is a pure function of the simulated run, not the partition:
K ∈ {1, 2, 4, …} produce identical reports.
"""

from __future__ import annotations

import contextlib
import os
import pickle
import signal
import sys
from dataclasses import dataclass

from ..errors import DeadlockError, SimulationError

__all__ = [
    "ShardSpec",
    "ShardContext",
    "active_context",
    "activate",
    "partition",
    "call_app",
    "run_windowed",
]

_INF = float("inf")


def partition(n_pes: int, count: int) -> tuple[tuple[int, int], ...]:
    """Contiguous, near-equal ``(lo, hi)`` PE ranges for each shard."""
    if count < 1 or count > n_pes:
        raise SimulationError(f"cannot split {n_pes} PEs into {count} shards")
    return tuple(
        ((n_pes * i) // count, (n_pes * (i + 1)) // count) for i in range(count)
    )


@dataclass(frozen=True)
class ShardSpec:
    """This process's slice of the machine: which PEs it simulates."""

    index: int
    count: int
    bounds: tuple[tuple[int, int], ...]

    def owns(self, pe: int) -> bool:
        lo, hi = self.bounds[self.index]
        return lo <= pe < hi


@dataclass
class ShardContext:
    """Active shard identity + the barrier transport, set around an app
    call so :class:`~repro.machine.EMX` can discover it at build time."""

    spec: ShardSpec
    exchange: object


_ACTIVE: ShardContext | None = None


def active_context() -> ShardContext | None:
    """The shard context the current process is running under, if any."""
    return _ACTIVE


@contextlib.contextmanager
def activate(ctx: ShardContext):
    """Scope ``ctx`` as the active shard context."""
    global _ACTIVE
    if _ACTIVE is not None:
        raise SimulationError("nested shard contexts are not supported")
    _ACTIVE = ctx
    try:
        yield ctx
    finally:
        _ACTIVE = None


class _ShardChildDone(BaseException):
    """Raised inside child shards once their results have shipped;
    unwinds straight through the app to the fork trampoline.  Derives
    from BaseException so guest-level ``except Exception`` cannot eat
    it."""


class _RemoteShardError(Exception):
    """A peer shard reported a failure over the exchange."""

    def __init__(self, shard: int, type_name: str, message: str) -> None:
        super().__init__(f"shard {shard}: {type_name}: {message}")
        self.shard = shard
        self.type_name = type_name
        self.message = message


def _rehydrate(exc: _RemoteShardError) -> Exception:
    """Re-raise a peer's failure as its original repro error type."""
    from .. import errors

    cls = getattr(errors, exc.type_name, None)
    if not (isinstance(cls, type) and issubclass(cls, Exception)):
        cls = SimulationError
    return cls(f"shard {exc.shard}: {exc.message}")


# ----------------------------------------------------------------------
# Exchanges
# ----------------------------------------------------------------------
class LoopbackExchange:
    """K = 1: the window protocol talking to itself, in-process."""

    def window_barrier(self, payload):
        return [payload]

    def gather_to_root(self, blob):
        return [blob]

    def broadcast_error(self, exc) -> None:
        pass


class PipeExchange:
    """Pairwise-pipe mesh between the K shard processes.

    Window barriers are all-to-all: each pair exchanges its (small)
    payload with the lower-indexed side sending first, sessions ordered
    by ascending peer index — each rendezvous completes without
    requiring progress from a third process, so the pattern cannot
    deadlock, and window payloads stay far below the pipe buffer.  The
    final gather is a plain fan-in to shard 0 (blobs can be large;
    children only send, the root drains them in index order).
    """

    def __init__(self, index: int, count: int, conns: list) -> None:
        self.index = index
        self.count = count
        self.conns = conns  # conns[j] = Connection to shard j (None at own slot)

    def _send(self, peer: int, blob: bytes) -> None:
        try:
            self.conns[peer].send_bytes(blob)
        except (BrokenPipeError, OSError) as exc:
            raise SimulationError(
                f"shard {peer} crashed (pipe closed while sending): {exc}"
            ) from None

    def _recv(self, peer: int):
        try:
            msg = pickle.loads(self.conns[peer].recv_bytes())
        except (EOFError, OSError) as exc:
            raise SimulationError(
                f"shard {peer} crashed (pipe closed while receiving): {exc}"
            ) from None
        if msg[0] == "err":
            raise _RemoteShardError(peer, msg[1], msg[2])
        return msg

    def window_barrier(self, payload):
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
        out = [None] * self.count
        out[self.index] = payload
        for peer in range(self.count):
            if peer == self.index:
                continue
            if self.index < peer:
                self._send(peer, blob)
                out[peer] = self._expect(self._recv(peer), "w", peer)
            else:
                out[peer] = self._expect(self._recv(peer), "w", peer)
                self._send(peer, blob)
        return out

    def gather_to_root(self, blob):
        if self.index == 0:
            blobs = [None] * self.count
            blobs[0] = blob
            for peer in range(1, self.count):
                blobs[peer] = self._expect(self._recv(peer), "done", peer)
            return blobs
        self._send(0, pickle.dumps(("done", blob), protocol=pickle.HIGHEST_PROTOCOL))
        return None

    @staticmethod
    def _expect(msg, tag: str, peer: int):
        if msg[0] != tag:
            raise SimulationError(
                f"shard protocol desync: expected {tag!r} from shard {peer}, "
                f"got {msg[0]!r}"
            )
        return msg[1] if tag == "done" else msg

    def broadcast_error(self, exc) -> None:
        if isinstance(exc, _ShardChildDone):
            return
        try:
            blob = pickle.dumps(("err", type(exc).__name__, str(exc)))
        except Exception:  # pragma: no cover - unpicklable message
            blob = pickle.dumps(("err", type(exc).__name__, "<unprintable>"))
        for peer, conn in enumerate(self.conns):
            if conn is None:
                continue
            try:
                conn.send_bytes(blob)
            except OSError:
                pass


# ----------------------------------------------------------------------
# Entry point: run an app under K shards
# ----------------------------------------------------------------------
def call_app(fn, shards: int | None, kwargs: dict):
    """Call app ``fn(**kwargs)``, optionally under ``shards`` workers.

    ``shards`` of ``None``/``0`` is the legacy sequential path — the
    live network models, untouched.  ``shards >= 1`` selects the
    sharded semantics (see :mod:`repro.network.sharded`); K is clamped
    to the PE count, K = 1 runs it in-process, and K > 1 forks K - 1
    workers that replay the (deterministic, seeded) app setup and
    simulate their own PEs.  One call, one run: the machine a sharded
    app builds cannot be re-run after its report is returned.
    """
    if not shards:
        return fn(**kwargs)
    n_pes = kwargs.get("n_pes")
    if not isinstance(n_pes, int) or n_pes < 1:
        raise SimulationError(f"sharded run needs an explicit n_pes, got {n_pes!r}")
    config = kwargs.get("config")
    if config is not None and getattr(config, "fidelity", None) == "hybrid":
        # The sharded network has no fast-forward bookkeeping, so hybrid
        # fidelity silently degrades to detailed under shards.  Metrics
        # are still exact — but the user asked for a speedup they will
        # not get, so say so instead of quietly ignoring the setting.
        import warnings

        warnings.warn(
            f"fidelity='hybrid' is disabled under shards={shards}: the "
            "sharded engine always simulates at detailed fidelity "
            "(metrics are unaffected; drop shards= to get fast-forward)",
            RuntimeWarning,
            stacklevel=3,
        )
        obs = kwargs.get("obs")
        if obs is not None:
            from ..obs.events import FastForward

            obs.emit(FastForward(0, 0, 0, "disabled", -1, 0))
    count = max(1, min(int(shards), n_pes))
    bounds = partition(n_pes, count)
    if count == 1:
        with activate(ShardContext(ShardSpec(0, 1, bounds), LoopbackExchange())):
            return fn(**kwargs)
    if not hasattr(os, "fork"):  # pragma: no cover - POSIX-only feature
        raise SimulationError("shards > 1 requires a platform with os.fork")

    import multiprocessing

    conns = [[None] * count for _ in range(count)]
    for i in range(count):
        for j in range(i + 1, count):
            a, b = multiprocessing.Pipe()
            conns[i][j] = a
            conns[j][i] = b
    sys.stdout.flush()
    sys.stderr.flush()
    pids = []
    for index in range(1, count):
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                _keep_only(conns, index)
                ctx = ShardContext(
                    ShardSpec(index, count, bounds),
                    PipeExchange(index, count, conns[index]),
                )
                with activate(ctx):
                    fn(**kwargs)
            except _ShardChildDone:
                status = 0
            except BaseException:  # noqa: BLE001 - the err broadcast already ran
                status = 1
            os._exit(status)
        pids.append(pid)
    _keep_only(conns, 0)
    try:
        ctx = ShardContext(ShardSpec(0, count, bounds), PipeExchange(0, count, conns[0]))
        with activate(ctx):
            result = fn(**kwargs)
    except BaseException:
        _reap(pids, kill=True)
        raise
    _reap(pids, kill=False)
    return result


def _keep_only(conns: list[list], index: int) -> None:
    """Close every pipe end that does not belong to shard ``index``."""
    for i, row in enumerate(conns):
        if i == index:
            continue
        for j, conn in enumerate(row):
            if conn is not None and j != index:
                conn.close()


def _reap(pids: list[int], kill: bool) -> None:
    for pid in pids:
        if kill:
            try:
                os.kill(pid, signal.SIGKILL)
            except ProcessLookupError:
                pass
        try:
            _, status = os.waitpid(pid, 0)
        except ChildProcessError:  # pragma: no cover - already reaped
            continue
        if not kill and status != 0:
            raise SimulationError(
                f"shard worker {pid} exited with status {os.waitstatus_to_exitcode(status)}"
            )


# ----------------------------------------------------------------------
# The window protocol (driven from EMX.run)
# ----------------------------------------------------------------------
def run_windowed(machine, until: int | None = None):
    """Advance a sharded machine in conservative windows to completion.

    Returns the merged :class:`~repro.machine.MachineReport` in the
    coordinating process; raises :class:`_ShardChildDone` in child
    shards once their results have shipped.
    """
    ctx = machine.shard
    exchange = ctx.exchange
    engine = machine.engine
    net = machine.network
    engine.quiescence_watcher = None  # stuck work is judged globally, post-gather
    L = net.lookahead
    try:
        while True:
            qnext = engine.queue.peek_time()
            pnext = net.pending_min()
            local_next = qnext if pnext is None else (
                pnext if qnext is None else min(qnext, pnext)
            )
            replies = exchange.window_barrier(("w", net.take_egress(), local_next))
            global_next = _INF
            for _, egress, peer_next in replies:
                if peer_next is not None and peer_next < global_next:
                    global_next = peer_next
                for record in egress:
                    if record[0] < global_next:
                        global_next = record[0]
            for index, (_, egress, _) in enumerate(replies):
                if index != ctx.spec.index and egress:
                    net.add_ingress(egress)
            if global_next is _INF:
                break
            start = int(global_next)
            if start > engine.max_cycles:
                raise SimulationError(
                    f"simulation exceeded max_cycles={engine.max_cycles} "
                    f"(next event at {start}); runaway guest program?"
                )
            horizon = start + L - 1
            if until is not None:
                if start > until:
                    break
                horizon = min(horizon, until)
            net.push_drains(start, horizon + 1)
            engine.run(until=horizon)
    except _RemoteShardError as exc:
        raise _rehydrate(exc) from None
    except BaseException as exc:
        exchange.broadcast_error(exc)
        raise
    try:
        blobs = exchange.gather_to_root(_gather_blob(machine))
    except _RemoteShardError as exc:
        raise _rehydrate(exc) from None
    if blobs is None:
        raise _ShardChildDone()
    return _finalize(machine, blobs)


def _gather_blob(machine) -> dict:
    """Everything one shard contributes to the merged report."""
    spec = machine.shard.spec
    owned = [p for p in machine.pes if spec.owns(p.pe)]
    log = machine.obs
    return {
        "counters": {p.pe: p.counters for p in owned},
        "memory": {p.pe: p.memory._words for p in owned},
        "trace": {p.pe: p.trace for p in owned},
        "stats": machine.network.stats,
        "born": machine.network.born_counts,
        "arrive": machine.network.arrival_counts,
        "events": machine.engine.events_fired - machine.network.drains_fired,
        "obs": log.events if log is not None else None,
        "seq_map": machine.network.seq_map if log is not None else {},
        "stuck": machine._stuck_report(),
    }


def _finalize(machine, blobs: list[dict]):
    """Merge the shard blobs into the machine and build its report."""
    from ..machine.machine import MachineReport
    from ..network.sharded import merge_network_stats

    spec = machine.shard.spec
    for index, blob in enumerate(blobs):
        if index == spec.index:
            continue
        for pe, counters in blob["counters"].items():
            machine.pes[pe].counters = counters
        for pe, words in blob["memory"].items():
            machine.pes[pe].memory._words = words
        for pe, trace in blob["trace"].items():
            machine.pes[pe].trace = trace
    stuck = [s for blob in blobs if (s := blob["stuck"])]
    if stuck:
        raise DeadlockError("event queue drained with live work: " + "; ".join(stuck))
    machine.network.stats = merge_network_stats(
        [blob["stats"] for blob in blobs],
        [blob["born"] for blob in blobs],
        [blob["arrive"] for blob in blobs],
    )
    real_bus = machine._outer_obs
    if real_bus is not None:
        from ..obs.merge import merge_shard_events

        merged = merge_shard_events(
            [blob["obs"] or [] for blob in blobs],
            [blob["seq_map"] for blob in blobs],
        )
        emit = real_bus.emit
        for event in merged:
            emit(event)
    runtime = max((p.counters.last_active for p in machine.pes), default=0)
    for proc in machine.pes:
        proc.counters.check_accounting()
    return MachineReport(
        config=machine.config,
        runtime_cycles=runtime,
        events_fired=sum(blob["events"] for blob in blobs),
        counters=[p.counters for p in machine.pes],
        network=machine.network.stats,
        traces=machine.traces() if machine.config.trace else None,
    )
