"""Hybrid fast-forward fidelity: fallback helpers and the differential oracle.

``fidelity="hybrid"`` replaces conflict-free stretches of detailed
simulation with closed-form costs (uncontended packet transits walked
arithmetically, by-passing DMA services folded into their request's
arrival, EXU wake-ups dispatched inline) and keeps every metric
bit-identical to the detailed engine.  That identity is a *proof
obligation*, not an assumption: whatever arithmetic cannot arbitrate
raises :class:`~repro.errors.FastForwardMiss`, and this module supplies
the two pieces callers build on:

* :func:`call_with_fallback` — run an app at hybrid fidelity, rerunning
  at detailed fidelity if the fast-forward layer declares a miss.
  Because a miss is raised *instead of* guessing, the fallback is always
  safe — at worst the run costs detailed speed.

* :class:`HybridDifferentialHarness` — the differential oracle (in the
  spirit of :class:`~repro.sim.ReferenceEventQueue`): runs the same
  workload at both fidelities and compares the full
  :func:`~repro.metrics.serialize.report_to_dict` serialisation minus
  the two diagnostic-only fields (``events_fired``, ``fastforward``)
  that *should* differ.  On divergence it replays both runs under the
  observability bus and names the first per-PE event where the
  executions split, plus the fast-forward window that covered it —
  which is what you debug, not the end-of-run aggregate that happened
  to move.  :meth:`HybridDifferentialHarness.shrink` reduces a failing
  shape (n, then h, then P) to a minimal reproducer first.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Callable

from ..errors import FastForwardMiss

__all__ = [
    "FastForwardMiss",
    "comparable_report",
    "diff_paths",
    "call_with_fallback",
    "DifferentialResult",
    "HybridDifferentialHarness",
]

#: Report fields the two fidelities legitimately disagree on: the whole
#: point of fast-forwarding is firing fewer events, and the accounting
#: of what was skipped only exists on the hybrid side.  ``cohort`` is
#: the same kind of field for the cohort compiler — the compiled path's
#: own accounting, meaningless to compare against an interpreted run.
DIAGNOSTIC_FIELDS = ("events_fired", "fastforward", "cohort")


def comparable_report(report) -> dict:
    """A report's serialisation with the diagnostic-only fields removed
    — equality on this dict is the hybrid engine's correctness bar."""
    from ..metrics.serialize import report_to_dict

    out = report_to_dict(report)
    for name in DIAGNOSTIC_FIELDS:
        out.pop(name, None)
    return out


def diff_paths(a: Any, b: Any, prefix: str = "") -> list[str]:
    """Dotted paths at which two JSON-like values differ (leaves only)."""
    if isinstance(a, dict) and isinstance(b, dict):
        out: list[str] = []
        for key in sorted(set(a) | set(b), key=str):
            here = f"{prefix}.{key}" if prefix else str(key)
            if key not in a or key not in b:
                out.append(here)
            else:
                out.extend(diff_paths(a[key], b[key], here))
        return out
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        if len(a) != len(b):
            return [f"{prefix}.len" if prefix else "len"]
        out = []
        for i, (x, y) in enumerate(zip(a, b)):
            out.extend(diff_paths(x, y, f"{prefix}[{i}]"))
        return out
    return [] if a == b else [prefix or "<root>"]


def _with_fidelity(kwargs: dict, fidelity: str) -> dict:
    """App kwargs with ``config.fidelity`` forced to ``fidelity``."""
    from ..config import MachineConfig

    out = dict(kwargs)
    config = out.get("config")
    if config is None:
        out["config"] = MachineConfig(fidelity=fidelity)
    else:
        out["config"] = replace(config, fidelity=fidelity)
    return out


def call_with_fallback(fn: Callable[..., Any], kwargs: dict) -> Any:
    """Call an app at hybrid fidelity; rerun detailed on a miss.

    ``kwargs`` are the app's keyword arguments (any ``config`` inside is
    overridden field-wise, never mutated).  The fast-forward layer
    *raises* rather than guessing whenever elided events could have
    changed an outcome, so the fallback can never return hybrid-tainted
    numbers — a miss costs one detailed rerun and nothing else.
    """
    try:
        return fn(**_with_fidelity(kwargs, "hybrid"))
    except FastForwardMiss:
        return fn(**_with_fidelity(kwargs, "detailed"))


@dataclass
class DifferentialResult:
    """One detailed-vs-hybrid comparison of a single shape."""

    app: str
    shape: dict
    detailed: Any  #: detailed MachineReport
    hybrid: Any  #: hybrid MachineReport, or None when the run missed
    miss: str | None  #: FastForwardMiss message, if the hybrid run fell back
    diff: list[str] = field(default_factory=list)

    @property
    def identical(self) -> bool:
        """Metric-identical (a clean miss also counts: falling back is
        correct behaviour, just not a fast-forward win)."""
        return not self.diff

    @property
    def events_saved_ratio(self) -> float:
        """detailed/hybrid event ratio (1.0 when the hybrid run missed)."""
        if self.hybrid is None or not self.hybrid.events_fired:
            return 1.0
        return self.detailed.events_fired / self.hybrid.events_fired

    def describe(self) -> str:
        shape = " ".join(f"{k}={v}" for k, v in self.shape.items())
        if self.miss is not None:
            return f"{self.app} {shape}: miss ({self.miss})"
        if self.diff:
            return f"{self.app} {shape}: DIVERGED at {', '.join(self.diff[:4])}"
        return f"{self.app} {shape}: identical, {self.events_saved_ratio:.2f}x fewer events"


class HybridDifferentialHarness:
    """Differential oracle: detailed is ground truth, hybrid must match.

    ``harness.check(n_pes=4, n=64, h=2)`` runs both fidelities and
    raises ``AssertionError`` on any metric difference, naming the first
    divergent per-PE event and the fast-forward window that covered it.
    Use :meth:`run_pair` for the non-raising form and :meth:`shrink` to
    minimise a failing shape before diagnosing it.
    """

    def __init__(self, app: str = "sort", **base_kwargs: Any) -> None:
        self.app = app
        self.base_kwargs = base_kwargs

    # -- execution ----------------------------------------------------
    def _run(self, fidelity: str, shape: dict, obs=None):
        from ..api import get_app, result_ok
        from ..errors import ProgramError

        fn = get_app(self.app)
        kwargs = _with_fidelity({**self.base_kwargs, **shape}, fidelity)
        kwargs["obs"] = obs
        result = fn(**kwargs)
        if not result_ok(result):
            raise ProgramError(f"{self.app} {shape} failed self-verification")
        return result.report

    def run_pair(self, **shape: Any) -> DifferentialResult:
        """Run the shape at both fidelities and compare reports."""
        detailed = self._run("detailed", shape)
        try:
            hybrid = self._run("hybrid", shape)
        except FastForwardMiss as exc:
            return DifferentialResult(self.app, shape, detailed, None, str(exc))
        diff = diff_paths(comparable_report(detailed), comparable_report(hybrid))
        return DifferentialResult(self.app, shape, detailed, hybrid, None, diff)

    def check(self, **shape: Any) -> DifferentialResult:
        """Assert metric identity for one shape; returns the result."""
        result = self.run_pair(**shape)
        if not result.identical:
            small = self.shrink(dict(shape))
            raise AssertionError(
                f"hybrid diverged from detailed: {result.describe()}\n"
                f"minimal failing shape: {small.shape}\n"
                f"{self.first_divergence(small.shape)}"
            )
        return result

    # -- diagnosis ----------------------------------------------------
    def shrink(self, shape: dict) -> DifferentialResult:
        """Reduce a failing shape to a minimal still-failing one.

        Greedy halving, one axis at a time (n first — it shrinks the
        run fastest — then h, then n_pes), keeping each candidate only
        if it still diverges.  App shape constraints surface as
        ``ProgramError``; such candidates are simply skipped.
        """
        from ..errors import ProgramError

        current = self.run_pair(**shape)
        if current.identical:
            return current
        shrinking = True
        while shrinking:
            shrinking = False
            for axis in ("n", "h", "n_pes"):
                value = current.shape.get(axis)
                while isinstance(value, int) and value > 1:
                    candidate = {**current.shape, axis: value // 2}
                    try:
                        attempt = self.run_pair(**candidate)
                    except ProgramError:
                        break  # shape constraint: this axis is done
                    if attempt.identical:
                        break
                    current = attempt
                    value = current.shape[axis]
                    shrinking = True
        return current

    def first_divergence(self, shape: dict) -> str:
        """Name the first per-PE event where the two executions split,
        and the fast-forward window that covered it.

        Both runs are replayed under the event bus.  Per-PE streams of
        execution events (bursts, switches, barriers) are compared in
        emission order — the same-cycle sequencing protocol makes the
        hybrid engine's per-PE order exact, so the first mismatch *is*
        the first divergent action.  The enclosing diagnostic is the
        latest ``FASTFORWARD`` window on that PE at or before the
        divergence cycle: the analytic step whose cost model to suspect.
        """
        from ..obs import Category, EventBus, RingRecorder

        def record(fidelity: str):
            bus = EventBus()
            rec = RingRecorder(bus)
            try:
                self._run(fidelity, shape, obs=bus)
            except FastForwardMiss as exc:
                return None, str(exc)
            return list(rec.events), None

        det_events, _ = record("detailed")
        hyb_events, miss = record("hybrid")
        if hyb_events is None:
            return f"hybrid run misses on this shape: {miss}"

        compared = (Category.BURST, Category.SWITCH, Category.BARRIER)

        def per_pe(events):
            # Barrier ids come from a process-global counter, so two
            # consecutive runs never agree on them; normalise to
            # first-seen order, which *is* comparable across runs.
            barrier_ids: dict[int, int] = {}
            streams: dict[int, list] = {}
            for ev in events:
                if ev.category not in compared:
                    continue
                if ev.category is Category.BARRIER:
                    dense = barrier_ids.setdefault(ev.barrier_id, len(barrier_ids))
                    ev = replace(ev, barrier_id=dense)
                streams.setdefault(ev.pe, []).append(ev)
            return streams

        det_pe, hyb_pe = per_pe(det_events), per_pe(hyb_events)
        first: tuple[int, int, str] | None = None  # (t, pe, message)
        for pe in sorted(set(det_pe) | set(hyb_pe)):
            da, hb = det_pe.get(pe, []), hyb_pe.get(pe, [])
            for i in range(max(len(da), len(hb))):
                if i >= len(da) or i >= len(hb) or da[i] != hb[i]:
                    d = da[i] if i < len(da) else "<stream ended>"
                    h = hb[i] if i < len(hb) else "<stream ended>"
                    t = min(
                        getattr(d, "t", float("inf")),
                        getattr(h, "t", float("inf")),
                    )
                    if first is None or (t, pe) < first[:2]:
                        first = (
                            t,
                            pe,
                            f"first divergent event on PE {pe} (index {i}): "
                            f"detailed={d!r} hybrid={h!r}",
                        )
                    break
        if first is None:
            return (
                "per-PE execution streams are identical; the divergence "
                "is in aggregate accounting only (compare the diff paths)"
            )
        t, pe, message = first
        window = None
        for ev in hyb_events:
            if ev.category is Category.FASTFORWARD and ev.pe == pe and ev.t <= t:
                if window is None or ev.t >= window.t:
                    window = ev
        if window is not None:
            message += (
                f"\nfirst divergent window: {window.kind} fast-forward on "
                f"PE {window.pe} covering cycles [{window.t}, {window.end}]"
                + (f" (packet {window.seq})" if window.seq >= 0 else "")
            )
        else:
            message += f"\nno fast-forward window on PE {pe} precedes cycle {t}"
        return message
