"""Packet transport over the circular Omega fabric.

Both network models compute a packet's delivery time *at injection* by
walking its route and reserving output-port time slots (one 2-word
packet per two cycles per port), then schedule a single delivery event.
This reproduces virtual cut-through timing — k hops arrive k+1 cycles
after injection when uncontended — without per-hop events, and the
monotonic port reservations enforce the switch unit's message
non-overtaking rule.

:class:`DetailedOmegaNetwork` reserves every switch output port on the
route; :class:`AnalyticOmegaNetwork` reserves only the endpoint
injection/ejection ports, modelling an uncongested fabric.  Experiment
A3 quantifies how little they differ at the paper's traffic levels.
"""

from __future__ import annotations

from typing import Callable

from ..config import MachineConfig, TimingModel
from ..errors import NetworkError
from ..obs.bus import EventBus
from ..obs.events import PacketDeliver, PacketHop
from ..packet import Packet
from ..sim import Engine
from .stats import NetworkStats
from .topology import CircularOmegaTopology

__all__ = [
    "OmegaNetworkBase",
    "DetailedOmegaNetwork",
    "AnalyticOmegaNetwork",
    "build_network",
]

DeliverFn = Callable[[Packet], None]


class OmegaNetworkBase:
    """Common machinery: attachment, port reservation, delivery."""

    def __init__(
        self,
        engine: Engine,
        topology: CircularOmegaTopology,
        timing: TimingModel,
        obs: EventBus | None = None,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.timing = timing
        self.obs = obs
        self.stats = NetworkStats()
        self._sinks: dict[int, DeliverFn] = {}
        #: Per-port ``[next_free_cycle, busy_cycles]`` record — one dict
        #: lookup per reservation (this runs once per hop per packet).
        self._ports: dict[tuple, list[int]] = {}
        self.in_flight = 0

    # ------------------------------------------------------------------
    def attach(self, pe: int, deliver: DeliverFn) -> None:
        """Register the packet sink (the PE's switching unit) for ``pe``."""
        if pe in self._sinks:
            raise NetworkError(f"PE {pe} already attached")
        self._sinks[pe] = deliver

    def send(self, pkt: Packet) -> None:
        """Inject ``pkt`` now; schedules its delivery event."""
        if pkt.dst not in self._sinks:
            raise NetworkError(f"packet to unattached PE {pkt.dst}: {pkt!r}")
        pkt.born = self.engine.now
        arrival, hops = self._transit(pkt)
        self.stats.record(pkt, hops, arrival - pkt.born)
        self.in_flight += 1
        if self.in_flight > self.stats.max_in_flight:
            self.stats.max_in_flight = self.in_flight
        self.engine.schedule_at(arrival, self._deliver, pkt)

    def _deliver(self, pkt: Packet) -> None:
        self.in_flight -= 1
        if self.obs is not None:
            now = self.engine.now
            self.obs.emit(
                PacketDeliver(
                    now,
                    pkt.seq,
                    pkt.kind,
                    pkt.src,
                    pkt.dst,
                    now - pkt.born,
                    self.topology.hop_count(pkt.src, pkt.dst),
                )
            )
        self._sinks[pkt.dst](pkt)

    # ------------------------------------------------------------------
    def _reserve(self, port: tuple, earliest: int, occupancy: int) -> int:
        """Book ``occupancy`` cycles on ``port``; returns departure time."""
        rec = self._ports.get(port)
        if rec is None:
            rec = self._ports[port] = [0, 0]
        depart = rec[0]
        if depart > earliest:  # contended: track the queue-occupancy ceiling
            wait = depart - earliest
            if wait > self.stats.max_port_wait:
                self.stats.max_port_wait = wait
        else:
            depart = earliest
        rec[0] = depart + occupancy
        rec[1] += occupancy
        return depart

    def _transit(self, pkt: Packet) -> tuple[int, int]:
        """Return (arrival_cycle, hop_count); implemented by subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def probe_latency(self, src: int, dst: int) -> int:
        """Uncongested one-way latency in cycles (k hops → k+1)."""
        return self.topology.latency_cycles(src, dst)

    # ------------------------------------------------------------------
    def port_utilization(self, horizon: int | None = None) -> dict[tuple, float]:
        """Busy fraction of every port ever used, over ``horizon`` cycles.

        Keys are ``("inj", pe)``, ``("ej", pe)`` and — detailed model
        only — ``("sw", node, bit)``.  This is the hotspot diagnostic
        behind the fabric-boundedness analysis in EXPERIMENTS.md: a port
        near 1.0 is the reply-rate bottleneck that multithreading cannot
        mask.
        """
        span = horizon if horizon is not None else self.engine.now
        if span <= 0:
            return {}
        return {port: rec[1] / span for port, rec in self._ports.items()}

    def hottest_ports(self, top: int = 8, horizon: int | None = None) -> list[tuple[tuple, float]]:
        """The ``top`` busiest ports, hottest first."""
        util = self.port_utilization(horizon)
        return sorted(util.items(), key=lambda kv: -kv[1])[:top]


class DetailedOmegaNetwork(OmegaNetworkBase):
    """Per-stage contention with true arrival-order (FIFO) port service.

    Each packet is simulated hop by hop as events: it queues at every
    switch output port on its route and departs in arrival order — the
    hardware's per-port FIFO — rather than in injection order, which
    matters under load (a reservation-at-injection shortcut serialises
    packets behind earlier-injected ones they would physically beat to
    the port, inflating latency far beyond the queueing-theoretic
    value).  Virtual cut-through timing is preserved: k hops arrive
    k+1 cycles after injection when uncontended.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: ``(src, dst)`` → precomputed port sequence: the injection
        #: port, one ``("sw", node, bit)`` per switch hop, then the
        #: ejection port.  Routes are pure functions of the endpoints,
        #: so every packet of a pair reuses one tuple — no per-hop port
        #: key allocation on the hot path.
        self._plans: dict[tuple[int, int], tuple] = {}
        self._eject = self.timing.eject
        self._cpp = self.timing.port_cycles_per_packet

    def send(self, pkt: Packet) -> None:
        """Inject ``pkt`` now; it advances through per-hop events."""
        dst = pkt.dst
        if dst not in self._sinks:
            raise NetworkError(f"packet to unattached PE {dst}: {pkt!r}")
        pkt.born = self.engine.now
        self.in_flight += 1
        if self.in_flight > self.stats.max_in_flight:
            self.stats.max_in_flight = self.in_flight
        plan = self._plans.get((pkt.src, dst))
        if plan is None:
            route = self.topology.route(pkt.src, dst)
            plan = self._plans[(pkt.src, dst)] = (
                ("inj", pkt.src),
                *(("sw", h.node, h.bit) for h in route),
                ("ej", dst),
            )
        # Port occupancy depends only on packet size — compute it once
        # here and thread it through the per-hop events.
        self._hop(pkt, plan, 0, pkt.slots(self._cpp))

    def _hop(self, pkt: Packet, plan: tuple, idx: int, slots: int) -> None:
        """Arrive at ``plan[idx]`` (0 = injection port, last = ejection).

        Loops while the packet advances within the current cycle (only
        the injection→first-switch step can) and schedules one event per
        later hop — the same event count and timing as the recursive
        formulation, minus the Python call per same-cycle step.
        """
        engine = self.engine
        now = engine.now
        last = len(plan) - 1
        ports = self._ports
        obs = self.obs
        while True:
            port = plan[idx]
            if obs is not None and 0 < idx < last:
                self.obs.emit(PacketHop(now, pkt.seq, port[1], port[2]))
            # Port reservation, inlined from _reserve: one hop per packet
            # per stage makes the call overhead itself measurable.
            rec = ports.get(port)
            if rec is None:
                rec = ports[port] = [0, 0]
            depart = rec[0]
            if depart > now:  # contended: track the queue-occupancy ceiling
                wait = depart - now
                stats = self.stats
                if wait > stats.max_port_wait:
                    stats.max_port_wait = wait
            else:
                depart = now
            rec[0] = depart + slots
            rec[1] += slots
            if idx == last:
                arrival = depart + self._eject
                self.stats.record(pkt, last - 1, arrival - pkt.born)
                engine.schedule_at(arrival, self._deliver, pkt)
                return
            # Injection into the first switch is immediate; each shuffle
            # hop afterwards costs one cycle of cut-through latency.
            when = depart if idx == 0 else depart + 1
            idx += 1
            if when <= now:
                continue
            engine.schedule_at(when, self._hop, pkt, plan, idx, slots)
            return

    def _transit(self, pkt: Packet) -> tuple[int, int]:  # pragma: no cover
        raise NotImplementedError("detailed model advances packets per hop")


class AnalyticOmegaNetwork(OmegaNetworkBase):
    """Endpoint-only contention: fabric assumed conflict-free."""

    def _transit(self, pkt: Packet) -> tuple[int, int]:
        slots = pkt.slots(self.timing.port_cycles_per_packet)
        hops = self.topology.hop_count(pkt.src, pkt.dst)
        t = self._reserve(("inj", pkt.src), self.engine.now, slots)
        t += hops
        depart = self._reserve(("ej", pkt.dst), t, slots)
        arrival = depart + self.timing.eject
        return arrival, hops


def build_network(
    engine: Engine, config: MachineConfig, obs: EventBus | None = None
) -> OmegaNetworkBase:
    """Construct the network model selected by ``config.network_model``."""
    topo = CircularOmegaTopology(config.n_pes)
    if config.network_model == "detailed":
        return DetailedOmegaNetwork(engine, topo, config.timing, obs)
    if config.network_model == "analytic":
        return AnalyticOmegaNetwork(engine, topo, config.timing, obs)
    raise NetworkError(f"unknown network model {config.network_model!r}")
