"""Packet transport over the circular Omega fabric.

Both network models compute a packet's delivery time *at injection* by
walking its route and reserving output-port time slots (one 2-word
packet per two cycles per port), then schedule a single delivery event.
This reproduces virtual cut-through timing — k hops arrive k+1 cycles
after injection when uncontended — without per-hop events, and the
monotonic port reservations enforce the switch unit's message
non-overtaking rule.

:class:`DetailedOmegaNetwork` reserves every switch output port on the
route; :class:`AnalyticOmegaNetwork` reserves only the endpoint
injection/ejection ports, modelling an uncongested fabric.  Experiment
A3 quantifies how little they differ at the paper's traffic levels.
"""

from __future__ import annotations

from typing import Callable

from ..config import MachineConfig, TimingModel
from ..errors import NetworkError
from ..obs.bus import EventBus
from ..obs.events import PacketDeliver, PacketHop
from ..packet import Packet
from ..sim import Engine
from .stats import NetworkStats
from .topology import CircularOmegaTopology

__all__ = [
    "OmegaNetworkBase",
    "DetailedOmegaNetwork",
    "AnalyticOmegaNetwork",
    "build_network",
]

DeliverFn = Callable[[Packet], None]


class OmegaNetworkBase:
    """Common machinery: attachment, port reservation, delivery."""

    def __init__(
        self,
        engine: Engine,
        topology: CircularOmegaTopology,
        timing: TimingModel,
        obs: EventBus | None = None,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.timing = timing
        self.obs = obs
        self.stats = NetworkStats()
        self._sinks: dict[int, DeliverFn] = {}
        self._port_free: dict[tuple, int] = {}
        self._port_busy_cycles: dict[tuple, int] = {}
        self.in_flight = 0

    # ------------------------------------------------------------------
    def attach(self, pe: int, deliver: DeliverFn) -> None:
        """Register the packet sink (the PE's switching unit) for ``pe``."""
        if pe in self._sinks:
            raise NetworkError(f"PE {pe} already attached")
        self._sinks[pe] = deliver

    def send(self, pkt: Packet) -> None:
        """Inject ``pkt`` now; schedules its delivery event."""
        if pkt.dst not in self._sinks:
            raise NetworkError(f"packet to unattached PE {pkt.dst}: {pkt!r}")
        pkt.born = self.engine.now
        arrival, hops = self._transit(pkt)
        self.stats.record(pkt, hops, arrival - pkt.born)
        self.in_flight += 1
        if self.in_flight > self.stats.max_in_flight:
            self.stats.max_in_flight = self.in_flight
        self.engine.schedule_at(arrival, self._deliver, pkt)

    def _deliver(self, pkt: Packet) -> None:
        self.in_flight -= 1
        if self.obs is not None:
            now = self.engine.now
            self.obs.emit(
                PacketDeliver(
                    now,
                    pkt.seq,
                    pkt.kind,
                    pkt.src,
                    pkt.dst,
                    now - pkt.born,
                    self.topology.hop_count(pkt.src, pkt.dst),
                )
            )
        self._sinks[pkt.dst](pkt)

    # ------------------------------------------------------------------
    def _reserve(self, port: tuple, earliest: int, occupancy: int) -> int:
        """Book ``occupancy`` cycles on ``port``; returns departure time."""
        depart = max(earliest, self._port_free.get(port, 0))
        if depart > earliest:  # contended: track the queue-occupancy ceiling
            wait = depart - earliest
            if wait > self.stats.max_port_wait:
                self.stats.max_port_wait = wait
        self._port_free[port] = depart + occupancy
        self._port_busy_cycles[port] = self._port_busy_cycles.get(port, 0) + occupancy
        return depart

    def _transit(self, pkt: Packet) -> tuple[int, int]:
        """Return (arrival_cycle, hop_count); implemented by subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def probe_latency(self, src: int, dst: int) -> int:
        """Uncongested one-way latency in cycles (k hops → k+1)."""
        return self.topology.latency_cycles(src, dst)

    # ------------------------------------------------------------------
    def port_utilization(self, horizon: int | None = None) -> dict[tuple, float]:
        """Busy fraction of every port ever used, over ``horizon`` cycles.

        Keys are ``("inj", pe)``, ``("ej", pe)`` and — detailed model
        only — ``("sw", node, bit)``.  This is the hotspot diagnostic
        behind the fabric-boundedness analysis in EXPERIMENTS.md: a port
        near 1.0 is the reply-rate bottleneck that multithreading cannot
        mask.
        """
        span = horizon if horizon is not None else self.engine.now
        if span <= 0:
            return {}
        return {port: busy / span for port, busy in self._port_busy_cycles.items()}

    def hottest_ports(self, top: int = 8, horizon: int | None = None) -> list[tuple[tuple, float]]:
        """The ``top`` busiest ports, hottest first."""
        util = self.port_utilization(horizon)
        return sorted(util.items(), key=lambda kv: -kv[1])[:top]


class DetailedOmegaNetwork(OmegaNetworkBase):
    """Per-stage contention with true arrival-order (FIFO) port service.

    Each packet is simulated hop by hop as events: it queues at every
    switch output port on its route and departs in arrival order — the
    hardware's per-port FIFO — rather than in injection order, which
    matters under load (a reservation-at-injection shortcut serialises
    packets behind earlier-injected ones they would physically beat to
    the port, inflating latency far beyond the queueing-theoretic
    value).  Virtual cut-through timing is preserved: k hops arrive
    k+1 cycles after injection when uncontended.
    """

    def send(self, pkt: Packet) -> None:
        """Inject ``pkt`` now; it advances through per-hop events."""
        if pkt.dst not in self._sinks:
            raise NetworkError(f"packet to unattached PE {pkt.dst}: {pkt!r}")
        pkt.born = self.engine.now
        self.in_flight += 1
        if self.in_flight > self.stats.max_in_flight:
            self.stats.max_in_flight = self.in_flight
        route = self.topology.route(pkt.src, pkt.dst)
        self._hop(pkt, route, -1)

    def _hop(self, pkt: Packet, route, idx: int) -> None:
        """Arrive at stage ``idx`` (-1 = injection port, len = ejection)."""
        slots = pkt.slots(self.timing.port_cycles_per_packet)
        if idx == -1:
            port = ("inj", pkt.src)
        elif idx == len(route):
            port = ("ej", pkt.dst)
        else:
            hop = route[idx]
            port = ("sw", hop.node, hop.bit)
            if self.obs is not None:
                self.obs.emit(PacketHop(self.engine.now, pkt.seq, hop.node, hop.bit))
        depart = self._reserve(port, self.engine.now, slots)
        if idx == len(route):
            arrival = depart + self.timing.eject
            self.stats.record(pkt, len(route), arrival - pkt.born)
            self.engine.schedule_at(arrival, self._deliver, pkt)
            return
        # Injection into the first switch is immediate; each shuffle
        # hop afterwards costs one cycle of cut-through latency.
        advance = 0 if idx == -1 else 1
        when = depart + advance
        if when <= self.engine.now:
            self._hop(pkt, route, idx + 1)
        else:
            self.engine.schedule_at(when, self._hop, pkt, route, idx + 1)

    def _transit(self, pkt: Packet) -> tuple[int, int]:  # pragma: no cover
        raise NotImplementedError("detailed model advances packets per hop")


class AnalyticOmegaNetwork(OmegaNetworkBase):
    """Endpoint-only contention: fabric assumed conflict-free."""

    def _transit(self, pkt: Packet) -> tuple[int, int]:
        slots = pkt.slots(self.timing.port_cycles_per_packet)
        hops = self.topology.hop_count(pkt.src, pkt.dst)
        t = self._reserve(("inj", pkt.src), self.engine.now, slots)
        t += hops
        depart = self._reserve(("ej", pkt.dst), t, slots)
        arrival = depart + self.timing.eject
        return arrival, hops


def build_network(
    engine: Engine, config: MachineConfig, obs: EventBus | None = None
) -> OmegaNetworkBase:
    """Construct the network model selected by ``config.network_model``."""
    topo = CircularOmegaTopology(config.n_pes)
    if config.network_model == "detailed":
        return DetailedOmegaNetwork(engine, topo, config.timing, obs)
    if config.network_model == "analytic":
        return AnalyticOmegaNetwork(engine, topo, config.timing, obs)
    raise NetworkError(f"unknown network model {config.network_model!r}")
