"""Packet transport over the circular Omega fabric.

Both network models compute a packet's delivery time *at injection* by
walking its route and reserving output-port time slots (one 2-word
packet per two cycles per port), then schedule a single delivery event.
This reproduces virtual cut-through timing — k hops arrive k+1 cycles
after injection when uncontended — without per-hop events, and the
monotonic port reservations enforce the switch unit's message
non-overtaking rule.

:class:`DetailedOmegaNetwork` reserves every switch output port on the
route; :class:`AnalyticOmegaNetwork` reserves only the endpoint
injection/ejection ports, modelling an uncongested fabric.  Experiment
A3 quantifies how little they differ at the paper's traffic levels.
"""

from __future__ import annotations

from typing import Callable

from ..analysis.queueing import uncontended_transit
from ..config import MachineConfig, TimingModel
from ..errors import FastForwardMiss, NetworkError
from ..obs.bus import EventBus
from ..obs.events import FastForward, PacketDeliver, PacketHop
from ..packet import Packet
from ..sim import Engine
from .stats import NetworkStats
from .topology import CircularOmegaTopology

__all__ = [
    "OmegaNetworkBase",
    "DetailedOmegaNetwork",
    "AnalyticOmegaNetwork",
    "HybridOmegaNetwork",
    "build_network",
]

DeliverFn = Callable[[Packet], None]


class OmegaNetworkBase:
    """Common machinery: attachment, port reservation, delivery."""

    def __init__(
        self,
        engine: Engine,
        topology: CircularOmegaTopology,
        timing: TimingModel,
        obs: EventBus | None = None,
    ) -> None:
        self.engine = engine
        self.topology = topology
        self.timing = timing
        self.obs = obs
        self.stats = NetworkStats()
        self._sinks: dict[int, DeliverFn] = {}
        #: Per-port ``[next_free_cycle, busy_cycles]`` record — one dict
        #: lookup per reservation (this runs once per hop per packet).
        self._ports: dict[tuple, list[int]] = {}
        self.in_flight = 0

    # ------------------------------------------------------------------
    def attach(self, pe: int, deliver: DeliverFn) -> None:
        """Register the packet sink (the PE's switching unit) for ``pe``."""
        if pe in self._sinks:
            raise NetworkError(f"PE {pe} already attached")
        self._sinks[pe] = deliver

    def send(self, pkt: Packet) -> None:
        """Inject ``pkt`` now; schedules its delivery event."""
        if pkt.dst not in self._sinks:
            raise NetworkError(f"packet to unattached PE {pkt.dst}: {pkt!r}")
        pkt.born = self.engine.now
        arrival, hops = self._transit(pkt)
        self.stats.record(pkt, hops, arrival - pkt.born)
        self.in_flight += 1
        if self.in_flight > self.stats.max_in_flight:
            self.stats.max_in_flight = self.in_flight
        self.engine.schedule_at(arrival, self._deliver, pkt)

    def _deliver(self, pkt: Packet) -> None:
        self.in_flight -= 1
        if self.obs is not None:
            now = self.engine.now
            self.obs.emit(
                PacketDeliver(
                    now,
                    pkt.seq,
                    pkt.kind,
                    pkt.src,
                    pkt.dst,
                    now - pkt.born,
                    self.topology.hop_count(pkt.src, pkt.dst),
                )
            )
        self._sinks[pkt.dst](pkt)

    # ------------------------------------------------------------------
    def _reserve(self, port: tuple, earliest: int, occupancy: int) -> int:
        """Book ``occupancy`` cycles on ``port``; returns departure time."""
        rec = self._ports.get(port)
        if rec is None:
            rec = self._ports[port] = [0, 0]
        depart = rec[0]
        if depart > earliest:  # contended: track the queue-occupancy ceiling
            wait = depart - earliest
            if wait > self.stats.max_port_wait:
                self.stats.max_port_wait = wait
        else:
            depart = earliest
        rec[0] = depart + occupancy
        rec[1] += occupancy
        return depart

    def _transit(self, pkt: Packet) -> tuple[int, int]:
        """Return (arrival_cycle, hop_count); implemented by subclasses."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def probe_latency(self, src: int, dst: int) -> int:
        """Uncongested one-way latency in cycles (k hops → k+1)."""
        return self.topology.latency_cycles(src, dst)

    # ------------------------------------------------------------------
    def port_utilization(self, horizon: int | None = None) -> dict[tuple, float]:
        """Busy fraction of every port ever used, over ``horizon`` cycles.

        Keys are ``("inj", pe)``, ``("ej", pe)`` and — detailed model
        only — ``("sw", node, bit)``.  This is the hotspot diagnostic
        behind the fabric-boundedness analysis in EXPERIMENTS.md: a port
        near 1.0 is the reply-rate bottleneck that multithreading cannot
        mask.
        """
        span = horizon if horizon is not None else self.engine.now
        if span <= 0:
            return {}
        return {port: rec[1] / span for port, rec in self._ports.items()}

    def hottest_ports(self, top: int = 8, horizon: int | None = None) -> list[tuple[tuple, float]]:
        """The ``top`` busiest ports, hottest first."""
        util = self.port_utilization(horizon)
        return sorted(util.items(), key=lambda kv: -kv[1])[:top]


class DetailedOmegaNetwork(OmegaNetworkBase):
    """Per-stage contention with true arrival-order (FIFO) port service.

    Each packet is simulated hop by hop as events: it queues at every
    switch output port on its route and departs in arrival order — the
    hardware's per-port FIFO — rather than in injection order, which
    matters under load (a reservation-at-injection shortcut serialises
    packets behind earlier-injected ones they would physically beat to
    the port, inflating latency far beyond the queueing-theoretic
    value).  Virtual cut-through timing is preserved: k hops arrive
    k+1 cycles after injection when uncontended.
    """

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: ``(src, dst)`` → precomputed port sequence: the injection
        #: port, one ``("sw", node, bit)`` per switch hop, then the
        #: ejection port.  Routes are pure functions of the endpoints,
        #: so every packet of a pair reuses one tuple — no per-hop port
        #: key allocation on the hot path.
        self._plans: dict[tuple[int, int], tuple] = {}
        self._eject = self.timing.eject
        self._cpp = self.timing.port_cycles_per_packet

    def send(self, pkt: Packet) -> None:
        """Inject ``pkt`` now; it advances through per-hop events."""
        dst = pkt.dst
        if dst not in self._sinks:
            raise NetworkError(f"packet to unattached PE {dst}: {pkt!r}")
        pkt.born = self.engine.now
        self.in_flight += 1
        if self.in_flight > self.stats.max_in_flight:
            self.stats.max_in_flight = self.in_flight
        plan = self._plans.get((pkt.src, dst))
        if plan is None:
            route = self.topology.route(pkt.src, dst)
            plan = self._plans[(pkt.src, dst)] = (
                ("inj", pkt.src),
                *(("sw", h.node, h.bit) for h in route),
                ("ej", dst),
            )
        # Port occupancy depends only on packet size — compute it once
        # here and thread it through the per-hop events.
        self._hop(pkt, plan, 0, pkt.slots(self._cpp))

    def _hop(self, pkt: Packet, plan: tuple, idx: int, slots: int) -> None:
        """Arrive at ``plan[idx]`` (0 = injection port, last = ejection).

        Loops while the packet advances within the current cycle (only
        the injection→first-switch step can) and schedules one event per
        later hop — the same event count and timing as the recursive
        formulation, minus the Python call per same-cycle step.
        """
        engine = self.engine
        now = engine.now
        last = len(plan) - 1
        ports = self._ports
        obs = self.obs
        while True:
            port = plan[idx]
            if obs is not None and 0 < idx < last:
                self.obs.emit(PacketHop(now, pkt.seq, port[1], port[2]))
            # Port reservation, inlined from _reserve: one hop per packet
            # per stage makes the call overhead itself measurable.
            rec = ports.get(port)
            if rec is None:
                rec = ports[port] = [0, 0]
            depart = rec[0]
            if depart > now:  # contended: track the queue-occupancy ceiling
                wait = depart - now
                stats = self.stats
                if wait > stats.max_port_wait:
                    stats.max_port_wait = wait
            else:
                depart = now
            rec[0] = depart + slots
            rec[1] += slots
            if idx == last:
                arrival = depart + self._eject
                self.stats.record(pkt, last - 1, arrival - pkt.born)
                engine.schedule_at(arrival, self._deliver, pkt)
                return
            # Injection into the first switch is immediate; each shuffle
            # hop afterwards costs one cycle of cut-through latency.
            when = depart if idx == 0 else depart + 1
            idx += 1
            if when <= now:
                continue
            engine.schedule_at(when, self._hop, pkt, plan, idx, slots)
            return

    def _transit(self, pkt: Packet) -> tuple[int, int]:  # pragma: no cover
        raise NotImplementedError("detailed model advances packets per hop")


class _Reservation:
    """One packet's booking of one route port: ``[arr, depart)`` wait
    then ``[depart, end)`` service, at position ``stage`` of its plan."""

    __slots__ = ("arr", "depart", "end", "slots", "ps", "stage", "port", "linked")

    def __init__(self, ps: "_PacketState", stage: int, port: tuple) -> None:
        self.ps = ps
        self.stage = stage
        self.port = port
        self.slots = ps.slots
        self.arr = 0
        self.depart = 0
        self.end = 0
        #: Currently present in its port's timeline (False once pruned
        #: or temporarily removed for a re-walk).
        self.linked = False


class _Prov:
    """Scheduling provenance of one handler event in the elided event
    graph: the cycle it fired at, the provenance of the event whose
    handler scheduled it (a :class:`_PacketState` when that handler is
    the packet's delivery event, ``None`` only for the root), and its
    scheduling slot.  Slots come from the network's global emission
    counter at creation time, so creation order within one handler is
    exactly the detailed model's scheduling (seq) order."""

    __slots__ = ("fire", "parent", "slot")

    def __init__(self, fire: int, parent, slot: int) -> None:
        self.fire = fire
        self.parent = parent
        self.slot = slot


#: Common ancestor of every handler chain: work scheduled outside any
#: tracked handler (pre-run spawns) parents here, and its children's
#: slots order it the way the detailed engine's seq counter would.
_ROOT = _Prov(0, None, 0)


class _PacketState:
    """Transit bookkeeping for one in-flight hybrid packet."""

    __slots__ = ("pkt", "when", "slots", "plan", "entries", "arrival",
                 "sched", "delivered", "prov", "eseq")

    def __init__(self, pkt: Packet, when: int, slots: int, plan: tuple,
                 prov: _Prov, eseq: int) -> None:
        self.pkt = pkt
        self.when = when
        self.slots = slots
        self.plan = plan
        self.entries: list[_Reservation | None] = [None] * len(plan)
        #: Settled arrival cycle (moves while repairs run).
        self.arrival: int | None = None
        #: Cycle the earliest pending delivery event fires at.
        self.sched: int | None = None
        self.delivered = False
        #: Provenance of the emitting handler and this emission's slot
        #: within it (grounds tie resolution; see :class:`_Prov`).
        self.prov = prov
        self.eseq = eseq


def _bisect_arr(tl: list, t: int) -> int:
    """First index in the arrival-sorted timeline with ``arr >= t``."""
    lo, hi = 0, len(tl)
    while lo < hi:
        mid = (lo + hi) // 2
        if tl[mid].arr < t:
            lo = mid + 1
        else:
            hi = mid
    return lo


def _prelude(ps: "_PacketState", stage: int, tied_is_send: bool):
    """Fire cycles of the hop/send events above ``stage`` in the
    packet's own scheduling chain, nearest first.

    Each stage ``>= 2`` is its own event scheduled by the previous
    stage's; stage 1 coalesces into the send context when the
    injection port is free; a send event exists only when the
    injection was future-dated (``when`` past the emitting handler's
    fire cycle).  ``stage == len(plan)`` stands for the delivery
    event, whose scheduler is the last hop's event.
    """
    entries = ps.entries
    when = ps.when
    for s in range(stage - 1, 1, -1):
        yield entries[s].arr
    if stage >= 2 and entries[1].arr > when:
        yield entries[1].arr
    if not tied_is_send and when > ps.prov.fire:
        yield when


class _ChainWalker:
    """Fire cycles of the events that transitively scheduled one tied
    event, nearest ancestor first (see ``_serves_before``): first the
    packet's own hop/send events, then the emitting handler's
    provenance chain, splicing through delivered packets' chains when
    an ancestor is a delivery event."""

    __slots__ = ("gen", "node", "ps", "slot", "_next_slot", "tied_node")

    def __init__(self, ps: "_PacketState", stage: int, t: int) -> None:
        self.gen = None
        self.node: _Prov | None = None
        self.ps: _PacketState | None = None
        #: Scheduling slot of the child the walk reached the current
        #: node through (valid when :meth:`step` returned a node).
        self.slot = 0
        self._next_slot = 0
        #: The tied event itself, when it is a (shareable) handler
        #: rather than a per-packet send/hop event: two inline sends
        #: from one handler tie as *the same* event and compare by
        #: emission order before any walking.
        self.tied_node: _Prov | None = None
        tied_is_send = stage == 0 or (stage == 1 and t == ps.when)
        self.ps = ps
        if tied_is_send and ps.when == ps.prov.fire:
            # The tied event *is* the emitting handler (an inline send
            # inside it): the walk starts at the handler's scheduler.
            self.tied_node = ps.prov
            self._past(ps.prov)
        else:
            self.gen = _prelude(ps, stage, tied_is_send)

    def _past(self, n: _Prov) -> None:
        """Position the walk at ``n``'s scheduler."""
        self._next_slot = n.slot
        p = n.parent
        if p is None:  # past the root: the walk is exhausted
            self.node = None
            self.ps = None
        elif type(p) is _PacketState:
            # ``n`` is the delivery event of ``p``: its scheduler is
            # the packet's last hop event — continue into that chain.
            self.node = None
            self.ps = p
            self.gen = _prelude(p, len(p.entries), False)
        else:
            self.node = p

    def step(self) -> tuple:
        """Next chain level as ``(fire_cycle, node)``; ``node`` is the
        ancestor's :class:`_Prov` (``None`` for hop/send levels, which
        never need identity checks).  ``(None, None)`` = exhausted."""
        g = self.gen
        if g is not None:
            v = next(g, None)
            if v is not None:
                return v, None
            self.gen = None
            self._next_slot = self.ps.eseq
            self.node = self.ps.prov
        n = self.node
        if n is None:
            return None, None
        self.slot = self._next_slot
        self._past(n)
        return n.fire, n


def _node_walker(n: _Prov) -> _ChainWalker:
    """A walker over the scheduling ancestry of the handler event ``n``
    itself (first level: its scheduler's fire cycle)."""
    w = _ChainWalker.__new__(_ChainWalker)
    w.gen = None
    w.node = None
    w.ps = None
    w.slot = 0
    w._next_slot = 0
    w.tied_node = None
    w._past(n)
    return w


def _walk_before(wa: _ChainWalker, wb: _ChainWalker, what: str) -> bool:
    """Lockstep-compare two same-cycle events by scheduling ancestry:
    first differing ancestor fire cycle wins; the first shared ancestor
    resolves by the slots of the children the walks reached it through.
    Raises :class:`FastForwardMiss` when the walk falls off the tracked
    graph (or hits an impossible shared slot)."""
    while True:
        va, na = wa.step()
        vb, nb = wb.step()
        if na is not None and na is nb:
            if wa.slot != wb.slot:
                return wa.slot < wb.slot
            raise FastForwardMiss(
                f"{what} share a scheduling slot; detailed replay required"
            )
        if va is None or vb is None:
            raise FastForwardMiss(
                f"{what} have an untracked scheduling ancestry; the "
                f"elided events would have ordered them"
            )
        if va != vb:
            return va < vb
        # Chains of different depth: one side was pushed pre-run (its
        # ancestry already reached the root) while the other was pushed
        # by a handler firing at cycle 0.  Pre-run pushes drain first.
        if na is _ROOT:
            return True
        if nb is _ROOT:
            return False


class HybridOmegaNetwork(DetailedOmegaNetwork):
    """Detailed timing without per-hop events: reserve, repair, settle.

    A packet's whole trajectory — per-port FIFO waits included — is
    walked *arithmetically* when it is handed to the network, using the
    same recurrence the detailed model's hop events carry (injection
    and the first switch share a cycle, each later hop adds one cycle
    of cut-through latency, a busy port delays departure).  One
    delivery event is scheduled at the computed arrival; the per-hop
    events and the future-dated send events disappear.  Conflict-free
    transits collapse to the closed form
    :func:`~repro.analysis.queueing.uncontended_transit` of the
    queueing model.

    Ports serve in *arrival* order (the hardware FIFO), not reservation
    order, so each port keeps an arrival-sorted **timeline** of
    reservations.  A packet reserved later but arriving earlier is
    inserted at its arrival position; reservations it displaces are
    *pushed* (service re-queued behind it), removals *pull* queued
    successors forward, and any packet whose departure changes has its
    downstream stages re-walked until the network is consistent — the
    same fixed point the detailed event order computes.  A displaced
    delivery is repaired lazily: the delivery event fires, notices the
    settled arrival moved, and reschedules (one extra event, eroding
    but never corrupting the fast-forward).

    What arithmetic cannot arbitrate raises
    :class:`~repro.errors.FastForwardMiss` so the caller replays the
    run at detailed fidelity:

    * **ties** — two packets reaching a port in the same cycle are
      ordered by event seq in the detailed model.  Seq order is fully
      determined by scheduling ancestry (earlier scheduling cycle →
      smaller seq, recursing on equality, grounding in issue order
      within one handler), so the model reconstructs it: every elided
      handler event carries a provenance node, and ``_serves_before``
      walks both ancestries to the first differing cycle or the first
      shared ancestor.  Only a walk that falls off the tracked graph
      misses.
    * **same-cycle sequencing** — a delivery fires at some arbitrary
      position within its cycle, but what it does (FIFO appends,
      barrier opens, memory writes) must interleave with the PE's
      local enqueue fires and kick exactly as the detailed event order
      would.  Each of the three actors checks
      :meth:`pending_predecessor` at fire time and defers to the end
      of the cycle's bucket while any pending peer precedes it, so
      execution converges to the detailed order; a defer costs one
      event, and only an untracked ancestry misses.
    * **canonical in-flight peak** — ``max_in_flight`` depends on
      within-cycle send/deliver order; :meth:`finalize_stats` replays
      the born/arrival histograms under both tie orders, and when the
      bounds disagree re-sorts the ambiguous cycles' events into
      detailed order by provenance and takes the exact peak;
    * **runaway repairs** — a repair cascade exceeding its op budget
      (quadratic blowup under heavy contention) gives up rather than
      crawl.
    """

    _REPAIR_OPS = 4096

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        #: port → arrival-sorted reservation timeline.
        self._tl: dict[tuple, list[_Reservation]] = {}
        #: ``(cycle, dst)`` → packets whose delivery event is scheduled
        #: but unfired, feeding :meth:`deliveries_pending` (the EXU
        #: inline-kick gate) and :meth:`pending_predecessor`.
        self._pending: dict[tuple[int, int], list[_PacketState]] = {}
        #: cycle → packets born/arrived there (exact in-flight replay).
        self._born_hist: dict[int, list[_PacketState]] = {}
        self._arrival_hist: dict[int, list[_PacketState]] = {}
        #: dst PE → callable yielding the provenance of that PE's
        #: scheduled-but-unfired local events at a cycle (enqueue fires
        #: and the kick), for the same-cycle sequencing protocol.
        self.ff_local_events: dict[int, Callable] = {}
        #: Provenance of the handler currently running (``None`` at top
        #: level); handler sites set it around dispatch so emissions
        #: and scheduled sub-handlers can record their ancestry.
        self.prov: _Prov | None = None
        #: Global emission/scheduling slot counter (see :class:`_Prov`).
        self._eseq = 0
        self.ff_packets = 0
        self.ff_transit_cycles = 0
        self.ff_events_saved = 0

    # ------------------------------------------------------------------
    def new_prov(self, fire: int) -> _Prov:
        """Provenance for a handler event firing at ``fire``, scheduled
        by the handler running now (kick/enqueue/DMA-completion sites)."""
        self._eseq += 1
        parent = self.prov
        return _Prov(fire, parent if parent is not None else _ROOT, self._eseq)

    def send(self, pkt: Packet) -> None:
        self.send_at(self.engine.now, pkt)

    def send_at(self, when: int, pkt: Packet) -> None:
        """Inject ``pkt`` at cycle ``when`` (>= now); one event total."""
        dst = pkt.dst
        if dst not in self._sinks:
            raise NetworkError(f"packet to unattached PE {dst}: {pkt!r}")
        plan = self._plans.get((pkt.src, dst))
        if plan is None:
            route = self.topology.route(pkt.src, dst)
            plan = self._plans[(pkt.src, dst)] = (
                ("inj", pkt.src),
                *(("sw", h.node, h.bit) for h in route),
                ("ej", dst),
            )
        self._eseq += 1
        prov = self.prov
        ps = _PacketState(
            pkt, when, pkt.slots(self._cpp), plan,
            prov if prov is not None else _ROOT, self._eseq,
        )
        pkt.born = when
        self._born_hist.setdefault(when, []).append(ps)
        self.in_flight += 1
        self._repair({ps: 0})
        ps.sched = ps.arrival
        self.engine.schedule_at(ps.arrival, self._settle, ps)

    # ------------------------------------------------------------------
    # Timeline maintenance
    # ------------------------------------------------------------------
    def _repair(self, work: dict) -> None:
        """Walk/re-walk packets until every timeline is consistent."""
        ops = 0
        while work:
            ps = next(iter(work))
            s0 = work.pop(ps)
            if ps.delivered:
                raise FastForwardMiss(
                    f"packet {ps.pkt.seq} was delivered at cycle "
                    f"{ps.arrival} but a repair now moves its transit"
                )
            ops += 1
            if ops > self._REPAIR_OPS:
                raise FastForwardMiss(
                    f"timeline repair exceeded {self._REPAIR_OPS} re-walks"
                )
            self._remove_stages(ps, s0, work)
            for s in range(s0, len(ps.plan)):
                self._insert_stage(ps, s, work)
            self._set_arrival(ps, ps.entries[-1].depart + self._eject)

    def _insert_stage(self, ps: "_PacketState", s: int, work: dict) -> None:
        plan = ps.plan
        if s == 0:
            t = ps.when
        else:
            prev = ps.entries[s - 1]
            t = prev.depart if s == 1 else prev.depart + 1
        port = plan[s]
        tl = self._tl.get(port)
        if tl is None:
            tl = self._tl[port] = []
        now = self.engine.now
        if tl and tl[0].end <= now:
            # Settled history: nothing arriving from now on can land
            # before these or be delayed by them (ends are monotone).
            k = 1
            n = len(tl)
            while k < n and tl[k].end <= now:
                k += 1
            for old in tl[:k]:
                old.linked = False
            del tl[:k]
        idx = _bisect_arr(tl, t)
        while idx < len(tl) and tl[idx].arr == t:
            other = tl[idx]
            if self._serves_before(ps, s, other.ps, other.stage, port, t):
                break
            idx += 1
        e = ps.entries[s]
        if e is None:
            e = ps.entries[s] = _Reservation(ps, s, port)
        e.arr = t
        prev_end = tl[idx - 1].end if idx else 0
        e.depart = prev_end if prev_end > t else t
        e.end = e.depart + e.slots
        e.linked = True
        tl.insert(idx, e)
        self._shift_successors(tl, idx + 1, e.end, work)

    # ------------------------------------------------------------------
    # Tie resolution
    # ------------------------------------------------------------------
    def _serves_before(self, a: "_PacketState", sa: int, b: "_PacketState",
                       sb: int, port: tuple, t: int) -> bool:
        """Would the detailed model serve ``a`` before ``b`` at ``port``,
        both arriving at cycle ``t``?  Raises on genuine ambiguity.

        The detailed model orders tied hop events by seq, and seq order
        follows the scheduling ancestry: an event scheduled in an
        earlier cycle has the smaller seq, a same-cycle tie recurses
        into the scheduling events, and two events scheduled by the
        *same* handler compare by the order it issued them.  The
        walkers replay exactly that: fire cycles of successive
        ancestors, first difference wins; the first *shared* ancestor
        resolves by the slots of the two children the chains reached it
        through.  Chains always meet (every ancestry ends at the root),
        so the only ambiguity left is a walk falling off the graph —
        which means the model lost track of a scheduling site and must
        replay detailed.
        """
        wa = _ChainWalker(a, sa, t)
        wb = _ChainWalker(b, sb, t)
        if wa.tied_node is not None and wa.tied_node is wb.tied_node:
            # Both ties are inline sends of one handler: issue order.
            return a.eseq < b.eseq
        return _walk_before(
            wa, wb,
            f"packets {a.pkt.seq} and {b.pkt.seq} tying at port {port} "
            f"at cycle {t}",
        )

    def _event_before(self, na: _Prov, nb: _Prov) -> bool:
        """Would the detailed model fire handler event ``na`` before
        ``nb``, both at the same cycle?  (The same-cycle sequencing
        protocol: deliveries, enqueue fires, and kicks on one PE run in
        exactly this order.)"""
        return _walk_before(
            _node_walker(na), _node_walker(nb),
            f"same-cycle handler events at cycles {na.fire} and {nb.fire}",
        )

    def pending_predecessor(self, cycle: int, pe: int, me: _Prov,
                            skip_ps: "_PacketState | None" = None) -> bool:
        """True when a scheduled-but-unfired same-cycle event on ``pe``
        precedes ``me`` in detailed order — the caller must defer to the
        end of the cycle's bucket and retry.  Events scheduled *after*
        this check necessarily follow ``me`` (larger seq), so checking
        the currently pending set is complete."""
        local = self.ff_local_events.get(pe)
        if local is not None:
            for ev in local(cycle):
                if ev is not me and self._event_before(ev, me):
                    return True
        for ps in self._pending.get((cycle, pe), ()):
            if ps is not skip_ps and self._event_before(
                _Prov(cycle, ps, 0), me
            ):
                return True
        return False

    def _remove_stages(self, ps: "_PacketState", s0: int, work: dict) -> None:
        """Take ``ps``'s stages ``s0..`` out of their timelines, pulling
        queued successors forward (their delay just left the port)."""
        for s in range(s0, len(ps.plan)):
            e = ps.entries[s]
            if e is None or not e.linked:
                break
            tl = self._tl[e.port]
            i = _bisect_arr(tl, e.arr)
            while tl[i] is not e:
                i += 1
            del tl[i]
            e.linked = False
            prev_end = tl[i - 1].end if i else 0
            self._shift_successors(tl, i, prev_end, work)

    def _shift_successors(self, tl: list, j: int, prev_end: int, work: dict) -> None:
        """Re-settle departures from index ``j`` after an insert/remove;
        stops at the first unchanged one (the rest cannot change)."""
        while j < len(tl):
            f = tl[j]
            nd = f.arr if f.arr > prev_end else prev_end
            if nd == f.depart:
                break
            fps = f.ps
            if fps.delivered:
                raise FastForwardMiss(
                    f"packet {fps.pkt.seq} was delivered at cycle "
                    f"{fps.arrival} but a repair now moves its transit"
                )
            f.depart = nd
            f.end = nd + f.slots
            if f.stage == len(fps.plan) - 1:
                self._set_arrival(fps, nd + self._eject)
            else:
                pending = work.get(fps)
                if pending is None or pending > f.stage + 1:
                    work[fps] = f.stage + 1
            prev_end = f.end
            j += 1

    def _set_arrival(self, ps: "_PacketState", new: int) -> None:
        old = ps.arrival
        if new == old:
            return
        pend = self._pending
        dst = ps.pkt.dst
        if old is not None:
            k = (old, dst)
            lst = pend[k]
            lst.remove(ps)
            if not lst:
                del pend[k]
        pend.setdefault((new, dst), []).append(ps)
        ps.arrival = new
        if ps.sched is not None and new < ps.sched:
            # The settled arrival moved earlier than the pending
            # delivery event; the stale one will no-op.
            self.engine.schedule_at(new, self._settle, ps)
            ps.sched = new
            self.ff_events_saved -= 1

    # ------------------------------------------------------------------
    # Delivery
    # ------------------------------------------------------------------
    def _settle(self, ps: "_PacketState") -> None:
        if ps.delivered:
            self.ff_events_saved -= 1  # stale duplicate event
            return
        now = self.engine.now
        if now != ps.arrival:
            if now > ps.arrival:  # pragma: no cover - repair invariant
                raise FastForwardMiss(
                    f"packet {ps.pkt.seq} settled to cycle {ps.arrival} "
                    f"after its delivery event at {now} had fired"
                )
            self.engine.schedule_at(ps.arrival, self._settle, ps)
            ps.sched = ps.arrival
            self.ff_events_saved -= 1
            return
        pkt = ps.pkt
        if self.pending_predecessor(now, pkt.dst, _Prov(now, ps, 0), skip_ps=ps):
            # A pending same-cycle local event precedes this delivery in
            # detailed order: defer to the end of the cycle's bucket.
            self.engine.schedule_at(now, self._settle, ps)
            self.ff_events_saved -= 1
            return
        ps.delivered = True
        plan = ps.plan
        hops = len(plan) - 2
        stats = self.stats
        stats.record(pkt, hops, now - ps.when)
        mpw = stats.max_port_wait
        ports = self._ports
        obs = self.obs
        for e in ps.entries:
            w = e.depart - e.arr
            if w > mpw:
                mpw = w
            rec = ports.get(e.port)
            if rec is None:
                rec = ports[e.port] = [0, 0]
            if e.end > rec[0]:
                rec[0] = e.end
            rec[1] += e.slots
            if obs is not None and 0 < e.stage < len(plan) - 1:
                obs.emit(PacketHop(e.arr, pkt.seq, e.port[1], e.port[2]))
        stats.max_port_wait = mpw
        self._arrival_hist.setdefault(now, []).append(ps)
        saved = hops + (1 if ps.when > ps.prov.fire else 0)
        self.ff_packets += 1
        self.ff_transit_cycles += now - ps.when
        self.ff_events_saved += saved
        if obs is not None:
            obs.emit(FastForward(ps.when, now, pkt.src, "net", pkt.seq, saved))
        key = (now, pkt.dst)
        pend = self._pending
        lst = pend[key]
        lst.remove(ps)
        if not lst:
            del pend[key]
        prev = self.prov
        self.prov = _Prov(now, ps, 0)
        try:
            self._deliver(pkt)
        finally:
            self.prov = prev

    def deliveries_pending(self, cycle: int, dst: int) -> int:
        """Delivery events already scheduled for ``(cycle, dst)``."""
        return len(self._pending.get((cycle, dst), ()))

    def finalize_stats(self) -> None:
        """Settle ``max_in_flight`` to the exact detailed value.

        The live peak depends on the within-cycle order of send and
        deliver events, which fast-forwarding changes.  Replaying the
        born/arrival cycle histograms under both tie orders (arrivals
        first = lower bound, borns first = upper bound) brackets every
        possible interleaving — including the detailed run's — so equal
        bounds give the exact value cheaply.  When they disagree, the
        ambiguous cycles' events are sorted into detailed order by
        scheduling ancestry and replayed exactly.
        """
        born = self._born_hist
        arr = self._arrival_hist
        lo = hi = cur = 0
        for t in sorted(set(born) | set(arr)):
            b = len(born.get(t, ()))
            a = len(arr.get(t, ()))
            if cur - a + b > lo:
                lo = cur - a + b
            if cur + b > hi:
                hi = cur + b
            cur += b - a
        if lo == hi:
            self.stats.max_in_flight = hi
            return
        self.stats.max_in_flight = self._exact_in_flight_peak()

    def _exact_in_flight_peak(self) -> int:
        """Replay borns (+1) and arrivals (-1) in detailed event order.

        Cycles with only one kind of event need no ordering; a mixed
        cycle's events are sorted by scheduling ancestry — a born is
        the packet's send context (its stage-0 tie event), an arrival
        its delivery event — which is exactly the detailed seq order.
        """
        import functools

        born = self._born_hist
        arr = self._arrival_hist

        def cmp(x, y):
            kx, px = x
            ky, py = y
            wx = (_ChainWalker(px, 0, px.when) if kx == 0
                  else _node_walker(_Prov(px.arrival, px, 0)))
            wy = (_ChainWalker(py, 0, py.when) if ky == 0
                  else _node_walker(_Prov(py.arrival, py, 0)))
            if (kx == 0 and ky == 0 and wx.tied_node is not None
                    and wx.tied_node is wy.tied_node):
                return -1 if px.eseq < py.eseq else 1
            # A send emitted inline by the *other* event's delivery
            # handler ties with that very delivery: the detailed
            # ``_deliver`` decrements in-flight before dispatching the
            # sink, so the arrival precedes its handler's own sends.
            if (kx == 0 and ky == 1 and wx.tied_node is not None
                    and wx.tied_node.parent is py):
                return 1
            if (ky == 0 and kx == 1 and wy.tied_node is not None
                    and wy.tied_node.parent is px):
                return -1
            before = _walk_before(
                wx, wy, f"in-flight events at cycle {px.when}"
            )
            return -1 if before else 1

        peak = cur = 0
        for t in sorted(set(born) | set(arr)):
            b = born.get(t, ())
            a = arr.get(t, ())
            if not a:
                cur += len(b)
                if cur > peak:
                    peak = cur
                continue
            if not b:
                cur -= len(a)
                continue
            events = [(0, ps) for ps in b] + [(1, ps) for ps in a]
            events.sort(key=functools.cmp_to_key(cmp))
            for kind, _ps in events:
                if kind == 0:
                    cur += 1
                    if cur > peak:
                        peak = cur
                else:
                    cur -= 1
        return peak


class AnalyticOmegaNetwork(OmegaNetworkBase):
    """Endpoint-only contention: fabric assumed conflict-free."""

    def _transit(self, pkt: Packet) -> tuple[int, int]:
        slots = pkt.slots(self.timing.port_cycles_per_packet)
        hops = self.topology.hop_count(pkt.src, pkt.dst)
        t = self._reserve(("inj", pkt.src), self.engine.now, slots)
        t += hops
        depart = self._reserve(("ej", pkt.dst), t, slots)
        arrival = depart + self.timing.eject
        return arrival, hops


def build_network(
    engine: Engine, config: MachineConfig, obs: EventBus | None = None
) -> OmegaNetworkBase:
    """Construct the network model selected by ``config.network_model``."""
    topo = CircularOmegaTopology(config.n_pes)
    if config.network_model == "detailed":
        if config.fidelity == "hybrid":
            return HybridOmegaNetwork(engine, topo, config.timing, obs)
        return DetailedOmegaNetwork(engine, topo, config.timing, obs)
    if config.network_model == "analytic":
        return AnalyticOmegaNetwork(engine, topo, config.timing, obs)
    raise NetworkError(f"unknown network model {config.network_model!r}")
