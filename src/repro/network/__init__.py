"""The EM-X interconnect: a circular Omega network of 3×3 switch boxes.

Each processor is attached to one switch box; boxes are connected in
perfect-shuffle stages and packets carry destination tags, hopping
``node' = (2·node + b) mod S`` until the tag matches.  A packet reaches
a processor *k* hops away in *k + 1* cycles by virtual cut-through, and
every port moves one 2-word packet per two cycles.

Two contention models share the same topology and latency arithmetic:

* :class:`DetailedOmegaNetwork` books every switch output port along the
  route (FIFO, non-overtaking);
* :class:`AnalyticOmegaNetwork` books only the endpoint injection and
  ejection ports, approximating an uncongested fabric.
"""

from .network import AnalyticOmegaNetwork, DetailedOmegaNetwork, OmegaNetworkBase, build_network
from .stats import NetworkStats
from .topology import CircularOmegaTopology

__all__ = [
    "CircularOmegaTopology",
    "OmegaNetworkBase",
    "DetailedOmegaNetwork",
    "AnalyticOmegaNetwork",
    "build_network",
    "NetworkStats",
]
