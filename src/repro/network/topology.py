"""Circular Omega topology and destination-tag routing.

The EM-X prototype connects 80 EMC-Y processors through a *circular*
Omega network: switch boxes form a ring of perfect-shuffle stages, each
box hosting one processor on the third port pair of its 3×3 crossbar.
A hop applies the shuffle-exchange step

    ``node' = ((node << 1) | b) mod S``

where ``b`` is the next destination-tag bit.  Because the network is
circular, a packet simply keeps hopping until its current box equals the
destination tag — so the hop count between two boxes is the smallest
``k`` with the low ``n−k`` bits of ``src`` equal to the high ``n−k``
bits of ``dst`` (``S = 2ⁿ`` boxes).  Processor counts that are not a
power of two (the prototype's 80) are padded with pure switch boxes.
"""

from __future__ import annotations

from functools import lru_cache
from typing import NamedTuple, Sequence

from ..errors import RoutingError

__all__ = ["Hop", "CircularOmegaTopology"]


class Hop(NamedTuple):
    """One shuffle-exchange traversal: leave ``node`` on output ``bit``."""

    node: int
    bit: int


def _next_pow2(x: int) -> int:
    p = 1
    while p < x:
        p <<= 1
    return p


class CircularOmegaTopology:
    """Routing arithmetic for ``n_pes`` processors on a shuffle ring."""

    def __init__(self, n_pes: int) -> None:
        if n_pes < 1:
            raise RoutingError(f"need at least one processor, got {n_pes}")
        self.n_pes = n_pes
        #: Number of switch boxes (next power of two ≥ max(n_pes, 2)).
        self.n_switches = _next_pow2(max(n_pes, 2))
        self.tag_bits = self.n_switches.bit_length() - 1
        self._mask = self.n_switches - 1
        # Route memoisation is per-instance; hop math is pure.
        self._route_cached = lru_cache(maxsize=None)(self._route)

    # ------------------------------------------------------------------
    def _check_pe(self, pe: int) -> None:
        if not (0 <= pe < self.n_pes):
            raise RoutingError(f"processor {pe} outside machine of {self.n_pes} PEs")

    def hop_count(self, src: int, dst: int) -> int:
        """Switch hops between the boxes of two processors (0 if same)."""
        self._check_pe(src)
        self._check_pe(dst)
        return len(self._route_cached(src, dst))

    def route(self, src: int, dst: int) -> tuple[Hop, ...]:
        """The hop sequence from ``src``'s box to ``dst``'s box."""
        self._check_pe(src)
        self._check_pe(dst)
        return self._route_cached(src, dst)

    def _route(self, src: int, dst: int) -> tuple[Hop, ...]:
        if src == dst:
            return ()
        n, mask = self.tag_bits, self._mask
        # Smallest k such that the low n-k bits of src equal the high
        # n-k bits of dst: after k shuffles the k freshly chosen tag
        # bits complete the destination address.
        for k in range(1, n + 1):
            keep = n - k
            if (src & ((1 << keep) - 1)) == (dst >> k):
                hops = []
                node = src
                for i in range(k):
                    bit = (dst >> (k - 1 - i)) & 1
                    hops.append(Hop(node, bit))
                    node = ((node << 1) | bit) & mask
                if node != dst:  # pragma: no cover - arithmetic invariant
                    raise RoutingError(f"route {src}->{dst} ended at {node}")
                return tuple(hops)
        raise RoutingError(f"no route {src}->{dst} in {self.n_switches}-box ring")  # pragma: no cover

    # ------------------------------------------------------------------
    def latency_cycles(self, src: int, dst: int) -> int:
        """Uncongested delivery latency: k hops land in k+1 cycles."""
        return self.hop_count(src, dst) + 1

    def mean_hops(self) -> float:
        """Average hop count over all ordered PE pairs (incl. self)."""
        total = sum(
            self.hop_count(s, d) for s in range(self.n_pes) for d in range(self.n_pes)
        )
        return total / (self.n_pes * self.n_pes)

    def min_hops_between(
        self, sources: "range | Sequence[int]", targets: "range | Sequence[int]"
    ) -> int:
        """Smallest hop count from any PE in ``sources`` to any *other*
        PE in ``targets`` (same-PE pairs are excluded — a self-send
        never crosses the network).

        This is the topology-distance primitive behind the sharded
        engine's per-pair lookahead matrix
        (:func:`repro.network.sharded.lookahead_matrix`): the earliest a
        packet injected by the source group can reach the target group
        is ``min_hops + eject`` cycles later, so disjoint groups that
        sit far apart on the shuffle ring legitimately synchronise less
        often than adjacent ones.
        """
        best: int | None = None
        for src in sources:
            for dst in targets:
                if src == dst:
                    continue
                hops = self.hop_count(src, dst)
                if best is None or hops < best:
                    best = hops
                    if best == 1:
                        return best  # ring minimum for distinct boxes
        if best is None:
            raise RoutingError(
                f"no cross pair between PE groups {sources!r} and {targets!r}"
            )
        return best

    def graph(self):  # pragma: no cover - optional convenience
        """The switch digraph as a ``networkx.DiGraph`` (edges carry ``bit``)."""
        import networkx as nx

        g = nx.DiGraph()
        for node in range(self.n_switches):
            for bit in (0, 1):
                g.add_edge(node, ((node << 1) | bit) & self._mask, bit=bit)
        return g
