"""Shard-partitionable Omega fabric for conservative-window parallel runs.

This is the network model behind ``repro.run(..., shards=K)``.  The
machine's PEs are partitioned into K contiguous shards, each advancing
its own engine in lockstep *windows* of length L — the **lookahead**,
the minimum injection-to-delivery latency any src≠dst packet can have —
so a packet injected inside window W can never need delivering before
window W+1.  See :mod:`repro.sim.parallel` for the window protocol.

Two properties make the result independent of K:

* **Per-source port planes.**  Every source PE owns a private replica
  of the ports on its routes (``("inj", src)``, each ``("sw", node,
  bit)``, ``("ej", dst)``), and a packet's full route is walked
  *arithmetically at injection time* — the reservation-at-injection
  scheme the analytic model always used, extended to the detailed
  per-stage plan.  Contention is therefore modelled among packets of
  one source only; since a source PE lives on exactly one shard, every
  packet's arrival cycle is computed entirely where it is injected and
  cannot depend on how the other PEs are partitioned.
* **Canonical delivery order.**  No per-packet delivery events exist.
  Arrivals append to a per-cycle pending list, and one *drain* event
  per window cycle — pushed unconditionally at the window barrier, so
  its bucket position is the same for every K — sorts its cycle's
  records by ``(src_pe, per-source seq)`` and hands them to the
  destination sinks.  Cross-shard records merge into the same lists at
  the barrier under the same key, so the global delivery order is the
  K-independent ``(cycle, src_pe, per-source seq)``.

This is a *documented, distinct semantics* from the legacy live models
(``shards=None``): the legacy detailed model arbitrates each interior
port among **all** sources in true arrival order, which admits only a
one-cycle lookahead and cannot be partitioned with useful windows.  On
conflict-free traffic all three agree exactly (covered by tests); under
load the sharded fabric is optimistic about cross-source interior
contention.  ``shards=1`` runs this same semantics in-process, and the
K ∈ {2, 4} differential tests compare against it.
"""

from __future__ import annotations

from collections import Counter

from ..config import MachineConfig
from ..errors import NetworkError, SimulationError
from ..network.stats import NetworkStats
from ..obs.events import PacketDeliver, PacketHop
from ..packet import Packet, PacketKind, Priority
from .topology import CircularOmegaTopology

__all__ = ["lookahead", "ShardedOmegaNetwork", "merge_network_stats"]


def lookahead(config: MachineConfig) -> int:
    """Minimum src≠dst injection-to-delivery latency, in cycles.

    Both models deliver a k-hop packet no earlier than
    ``inject + k + eject`` (injection reaches the first switch in the
    same cycle, each later hop costs one cut-through cycle, ejection
    costs ``timing.eject``; contention only delays).  The bound is the
    minimum over *all* ordered pairs, not just cross-shard ones, so the
    window length never depends on the partition.  Self-sends
    (src == dst, latency ``eject``) are always intra-shard and exempt.
    """
    topo = CircularOmegaTopology(config.n_pes)
    if config.n_pes < 2:
        return config.timing.eject + 1
    min_hops = None
    for src in range(config.n_pes):
        for dst in range(config.n_pes):
            if src == dst:
                continue
            hops = topo.hop_count(src, dst)
            if min_hops is None or hops < min_hops:
                min_hops = hops
                if min_hops == 1:
                    return 1 + config.timing.eject
    return min_hops + config.timing.eject


def _delivery_order(record: tuple) -> tuple[int, int]:
    """Sort key within one delivery cycle: (src_pe, per-source seq)."""
    return (record[1], record[2])


class ShardedOmegaNetwork:
    """Omega fabric split into per-source planes with barrier delivery.

    ``owns(pe)`` tells the network which destinations are local: their
    arrivals go straight to the pending lists, the rest accumulate in
    the *egress* list the window protocol ships at each barrier.
    Delivery records are ``(arrival, src, sseq, hops, pkt)`` tuples —
    picklable, self-contained, and carrying the canonical merge key.
    """

    def __init__(self, engine, config: MachineConfig, owns, obs=None) -> None:
        if config.network_model not in ("detailed", "analytic"):
            raise NetworkError(f"unknown network model {config.network_model!r}")
        self.engine = engine
        self.topology = CircularOmegaTopology(config.n_pes)
        self.timing = config.timing
        self.obs = obs
        self.stats = NetworkStats()
        self.owns = owns
        self.lookahead = lookahead(config)
        self._detailed = config.network_model == "detailed"
        self._sinks: dict[int, object] = {}
        #: src PE → its private ``{port: [next_free, busy]}`` plane.
        self._planes: dict[int, dict] = {}
        self._plans: dict[tuple[int, int], tuple] = {}
        #: src PE → next per-source injection sequence number.
        self._pe_seq: dict[int, int] = {}
        #: arrival cycle → delivery records (local + ingested ingress).
        self._pending: dict[int, list] = {}
        self._egress: list = []
        #: Local packet seq → canonical ``(src << 32) | sseq`` id, used
        #: to remap ``PacketSend`` events (emitted by the OBU *before*
        #: the network sees the packet) when shard traces merge.
        self.seq_map: dict[int, int] = {}
        #: Injection/arrival cycle histograms; the merged
        #: ``max_in_flight`` is a canonical sweep over these.
        self.born_counts: Counter = Counter()
        self.arrival_counts: Counter = Counter()
        #: Drain events fired — subtracted from ``engine.events_fired``
        #: so the reported event count excludes protocol scaffolding
        #: (whose count depends on the window sequence, not the model).
        self.drains_fired = 0
        self.in_flight = 0  # kept for interface parity; not tracked live
        self._eject = self.timing.eject
        self._cpp = self.timing.port_cycles_per_packet

    # ------------------------------------------------------------------
    def attach(self, pe: int, deliver) -> None:
        """Register the packet sink (the PE's switching unit) for ``pe``."""
        if pe in self._sinks:
            raise NetworkError(f"PE {pe} already attached")
        self._sinks[pe] = deliver

    def probe_latency(self, src: int, dst: int) -> int:
        """Uncongested one-way latency in cycles (k hops → k+1)."""
        return self.topology.latency_cycles(src, dst)

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> None:
        """Inject ``pkt`` now: walk its route, book its delivery record."""
        dst = pkt.dst
        if dst not in self._sinks:
            raise NetworkError(f"packet to unattached PE {dst}: {pkt!r}")
        now = self.engine.now
        pkt.born = now
        src = pkt.src
        sseq = self._pe_seq.get(src, 0)
        self._pe_seq[src] = sseq + 1
        canon = (src << 32) | sseq
        self.seq_map[pkt.seq] = canon
        slots = pkt.slots(self._cpp)
        plane = self._planes.get(src)
        if plane is None:
            plane = self._planes[src] = {}
        stats = self.stats
        if self._detailed:
            plan = self._plans.get((src, dst))
            if plan is None:
                route = self.topology.route(src, dst)
                plan = self._plans[(src, dst)] = (
                    ("inj", src),
                    *(("sw", h.node, h.bit) for h in route),
                    ("ej", dst),
                )
            last = len(plan) - 1
            hops = last - 1
            obs = self.obs
            t = now
            arrival = now
            for idx in range(last + 1):
                port = plan[idx]
                if obs is not None and 0 < idx < last:
                    obs.emit(PacketHop(t, canon, port[1], port[2]))
                rec = plane.get(port)
                if rec is None:
                    rec = plane[port] = [0, 0]
                depart = rec[0]
                if depart > t:
                    wait = depart - t
                    if wait > stats.max_port_wait:
                        stats.max_port_wait = wait
                else:
                    depart = t
                rec[0] = depart + slots
                rec[1] += slots
                if idx == last:
                    arrival = depart + self._eject
                else:
                    # Injection into the first switch is immediate; each
                    # shuffle hop afterwards costs one cut-through cycle.
                    t = depart if idx == 0 else depart + 1
        else:
            hops = self.topology.hop_count(src, dst)
            t = self._reserve(plane, ("inj", src), now, slots)
            depart = self._reserve(plane, ("ej", dst), t + hops, slots)
            arrival = depart + self._eject
        stats.record(pkt, hops, arrival - now)
        self.born_counts[now] += 1
        self.arrival_counts[arrival] += 1
        if self.owns(dst):
            record = (arrival, src, sseq, hops, pkt)
            bucket = self._pending.get(arrival)
            if bucket is None:
                self._pending[arrival] = [record]
            else:
                bucket.append(record)
        else:
            if arrival < now + self.lookahead:
                raise SimulationError(
                    f"lookahead violation: packet {src}->{dst} injected at "
                    f"{now} arrives at {arrival} < {now + self.lookahead}"
                )
            # Boundary records are flattened to primitive tuples here,
            # at injection: the window protocol pickles the egress list
            # every barrier, and flat tuples serialise ~10x faster than
            # Packet dataclass instances (measured; this is the hot part
            # of the barrier's serial cost).
            self._egress.append((
                arrival, src, sseq, hops,
                pkt.kind.value, dst, pkt.address, pkt.data, pkt.words,
                pkt.priority.value, pkt.born, pkt.seq,
            ))

    def _reserve(self, plane: dict, port: tuple, earliest: int, slots: int) -> int:
        rec = plane.get(port)
        if rec is None:
            rec = plane[port] = [0, 0]
        depart = rec[0]
        if depart > earliest:
            wait = depart - earliest
            if wait > self.stats.max_port_wait:
                self.stats.max_port_wait = wait
        else:
            depart = earliest
        rec[0] = depart + slots
        rec[1] += slots
        return depart

    # ------------------------------------------------------------------
    # Window protocol surface (driven by repro.sim.parallel)
    # ------------------------------------------------------------------
    def take_egress(self) -> list:
        """Drain and return the boundary records since the last barrier.

        Wire format (flat, pickle-cheap): ``(arrival, src, sseq, hops,
        kind_value, dst, address, data, words, priority_value, born,
        seq)``; :meth:`add_ingress` rebuilds the packets.
        """
        out = self._egress
        self._egress = []
        return out

    def add_ingress(self, records: list) -> None:
        """Merge another shard's egress records addressed to local PEs."""
        owns = self.owns
        pending = self._pending
        for rec in records:
            dst = rec[5]
            if not owns(dst):
                continue
            pkt = Packet(
                kind=PacketKind(rec[4]),
                src=rec[1],
                dst=dst,
                address=rec[6],
                data=rec[7],
                words=rec[8],
                priority=Priority(rec[9]),
                born=rec[10],
                seq=rec[11],
            )
            record = (rec[0], rec[1], rec[2], rec[3], pkt)
            bucket = pending.get(rec[0])
            if bucket is None:
                pending[rec[0]] = [record]
            else:
                bucket.append(record)

    def pending_min(self) -> int | None:
        """Earliest cycle with an undelivered arrival, or ``None``."""
        return min(self._pending) if self._pending else None

    def push_drains(self, start: int, stop: int) -> None:
        """Schedule one delivery drain per cycle of ``[start, stop)``.

        Called at the window barrier, *after* every event of earlier
        windows was pushed and *before* any event of this window runs —
        a bucket position that is identical for every shard count,
        which is what makes same-cycle delivery-vs-model ordering
        deterministic and K-independent.
        """
        schedule_at = self.engine.schedule_at
        drain = self._drain
        for cycle in range(start, stop):
            schedule_at(cycle, drain, cycle)

    def _drain(self, cycle: int) -> None:
        self.drains_fired += 1
        records = self._pending.pop(cycle, None)
        if records is None:
            return
        if len(records) > 1:
            records.sort(key=_delivery_order)
        obs = self.obs
        sinks = self._sinks
        for arrival, src, sseq, hops, pkt in records:
            if obs is not None:
                obs.emit(
                    PacketDeliver(
                        cycle,
                        (src << 32) | sseq,
                        pkt.kind,
                        src,
                        pkt.dst,
                        cycle - pkt.born,
                        hops,
                    )
                )
            sinks[pkt.dst](pkt)

    # ------------------------------------------------------------------
    # Diagnostics (interface parity with OmegaNetworkBase)
    # ------------------------------------------------------------------
    def port_utilization(self, horizon: int | None = None) -> dict[tuple, float]:
        """Busy fraction per port, summed across the per-source planes."""
        span = horizon if horizon is not None else self.engine.now
        if span <= 0:
            return {}
        busy: dict[tuple, int] = {}
        for plane in self._planes.values():
            for port, rec in plane.items():
                busy[port] = busy.get(port, 0) + rec[1]
        return {port: b / span for port, b in busy.items()}

    def hottest_ports(self, top: int = 8, horizon: int | None = None):
        """The ``top`` busiest ports, hottest first."""
        util = self.port_utilization(horizon)
        return sorted(util.items(), key=lambda kv: -kv[1])[:top]


def merge_network_stats(
    stats_list: list[NetworkStats],
    born_counts: list[Counter],
    arrival_counts: list[Counter],
) -> NetworkStats:
    """Combine per-shard :class:`NetworkStats` into one machine view.

    Sums, maxima and histograms merge directly; ``max_in_flight`` is
    recomputed with a canonical sweep over the merged injection/arrival
    cycle histograms (arrivals counted before injections within a
    cycle, matching the drain-before-model event order), so the value
    is a pure function of packet (born, arrival) intervals — identical
    for every shard count, including one.
    """
    merged = NetworkStats()
    for st in stats_list:
        merged.packets += st.packets
        merged.words += st.words
        merged.total_latency += st.total_latency
        merged.total_hops += st.total_hops
        if st.max_latency > merged.max_latency:
            merged.max_latency = st.max_latency
        if st.max_port_wait > merged.max_port_wait:
            merged.max_port_wait = st.max_port_wait
        merged.by_kind.update(st.by_kind)
        merged.latency_hist.update(st.latency_hist)
    born: Counter = Counter()
    arrive: Counter = Counter()
    for c in born_counts:
        born.update(c)
    for c in arrival_counts:
        arrive.update(c)
    current = peak = 0
    for cycle in sorted(born.keys() | arrive.keys()):
        current -= arrive.get(cycle, 0)
        current += born.get(cycle, 0)
        if current > peak:
            peak = current
    merged.max_in_flight = peak
    return merged
