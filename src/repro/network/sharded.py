"""Shard-partitionable Omega fabric for conservative-window parallel runs.

This is the network model behind ``repro.run(..., plan=ExecutionPlan(
shards=K))``.  The machine's PEs are partitioned into K contiguous
shards, each advancing its own engine under the adaptive window
protocol of :mod:`repro.sim.parallel`.  The protocol's safety bound is
the **per-pair lookahead matrix** ``L[i][j]`` (see
:func:`lookahead_matrix`): the minimum injection-to-delivery latency of
any packet from a PE of shard *i* to a *different* PE of shard *j*,
computed from real shuffle-ring topology distance — so far-apart shard
pairs synchronise far less often than the old scalar worst case forced.
The scalar :func:`lookahead` (the matrix minimum) remains as the
partition-independent floor.

Two properties make the result independent of K:

* **Per-source port planes.**  Every source PE owns a private replica
  of the ports on its routes (``("inj", src)``, each ``("sw", node,
  bit)``, ``("ej", dst)``), and a packet's full route is walked
  *arithmetically at injection time* — the reservation-at-injection
  scheme the analytic model always used, extended to the detailed
  per-stage plan.  Contention is therefore modelled among packets of
  one source only; since a source PE lives on exactly one shard, every
  packet's arrival cycle is computed entirely where it is injected and
  cannot depend on how the other PEs are partitioned.
* **Head-of-cycle delivery.**  No per-packet delivery events exist.
  Arrivals append to a per-cycle pending list, and the engine's
  ``pre_cycle`` hook (:meth:`ShardedOmegaNetwork.deliver_cycle`)
  delivers each cycle's records — sorted by ``(src_pe, per-source
  seq)`` — *before any model event of that cycle fires*.  A no-op
  *tick* event is scheduled for each new pending-arrival cycle so the
  engine visits delivery-only cycles.  Delivery order is therefore the
  K-independent ``(cycle, src_pe, per-source seq)``, by construction a
  pure function of the simulated traffic: it cannot depend on the
  window schedule, the barrier placement, or the shard count.  (The
  previous protocol scheduled drain events *at the window barrier*,
  which pinned delivery order to the window schedule and forced every
  shard to share one global window sequence.)

This is a *documented, distinct semantics* from the legacy live models
(``shards=None``): the legacy detailed model arbitrates each interior
port among **all** sources in true arrival order, which admits only a
one-cycle lookahead and cannot be partitioned with useful windows.  On
conflict-free traffic all three agree exactly (covered by tests); under
load the sharded fabric is optimistic about cross-source interior
contention.  ``shards=1`` runs this same semantics in-process, and the
K ∈ {2, 4} differential tests compare against it.
"""

from __future__ import annotations

from collections import Counter

from ..config import MachineConfig
from ..errors import NetworkError, SimulationError
from ..network.stats import NetworkStats
from ..obs.events import PacketDeliver, PacketHop
from ..packet import Packet, PacketKind, Priority
from .topology import CircularOmegaTopology

__all__ = [
    "lookahead",
    "lookahead_matrix",
    "ShardedOmegaNetwork",
    "merge_network_stats",
]


def lookahead(config: MachineConfig) -> int:
    """Minimum src≠dst injection-to-delivery latency, in cycles.

    Both models deliver a k-hop packet no earlier than
    ``inject + k + eject`` (injection reaches the first switch in the
    same cycle, each later hop costs one cut-through cycle, ejection
    costs ``timing.eject``; contention only delays).  The bound is the
    minimum over *all* ordered pairs, not just cross-shard ones, so the
    window length never depends on the partition.  Self-sends
    (src == dst, latency ``eject``) are always intra-shard and exempt.
    """
    topo = CircularOmegaTopology(config.n_pes)
    if config.n_pes < 2:
        return config.timing.eject + 1
    min_hops = None
    for src in range(config.n_pes):
        for dst in range(config.n_pes):
            if src == dst:
                continue
            hops = topo.hop_count(src, dst)
            if min_hops is None or hops < min_hops:
                min_hops = hops
                if min_hops == 1:
                    return 1 + config.timing.eject
    return min_hops + config.timing.eject


def lookahead_matrix(
    config: MachineConfig, bounds: tuple[tuple[int, int], ...]
) -> tuple[tuple[int, ...], ...]:
    """Per-shard-pair delivery-latency lower bounds, in cycles.

    ``bounds`` is the contiguous partition from
    :func:`repro.sim.parallel.partition`.  Entry ``[i][j]`` is the
    minimum over all ``src ∈ shard_i, dst ∈ shard_j, src ≠ dst`` of
    ``hop_count(src, dst) + eject`` — the earliest any packet injected
    by shard *i* at cycle ``t`` can need delivering on shard *j*
    (contention and cut-through waits only delay; see :func:`lookahead`
    for the latency decomposition).  Every entry is therefore a true
    lower bound on cross-pair delivery latency, and every entry is
    ``>=`` the scalar :func:`lookahead` (which is exactly the matrix
    minimum when K > 1).

    Diagonal entries bound *intra*-shard cross-PE traffic and are never
    consulted by the window protocol (a shard needs no lookahead
    against itself); a single-PE shard, having no distinct pair, gets
    the self-send floor ``eject + 1`` there.
    """
    eject = config.timing.eject
    count = len(bounds)
    if config.n_pes < 2:
        return tuple((eject + 1,) * count for _ in range(count))
    topo = CircularOmegaTopology(config.n_pes)
    rows = []
    for slo, shi in bounds:
        row = []
        for dlo, dhi in bounds:
            if slo == dlo and shi - slo == 1:
                row.append(eject + 1)  # single-PE shard diagonal
            else:
                row.append(topo.min_hops_between(range(slo, shi), range(dlo, dhi)) + eject)
        rows.append(tuple(row))
    return tuple(rows)


def _delivery_order(record: tuple) -> tuple[int, int]:
    """Sort key within one delivery cycle: (src_pe, per-source seq)."""
    return (record[1], record[2])


class ShardedOmegaNetwork:
    """Omega fabric split into per-source planes with barrier delivery.

    ``owns(pe)`` tells the network which destinations are local: their
    arrivals go straight to the pending lists, the rest accumulate in
    the *egress* list the window protocol ships at each barrier.
    Delivery records are ``(arrival, src, sseq, hops, pkt)`` tuples —
    picklable, self-contained, and carrying the canonical merge key.

    ``spec`` (a :class:`repro.sim.parallel.ShardSpec`) enables the
    per-pair machinery: the lookahead matrix, the tighter pairwise
    egress guard in :meth:`send`, and the per-destination-shard bound
    the adaptive window protocol reads.  Without it (direct
    construction in tests) the scalar ``lookahead`` guards every
    boundary crossing, as before.
    """

    def __init__(self, engine, config: MachineConfig, owns, obs=None, spec=None) -> None:
        if config.network_model not in ("detailed", "analytic"):
            raise NetworkError(f"unknown network model {config.network_model!r}")
        self.engine = engine
        self.topology = CircularOmegaTopology(config.n_pes)
        self.timing = config.timing
        self.obs = obs
        self.stats = NetworkStats()
        self.owns = owns
        self.lookahead = lookahead(config)
        self.spec = spec
        #: K×K per-pair lookahead matrix (``None`` without a spec).
        self.pair_lookahead = None
        #: dst PE → ``pair_lookahead[my_shard][shard_of(dst)]`` — the
        #: egress guard bound, resolved once per destination.
        self._dst_bound: list[int] | None = None
        if spec is not None:
            self.pair_lookahead = lookahead_matrix(config, spec.bounds)
            me = spec.index
            shard_of = []
            for pe in range(config.n_pes):
                for index, (lo, hi) in enumerate(spec.bounds):
                    if lo <= pe < hi:
                        shard_of.append(index)
                        break
            self._dst_bound = [self.pair_lookahead[me][s] for s in shard_of]
        #: Head-of-cycle delivery: the engine calls back before firing
        #: any of a cycle's model events.
        engine.pre_cycle = self.deliver_cycle
        self._detailed = config.network_model == "detailed"
        self._sinks: dict[int, object] = {}
        #: src PE → its private ``{port: [next_free, busy]}`` plane.
        self._planes: dict[int, dict] = {}
        self._plans: dict[tuple[int, int], tuple] = {}
        #: src PE → next per-source injection sequence number.
        self._pe_seq: dict[int, int] = {}
        #: arrival cycle → delivery records (local + ingested ingress).
        self._pending: dict[int, list] = {}
        self._egress: list = []
        #: Local packet seq → canonical ``(src << 32) | sseq`` id, used
        #: to remap ``PacketSend`` events (emitted by the OBU *before*
        #: the network sees the packet) when shard traces merge.
        self.seq_map: dict[int, int] = {}
        #: Injection/arrival cycle histograms; the merged
        #: ``max_in_flight`` is a canonical sweep over these.
        self.born_counts: Counter = Counter()
        self.arrival_counts: Counter = Counter()
        #: Tick events fired (one no-op per distinct pending-arrival
        #: cycle, forcing the engine to visit delivery-only cycles) —
        #: subtracted from ``engine.events_fired`` so the reported event
        #: count excludes protocol scaffolding.
        self.ticks_fired = 0
        self.in_flight = 0  # kept for interface parity; not tracked live
        self._eject = self.timing.eject
        self._cpp = self.timing.port_cycles_per_packet

    # ------------------------------------------------------------------
    def attach(self, pe: int, deliver) -> None:
        """Register the packet sink (the PE's switching unit) for ``pe``."""
        if pe in self._sinks:
            raise NetworkError(f"PE {pe} already attached")
        self._sinks[pe] = deliver

    def probe_latency(self, src: int, dst: int) -> int:
        """Uncongested one-way latency in cycles (k hops → k+1)."""
        return self.topology.latency_cycles(src, dst)

    # ------------------------------------------------------------------
    def send(self, pkt: Packet) -> None:
        """Inject ``pkt`` now: walk its route, book its delivery record."""
        dst = pkt.dst
        if dst not in self._sinks:
            raise NetworkError(f"packet to unattached PE {dst}: {pkt!r}")
        now = self.engine.now
        pkt.born = now
        src = pkt.src
        sseq = self._pe_seq.get(src, 0)
        self._pe_seq[src] = sseq + 1
        canon = (src << 32) | sseq
        self.seq_map[pkt.seq] = canon
        slots = pkt.slots(self._cpp)
        plane = self._planes.get(src)
        if plane is None:
            plane = self._planes[src] = {}
        stats = self.stats
        if self._detailed:
            plan = self._plans.get((src, dst))
            if plan is None:
                route = self.topology.route(src, dst)
                plan = self._plans[(src, dst)] = (
                    ("inj", src),
                    *(("sw", h.node, h.bit) for h in route),
                    ("ej", dst),
                )
            last = len(plan) - 1
            hops = last - 1
            obs = self.obs
            t = now
            arrival = now
            for idx in range(last + 1):
                port = plan[idx]
                if obs is not None and 0 < idx < last:
                    obs.emit(PacketHop(t, canon, port[1], port[2]))
                rec = plane.get(port)
                if rec is None:
                    rec = plane[port] = [0, 0]
                depart = rec[0]
                if depart > t:
                    wait = depart - t
                    if wait > stats.max_port_wait:
                        stats.max_port_wait = wait
                else:
                    depart = t
                rec[0] = depart + slots
                rec[1] += slots
                if idx == last:
                    arrival = depart + self._eject
                else:
                    # Injection into the first switch is immediate; each
                    # shuffle hop afterwards costs one cut-through cycle.
                    t = depart if idx == 0 else depart + 1
        else:
            hops = self.topology.hop_count(src, dst)
            t = self._reserve(plane, ("inj", src), now, slots)
            depart = self._reserve(plane, ("ej", dst), t + hops, slots)
            arrival = depart + self._eject
        stats.record(pkt, hops, arrival - now)
        self.born_counts[now] += 1
        self.arrival_counts[arrival] += 1
        if self.owns(dst):
            record = (arrival, src, sseq, hops, pkt)
            bucket = self._pending.get(arrival)
            if bucket is None:
                self._pending[arrival] = [record]
                self.engine.schedule_at(arrival, self._tick)
            else:
                bucket.append(record)
        else:
            bound = self.lookahead if self._dst_bound is None else self._dst_bound[dst]
            if arrival < now + bound:
                raise SimulationError(
                    f"lookahead violation: packet {src}->{dst} injected at "
                    f"{now} arrives at {arrival} < {now + bound}"
                )
            # Boundary records are flattened to primitive tuples here,
            # at injection: the window protocol pickles the egress list
            # every barrier, and flat tuples serialise ~10x faster than
            # Packet dataclass instances (measured; this is the hot part
            # of the barrier's serial cost).
            self._egress.append((
                arrival, src, sseq, hops,
                pkt.kind.value, dst, pkt.address, pkt.data, pkt.words,
                pkt.priority.value, pkt.born, pkt.seq,
            ))

    def _reserve(self, plane: dict, port: tuple, earliest: int, slots: int) -> int:
        rec = plane.get(port)
        if rec is None:
            rec = plane[port] = [0, 0]
        depart = rec[0]
        if depart > earliest:
            wait = depart - earliest
            if wait > self.stats.max_port_wait:
                self.stats.max_port_wait = wait
        else:
            depart = earliest
        rec[0] = depart + slots
        rec[1] += slots
        return depart

    # ------------------------------------------------------------------
    # Window protocol surface (driven by repro.sim.parallel)
    # ------------------------------------------------------------------
    def take_egress(self) -> list:
        """Drain and return the boundary records since the last barrier.

        Wire format (flat, pickle-cheap): ``(arrival, src, sseq, hops,
        kind_value, dst, address, data, words, priority_value, born,
        seq)``; :meth:`add_ingress` rebuilds the packets.
        """
        out = self._egress
        self._egress = []
        return out

    def add_ingress(self, records: list) -> None:
        """Merge another shard's egress records addressed to local PEs.

        Ingested at the window barrier.  The adaptive protocol
        guarantees every record's arrival cycle lies beyond the
        ingesting shard's last horizon (the pairwise lookahead bounds
        it below by the sender's ``ea + L``), so the tick always lands
        in this engine's future.
        """
        owns = self.owns
        pending = self._pending
        schedule_at = self.engine.schedule_at
        tick = self._tick
        for rec in records:
            dst = rec[5]
            if not owns(dst):
                continue
            pkt = Packet(
                kind=PacketKind(rec[4]),
                src=rec[1],
                dst=dst,
                address=rec[6],
                data=rec[7],
                words=rec[8],
                priority=Priority(rec[9]),
                born=rec[10],
                seq=rec[11],
            )
            record = (rec[0], rec[1], rec[2], rec[3], pkt)
            bucket = pending.get(rec[0])
            if bucket is None:
                pending[rec[0]] = [record]
                schedule_at(rec[0], tick)
            else:
                bucket.append(record)

    def pending_min(self) -> int | None:
        """Earliest cycle with an undelivered arrival, or ``None``."""
        return min(self._pending) if self._pending else None

    def _tick(self) -> None:
        """No-op scheduled once per new pending-arrival cycle.

        Its only job is to make the engine *visit* cycles whose sole
        content is packet delivery (which happens in the
        :meth:`deliver_cycle` pre-cycle hook).  Counted so the
        scaffolding can be subtracted from ``events_fired``.
        """
        self.ticks_fired += 1

    def deliver_cycle(self, cycle: int) -> None:
        """Head-of-cycle delivery hook (installed as ``engine.pre_cycle``).

        Runs after the clock advances to ``cycle`` and before any of
        that cycle's model events fire; delivers the cycle's pending
        records in the canonical ``(src_pe, per-source seq)`` order.
        Because every visited cycle passes through here — and ticks
        force a visit to delivery-only cycles — delivery timing and
        ordering are a pure function of the traffic, independent of the
        window schedule and the shard count.
        """
        records = self._pending.pop(cycle, None)
        if records is None:
            return
        if len(records) > 1:
            records.sort(key=_delivery_order)
        obs = self.obs
        sinks = self._sinks
        for arrival, src, sseq, hops, pkt in records:
            if obs is not None:
                obs.emit(
                    PacketDeliver(
                        cycle,
                        (src << 32) | sseq,
                        pkt.kind,
                        src,
                        pkt.dst,
                        cycle - pkt.born,
                        hops,
                    )
                )
            sinks[pkt.dst](pkt)

    # ------------------------------------------------------------------
    # Diagnostics (interface parity with OmegaNetworkBase)
    # ------------------------------------------------------------------
    def port_utilization(self, horizon: int | None = None) -> dict[tuple, float]:
        """Busy fraction per port, summed across the per-source planes."""
        span = horizon if horizon is not None else self.engine.now
        if span <= 0:
            return {}
        busy: dict[tuple, int] = {}
        for plane in self._planes.values():
            for port, rec in plane.items():
                busy[port] = busy.get(port, 0) + rec[1]
        return {port: b / span for port, b in busy.items()}

    def hottest_ports(self, top: int = 8, horizon: int | None = None):
        """The ``top`` busiest ports, hottest first."""
        util = self.port_utilization(horizon)
        return sorted(util.items(), key=lambda kv: -kv[1])[:top]


def merge_network_stats(
    stats_list: list[NetworkStats],
    born_counts: list[Counter],
    arrival_counts: list[Counter],
) -> NetworkStats:
    """Combine per-shard :class:`NetworkStats` into one machine view.

    Sums, maxima and histograms merge directly; ``max_in_flight`` is
    recomputed with a canonical sweep over the merged injection/arrival
    cycle histograms (arrivals counted before injections within a
    cycle, matching the drain-before-model event order), so the value
    is a pure function of packet (born, arrival) intervals — identical
    for every shard count, including one.
    """
    merged = NetworkStats()
    for st in stats_list:
        merged.packets += st.packets
        merged.words += st.words
        merged.total_latency += st.total_latency
        merged.total_hops += st.total_hops
        if st.max_latency > merged.max_latency:
            merged.max_latency = st.max_latency
        if st.max_port_wait > merged.max_port_wait:
            merged.max_port_wait = st.max_port_wait
        merged.by_kind.update(st.by_kind)
        merged.latency_hist.update(st.latency_hist)
    born: Counter = Counter()
    arrive: Counter = Counter()
    for c in born_counts:
        born.update(c)
    for c in arrival_counts:
        arrive.update(c)
    current = peak = 0
    for cycle in sorted(born.keys() | arrive.keys()):
        current -= arrive.get(cycle, 0)
        current += born.get(cycle, 0)
        if current > peak:
            peak = current
    merged.max_in_flight = peak
    return merged
