"""Interconnect statistics.

Counts every packet the network carries, broken down by kind, with
latency aggregates.  The microbenchmark experiments (remote-read latency
≈ 1 µs) read these directly; the figure experiments use them to report
traffic volumes alongside the per-processor cycle buckets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..packet import Packet, PacketKind

__all__ = ["NetworkStats"]


@dataclass
class NetworkStats:
    """Aggregate packet counters for one network instance."""

    packets: int = 0
    words: int = 0
    total_latency: int = 0
    max_latency: int = 0
    total_hops: int = 0
    by_kind: Counter = field(default_factory=Counter)
    #: Full latency distribution (``{cycles: packet_count}``), the basis
    #: of the percentile figures.  Bounded by the number of *distinct*
    #: latencies, which the integer cycle clock keeps small.
    latency_hist: Counter = field(default_factory=Counter)
    #: Peak number of packets simultaneously in the fabric.
    max_in_flight: int = 0
    #: Longest any packet waited for a busy output port (cycles) — the
    #: per-port queue-occupancy ceiling (network layer maintains it).
    max_port_wait: int = 0

    def record(self, pkt: Packet, hops: int, latency: int) -> None:
        """Account one delivered packet."""
        self.packets += 1
        self.words += pkt.words
        self.total_hops += hops
        self.total_latency += latency
        if latency > self.max_latency:
            self.max_latency = latency
        self.by_kind[pkt.kind] += 1
        self.latency_hist[latency] += 1

    @property
    def mean_latency(self) -> float:
        """Average injection-to-delivery latency in cycles."""
        return self.total_latency / self.packets if self.packets else 0.0

    @property
    def mean_hops(self) -> float:
        """Average switch hops per packet."""
        return self.total_hops / self.packets if self.packets else 0.0

    def latency_percentile(self, q: float) -> float:
        """Nearest-rank ``q``-quantile (0..1) of packet latency in cycles."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in 0..1, got {q}")
        total = sum(self.latency_hist.values())
        if total == 0:
            return 0.0
        rank = max(1, int(q * total + 0.5))
        seen = 0
        for latency in sorted(self.latency_hist):
            seen += self.latency_hist[latency]
            if seen >= rank:
                return float(latency)
        return float(self.max_latency)  # pragma: no cover - rank <= total

    @property
    def p50_latency(self) -> float:
        """Median injection-to-delivery latency in cycles."""
        return self.latency_percentile(0.50)

    @property
    def p95_latency(self) -> float:
        """95th-percentile injection-to-delivery latency in cycles."""
        return self.latency_percentile(0.95)

    def count(self, kind: PacketKind) -> int:
        """Packets delivered of one kind."""
        return self.by_kind[kind]

    def summary(self) -> str:
        """One-line human-readable digest."""
        kinds = ", ".join(f"{k.value}={v}" for k, v in sorted(self.by_kind.items(), key=lambda kv: kv[0].value))
        return (
            f"{self.packets} pkts ({self.words} words), "
            f"mean latency {self.mean_latency:.1f} cyc "
            f"(p50 {self.p50_latency:.0f}, p95 {self.p95_latency:.0f}, max {self.max_latency}), "
            f"mean hops {self.mean_hops:.2f}, "
            f"peak in-flight {self.max_in_flight} [{kinds}]"
        )
