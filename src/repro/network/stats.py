"""Interconnect statistics.

Counts every packet the network carries, broken down by kind, with
latency aggregates.  The microbenchmark experiments (remote-read latency
≈ 1 µs) read these directly; the figure experiments use them to report
traffic volumes alongside the per-processor cycle buckets.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from ..packet import Packet, PacketKind

__all__ = ["NetworkStats"]


@dataclass
class NetworkStats:
    """Aggregate packet counters for one network instance."""

    packets: int = 0
    words: int = 0
    total_latency: int = 0
    max_latency: int = 0
    total_hops: int = 0
    by_kind: Counter = field(default_factory=Counter)

    def record(self, pkt: Packet, hops: int, latency: int) -> None:
        """Account one delivered packet."""
        self.packets += 1
        self.words += pkt.words
        self.total_hops += hops
        self.total_latency += latency
        if latency > self.max_latency:
            self.max_latency = latency
        self.by_kind[pkt.kind] += 1

    @property
    def mean_latency(self) -> float:
        """Average injection-to-delivery latency in cycles."""
        return self.total_latency / self.packets if self.packets else 0.0

    @property
    def mean_hops(self) -> float:
        """Average switch hops per packet."""
        return self.total_hops / self.packets if self.packets else 0.0

    def count(self, kind: PacketKind) -> int:
        """Packets delivered of one kind."""
        return self.by_kind[kind]

    def summary(self) -> str:
        """One-line human-readable digest."""
        kinds = ", ".join(f"{k.value}={v}" for k, v in sorted(self.by_kind.items(), key=lambda kv: kv[0].value))
        return (
            f"{self.packets} pkts ({self.words} words), "
            f"mean latency {self.mean_latency:.1f} cyc (max {self.max_latency}), "
            f"mean hops {self.mean_hops:.2f} [{kinds}]"
        )
