"""Figure 8: distribution of execution time on 64 processors.

Stacked percentages of computation, overhead, communication and
switching vs. thread count, for sorting and FFT at a small and a large
problem size (the paper uses n = 512K and n = 8M at P = 64; we use the
scale ladder's smallest and largest per-PE sizes).
"""

from __future__ import annotations

from ..errors import ConfigError
from ..metrics.report import format_table
from ..runner.sweep import sweep_threads
from .common import THREAD_SWEEP, ExperimentScale, default_scale

__all__ = ["fig8_panel", "format_fig8", "PANELS"]

#: Panel letter → (app, small-or-large problem size).
PANELS = {
    "a": ("sort", "small"),
    "b": ("sort", "large"),
    "c": ("fft", "small"),
    "d": ("fft", "large"),
}

COMPONENTS = ("computation", "overhead", "communication", "switching")


def fig8_panel(
    panel: str,
    scale: ExperimentScale | None = None,
    threads: tuple[int, ...] = THREAD_SWEEP,
    **kwargs,
) -> dict[int, dict[str, float]]:
    """{h: {component: percent}} for one panel at P = p_large."""
    if panel not in PANELS:
        raise ConfigError(f"Fig. 8 has panels {sorted(PANELS)}, not {panel!r}")
    scale = scale or default_scale()
    app, size_role = PANELS[panel]
    npp = scale.small_size if size_role == "small" else scale.large_size
    records = sweep_threads(app, scale.p_large, npp, threads, **kwargs)
    return {h: rec.breakdown() for h, rec in records.items()}


def format_fig8(panel: str, series: dict[int, dict[str, float]], n_pes: int, npp: int) -> str:
    """Render the four components in percent, one row per thread count."""
    headers = ["threads"] + [c for c in COMPONENTS]
    rows = [[h] + [series[h][c] for c in COMPONENTS] for h in sorted(series)]
    app = "B-sorting" if PANELS[panel][0] == "sort" else "FFT"
    title = f"Fig 8({panel}): {app} P={n_pes}, n/P={npp} — execution time distribution [%]"
    return format_table(headers, rows, title)
