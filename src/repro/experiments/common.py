"""Shared experiment machinery: scales, cached runs, thread sweeps.

The paper sweeps h = 1..16 threads on P = 16 and P = 64 processors over
five data sizes spanning a ×16 range (128K..2M elements at P=16,
512K..8M at P=64).  Pure-Python event simulation cannot reach 8M
elements, so the ``REPRO_SCALE`` environment variable selects a size
ladder that keeps the *per-processor* workload sweep shape (five sizes,
×16 range) at a tractable absolute scale:

=========  =======================  =========================
scale      per-PE sizes             intended use
=========  =======================  =========================
``tiny``   8, 16, 32                unit tests / smoke runs
``small``  16 … 256 (default)       the benchmark harness
``large``  64 … 1024                overnight fidelity runs
=========  =======================  =========================

Execution is delegated to the :mod:`repro.runner` engine: every run is
memoised per process (so Fig. 7 reuses the Fig. 6 sweep and Fig. 8/9
reuse each other's runs), persisted to an on-disk result cache, and —
when the runner is configured with ``jobs > 1`` — fanned across a
process pool.  ``run_app`` / ``sweep_threads`` keep their historical
signatures; they are thin shims over the engine.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Literal

from ..errors import ConfigError
from ..metrics.counters import SwitchKind
from ..runner.jobs import JobSpec
from ..runner.sweep import clear_memo, run_job, sweep_threads

__all__ = [
    "THREAD_SWEEP",
    "ExperimentScale",
    "RunRecord",
    "default_scale",
    "run_app",
    "sweep_threads",
    "clear_cache",
]

#: The thread counts every figure sweeps (the paper's x-axis, 1..16).
THREAD_SWEEP: tuple[int, ...] = (1, 2, 3, 4, 6, 8, 12, 16)

AppName = Literal["sort", "fft"]


@dataclass(frozen=True)
class ExperimentScale:
    """A size ladder standing in for the paper's 128K–8M sweeps."""

    name: str
    sizes_per_pe: tuple[int, ...]
    p_small: int = 16
    p_large: int = 64
    #: Subset of sizes swept on the large machine (P=64 is ~4× the event
    #: cost of P=16, so its Fig. 6 panels use fewer curves by default).
    large_machine_sizes: tuple[int, ...] | None = None

    @property
    def small_size(self) -> int:
        """The per-PE size playing the paper's '512K' (small) role."""
        return self.sizes_per_pe[0]

    @property
    def large_size(self) -> int:
        """The per-PE size playing the paper's '8M' (large) role."""
        return self.sizes_per_pe[-1]

    def sizes_for(self, n_pes: int) -> tuple[int, ...]:
        """The per-PE sizes swept on a machine of ``n_pes``."""
        if n_pes >= self.p_large and self.large_machine_sizes:
            return self.large_machine_sizes
        return self.sizes_per_pe


_SCALES = {
    "tiny": ExperimentScale("tiny", (8, 16, 32), p_small=8, p_large=16),
    "small": ExperimentScale(
        "small", (16, 32, 64, 128, 256), large_machine_sizes=(16, 64, 256)
    ),
    "large": ExperimentScale(
        "large", (64, 128, 256, 512, 1024), large_machine_sizes=(64, 256, 1024)
    ),
}


def default_scale() -> ExperimentScale:
    """The ladder selected by ``REPRO_SCALE`` (default ``small``)."""
    name = os.environ.get("REPRO_SCALE", "small")
    try:
        return _SCALES[name]
    except KeyError:
        raise ConfigError(
            f"REPRO_SCALE={name!r}; valid scales are {sorted(_SCALES)}"
        ) from None


@dataclass(frozen=True)
class RunRecord:
    """The per-run numbers every figure consumes."""

    app: str
    n_pes: int
    npp: int
    h: int
    runtime_seconds: float
    comm_seconds: float  # Fig. 6 definition: idle + sync stalls
    comm_idle_seconds: float
    breakdown_pct: tuple[tuple[str, float], ...]
    switches_per_pe: tuple[tuple[str, float], ...]
    verified: bool
    events: int

    def switches(self, kind: SwitchKind) -> float:
        """Average per-PE switch count of one kind."""
        return dict(self.switches_per_pe)[kind.value]

    def breakdown(self) -> dict[str, float]:
        """Percentage breakdown (computation/overhead/communication/switching)."""
        return dict(self.breakdown_pct)


def clear_cache(disk: bool = False) -> None:
    """Drop all memoised runs (tests use this to force fresh sweeps).

    With ``disk=True`` the on-disk result cache (at the runner's active
    cache root) is purged as well, so the next sweep re-executes every
    simulation instead of rehydrating from disk.
    """
    clear_memo()
    if disk:
        from ..runner.cache import ResultCache
        from ..runner.sweep import get_options

        ResultCache(get_options().cache_dir).purge()


def run_app(
    app: AppName,
    n_pes: int,
    npp: int,
    h: int,
    *,
    em4_mode: bool = False,
    network_model: str = "detailed",
    priority_replies: bool = False,
    seed: int = 0,
) -> RunRecord:
    """Run one workload configuration (memoised per process).

    Delegates to the execution engine: memo first, then the on-disk
    cache, then an in-process simulation.
    """
    spec = JobSpec(
        app=app,
        n_pes=n_pes,
        npp=npp,
        h=h,
        em4_mode=em4_mode,
        network_model=network_model,
        priority_replies=priority_replies,
        seed=seed,
    )
    return run_job(spec)
