"""CSV export of every regenerated figure.

Plotting tools want long-form tables; this module flattens the figure
drivers' nested series into ``figure,panel,app,n_pes,npp,h,metric,value``
rows and writes one CSV per figure (plus a combined ``all_figures.csv``).
Used by ``python -m repro export``.
"""

from __future__ import annotations

import csv
import pathlib
from typing import Iterable

from ..errors import ConfigError
from ..runner.sweep import sweep_figures
from .common import THREAD_SWEEP, ExperimentScale, default_scale
from .fig6 import PANELS as FIG6_PANELS
from .fig6 import fig6_panel
from .fig7 import fig7_panel
from .fig8 import PANELS as FIG8_PANELS
from .fig8 import fig8_panel
from .fig9 import fig9_panel

__all__ = ["export_all", "Row"]

#: One long-form record.
Row = tuple[str, str, str, int, int, int, str, float]


def _fig6_rows(scale: ExperimentScale, threads) -> Iterable[Row]:
    for panel, (app, which) in sorted(FIG6_PANELS.items()):
        n_pes = getattr(scale, which)
        for npp, curve in fig6_panel(panel, scale, threads).items():
            for h, seconds in sorted(curve.items()):
                yield ("fig6", panel, app, n_pes, npp, h, "comm_seconds", seconds)


def _fig7_rows(scale: ExperimentScale, threads) -> Iterable[Row]:
    for panel, (app, which) in sorted(FIG6_PANELS.items()):
        n_pes = getattr(scale, which)
        for npp, curve in fig7_panel(panel, scale, threads).items():
            for h, eff in sorted(curve.items()):
                yield ("fig7", panel, app, n_pes, npp, h, "overlap_efficiency", eff)


def _fig8_rows(scale: ExperimentScale, threads) -> Iterable[Row]:
    for panel, (app, size_role) in sorted(FIG8_PANELS.items()):
        npp = scale.small_size if size_role == "small" else scale.large_size
        for h, comps in sorted(fig8_panel(panel, scale, threads).items()):
            for component, pct in sorted(comps.items()):
                yield ("fig8", panel, app, scale.p_large, npp, h, f"pct_{component}", pct)


def _fig9_rows(scale: ExperimentScale, threads) -> Iterable[Row]:
    for panel, (app, size_role) in sorted(FIG8_PANELS.items()):
        npp = scale.small_size if size_role == "small" else scale.large_size
        for h, kinds in sorted(fig9_panel(panel, scale, threads).items()):
            for kind, count in sorted(kinds.items()):
                yield ("fig9", panel, app, scale.p_large, npp, h, f"switches_{kind}", count)


_FIGS = {
    "fig6": _fig6_rows,
    "fig7": _fig7_rows,
    "fig8": _fig8_rows,
    "fig9": _fig9_rows,
}

_HEADER = ["figure", "panel", "app", "n_pes", "npp", "threads", "metric", "value"]


def export_all(
    outdir: str | pathlib.Path,
    scale: ExperimentScale | None = None,
    threads: tuple[int, ...] = THREAD_SWEEP,
    figures: tuple[str, ...] = ("fig6", "fig7", "fig8", "fig9"),
) -> list[pathlib.Path]:
    """Regenerate the requested figures and write CSVs; returns paths.

    All required simulations are first satisfied through the execution
    engine — on-disk cache hits cost nothing, and misses fan across the
    process pool when the runner is configured with ``jobs > 1``.  Runs
    stay memoised process-wide, so fig7 reuses fig6's sweeps and the
    combined file costs nothing extra.
    """
    unknown = set(figures) - set(_FIGS)
    if unknown:
        raise ConfigError(f"unknown figures {sorted(unknown)}; valid: {sorted(_FIGS)}")
    scale = scale or default_scale()
    out = pathlib.Path(outdir)
    out.mkdir(parents=True, exist_ok=True)

    # Warm the memo for every distinct job up front (parallel on misses)
    # so the per-figure row generators below are pure table-flattening.
    sweep_figures(scale, threads, figures)

    written: list[pathlib.Path] = []
    all_rows: list[Row] = []
    for fig in figures:
        rows = list(_FIGS[fig](scale, threads))
        all_rows.extend(rows)
        path = out / f"{fig}.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(_HEADER)
            writer.writerows(rows)
        written.append(path)

    combined = out / "all_figures.csv"
    with combined.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(_HEADER)
        writer.writerows(all_rows)
    written.append(combined)
    return written
