"""Point measurements the paper quotes in passing.

* µ1 — "A typical remote read takes approximately 1 µs": a pinger
  thread issues sequential remote reads to targets at increasing hop
  distances; we report the issue-to-resume round trip in cycles and µs.
* µ2 — "We measured the overhead by using a null loop body, i.e., the
  loop body has no computation but instructions to generate packets":
  a thread issues remote writes only; the OVERHEAD bucket divided by
  the write count is the per-packet generation cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import CYCLE_SECONDS, MachineConfig
from ..machine import EMX
from ..metrics.counters import Bucket

__all__ = [
    "LatencyPoint",
    "measure_remote_read_latency",
    "OverheadResult",
    "measure_overhead_null_loop",
]


@dataclass(frozen=True)
class LatencyPoint:
    """Round-trip measurement against one target processor."""

    target: int
    hops: int
    cycles_per_read: float
    roundtrip_cycles: float  # EXU work per read removed

    @property
    def microseconds(self) -> float:
        """Round-trip latency in µs on the 20 MHz machine."""
        return self.roundtrip_cycles * CYCLE_SECONDS * 1e6


def _pinger(ctx, target: int, count: int):
    for k in range(count):
        _ = yield ctx.read(ctx.ga(target, k % 16))


def measure_remote_read_latency(
    n_pes: int = 64,
    reads: int = 256,
    targets: tuple[int, ...] | None = None,
    config: MachineConfig | None = None,
) -> list[LatencyPoint]:
    """Sequential remote-read round trips to targets at varied distances."""
    points = []
    base = (config or MachineConfig()).with_(n_pes=n_pes)
    if targets is None:
        targets = tuple(sorted({1, 2, n_pes // 4, n_pes // 2, n_pes - 1} - {0}))
    for target in targets:
        machine = EMX(base)
        machine.register(_pinger)
        machine.spawn(0, "_pinger", target, reads)
        report = machine.run()
        timing = machine.config.timing
        per_read = report.runtime_cycles / reads
        exu_work = timing.pkt_gen + timing.reg_save + timing.match_invoke
        points.append(
            LatencyPoint(
                target=target,
                hops=machine.network.topology.hop_count(0, target),
                cycles_per_read=per_read,
                roundtrip_cycles=per_read - exu_work,
            )
        )
    return points


@dataclass(frozen=True)
class OverheadResult:
    """Null-loop packet-generation overhead."""

    writes: int
    overhead_cycles: int
    cycles_per_packet: float


def _null_writer(ctx, target: int, count: int):
    for k in range(count):
        yield ctx.write(ctx.ga(target, k % 16), k)


def measure_overhead_null_loop(
    n_pes: int = 16,
    writes: int = 1024,
    config: MachineConfig | None = None,
) -> OverheadResult:
    """The paper's null-loop probe: packet generation cost in isolation."""
    machine = EMX((config or MachineConfig()).with_(n_pes=n_pes))
    machine.register(_null_writer)
    machine.spawn(0, "_null_writer", 1, writes)
    report = machine.run()
    overhead = report.counters[0].cycles[Bucket.OVERHEAD]
    return OverheadResult(
        writes=writes,
        overhead_cycles=overhead,
        cycles_per_packet=overhead / writes,
    )
