"""Figure 7: efficiency of overlapping.

E = (T_comm,1 − T_comm,h) / T_comm,1, per panel of Fig. 6.  The paper's
headline numbers: bitonic sorting overlaps roughly 35 % of its
communication; FFT overlaps over 95 % with two to four threads.
"""

from __future__ import annotations

from ..metrics.overlap import overlap_series
from ..metrics.report import format_table
from .common import THREAD_SWEEP, ExperimentScale
from .fig6 import PANELS, fig6_panel

__all__ = ["fig7_panel", "format_fig7"]


def fig7_panel(
    panel: str,
    scale: ExperimentScale | None = None,
    threads: tuple[int, ...] = THREAD_SWEEP,
    **kwargs,
) -> dict[int, dict[int, float]]:
    """Efficiency curves {n/P: {h: E}} for one panel (reuses Fig. 6 runs)."""
    comm = fig6_panel(panel, scale, threads, **kwargs)
    return {npp: overlap_series(curve) for npp, curve in comm.items()}


def format_fig7(panel: str, series: dict[int, dict[int, float]], n_pes: int) -> str:
    """Render efficiency in percent, rows = h, columns = sizes."""
    sizes = sorted(series)
    threads = sorted({h for curve in series.values() for h in curve})
    headers = ["threads"] + [f"n/P={npp}" for npp in sizes]
    rows = []
    for h in threads:
        rows.append(
            [h] + [100.0 * series[npp][h] if h in series[npp] else float("nan") for npp in sizes]
        )
    app = "B-sorting" if PANELS[panel][0] == "sort" else "FFT"
    title = f"Fig 7({panel}): {app} P={n_pes} — overlap efficiency [%]"
    return format_table(headers, rows, title)
