"""Figure 9: average number of switches per processor, by type.

Three curves per panel on a log y-axis: remote-read switches (fixed in
h — derivable from n, h, P), iteration-synchronisation switches (growing
with h; overtaking remote reads at 16 threads for small problems), and
thread-synchronisation switches (present for sorting's ordered merges,
near-absent for FFT).  Panels match Fig. 8's (app × size) grid at P=64.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..metrics.counters import SwitchKind
from ..metrics.report import format_table
from ..runner.sweep import sweep_threads
from .common import THREAD_SWEEP, ExperimentScale, default_scale
from .fig8 import PANELS

__all__ = ["fig9_panel", "format_fig9", "SWITCH_KINDS"]

SWITCH_KINDS = (SwitchKind.REMOTE_READ, SwitchKind.ITER_SYNC, SwitchKind.THREAD_SYNC)


def fig9_panel(
    panel: str,
    scale: ExperimentScale | None = None,
    threads: tuple[int, ...] = THREAD_SWEEP,
    **kwargs,
) -> dict[int, dict[str, float]]:
    """{h: {switch kind: average count per PE}} for one panel."""
    if panel not in PANELS:
        raise ConfigError(f"Fig. 9 has panels {sorted(PANELS)}, not {panel!r}")
    scale = scale or default_scale()
    app, size_role = PANELS[panel]
    npp = scale.small_size if size_role == "small" else scale.large_size
    records = sweep_threads(app, scale.p_large, npp, threads, **kwargs)
    return {
        h: {kind.value: rec.switches(kind) for kind in SWITCH_KINDS}
        for h, rec in records.items()
    }


def format_fig9(panel: str, series: dict[int, dict[str, float]], n_pes: int, npp: int) -> str:
    """Render switch counts, one row per thread count."""
    headers = ["threads"] + [k.value for k in SWITCH_KINDS]
    rows = [[h] + [series[h][k.value] for k in SWITCH_KINDS] for h in sorted(series)]
    app = "B-sorting" if PANELS[panel][0] == "sort" else "FFT"
    title = f"Fig 9({panel}): {app} P={n_pes}, n/P={npp} — switches per processor"
    return format_table(headers, rows, title)
