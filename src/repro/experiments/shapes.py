"""Qualitative shape checks: what "reproduced" means for each figure.

The reproduction targets the paper's *shapes* — who wins, where the
minimum falls, which curve overtakes which — not its absolute seconds
(the substrate is a simulator, not the 1995 prototype).  Each checker
returns a list of human-readable violations (empty = shape holds), so
tests can assert emptiness and benchmarks can print the verdicts.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = [
    "check_fig6_minimum",
    "check_efficiency_bands",
    "check_fig8_components",
    "check_fig9_orderings",
]


def check_fig6_minimum(
    curve: dict[int, float],
    optimum: tuple[int, int] = (2, 6),
    require_rise: bool = True,
) -> list[str]:
    """Fig. 6 shape: the minimum lies at a small thread count.

    The paper: "the best communication performance occurs when the
    number of threads is two to four", and larger thread counts make it
    worse again.  We accept a minimum anywhere in ``optimum`` (default
    2..6 — one sweep step of slack) and, when ``require_rise``, demand
    the largest thread count is worse than the minimum.
    """
    if 1 not in curve or len(curve) < 3:
        raise ConfigError("Fig. 6 curve needs h=1 and at least three points")
    problems = []
    best_h = min(curve, key=curve.__getitem__)
    if not (optimum[0] <= best_h <= optimum[1]):
        problems.append(f"minimum at h={best_h}, expected within {optimum}")
    if curve[best_h] >= curve[1]:
        problems.append(f"no improvement over one thread (min {curve[best_h]} >= {curve[1]})")
    if require_rise:
        h_max = max(curve)
        if curve[h_max] <= curve[best_h]:
            problems.append(
                f"communication time does not rise toward h={h_max} "
                f"({curve[h_max]} <= minimum {curve[best_h]})"
            )
    return problems


def check_efficiency_bands(
    sort_eff: dict[int, float],
    fft_eff: dict[int, float],
    fft_floor: float = 0.90,
    collapse_gap: float = 0.25,
) -> list[str]:
    """Fig. 7 shape: FFT overlaps almost everything at every thread
    count; sorting's overlap is destroyed by synchronisation as threads
    grow.

    Paper reference points: FFT > 95 % at two to four threads and
    roughly flat; sorting peaks at small h and *falls off* toward 16
    threads ("larger numbers of threads have adversely affected the
    amount of overlapping").  The checker asserts: (1) FFT above
    ``fft_floor`` somewhere in h = 2..4, (2) at the largest common
    thread count FFT leads sorting by at least ``collapse_gap``, (3)
    sorting declines from its peak to the largest thread count, and
    (4) E(1) ≡ 0.  Absolute sorting amplitude is a documented deviation
    (EXPERIMENTS.md): the prototype's communication bucket absorbed
    stalls an exact busy-accounting simulator does not generate.
    """
    problems = []
    fft_best_small_h = max(fft_eff.get(h, 0.0) for h in (2, 3, 4))
    if fft_best_small_h < fft_floor:
        problems.append(
            f"FFT efficiency at h=2..4 is {fft_best_small_h:.2f}, below {fft_floor}"
        )
    common = sorted(set(sort_eff) & set(fft_eff))
    h_max = common[-1]
    if fft_eff[h_max] - sort_eff[h_max] < collapse_gap:
        problems.append(
            f"no high-thread collapse separation at h={h_max} "
            f"(FFT {fft_eff[h_max]:.2f} vs sorting {sort_eff[h_max]:.2f})"
        )
    sort_peak = max(v for h, v in sort_eff.items() if h > 1)
    if sort_eff[h_max] >= sort_peak:
        problems.append(
            f"sorting efficiency does not decline toward h={h_max} "
            f"(peak {sort_peak:.2f}, end {sort_eff[h_max]:.2f})"
        )
    if abs(sort_eff.get(1, 0.0)) > 1e-12 or abs(fft_eff.get(1, 0.0)) > 1e-12:
        problems.append("efficiency at one thread must be zero by definition")
    return problems


def check_fig8_components(panel: dict[int, dict[str, float]], app: str) -> list[str]:
    """Fig. 8 shape: stacking sums to 100; switching grows with h;
    the one-thread run shows relatively more communication; FFT is
    computation-dominated while sorting is not."""
    problems = []
    for h, comps in panel.items():
        total = sum(comps.values())
        if abs(total - 100.0) > 1e-6:
            problems.append(f"h={h}: components sum to {total}, not 100")
    hs = sorted(panel)
    h1, hN = hs[0], hs[-1]
    if panel[hN]["switching"] <= panel[h1]["switching"]:
        problems.append(
            f"switching share does not grow with threads "
            f"({panel[h1]['switching']:.1f} -> {panel[hN]['switching']:.1f})"
        )
    mid = [h for h in hs if 2 <= h <= 4]
    if h1 == 1 and mid:
        if not any(panel[1]["communication"] > panel[h]["communication"] for h in mid):
            problems.append("one-thread run should show relatively more communication")
    comp_large_h = panel[hs[len(hs) // 2]]["computation"]
    if app == "fft" and comp_large_h < 60.0:
        problems.append(f"FFT should be computation-dominated, got {comp_large_h:.1f}%")
    if app == "sort" and comp_large_h > 90.0:
        problems.append(f"sorting unexpectedly computation-dominated ({comp_large_h:.1f}%)")
    return problems


def check_fig9_orderings(panel: dict[int, dict[str, float]], app: str, small_problem: bool) -> list[str]:
    """Fig. 9 shape: remote-read switches are flat in h; iteration-sync
    switches grow with h (and rival remote reads at 16 threads on small
    problems); thread-sync stays below iteration-sync, with FFT showing
    (nearly) none."""
    problems = []
    hs = sorted(panel)
    rr = [panel[h]["remote_read"] for h in hs]
    if max(rr) > 1.05 * min(rr):
        problems.append(f"remote-read switches vary with h: {min(rr):.0f}..{max(rr):.0f}")
    it1, itN = panel[hs[0]]["iter_sync"], panel[hs[-1]]["iter_sync"]
    if itN <= it1:
        problems.append(f"iteration-sync switches do not grow with h ({it1:.0f} -> {itN:.0f})")
    for h in hs:
        if panel[h]["thread_sync"] > panel[h]["iter_sync"] and panel[h]["thread_sync"] > 10:
            problems.append(f"h={h}: thread-sync exceeds iteration-sync")
    if app == "fft":
        if any(panel[h]["thread_sync"] > 0.05 * max(panel[h]["iter_sync"], 1.0) for h in hs):
            problems.append("FFT should show (nearly) no thread-sync switches")
    else:
        if all(panel[h]["thread_sync"] == 0 for h in hs if h > 1):
            problems.append("sorting should show thread-sync switches")
    if small_problem:
        h16 = hs[-1]
        if panel[h16]["iter_sync"] < 0.25 * panel[h16]["remote_read"]:
            problems.append(
                "on the small problem, iteration-sync at 16 threads should "
                "rival remote-read switching "
                f"({panel[h16]['iter_sync']:.0f} vs {panel[h16]['remote_read']:.0f})"
            )
    return problems
