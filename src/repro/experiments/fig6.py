"""Figure 6: communication time (seconds) vs. number of threads.

Four panels: (a) bitonic sorting P=16, (b) sorting P=64, (c) FFT P=16,
(d) FFT P=64 — each with one curve per data size.  The paper's key
observation: the communication time is minimal when the number of
threads is two to four, and FFT's valleys are far deeper than sorting's.
"""

from __future__ import annotations

from ..errors import ConfigError
from ..metrics.report import format_table
from ..runner.sweep import sweep_threads
from .common import THREAD_SWEEP, ExperimentScale, default_scale

__all__ = ["fig6_series", "fig6_panel", "format_fig6", "PANELS"]

#: Panel letter → (app, which processor count of the scale).
PANELS = {
    "a": ("sort", "p_small"),
    "b": ("sort", "p_large"),
    "c": ("fft", "p_small"),
    "d": ("fft", "p_large"),
}


def fig6_series(
    app: str,
    n_pes: int,
    sizes_per_pe: tuple[int, ...],
    threads: tuple[int, ...] = THREAD_SWEEP,
    **kwargs,
) -> dict[int, dict[int, float]]:
    """Communication-time curves: {n/P: {h: seconds}}."""
    return {
        npp: {
            h: rec.comm_seconds
            for h, rec in sweep_threads(app, n_pes, npp, threads, **kwargs).items()
        }
        for npp in sizes_per_pe
    }


def fig6_panel(
    panel: str,
    scale: ExperimentScale | None = None,
    threads: tuple[int, ...] = THREAD_SWEEP,
    **kwargs,
) -> dict[int, dict[int, float]]:
    """One lettered panel of Fig. 6 at the active experiment scale."""
    if panel not in PANELS:
        raise ConfigError(f"Fig. 6 has panels {sorted(PANELS)}, not {panel!r}")
    scale = scale or default_scale()
    app, which = PANELS[panel]
    n_pes = getattr(scale, which)
    return fig6_series(app, n_pes, scale.sizes_for(n_pes), threads, **kwargs)


def format_fig6(panel: str, series: dict[int, dict[int, float]], n_pes: int) -> str:
    """Render a panel as the paper prints it: rows = h, columns = sizes."""
    sizes = sorted(series)
    threads = sorted({h for curve in series.values() for h in curve})
    headers = ["threads"] + [f"n/P={npp}" for npp in sizes]
    rows = []
    for h in threads:
        rows.append([h] + [series[npp].get(h, float("nan")) for npp in sizes])
    app = "B-sorting" if PANELS[panel][0] == "sort" else "FFT"
    title = f"Fig 6({panel}): {app} P={n_pes} — communication time [s]"
    return format_table(headers, rows, title)
