"""Experiment drivers: one module per figure of the paper's evaluation.

* :mod:`~repro.experiments.fig6` — communication time vs. thread count.
* :mod:`~repro.experiments.fig7` — overlap efficiency.
* :mod:`~repro.experiments.fig8` — execution-time breakdown.
* :mod:`~repro.experiments.fig9` — switch counts by type.
* :mod:`~repro.experiments.microbench` — the quoted point measurements
  (remote-read latency ≈ 1 µs, packet-generation overhead).
* :mod:`~repro.experiments.shapes` — the qualitative shape checks that
  define reproduction success.

All drivers execute through the :mod:`repro.runner` engine (memoised
per process, persisted to an on-disk result cache, parallel across a
process pool when configured with ``jobs > 1``) and share
:mod:`~repro.experiments.common`'s ``REPRO_SCALE`` size ladder (the
paper's 128K–8M element runs are scaled down; see DESIGN.md §4).
"""

from .common import (
    THREAD_SWEEP,
    ExperimentScale,
    RunRecord,
    clear_cache,
    default_scale,
    run_app,
    sweep_threads,
)
from .export import export_all
from .fig6 import fig6_panel, fig6_series, format_fig6
from .fig7 import fig7_panel, format_fig7
from .fig8 import fig8_panel, format_fig8
from .fig9 import fig9_panel, format_fig9
from .microbench import measure_overhead_null_loop, measure_remote_read_latency
from .shapes import (
    check_efficiency_bands,
    check_fig6_minimum,
    check_fig8_components,
    check_fig9_orderings,
)

__all__ = [
    "THREAD_SWEEP",
    "ExperimentScale",
    "RunRecord",
    "clear_cache",
    "default_scale",
    "run_app",
    "sweep_threads",
    "export_all",
    "fig6_series",
    "fig6_panel",
    "format_fig6",
    "fig7_panel",
    "format_fig7",
    "fig8_panel",
    "format_fig8",
    "fig9_panel",
    "format_fig9",
    "measure_remote_read_latency",
    "measure_overhead_null_loop",
    "check_fig6_minimum",
    "check_efficiency_bands",
    "check_fig8_components",
    "check_fig9_orderings",
]
