"""Golden-series regression: frozen reference results.

The simulator is fully deterministic, so small runs can be pinned
exactly: any change to timing, scheduling, routing or accounting shows
up as a golden diff.  `make_goldens()` computes the reference payload;
the repository stores one JSON per scale under ``tests/goldens/`` and a
test regenerates and compares.

Regenerate deliberately after an intentional model change::

    python -m repro goldens --write tests/goldens
"""

from __future__ import annotations

import json
import pathlib

from ..api import get_app, result_ok
from ..errors import ConfigError

__all__ = ["make_goldens", "write_goldens", "compare_goldens", "GOLDEN_CONFIGS"]

#: (name, app, n_pes, npp, h, seed) — small, fast, deterministic runs.
GOLDEN_CONFIGS = (
    ("sort_p4_n64_h1", "sort", 4, 16, 1, 0),
    ("sort_p4_n64_h4", "sort", 4, 16, 4, 0),
    ("sort_p8_n128_h2", "sort", 8, 16, 2, 1),
    ("fft_p4_n64_h1", "fft", 4, 16, 1, 0),
    ("fft_p4_n64_h4", "fft", 4, 16, 4, 0),
    ("fft_p8_n128_h2", "fft", 8, 16, 2, 1),
    ("transpose_p4_n64_h2", "transpose", 4, 16, 2, 0),
)

def make_goldens() -> dict[str, dict]:
    """Run every golden configuration and collect its fingerprint."""
    out: dict[str, dict] = {}
    for name, app, n_pes, npp, h, seed in GOLDEN_CONFIGS:
        result = get_app(app)(n_pes=n_pes, n=n_pes * npp, h=h, seed=seed)
        if not result_ok(result):
            raise ConfigError(f"golden run {name} produced a wrong answer")
        report = result.report
        out[name] = {
            "runtime_cycles": report.runtime_cycles,
            "events_fired": report.events_fired,
            "comm_cycles": report.breakdown.communication,
            "switching_cycles": report.breakdown.switching,
            "computation_cycles": report.breakdown.computation,
            "overhead_cycles": report.breakdown.overhead,
            "network_packets": report.network.packets,
            "total_switches": sum(c.total_switches for c in report.counters),
        }
    return out


def write_goldens(directory: str | pathlib.Path) -> pathlib.Path:
    """Write the golden payload (one file; name encodes nothing else)."""
    path = pathlib.Path(directory) / "golden_runs.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(make_goldens(), indent=2, sort_keys=True) + "\n")
    return path


def compare_goldens(directory: str | pathlib.Path) -> list[str]:
    """Regenerate and diff against the stored goldens.

    Returns a list of human-readable mismatches (empty = clean).
    """
    path = pathlib.Path(directory) / "golden_runs.json"
    if not path.exists():
        raise ConfigError(f"no golden file at {path}; run write_goldens first")
    stored = json.loads(path.read_text())
    fresh = make_goldens()
    problems: list[str] = []
    for name in sorted(set(stored) | set(fresh)):
        if name not in stored:
            problems.append(f"{name}: new golden config not in stored file")
            continue
        if name not in fresh:
            problems.append(f"{name}: stored golden no longer generated")
            continue
        for key in sorted(set(stored[name]) | set(fresh[name])):
            a, b = stored[name].get(key), fresh[name].get(key)
            if a != b:
                problems.append(f"{name}.{key}: stored {a} != measured {b}")
    return problems
