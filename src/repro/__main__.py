"""Command-line entry point: regenerate any figure from the paper.

Usage::

    python -m repro fig6 a            # one panel of Fig. 6
    python -m repro fig7 c            # overlap efficiency panel
    python -m repro fig8 b            # execution-time breakdown panel
    python -m repro fig9 d            # switch-count panel
    python -m repro micro             # µ1 latency + µ2 overhead probes
    python -m repro sweep --jobs 8    # pre-run every figure in parallel
    python -m repro export --out csv  # all figures as CSV (cached)
    python -m repro cache stats       # inspect the on-disk result store
    python -m repro apps              # list registered workloads + flags
    python -m repro sort --pes 8 --size 128 --threads 4
    python -m repro sort --pes 8 --plan shards=4     # windowed parallel run
    python -m repro fft  --pes 8 --size 128 --threads 4 --plan compiled
    python -m repro sort --timeline    # ASCII per-PE activity timeline
    python -m repro trace fft --out run.perfetto.json  # Perfetto trace
    python -m repro serve --port 8737  # start the multi-client sweep service
    python -m repro submit --url http://127.0.0.1:8737 --figures fig6
    python -m repro svc-status         # inspect a running service

``REPRO_SCALE`` (tiny | small | large) picks the figure size ladder.
Figure-producing commands accept ``--jobs N`` (parallel simulation),
``--cache-dir DIR`` and ``--no-cache``; results persist under
``$REPRO_CACHE_DIR`` (default ``~/.cache/repro``), so warm re-runs
execute zero simulations.
"""

from __future__ import annotations

import argparse
import sys

from .api import get_app, result_ok
from .experiments import (
    default_scale,
    fig6_panel,
    fig7_panel,
    fig8_panel,
    fig9_panel,
    format_fig6,
    format_fig7,
    format_fig8,
    format_fig9,
    measure_overhead_null_loop,
    measure_remote_read_latency,
)
from .experiments.fig6 import PANELS as FIG6_PANELS
from .experiments.fig8 import PANELS as FIG8_PANELS
from .metrics.counters import SwitchKind
from .metrics.report import format_table


def _add_plan_flag(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--plan", default=None, metavar="SPEC",
        help='execution plan, e.g. "shards=4,fidelity=hybrid,compiled" '
             "(the one replacement for the deprecated --shards/--fidelity/"
             "--compiled flags; see repro.ExecutionPlan)")


def _add_runner_flags(parser: argparse.ArgumentParser, default_jobs: int | None = 1) -> None:
    """Attach the execution-engine flags shared by figure commands."""
    parser.add_argument(
        "--jobs", type=int, default=default_jobs, metavar="N",
        help="worker processes for simulations (default: %(default)s; "
             "omitted value means all cores)")
    parser.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    parser.add_argument(
        "--no-cache", action="store_true",
        help="skip the on-disk result cache (memoise in-process only)")
    parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write a Perfetto trace per executed job under DIR "
             "(cache hits produce no trace; off by default)")
    _add_plan_flag(parser)
    parser.add_argument(
        "--fidelity", choices=["detailed", "hybrid"], default="detailed",
        help="[deprecated: use --plan fidelity=hybrid] hybrid fast-forwards "
             "conflict-free windows with analytic costs (metric-identical, "
             "detailed fallback on a miss; default: %(default)s)")
    parser.add_argument(
        "--compiled", action="store_true",
        help="[deprecated: use --plan compiled] route thread creation "
             "through the cohort compiler: threads sharing a recorded "
             "effect-trace shape replay it batched (byte-identical metrics "
             "and events, per-thread interpreter bailout; off by default)")


def _cli_plan(args: argparse.Namespace):
    """Resolve ``--plan`` / legacy ``--shards --fidelity --compiled`` flags.

    ``--plan`` wins and refuses to be combined with non-default legacy
    flags; legacy flags still work but emit one DeprecationWarning
    (visible: ``__main__`` is exempt from the default warning filter's
    DeprecationWarning suppression).
    """
    import warnings

    from .api import ExecutionPlan
    from .errors import PlanError

    legacy = {}
    if getattr(args, "shards", 0):
        legacy["shards"] = args.shards
    if getattr(args, "fidelity", "detailed") != "detailed":
        legacy["fidelity"] = args.fidelity
    if getattr(args, "compiled", False):
        legacy["compiled"] = True
    text = getattr(args, "plan", None)
    if text:
        if legacy:
            raise PlanError(
                f"--plan cannot be combined with --{'/--'.join(sorted(legacy))}"
            )
        return ExecutionPlan.parse(text)
    if legacy:
        plan = ExecutionPlan(
            shards=legacy.get("shards", 0),
            fidelity=legacy.get("fidelity", "detailed"),
            compiled=legacy.get("compiled", False),
        )
        warnings.warn(
            f"--{'/--'.join(sorted(legacy))} is deprecated; "
            f'pass --plan "{plan.describe()}" instead',
            DeprecationWarning,
            stacklevel=2,
        )
        return plan
    return ExecutionPlan()


def _progress_printer():
    """A \\r-rewriting progress line on interactive stderr, else None."""
    if not sys.stderr.isatty():
        return None

    def _print(status) -> None:
        print(f"\r  {status.describe()}", end="", file=sys.stderr, flush=True)

    return _print


def _configure_runner(args: argparse.Namespace) -> None:
    """Apply --jobs/--cache-dir/--no-cache to the process-global runner."""
    import os

    from .runner import configure

    jobs = args.jobs if args.jobs is not None else (os.cpu_count() or 1)
    configure(
        jobs=jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        progress=_progress_printer(),
        trace_dir=getattr(args, "trace_dir", None),
        plan=_cli_plan(args),
    )


def _runner_summary() -> str:
    from .runner import get_options, stats

    st = stats()
    if sys.stderr.isatty():
        print(file=sys.stderr)  # terminate the \r progress line
    summary = f"runner: {st.describe()}"
    if not get_options().use_cache:
        summary += " (disk cache off)"
    return summary


def _cmd_figure(args: argparse.Namespace) -> None:
    _configure_runner(args)
    scale = default_scale()
    panel = args.panel
    if args.figure in ("fig6", "fig7"):
        n_pes = getattr(scale, FIG6_PANELS[panel][1])
        if args.figure == "fig6":
            series = fig6_panel(panel, scale)
            print(format_fig6(panel, series, n_pes))
            if args.plot:
                from .metrics import plot_curves

                curves = {f"n/P={npp}": curve for npp, curve in sorted(series.items())}
                print()
                print(plot_curves(curves, title=f"Fig 6({panel})", ylabel="comm [s]"))
        else:
            print(format_fig7(panel, fig7_panel(panel, scale), n_pes))
    else:
        _, size_role = FIG8_PANELS[panel]
        npp = scale.small_size if size_role == "small" else scale.large_size
        if args.figure == "fig8":
            print(format_fig8(panel, fig8_panel(panel, scale), scale.p_large, npp))
        else:
            print(format_fig9(panel, fig9_panel(panel, scale), scale.p_large, npp))


def _cmd_micro(_args: argparse.Namespace) -> None:
    points = measure_remote_read_latency(n_pes=64, reads=256)
    rows = [[p.target, p.hops, round(p.roundtrip_cycles, 1), round(p.microseconds, 3)]
            for p in points]
    print(format_table(["target PE", "hops", "roundtrip [cyc]", "latency [us]"], rows,
                       title="u1: remote read latency (paper: ~1 us)"))
    ov = measure_overhead_null_loop()
    print(f"\nu2: null-loop overhead: {ov.cycles_per_packet:.2f} cycles/packet "
          f"(EMC-Y: packet generation takes one clock)")


def _cmd_export(args: argparse.Namespace) -> None:
    from .experiments import export_all
    from .runner import reset_stats

    _configure_runner(args)
    reset_stats()
    for path in export_all(args.outdir):
        print(f"wrote {path}")
    print(_runner_summary())


def _cmd_sweep(args: argparse.Namespace) -> None:
    from .runner import FIGURES, ResultCache, get_options, reset_stats, sweep_figures
    from .experiments.common import THREAD_SWEEP

    _configure_runner(args)
    reset_stats()
    scale = default_scale()
    threads = THREAD_SWEEP
    if args.threads:
        threads = tuple(int(h) for h in args.threads.split(","))
    figures = tuple(args.figures) if args.figures else FIGURES
    print(f"sweep: scale '{scale.name}', figures {', '.join(figures)}, "
          f"threads {','.join(str(h) for h in threads)}, "
          f"jobs {get_options().jobs}")
    records = sweep_figures(scale, threads, figures)
    print(f"{len(records)} distinct jobs; {_runner_summary()}")
    if get_options().use_cache:
        print(f"cache: {ResultCache(get_options().cache_dir).stats().describe()}")


def _cmd_cache(args: argparse.Namespace) -> None:
    import json

    from .runner import ResultCache

    cache = ResultCache(args.cache_dir)
    if args.action == "stats":
        if args.json:
            # The same schema the service's /status "cache" section
            # uses (counters are zeros here: this process did no
            # lookups — the keys exist so tooling can share one parser).
            print(json.dumps(cache.stats().to_dict(), indent=2, sort_keys=True))
        else:
            print(f"cache: {cache.stats().describe()}")
    else:
        dropped = cache.purge()
        print(f"purged {dropped} entries from {cache.root}")


def _cmd_serve(args: argparse.Namespace) -> None:
    import asyncio
    import dataclasses
    import json
    import signal

    from .service import SweepService

    bus = recorder = None
    if args.obs_log:
        from .obs import Category, EventBus, RingRecorder

        bus = EventBus()
        recorder = RingRecorder(bus, categories=[Category.SERVICE])

    async def main() -> None:
        service = SweepService(
            cache_dir=args.cache_dir,
            use_cache=not args.no_cache,
            workers=args.workers,
            inline=args.inline,
            batch_size=args.batch_size,
            linger_s=args.linger,
            max_queue=args.max_queue,
            timeout=args.timeout,
            obs=bus,
        )
        host, port = await service.start(args.host, args.port)
        print(f"repro service listening on http://{host}:{port} "
              f"(workers {service.workers}, batch {service.batch_size}, "
              f"queue {service.max_queue})", flush=True)
        loop = asyncio.get_running_loop()

        def _stop() -> None:
            asyncio.ensure_future(service.shutdown(drain=True))

        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, _stop)
            except (NotImplementedError, OSError):  # pragma: no cover
                pass
        await service.wait_stopped()
        print(f"service: {service.stats.describe()}")
        if recorder is not None:
            with open(args.obs_log, "w") as fh:
                for event in recorder.events:
                    fh.write(json.dumps(dataclasses.asdict(event)) + "\n")
            print(f"wrote {len(recorder)} service events to {args.obs_log}")

    asyncio.run(main())


def _progress_submit():
    """Per-job progress on interactive stderr, else None."""
    if not sys.stderr.isatty():
        return None

    def _print(event: dict) -> None:
        if event.get("event") == "job":
            print(f"  {event['key'][:12]} {event['source']}", file=sys.stderr)

    return _print


def _cmd_submit(args: argparse.Namespace) -> None:
    from .experiments.common import THREAD_SWEEP
    from .runner import FIGURES, JobSpec, expand_figures
    from .service import SweepClient

    if args.app:
        specs = [JobSpec(app=args.app, n_pes=args.pes, npp=args.size,
                         h=args.h, seed=args.seed)]
    else:
        threads = THREAD_SWEEP
        if args.threads:
            threads = tuple(int(h) for h in args.threads.split(","))
        figures = tuple(args.figures) if args.figures else FIGURES
        specs = expand_figures(default_scale(), threads, figures)
    client = SweepClient(args.url, timeout_s=args.timeout)
    summary = client.submit(
        specs, stream=not args.no_stream, on_progress=_progress_submit()
    )
    print(f"{summary['jobs']} jobs: {summary['warm']} warm, "
          f"{summary['dedup']} deduped, {summary['executed']} executed, "
          f"{summary['failed']} failed")
    if summary["failed"]:
        for entry in summary["results"]:
            if entry["error"] is not None:
                print(f"  FAILED {entry['key'][:12]}: {entry['error']}",
                      file=sys.stderr)
        sys.exit(1)


def _cmd_svc_status(args: argparse.Namespace) -> None:
    import json

    from .service import SweepClient

    print(json.dumps(SweepClient(args.url).status(), indent=2, sort_keys=True))


def _cmd_goldens(args: argparse.Namespace) -> None:
    from .experiments.goldens import compare_goldens, write_goldens

    if args.write:
        print(f"wrote {write_goldens(args.write)}")
    elif args.check:
        problems = compare_goldens(args.check)
        if problems:
            print("\n".join(problems))
            sys.exit(1)
        print("goldens match")
    else:
        print("pass --write DIR or --check DIR")
        sys.exit(2)


def _cmd_apps(args: argparse.Namespace) -> None:
    """List every registered workload: names, unified signature, flags."""
    import inspect

    from .api import APPS, app_names

    app_names()  # populate the registry
    entries = []
    seen: set[int] = set()
    for name in sorted(APPS):
        fn = APPS[name]
        if id(fn) in seen:
            continue
        seen.add(id(fn))
        canonical, *aliases = getattr(fn, "app_names", (name,))
        params = list(inspect.signature(inspect.unwrap(fn)).parameters)
        entries.append({
            "name": canonical,
            "aliases": aliases,
            "signature": params,
            "flags": ["--plan", "--shards", "--fidelity", "--compiled"],
        })
    if args.json:
        import json

        print(json.dumps(entries, indent=2, sort_keys=True))
        return
    for entry in entries:
        alias = f"  (aliases: {', '.join(entry['aliases'])})" if entry["aliases"] else ""
        print(f"{entry['name']}{alias}")
        print(f"  signature: {', '.join(entry['signature'])}")
    print("\nevery app runs through repro.run(...) and supports "
          '--plan "shards=K,fidelity=hybrid,compiled" (the deprecated '
          "--shards/--fidelity/--compiled spellings still work)")


def _cmd_app(args: argparse.Namespace) -> None:
    runner = get_app(args.app)
    kwargs: dict = {}
    recorder = None
    if args.trace:
        from .obs import EventBus, RingRecorder

        bus = EventBus()
        recorder = RingRecorder(bus)
        kwargs["obs"] = bus
    if args.timeline:
        from .config import MachineConfig

        kwargs["config"] = MachineConfig(trace=True)
    kwargs.update(n_pes=args.pes, n=args.pes * args.size, h=args.threads,
                  seed=args.seed)
    from .api import call_with_plan

    result = call_with_plan(runner, kwargs, _cli_plan(args))
    ok = result_ok(result)
    report = result.report
    if args.json:
        from .metrics import report_to_json

        print(report_to_json(report, indent=2))
    else:
        print(f"{args.app}: n={args.pes * args.size} P={args.pes} h={args.threads} "
              f"-> {'OK' if ok else 'WRONG RESULT'}")
        print(f"runtime {report.runtime_cycles} cycles "
              f"({report.runtime_seconds * 1e6:.1f} us); "
              f"communication {report.comm_fig6_seconds * 1e6:.1f} us")
        pct = report.breakdown.percentages()
        print("breakdown: " + ", ".join(f"{k} {v:.1f}%" for k, v in pct.items()))
        print("switches/PE: " + ", ".join(
            f"{k.value} {report.switches(k):.0f}" for k in SwitchKind))
        print(f"network: {report.network.summary()}")
        if report.windows is not None:
            from .metrics.report import format_windows

            print(format_windows(report.windows))
        if report.cohort is not None:
            from .metrics.report import format_cohort

            print(format_cohort(report.cohort))
    if args.timeline:
        from .trace import render_timeline

        print(render_timeline(report.traces, start=0, end=report.runtime_cycles))
    if recorder is not None:
        from .obs import write_perfetto

        write_perfetto(args.trace, recorder.events, n_pes=args.pes)
        dropped = f", {recorder.dropped} dropped" if recorder.dropped else ""
        print(f"wrote {args.trace} ({len(recorder)} events{dropped}) "
              f"-- open in ui.perfetto.dev", file=sys.stderr)
    if not ok:
        sys.exit(1)


def _cmd_trace(args: argparse.Namespace) -> None:
    from .obs import (
        EventBus,
        RingRecorder,
        format_switch_table,
        packet_spans,
        switch_table,
        write_perfetto,
    )

    from .obs import Category

    bus = EventBus()
    recorder = RingRecorder(bus, capacity=args.buffer)
    # SHARD is opt-in (excluded from the default subscription so model
    # streams stay K-invariant); the trace exporter wants the window-
    # protocol track, so subscribe the same recorder explicitly.
    bus.subscribe(recorder.record, [Category.SHARD])
    kwargs = dict(
        n_pes=args.pes, n=args.pes * args.size, h=args.threads, seed=args.seed, obs=bus
    )
    from .api import call_with_plan

    result = call_with_plan(get_app(args.app), kwargs, _cli_plan(args))
    ok = result_ok(result)
    report = result.report
    write_perfetto(args.out, recorder.events, n_pes=args.pes)

    spans = packet_spans(recorder.events)
    dropped = f" ({recorder.dropped} dropped)" if recorder.dropped else ""
    print(f"{args.app}: n={args.pes * args.size} P={args.pes} h={args.threads} "
          f"-> {'OK' if ok else 'WRONG RESULT'}; "
          f"runtime {report.runtime_cycles} cycles")
    print(f"recorded {len(recorder)} events{dropped}, "
          f"{len(spans)} packet lifecycles")
    print(f"network: {report.network.summary()}")
    print()
    print("context switches by kind (paper Tables 3/4):")
    print(format_switch_table(switch_table(recorder.events)))
    print(f"\nwrote {args.out} -- open in ui.perfetto.dev")
    if not ok:
        sys.exit(1)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    for fig, panels in (("fig6", FIG6_PANELS), ("fig7", FIG6_PANELS),
                        ("fig8", FIG8_PANELS), ("fig9", FIG8_PANELS)):
        p = sub.add_parser(fig, help=f"regenerate one panel of {fig}")
        p.add_argument("panel", choices=sorted(panels))
        p.add_argument("--plot", action="store_true",
                       help="also draw an ASCII chart (fig6 only)")
        _add_runner_flags(p)
        p.set_defaults(func=_cmd_figure, figure=fig)

    p = sub.add_parser("micro", help="run the point-measurement probes")
    p.set_defaults(func=_cmd_micro)

    p = sub.add_parser("export", help="regenerate all figures as CSV")
    p.add_argument("--out", "--outdir", dest="outdir", default="figures_csv",
                   metavar="DIR", help="output directory (default: %(default)s)")
    _add_runner_flags(p)
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser(
        "sweep",
        help="pre-run every figure's simulations (parallel, cached, resumable)")
    p.add_argument("--figures", nargs="+", metavar="FIG",
                   choices=["fig6", "fig7", "fig8", "fig9"],
                   help="restrict to these figures (default: all)")
    p.add_argument("--threads", default=None, metavar="H,H,...",
                   help="comma-separated thread counts "
                        "(default: the paper's 1..16 sweep)")
    p.add_argument("--shards", type=int, default=0, metavar="K",
                   help="[deprecated: use --plan shards=K] shard each "
                        "simulation across K worker processes "
                        "(conservative-window parallel run; 0 = legacy "
                        "sequential models; jobs x shards is budgeted "
                        "against the core count)")
    _add_runner_flags(p, default_jobs=None)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser("cache", help="inspect or purge the on-disk result cache")
    p.add_argument("action", choices=["stats", "purge"])
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    p.add_argument("--json", action="store_true",
                   help="emit stats as JSON (the service /status schema)")
    p.set_defaults(func=_cmd_cache)

    from .service import DEFAULT_PORT

    p = sub.add_parser(
        "serve",
        help="start the multi-client sweep service (shared cache, "
             "in-flight dedup, batched execution, backpressure)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=DEFAULT_PORT,
                   help="listen port; 0 picks an ephemeral port "
                        "(default: %(default)s)")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="batch worker processes (default: all cores)")
    p.add_argument("--inline", action="store_true",
                   help="run batches in server-process threads instead of "
                        "a process pool (tiny jobs, tests)")
    p.add_argument("--batch-size", type=int, default=8, metavar="B",
                   help="max jobs coalesced per dispatched batch "
                        "(default: %(default)s)")
    p.add_argument("--linger", type=float, default=0.02, metavar="SEC",
                   help="how long an open batch waits for more jobs "
                        "(default: %(default)s)")
    p.add_argument("--max-queue", type=int, default=256, metavar="Q",
                   help="admission-queue bound; beyond it sweeps shed "
                        "with HTTP 429 (default: %(default)s)")
    p.add_argument("--timeout", type=float, default=None, metavar="SEC",
                   help="per-job wall-clock budget (default: unlimited)")
    p.add_argument("--cache-dir", default=None, metavar="DIR",
                   help="shared result-cache root "
                        "(default: $REPRO_CACHE_DIR or ~/.cache/repro)")
    p.add_argument("--no-cache", action="store_true",
                   help="serve without the shared disk cache (dedup only)")
    p.add_argument("--obs-log", default=None, metavar="FILE",
                   help="write service events as JSON lines on shutdown")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser("submit", help="submit a sweep to a running service")
    p.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
                   help="service URL (default: %(default)s)")
    p.add_argument("--figures", nargs="+", metavar="FIG",
                   choices=["fig6", "fig7", "fig8", "fig9"],
                   help="submit these figures' sweeps (default: all)")
    p.add_argument("--threads", default=None, metavar="H,H,...",
                   help="comma-separated thread counts "
                        "(default: the paper's 1..16 sweep)")
    p.add_argument("--app", default=None,
                   help="submit one job instead of figure sweeps")
    p.add_argument("--pes", type=int, default=8)
    p.add_argument("--size", type=int, default=64, help="elements per PE")
    p.add_argument("--h", type=int, default=4, help="threads per PE")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--timeout", type=float, default=300.0, metavar="SEC",
                   help="client-side response timeout (default: %(default)s)")
    p.add_argument("--no-stream", action="store_true",
                   help="single JSON response instead of streamed progress")
    p.set_defaults(func=_cmd_submit)

    p = sub.add_parser("svc-status", help="print a running service's status")
    p.add_argument("--url", default=f"http://127.0.0.1:{DEFAULT_PORT}",
                   help="service URL (default: %(default)s)")
    p.set_defaults(func=_cmd_svc_status)

    p = sub.add_parser("apps", help="list registered workloads and their flags")
    p.add_argument("--json", action="store_true",
                   help="emit the registry as JSON")
    p.set_defaults(func=_cmd_apps)

    p = sub.add_parser("goldens", help="check or regenerate golden runs")
    p.add_argument("--write", metavar="DIR", help="write fresh goldens to DIR")
    p.add_argument("--check", metavar="DIR", help="diff fresh runs against DIR")
    p.set_defaults(func=_cmd_goldens)

    for app in ("sort", "fft"):
        p = sub.add_parser(app, help=f"run one {app} configuration")
        p.add_argument("--pes", type=int, default=8)
        p.add_argument("--size", type=int, default=128, help="elements per PE")
        p.add_argument("--threads", type=int, default=4)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--json", action="store_true", help="emit the full report as JSON")
        p.add_argument("--timeline", action="store_true",
                       help="render an ASCII per-PE activity timeline")
        p.add_argument("--trace", default=None, metavar="FILE",
                       help="record the run and write a Perfetto trace to FILE")
        _add_plan_flag(p)
        p.add_argument("--shards", type=int, default=0, metavar="K",
                       help="[deprecated: use --plan shards=K] run the "
                            "simulation across K worker processes "
                            "(0 = legacy sequential models)")
        p.add_argument("--fidelity", choices=["detailed", "hybrid"],
                       default="detailed",
                       help="[deprecated: use --plan fidelity=hybrid] hybrid "
                            "fast-forwards conflict-free windows with "
                            "analytic costs (metric-identical; "
                            "default: %(default)s)")
        p.add_argument("--compiled", action="store_true",
                       help="[deprecated: use --plan compiled] route thread "
                            "creation through the cohort compiler "
                            "(byte-identical; off by default)")
        p.set_defaults(func=_cmd_app, app=app)

    p = sub.add_parser(
        "trace",
        help="run one app under the event recorder and export a Perfetto trace")
    from .api import app_names

    p.add_argument("app", choices=app_names())
    p.add_argument("--out", default="run.perfetto.json", metavar="FILE",
                   help="output path (default: %(default)s)")
    p.add_argument("--pes", type=int, default=8)
    p.add_argument("--size", type=int, default=64, help="elements per PE")
    p.add_argument("--threads", type=int, default=4)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--buffer", type=int, default=1_000_000, metavar="N",
                   help="ring-buffer capacity in events (default: %(default)s)")
    _add_plan_flag(p)
    p.add_argument("--shards", type=int, default=0, metavar="K",
                   help="[deprecated: use --plan shards=K] run the simulation "
                        "across K worker processes; sharded traces gain a "
                        "window-protocol track (0 = legacy sequential models)")
    p.add_argument("--fidelity", choices=["detailed", "hybrid"],
                   default="detailed",
                   help="[deprecated: use --plan fidelity=hybrid] hybrid "
                        "fast-forwards conflict-free windows with analytic "
                        "costs; traces then contain FASTFORWARD "
                        "spans marking skipped regions (default: %(default)s)")
    p.add_argument("--compiled", action="store_true",
                   help="[deprecated: use --plan compiled] route thread "
                        "creation through the cohort compiler; traces then "
                        "contain COHORT diagnostic events "
                        "(byte-identical otherwise; off by default)")
    p.set_defaults(func=_cmd_trace)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
