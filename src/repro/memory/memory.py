"""Word-addressed local memory of one EMC-Y processor.

The prototype has 4 MB of one-level static memory per processor.  We
model it as a flat word array with bounds checking.  Words hold Python
numbers (the hardware's 32-bit integers and single-precision floats);
the simulator does not bit-pack them — what matters for the paper's
measurements is *which* words move, not their bit patterns.

Reads of never-written words return 0, matching SRAM-after-clear
semantics and keeping large sparse buffers cheap (backing store is a
dict, so an 8M-point guest array costs only what it touches).
"""

from __future__ import annotations

from typing import Iterable, Iterator

from ..errors import FastForwardMiss, MemoryFault

__all__ = ["LocalMemory"]


class LocalMemory:
    """Bounds-checked, sparsely backed word memory."""

    __slots__ = ("size", "_words", "reads", "writes", "_watches", "_clock")

    def __init__(self, size: int) -> None:
        if size < 1:
            raise MemoryFault(f"memory size must be >= 1 word, got {size}")
        self.size = size
        self._words: dict[int, float | int] = {}
        self.reads = 0
        self.writes = 0
        #: Live fast-forward watchpoints: ``(lo, hi, until)`` triples.
        #: Empty in detailed-fidelity runs, so the write path pays one
        #: truthiness test.
        self._watches: list[tuple[int, int, int]] = []
        self._clock = None

    # ------------------------------------------------------------------
    # Fast-forward watchpoints (hybrid fidelity)
    # ------------------------------------------------------------------
    def set_clock(self, clock) -> None:
        """Attach the engine clock so watch expiry can be evaluated."""
        self._clock = clock

    def watch(self, lo: int, hi: int, until: int) -> None:
        """Trip :class:`~repro.errors.FastForwardMiss` on writes to
        ``[lo, hi)`` at any cycle up to and including ``until``.

        The hybrid engine reads DMA reply data ahead of the cycle the
        detailed model would; a write landing inside the window before
        (or at — within-cycle order is ambiguous) the service completes
        means the early read saw stale data.
        """
        self._watches.append((lo, hi, until))

    def _watch_hit(self, lo: int, span: int) -> None:
        now = self._clock.now if self._clock is not None else 0
        live = []
        hit = None
        for w in self._watches:
            if w[2] < now:
                continue  # expired; prune as we go
            live.append(w)
            if lo < w[1] and lo + span > w[0]:
                hit = w
        self._watches = live
        if hit is not None:
            raise FastForwardMiss(
                f"write to [{lo}, {lo + span}) at cycle {now} overlaps a "
                f"fast-forwarded DMA read of [{hit[0]}, {hit[1]}) pending "
                f"until cycle {hit[2]}"
            )

    def _check(self, offset: int, span: int = 1) -> None:
        if offset < 0 or offset + span > self.size:
            raise MemoryFault(
                f"access [{offset}, {offset + span}) outside memory of {self.size} words"
            )

    def read(self, offset: int) -> float | int:
        """Load one word."""
        self._check(offset)
        self.reads += 1
        return self._words.get(offset, 0)

    def write(self, offset: int, value: float | int) -> None:
        """Store one word."""
        self._check(offset)
        if self._watches:
            self._watch_hit(offset, 1)
        self.writes += 1
        self._words[offset] = value

    def read_block(self, offset: int, count: int) -> list[float | int]:
        """Load ``count`` consecutive words."""
        if count < 0:
            raise MemoryFault(f"negative block length {count}")
        self._check(offset, max(count, 1) if count else 0)
        self.reads += count
        get = self._words.get
        return [get(i, 0) for i in range(offset, offset + count)]

    def write_block(self, offset: int, values: Iterable[float | int]) -> int:
        """Store consecutive words; returns the number written."""
        vals = list(values)
        if vals:
            self._check(offset, len(vals))
            if self._watches:
                self._watch_hit(offset, len(vals))
        self.writes += len(vals)
        for i, v in enumerate(vals):
            self._words[offset + i] = v
        return len(vals)

    def touched(self) -> Iterator[int]:
        """Offsets that have ever been written (unordered)."""
        return iter(self._words)

    def __len__(self) -> int:
        return self.size
