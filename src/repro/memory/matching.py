"""Matching memory for two-token direct matching.

The Matching Unit pairs dataflow tokens: when a thread's first operand
packet arrives it is parked in matching memory keyed by the activation
frame slot; the second arrival *matches*, the mate datum is loaded, and
the thread fires with both operands (§2.2, step "loading mate data from
matching memory").  The fine-grain runtime uses this for two-input
thread starts; single-operand packets bypass matching entirely.
"""

from __future__ import annotations

from typing import Any

from ..errors import SchedulerError

__all__ = ["MatchingMemory"]

_MISSING = object()  # sentinel: one dict probe per offer instead of two


class MatchingMemory:
    """Parked first operands, keyed by (frame_id, slot)."""

    __slots__ = ("_parked", "matches", "parks", "_obs", "_pe", "_clock")

    def __init__(self) -> None:
        self._parked: dict[tuple[int, int], Any] = {}
        self.matches = 0
        self.parks = 0
        self._obs = None
        self._pe = 0
        self._clock = None

    def attach_obs(self, obs, pe: int, clock) -> None:
        """Install the observability sink (processor construction time).

        ``clock`` is the machine clock, read at each park/match so the
        emitted :class:`~repro.obs.events.MatchEvent` carries the cycle
        the token actually moved.
        """
        self._obs = obs
        self._pe = pe
        self._clock = clock

    def offer(self, frame_id: int, slot: int, value: Any) -> tuple[Any, Any] | None:
        """Offer one operand token.

        Returns ``None`` if the token was parked to wait for its mate,
        or the ``(first, second)`` operand pair when the match fires.
        """
        parked = self._parked
        key = (frame_id, slot)
        first = parked.pop(key, _MISSING)
        if first is not _MISSING:
            self.matches += 1
            if self._obs is not None:
                self._emit(frame_id, slot, True)
            return (first, value)
        parked[key] = value
        self.parks += 1
        if self._obs is not None:
            self._emit(frame_id, slot, False)
        return None

    def _emit(self, frame_id: int, slot: int, matched: bool) -> None:
        from ..obs.events import MatchEvent  # local: memory stays obs-free when off

        self._obs.emit(MatchEvent(self._clock.now, self._pe, frame_id, slot, matched))

    def cancel(self, frame_id: int, slot: int) -> Any:
        """Discard a parked token (frame teardown); returns its value."""
        try:
            return self._parked.pop((frame_id, slot))
        except KeyError:
            raise SchedulerError(f"no parked token at frame={frame_id} slot={slot}") from None

    @property
    def pending(self) -> int:
        """Tokens currently waiting for a mate."""
        return len(self._parked)
