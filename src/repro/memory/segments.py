"""Template and operand segments.

EM-X software uses two storage resources (§2.3): *template segments*
holding compiled functions and *operand segments* allocated as
activation frames when a function is invoked.  The allocator hands out
non-overlapping word ranges from one :class:`~repro.memory.LocalMemory`
with a first-fit free list, and frees coalesce with neighbours so
long-running guest programs (one frame per thread invocation, nested
arbitrarily) do not fragment memory.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import SegmentError

__all__ = ["SegmentKind", "Segment", "SegmentAllocator"]


class SegmentKind(enum.Enum):
    """What a segment stores."""

    TEMPLATE = "template"  # compiled thread code
    OPERAND = "operand"  # activation frame
    BUFFER = "buffer"  # guest data arrays / packet overflow area


@dataclass(frozen=True)
class Segment:
    """A contiguous word range owned by one allocation."""

    kind: SegmentKind
    base: int
    size: int

    @property
    def end(self) -> int:
        """One past the last word of the segment."""
        return self.base + self.size

    def contains(self, offset: int) -> bool:
        """True if ``offset`` lies inside this segment."""
        return self.base <= offset < self.end


class SegmentAllocator:
    """First-fit allocator with coalescing free over a word arena."""

    def __init__(self, capacity: int, base: int = 0) -> None:
        if capacity < 1:
            raise SegmentError(f"arena capacity must be >= 1 word, got {capacity}")
        if base < 0:
            raise SegmentError(f"arena base must be >= 0, got {base}")
        self.base = base
        self.capacity = capacity
        # Sorted list of free (base, size) holes.
        self._free: list[tuple[int, int]] = [(base, capacity)]
        self._live: dict[int, Segment] = {}

    # ------------------------------------------------------------------
    def alloc(self, size: int, kind: SegmentKind = SegmentKind.BUFFER) -> Segment:
        """Allocate ``size`` words; raises :class:`SegmentError` when full."""
        if size < 1:
            raise SegmentError(f"segment size must be >= 1 word, got {size}")
        for i, (hole_base, hole_size) in enumerate(self._free):
            if hole_size >= size:
                seg = Segment(kind, hole_base, size)
                rest = hole_size - size
                if rest:
                    self._free[i] = (hole_base + size, rest)
                else:
                    del self._free[i]
                self._live[seg.base] = seg
                return seg
        raise SegmentError(
            f"out of segment memory: need {size} words, "
            f"largest hole {max((s for _, s in self._free), default=0)}"
        )

    def free(self, seg: Segment) -> None:
        """Return a segment to the arena, coalescing adjacent holes."""
        live = self._live.pop(seg.base, None)
        if live is None or live != seg:
            raise SegmentError(f"double free or foreign segment: {seg}")
        # Insert hole keeping the list sorted, then coalesce neighbours.
        lo, n = 0, len(self._free)
        while lo < n and self._free[lo][0] < seg.base:
            lo += 1
        self._free.insert(lo, (seg.base, seg.size))
        # Coalesce with successor first, then predecessor.
        if lo + 1 < len(self._free):
            nb, ns = self._free[lo + 1]
            if seg.base + seg.size == nb:
                self._free[lo] = (seg.base, seg.size + ns)
                del self._free[lo + 1]
        if lo > 0:
            pb, ps = self._free[lo - 1]
            cb, cs = self._free[lo]
            if pb + ps == cb:
                self._free[lo - 1] = (pb, ps + cs)
                del self._free[lo]

    # ------------------------------------------------------------------
    @property
    def live_segments(self) -> list[Segment]:
        """Currently allocated segments, in base order."""
        return sorted(self._live.values(), key=lambda s: s.base)

    @property
    def free_words(self) -> int:
        """Total unallocated words."""
        return sum(size for _, size in self._free)

    def owner_of(self, offset: int) -> Segment | None:
        """The live segment containing ``offset``, if any (linear scan)."""
        for seg in self._live.values():
            if seg.contains(offset):
                return seg
        return None
