"""Activation frames and the per-processor frame tree.

Invoking a function allocates an operand segment as an activation frame;
"activation frames (threads) form a tree rather than a stack, reflecting
a dynamic calling structure" (§2.3).  The frame holds the thread's saved
registers across explicit context switches (no register sharing between
threads) and links to its parent/children so the runtime can assert the
tree shape and reclaim frames when threads finish.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import SegmentError
from .segments import Segment, SegmentAllocator, SegmentKind

__all__ = ["ActivationFrame", "FrameTable"]

#: Words reserved per frame for saved registers (the EXU has 32
#: registers, of which a handful are live at a fine-grain switch point).
FRAME_REGISTER_WORDS = 32


@dataclass
class ActivationFrame:
    """One thread's activation frame."""

    frame_id: int
    pe: int
    segment: Segment
    parent_id: int | None = None
    children: list[int] = field(default_factory=list)
    #: Saved register image; ``None`` while the thread is running.
    saved_registers: tuple[Any, ...] | None = None
    live: bool = True

    def save_registers(self, values: tuple[Any, ...]) -> None:
        """Record the register image at a context switch."""
        self.saved_registers = values

    def restore_registers(self) -> tuple[Any, ...]:
        """Return and clear the saved register image."""
        regs = self.saved_registers if self.saved_registers is not None else ()
        self.saved_registers = None
        return regs


class FrameTable:
    """Allocates and tracks activation frames for one processor."""

    def __init__(self, allocator: SegmentAllocator, pe: int) -> None:
        self._alloc = allocator
        self.pe = pe
        self._frames: dict[int, ActivationFrame] = {}
        self._next_id = 0
        self.peak_live = 0

    def create(self, parent_id: int | None = None, extra_words: int = 0) -> ActivationFrame:
        """Allocate a frame (register save area + ``extra_words`` locals)."""
        if parent_id is not None and parent_id not in self._frames:
            raise SegmentError(f"parent frame {parent_id} does not exist on PE {self.pe}")
        seg = self._alloc.alloc(FRAME_REGISTER_WORDS + extra_words, SegmentKind.OPERAND)
        frame = ActivationFrame(self._next_id, self.pe, seg, parent_id)
        self._frames[frame.frame_id] = frame
        self._next_id += 1
        if parent_id is not None:
            self._frames[parent_id].children.append(frame.frame_id)
        self.peak_live = max(self.peak_live, self.live_count)
        return frame

    def release(self, frame_id: int) -> None:
        """Free a finished thread's frame.

        The frame must have no live children — children return results
        to their caller's continuation before dying, so a parent
        outliving its children is the invariant, not the exception.
        """
        frame = self._frames.get(frame_id)
        if frame is None or not frame.live:
            raise SegmentError(f"release of unknown/dead frame {frame_id} on PE {self.pe}")
        live_children = [c for c in frame.children if self._frames[c].live]
        if live_children:
            raise SegmentError(
                f"frame {frame_id} on PE {self.pe} released with live children {live_children}"
            )
        frame.live = False
        self._alloc.free(frame.segment)

    def get(self, frame_id: int) -> ActivationFrame:
        """Look up a frame by id."""
        try:
            return self._frames[frame_id]
        except KeyError:
            raise SegmentError(f"no frame {frame_id} on PE {self.pe}") from None

    @property
    def live_count(self) -> int:
        """Number of live frames."""
        return sum(1 for f in self._frames.values() if f.live)

    def assert_tree(self) -> None:
        """Validate the parent/child structure is acyclic and consistent."""
        for frame in self._frames.values():
            for child in frame.children:
                if self._frames[child].parent_id != frame.frame_id:
                    raise SegmentError(
                        f"frame tree corrupt on PE {self.pe}: child {child} "
                        f"does not point back to {frame.frame_id}"
                    )
            # Walk to the root, bounded by table size, to catch cycles.
            seen = set()
            node: int | None = frame.frame_id
            while node is not None:
                if node in seen:
                    raise SegmentError(f"frame tree cycle through {node} on PE {self.pe}")
                seen.add(node)
                node = self._frames[node].parent_id
