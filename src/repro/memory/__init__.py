"""Per-processor memory system.

Each EMC-Y has 4 MB of one-level static memory holding two storage
resources: *template segments* (compiled thread code) and *operand
segments* (activation frames).  This package models word-addressed local
memory with bounds checking, a segment allocator, the activation-frame
tree, and the matching memory used for two-token direct matching.
"""

from .frames import ActivationFrame, FrameTable
from .matching import MatchingMemory
from .memory import LocalMemory
from .segments import Segment, SegmentAllocator, SegmentKind

__all__ = [
    "LocalMemory",
    "Segment",
    "SegmentAllocator",
    "SegmentKind",
    "ActivationFrame",
    "FrameTable",
    "MatchingMemory",
]
