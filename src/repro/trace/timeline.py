"""Trace events and ASCII timeline rendering.

A trace is a per-processor list of ``(start, end, kind, label)`` spans.
Kinds map to single characters in the rendering:

====== =========================================
``#``  thread burst (running guest code)
``s``  synchronisation spin check
``d``  EM-4-mode read service on the EXU
``.``  idle — unmasked communication
(gap)  idle with no live threads
====== =========================================
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import SimulationError

__all__ = ["TraceEvent", "render_timeline", "utilization"]

_GLYPHS = {"burst": "#", "spin": "s", "service": "d", "idle": "."}


@dataclass(frozen=True)
class TraceEvent:
    """One span of EXU activity on one processor."""

    start: int
    end: int
    kind: str  # "burst" | "spin" | "service" | "idle"
    label: str = ""

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(f"trace span ends before it starts: {self}")
        if self.kind not in _GLYPHS:
            raise SimulationError(f"unknown trace kind {self.kind!r}")


def utilization(
    events: list[TraceEvent],
    start: int | None = None,
    end: int | None = None,
) -> float:
    """Fraction of the traced window spent in bursts (useful work).

    Without an explicit window the span runs from the first event start
    to the last event end, which understates idle time at the run's
    edges.  Pass ``start``/``end`` (e.g. ``0`` and the run's
    ``runtime_cycles``) to measure against the real wall-clock window;
    burst time is clipped to it.
    """
    if not events:
        return 0.0
    lo = min(e.start for e in events) if start is None else start
    hi = max(e.end for e in events) if end is None else end
    if hi <= lo:
        return 0.0
    busy = sum(
        min(e.end, hi) - max(e.start, lo)
        for e in events
        if e.kind == "burst" and e.end > lo and e.start < hi
    )
    return busy / (hi - lo)


def render_timeline(
    traces: dict[int, list[TraceEvent]],
    width: int = 80,
    start: int | None = None,
    end: int | None = None,
) -> str:
    """Draw one character-per-bucket timeline row per processor.

    Each output column covers ``(end-start)/width`` cycles; the glyph of
    the dominant activity within the column wins.  Returns a multi-line
    string; processors render in id order.
    """
    if width < 8:
        raise SimulationError(f"timeline width must be >= 8, got {width}")
    all_events = [e for evs in traces.values() for e in evs]
    if not all_events:
        return "(no trace events)"
    lo = min(e.start for e in all_events) if start is None else start
    hi = max(e.end for e in all_events) if end is None else end
    if hi <= lo:
        raise SimulationError(f"empty timeline window [{lo}, {hi}]")
    scale = (hi - lo) / width

    lines = [f"cycles {lo}..{hi}  ({scale:.1f} cyc/col)"]
    for pe in sorted(traces):
        cols = [dict.fromkeys(_GLYPHS, 0) for _ in range(width)]
        for ev in traces[pe]:
            if ev.end <= lo or ev.start >= hi:
                continue
            c0 = int((max(ev.start, lo) - lo) / scale)
            c1 = int((min(ev.end, hi) - 1 - lo) / scale)
            for c in range(max(c0, 0), min(c1, width - 1) + 1):
                cols[c][ev.kind] += 1
        row = []
        for col in cols:
            if not any(col.values()):
                row.append(" ")
            else:
                kind = max(col, key=col.__getitem__)
                row.append(_GLYPHS[kind])
        lines.append(f"PE{pe:>3} |{''.join(row)}|")
    lines.append("legend: # burst   s spin   d read-service   . idle(comm)")
    return "\n".join(lines)
