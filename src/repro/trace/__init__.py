"""Execution tracing: burst-level timelines per processor.

Enable with ``MachineConfig(trace=True)``; every EXU burst, spin check,
DMA service and idle gap is recorded as a :class:`TraceEvent`, and
:func:`render_timeline` draws an ASCII Gantt of the machine — the
fastest way to *see* overlap working (or failing), e.g. the paper's
Fig. 4 timeline can be reproduced for any program.
"""

from .timeline import TraceEvent, render_timeline, utilization

__all__ = ["TraceEvent", "render_timeline", "utilization"]
