"""Machine and timing configuration for the EM-X simulator.

All costs are expressed in EMC-Y **clock cycles**.  The prototype EM-X
runs at 20 MHz, i.e. 50 ns per cycle (Kodama et al., ISCA 1995); the
paper's quoted remote-read latency of 1–2 µs therefore corresponds to
20–40 cycles, which is the regime every default below is calibrated to.

Two dataclasses are exposed:

:class:`TimingModel`
    Per-mechanism cycle costs — instruction classes, packet generation,
    context-switch register save, matching-unit thread invocation, the
    IBU's by-passing DMA service time, and network port timings.

:class:`MachineConfig`
    Machine-level shape: number of processors, buffer depths, memory
    size, network model selection, and the EM-4 compatibility switch
    that makes remote-read servicing consume EXU cycles (the paper
    contrasts EM-X's by-passing DMA against exactly that behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from .errors import ConfigError

__all__ = ["TimingModel", "MachineConfig", "CLOCK_HZ", "CYCLE_SECONDS"]

#: EMC-Y clock frequency (Hz).  Each processor runs at 20 MHz.
CLOCK_HZ: int = 20_000_000

#: Seconds per EMC-Y clock cycle (50 ns).
CYCLE_SECONDS: float = 1.0 / CLOCK_HZ


@dataclass(frozen=True)
class TimingModel:
    """Cycle costs of every modelled mechanism.

    The defaults reproduce the arithmetic the paper reports: a sorting
    run length of 12 cycles, a context switch of "several clocks", a
    remote read of 20–40 cycles end to end, and single-cycle integer /
    single-precision FP instructions.
    """

    # ------------------------------------------------------------------
    # Execution unit instruction classes (paper §2.2: "All integer
    # instructions take one clock cycle", FP likewise except division).
    # ------------------------------------------------------------------
    int_op: int = 1
    fp_op: int = 1
    fp_div: int = 8
    mem_exchange: int = 2  # the one multi-cycle integer instruction

    #: Packet generation is performed by the EXU and "takes one clock".
    pkt_gen: int = 1

    # ------------------------------------------------------------------
    # Context switch components (explicit switching; §2.3).
    # ------------------------------------------------------------------
    #: Saving live registers to the activation frame on suspension.
    reg_save: int = 3
    #: Matching-unit direct matching + thread invocation (the five-step
    #: sequence in §2.2: frame base, mate data, template address, first
    #: instruction fetch, EXU signal).
    match_invoke: int = 4

    # ------------------------------------------------------------------
    # Input/Output Buffer Units and the by-passing DMA path.
    # ------------------------------------------------------------------
    #: IBU servicing a remote-read request via by-pass DMA (read local
    #: memory through MCU arbitration, hand the reply to the OBU) —
    #: zero EXU cycles on EM-X.  Calibrated with ``eject`` so a remote
    #: read round-trips in 20–40 cycles (1–2 µs at 20 MHz), the band the
    #: paper quotes for the normally-loaded machine.
    ibu_dma_service: int = 8
    #: EM-4 compat: cycles stolen from the EXU per serviced remote read
    #: when the read is treated as a one-instruction thread.
    em4_read_service: int = 5
    #: OBU/SU port occupancy per 2-word packet ("each port can transfer
    #: a packet … at every second cycle").
    port_cycles_per_packet: int = 2
    #: Extra cycles to eject a packet from the network into the IBU
    #: (buffer write + priority-queue insertion).
    eject: int = 2

    # ------------------------------------------------------------------
    # Synchronisation.
    # ------------------------------------------------------------------
    #: Instructions executed per barrier-flag spin check (load flag,
    #: compare, branch, queue-management in the thread library).
    barrier_check: int = 8
    #: Cycles for a barrier-waiting thread's re-check packet to
    #: recirculate through the queue path before it is seen again.  The
    #: processor is free to run other threads (or idle — unmasked
    #: communication) in between; this is what turns the serialized
    #: merge cascade of sorting into the measured communication floor.
    #: Calibrated (48) so the sorting communication curve bottoms at
    #: h = 2–4 and rises toward 16 threads as in the paper's Fig. 6.
    barrier_recheck_interval: int = 48
    #: Instructions to update the merge-order token and wake a waiter.
    token_update: int = 2

    def validate(self) -> None:
        """Raise :class:`ConfigError` if any cost is non-positive."""
        for name, value in self.__dict__.items():
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(f"timing cost {name!r} must be a positive int, got {value!r}")

    @property
    def switch_cost(self) -> int:
        """Total explicit context-switch cost (save + re-invoke)."""
        return self.reg_save + self.match_invoke

    def scaled(self, **overrides: int) -> "TimingModel":
        """Return a copy with selected costs replaced."""
        return replace(self, **overrides)


def _default_timing() -> TimingModel:
    return TimingModel()


@dataclass(frozen=True)
class MachineConfig:
    """Shape and policy of one simulated EM-X machine.

    Parameters
    ----------
    n_pes:
        Number of EMC-Y processors.  The prototype has 80; experiments
        in the paper use 16 and 64.  Any value ≥ 1 is accepted — the
        Omega network pads to the next power of two internally.
    memory_words:
        Words of local static memory per processor (4 MB = 2²⁰ words of
        32 bits on the prototype).  Scaled down by default; guest
        programs allocate far less than the prototype's full memory.
    ibu_fifo_depth:
        On-chip packets per IBU priority FIFO before overflow spills to
        the on-memory buffer (8 on the hardware).
    em4_mode:
        If true, remote-read servicing consumes EXU cycles as on EM-4
        (the predecessor machine), disabling the by-passing DMA — the
        paper's motivating ablation.
    priority_replies:
        If true, read-reply packets use the IBU's high-priority FIFO and
        are scheduled ahead of invocation packets.
    network_model:
        ``"detailed"`` walks every Omega stage and models per-port
        contention; ``"analytic"`` applies endpoint bandwidth plus the
        k+1-cycle hop latency only.
    fidelity:
        ``"detailed"`` (default) drains every event through the calendar
        queue.  ``"hybrid"`` fast-forwards provably conflict-free
        windows — uncontended packet transits, by-passing DMA services,
        same-cycle EXU wake-ups — with the closed-form costs from
        :mod:`repro.analysis`, falling back to detailed event-by-event
        simulation (via :class:`~repro.errors.FastForwardMiss`) the
        moment a contention precondition breaks.  Metrics are identical
        by construction; only ``events_fired`` drops.
    compiled:
        If true, route thread creation through the cohort compiler
        (:mod:`repro.compile.cohort`): EM-C threads run on generated
        Python or the flat trace VM, and generator threads sharing a
        trace shape replay a recorded effect trace.  Unmatchable
        threads fall back to the interpreter per-thread; metrics, obs
        events (minus the diagnostic ``COHORT`` category) and exports
        are identical by construction.
    seed:
        Seed for any stochastic choices (none in the core model, but
        workload generators consume it).
    """

    n_pes: int = 16
    memory_words: int = 1 << 20
    ibu_fifo_depth: int = 8
    em4_mode: bool = False
    priority_replies: bool = False
    network_model: str = "detailed"
    fidelity: str = "detailed"
    compiled: bool = False
    max_cycles: int = 4_000_000_000
    #: Record burst-level trace events for :mod:`repro.trace` timelines.
    trace: bool = False
    seed: int = 0
    timing: TimingModel = field(default_factory=_default_timing)

    def validate(self) -> None:
        """Raise :class:`ConfigError` on any out-of-range field."""
        if self.n_pes < 1:
            raise ConfigError(f"n_pes must be >= 1, got {self.n_pes}")
        if self.memory_words < 1:
            raise ConfigError(f"memory_words must be >= 1, got {self.memory_words}")
        if self.ibu_fifo_depth < 1:
            raise ConfigError(f"ibu_fifo_depth must be >= 1, got {self.ibu_fifo_depth}")
        if self.network_model not in ("detailed", "analytic"):
            raise ConfigError(
                f"network_model must be 'detailed' or 'analytic', got {self.network_model!r}"
            )
        if self.fidelity not in ("detailed", "hybrid"):
            raise ConfigError(
                f"fidelity must be 'detailed' or 'hybrid', got {self.fidelity!r}"
            )
        if self.max_cycles < 1:
            raise ConfigError(f"max_cycles must be >= 1, got {self.max_cycles}")
        self.timing.validate()

    def with_(self, **overrides: Any) -> "MachineConfig":
        """Return a copy with selected fields replaced (and validated)."""
        cfg = replace(self, **overrides)
        cfg.validate()
        return cfg
