"""Instrumentation: cycle buckets, switch counters, overlap analysis.

The paper decomposes execution time into four components — computation,
overhead (packet generation), communication, and switching (Fig. 8) —
and classifies context switches into remote-read, iteration-sync and
thread-sync switches (Fig. 9).  This package implements exactly that
accounting plus the overlap-efficiency metric of Fig. 7.
"""

from .ascii_plot import plot_curves
from .breakdown import Breakdown, aggregate_breakdown
from .counters import Bucket, PECounters, SwitchKind
from .overlap import overlap_efficiency, overlap_series
from .report import format_table
from .serialize import (
    counters_to_dict,
    report_to_dict,
    report_to_json,
    run_record_from_dict,
    run_record_from_report,
    run_record_to_dict,
)

__all__ = [
    "Bucket",
    "SwitchKind",
    "PECounters",
    "Breakdown",
    "aggregate_breakdown",
    "overlap_efficiency",
    "overlap_series",
    "format_table",
    "counters_to_dict",
    "report_to_dict",
    "report_to_json",
    "run_record_to_dict",
    "run_record_from_dict",
    "run_record_from_report",
    "plot_curves",
]
