"""Plain-text tables for experiment output.

The benchmark harness prints every figure's series as an aligned text
table; this module is the single formatting path so tests can assert on
structure without caring about spacing.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["format_table", "format_cohort", "format_series", "format_windows"]


def _cell(value: Any) -> str:
    if isinstance(value, float):
        if value != 0 and (abs(value) < 1e-3 or abs(value) >= 1e5):
            return f"{value:.3e}"
        return f"{value:.4f}".rstrip("0").rstrip(".") or "0"
    return str(value)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]], title: str = "") -> str:
    """Render an aligned text table with a header rule."""
    cells = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, c in enumerate(row):
            widths[i] = max(widths[i], len(c))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_cohort(cohort: dict) -> str:
    """Render ``MachineReport.cohort`` (cohort-compiler diagnostics).

    One occupancy line — what fraction of guest threads ran on a
    compiled tier and through which tier they went — followed by the
    recorder/tracer outcome counters and, when any recording bailed, a
    per-reason breakdown of why threads fell back to the interpreter.
    """
    tiers = []
    for label, key in (
        ("emc-codegen", "emc_codegen_threads"),
        ("emc-trace", "emc_trace_threads"),
        ("emc-interp", "emc_interp_threads"),
        ("gen-compiled", "gen_compiled_threads"),
        ("gen-traced", "gen_traced_threads"),
        ("gen-replayed", "gen_replayed_threads"),
        ("gen-interp", "gen_interpreted_threads"),
    ):
        if cohort.get(key):
            tiers.append(f"{label} {cohort[key]}")
    lines = [
        f"cohorts: occupancy {cohort['occupancy']:.2f}  "
        + (", ".join(tiers) if tiers else "no guest threads")
        + ("" if cohort.get("numpy") else "  [no numpy: scalar tables]")
    ]
    lines.append(
        f"  cohorts={cohort['cohorts']} (largest {cohort['max_cohort_members']})  "
        f"records={cohort['records']}  live_traces={cohort['live_traces']}  "
        f"validated={cohort['gen_validated_threads']}  "
        f"guards={cohort['guards_checked']}  bailouts={cohort['bailouts']}  "
        f"divergences={cohort['replay_divergences']}"
    )
    reasons = cohort.get("record_failure_reasons") or {}
    if reasons:
        lines.append(
            f"  record bails ({cohort['record_failures']}): "
            + ", ".join(f"{r} x{n}" for r, n in sorted(reasons.items()))
        )
    return "\n".join(lines)


def format_series(name: str, series: dict[int, float], unit: str = "") -> str:
    """Render one x → y series (e.g. threads → communication seconds)."""
    rows = [(x, y) for x, y in sorted(series.items())]
    header_y = f"{name}{f' [{unit}]' if unit else ''}"
    return format_table(["threads", header_y], rows)


def format_windows(windows: dict) -> str:
    """Render ``MachineReport.windows`` (sharded-run barrier accounting).

    One summary line — protocol, barrier count, coalesced jumps, the
    lookahead-matrix spread — followed by a per-shard table of window
    counts, idle windows and barrier wall time.
    """
    summary = (
        f"window protocol: {windows['protocol']}  shards={windows['shards']}  "
        f"barriers={windows['count']}  coalesced={windows['coalesced']}  "
        f"lookahead={windows['lookahead_min']}..{windows['lookahead_max']}"
    )
    rows = [
        (shard, per["windows"], per["idle_windows"], per["barrier_wall_seconds"])
        for shard, per in enumerate(windows["per_shard"])
    ]
    table = format_table(
        ["shard", "windows", "idle", "barrier_s"], rows
    )
    return f"{summary}\n{table}"
