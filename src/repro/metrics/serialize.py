"""Machine-readable experiment records.

Reports and run records serialise to plain dictionaries (JSON-safe) so
downstream tooling — plotting scripts, regression trackers, the CLI's
``--json`` flag — can consume runs without importing simulator types.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import SimulationError
from .counters import Bucket, PECounters, SwitchKind

__all__ = [
    "counters_to_dict",
    "report_to_dict",
    "report_to_json",
    "run_record_to_dict",
    "run_record_from_dict",
    "run_record_from_report",
]


def counters_to_dict(c: PECounters) -> dict[str, Any]:
    """One processor's counters as a JSON-safe dict."""
    return {
        "pe": c.pe,
        "cycles": {b.value: v for b, v in c.cycles.items()},
        "switches": {k.value: v for k, v in c.switches.items()},
        "reads_issued": c.reads_issued,
        "block_reads_issued": c.block_reads_issued,
        "block_words_requested": c.block_words_requested,
        "writes_issued": c.writes_issued,
        "spawns_issued": c.spawns_issued,
        "reads_serviced": c.reads_serviced,
        "packets_handled": c.packets_handled,
        "threads_started": c.threads_started,
        "threads_finished": c.threads_finished,
        "ibu_overflows": c.ibu_overflows,
        "sync_stall_cycles": c.sync_stall_cycles,
        "busy_span": c.busy_span,
    }


def report_to_dict(report) -> dict[str, Any]:
    """A :class:`~repro.machine.MachineReport` as a JSON-safe dict.

    Hybrid-fidelity runs add a ``fastforward`` section (what the
    fast-forward layer saved); detailed runs serialise exactly as they
    always have, so cached records and goldens are unaffected.

    ``MachineReport.windows`` is deliberately **not** serialised: it
    describes the shard partition and wall-clock barrier costs, so
    including it would break the cross-K byte-identity of serialised
    reports (K ∈ {1, 2, 4} must produce identical bytes).
    """
    breakdown = report.breakdown
    out = {
        "config": {
            "n_pes": report.config.n_pes,
            "em4_mode": report.config.em4_mode,
            "network_model": report.config.network_model,
            "priority_replies": report.config.priority_replies,
            "seed": report.config.seed,
        },
        "runtime_cycles": report.runtime_cycles,
        "runtime_seconds": report.runtime_seconds,
        "comm_seconds": report.comm_seconds,
        "comm_fig6_seconds": report.comm_fig6_seconds,
        "events_fired": report.events_fired,
        "breakdown_pct": breakdown.percentages(),
        "switches_per_pe": {k.value: report.switches(k) for k in SwitchKind},
        "network": {
            "packets": report.network.packets,
            "words": report.network.words,
            "mean_latency": report.network.mean_latency,
            "p50_latency": report.network.p50_latency,
            "p95_latency": report.network.p95_latency,
            "max_latency": report.network.max_latency,
            "mean_hops": report.network.mean_hops,
            "max_in_flight": report.network.max_in_flight,
            "max_port_wait": report.network.max_port_wait,
        },
        "per_pe": [counters_to_dict(c) for c in report.counters],
    }
    if getattr(report, "fastforward", None) is not None:
        out["fastforward"] = dict(report.fastforward)
    if getattr(report, "cohort", None) is not None:
        out["cohort"] = dict(report.cohort)
    return out


def run_record_from_report(
    app: str, n_pes: int, npp: int, h: int, report, verified: bool
):
    """Build the figure-facing ``RunRecord`` from a machine report.

    The single packing point between the simulator's
    :class:`~repro.machine.MachineReport` and the experiment layer's
    :class:`~repro.experiments.common.RunRecord` — the sweep runner,
    its worker processes, and any ad-hoc caller all share this mapping
    so the two representations cannot drift apart.
    """
    from ..experiments.common import RunRecord  # lazy: avoids an import cycle

    return RunRecord(
        app=app,
        n_pes=n_pes,
        npp=npp,
        h=h,
        runtime_seconds=report.runtime_seconds,
        comm_seconds=report.comm_fig6_seconds,
        comm_idle_seconds=report.comm_seconds,
        breakdown_pct=tuple(sorted(report.breakdown.percentages().items())),
        switches_per_pe=tuple((k.value, report.switches(k)) for k in SwitchKind),
        verified=verified,
        events=report.events_fired,
    )


def run_record_to_dict(record) -> dict[str, Any]:
    """A ``RunRecord`` as a JSON-safe dict (inverse of ``from_dict``)."""
    return {
        "app": record.app,
        "n_pes": record.n_pes,
        "npp": record.npp,
        "h": record.h,
        "runtime_seconds": record.runtime_seconds,
        "comm_seconds": record.comm_seconds,
        "comm_idle_seconds": record.comm_idle_seconds,
        "breakdown_pct": [[name, pct] for name, pct in record.breakdown_pct],
        "switches_per_pe": [[kind, count] for kind, count in record.switches_per_pe],
        "verified": record.verified,
        "events": record.events,
    }


def run_record_from_dict(payload: dict[str, Any]):
    """Rebuild a ``RunRecord`` from :func:`run_record_to_dict` output.

    Raises ``KeyError``/``TypeError``/``ValueError`` on malformed
    payloads; the disk cache treats any of those as a miss.
    """
    from ..experiments.common import RunRecord  # lazy: avoids an import cycle

    return RunRecord(
        app=str(payload["app"]),
        n_pes=int(payload["n_pes"]),
        npp=int(payload["npp"]),
        h=int(payload["h"]),
        runtime_seconds=float(payload["runtime_seconds"]),
        comm_seconds=float(payload["comm_seconds"]),
        comm_idle_seconds=float(payload["comm_idle_seconds"]),
        breakdown_pct=tuple(
            (str(name), float(pct)) for name, pct in payload["breakdown_pct"]
        ),
        switches_per_pe=tuple(
            (str(kind), float(count)) for kind, count in payload["switches_per_pe"]
        ),
        verified=bool(payload["verified"]),
        events=int(payload["events"]),
    )


def report_to_json(report, indent: int | None = None) -> str:
    """Serialise a report to a JSON string (round-trippable by json)."""
    try:
        return json.dumps(report_to_dict(report), indent=indent)
    except (TypeError, ValueError) as exc:  # pragma: no cover - safety net
        raise SimulationError(f"report not JSON-serialisable: {exc}") from exc
