"""Machine-readable experiment records.

Reports and run records serialise to plain dictionaries (JSON-safe) so
downstream tooling — plotting scripts, regression trackers, the CLI's
``--json`` flag — can consume runs without importing simulator types.
"""

from __future__ import annotations

import json
from typing import Any

from ..errors import SimulationError
from .counters import Bucket, PECounters, SwitchKind

__all__ = ["counters_to_dict", "report_to_dict", "report_to_json"]


def counters_to_dict(c: PECounters) -> dict[str, Any]:
    """One processor's counters as a JSON-safe dict."""
    return {
        "pe": c.pe,
        "cycles": {b.value: v for b, v in c.cycles.items()},
        "switches": {k.value: v for k, v in c.switches.items()},
        "reads_issued": c.reads_issued,
        "block_reads_issued": c.block_reads_issued,
        "block_words_requested": c.block_words_requested,
        "writes_issued": c.writes_issued,
        "spawns_issued": c.spawns_issued,
        "reads_serviced": c.reads_serviced,
        "packets_handled": c.packets_handled,
        "threads_started": c.threads_started,
        "threads_finished": c.threads_finished,
        "ibu_overflows": c.ibu_overflows,
        "sync_stall_cycles": c.sync_stall_cycles,
        "busy_span": c.busy_span,
    }


def report_to_dict(report) -> dict[str, Any]:
    """A :class:`~repro.machine.MachineReport` as a JSON-safe dict."""
    breakdown = report.breakdown
    return {
        "config": {
            "n_pes": report.config.n_pes,
            "em4_mode": report.config.em4_mode,
            "network_model": report.config.network_model,
            "priority_replies": report.config.priority_replies,
            "seed": report.config.seed,
        },
        "runtime_cycles": report.runtime_cycles,
        "runtime_seconds": report.runtime_seconds,
        "comm_seconds": report.comm_seconds,
        "comm_fig6_seconds": report.comm_fig6_seconds,
        "events_fired": report.events_fired,
        "breakdown_pct": breakdown.percentages(),
        "switches_per_pe": {k.value: report.switches(k) for k in SwitchKind},
        "network": {
            "packets": report.network.packets,
            "words": report.network.words,
            "mean_latency": report.network.mean_latency,
            "max_latency": report.network.max_latency,
            "mean_hops": report.network.mean_hops,
        },
        "per_pe": [counters_to_dict(c) for c in report.counters],
    }


def report_to_json(report, indent: int | None = None) -> str:
    """Serialise a report to a JSON string (round-trippable by json)."""
    try:
        return json.dumps(report_to_dict(report), indent=indent)
    except (TypeError, ValueError) as exc:  # pragma: no cover - safety net
        raise SimulationError(f"report not JSON-serialisable: {exc}") from exc
