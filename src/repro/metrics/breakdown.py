"""Execution-time decomposition (Fig. 8).

The paper plots, for each thread count, the percentage split of
execution time into computation, overhead, communication and switching,
"listed from the bottom".  :class:`Breakdown` carries the machine-wide
cycle totals and exposes the percentage view; the internal IDLE bucket
(no live threads) is reported separately and excluded from the
percentages, mirroring the paper's busy-time normalisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import SimulationError
from .counters import Bucket, PECounters

__all__ = ["Breakdown", "aggregate_breakdown"]


@dataclass(frozen=True)
class Breakdown:
    """Cycle totals per component, summed over processors."""

    computation: int
    overhead: int
    communication: int
    switching: int
    idle: int = 0

    @property
    def accounted(self) -> int:
        """Cycles in the paper's four components (IDLE excluded)."""
        return self.computation + self.overhead + self.communication + self.switching

    @property
    def total(self) -> int:
        """All attributed cycles including IDLE."""
        return self.accounted + self.idle

    def fractions(self) -> dict[str, float]:
        """The four components as fractions of the accounted time."""
        if self.accounted == 0:
            raise SimulationError("breakdown of an empty run")
        acc = self.accounted
        return {
            "computation": self.computation / acc,
            "overhead": self.overhead / acc,
            "communication": self.communication / acc,
            "switching": self.switching / acc,
        }

    def percentages(self) -> dict[str, float]:
        """The four components in percent (Fig. 8's y-axis)."""
        return {k: 100.0 * v for k, v in self.fractions().items()}

    def __add__(self, other: "Breakdown") -> "Breakdown":
        return Breakdown(
            self.computation + other.computation,
            self.overhead + other.overhead,
            self.communication + other.communication,
            self.switching + other.switching,
            self.idle + other.idle,
        )


def aggregate_breakdown(counters: Iterable[PECounters]) -> Breakdown:
    """Sum per-PE cycle buckets into one machine-wide breakdown."""
    comp = over = comm = sw = idle = 0
    for c in counters:
        comp += c.cycles[Bucket.COMPUTATION]
        over += c.cycles[Bucket.OVERHEAD]
        comm += c.cycles[Bucket.COMMUNICATION]
        sw += c.cycles[Bucket.SWITCHING]
        idle += c.cycles[Bucket.IDLE]
    return Breakdown(comp, over, comm, sw, idle)
