"""Per-processor counters: cycle buckets and switch classification.

Every EXU cycle lands in exactly one :class:`Bucket`:

* ``COMPUTATION`` — the guest's real work (merge comparisons, FFT
  butterflies, local sorts).
* ``OVERHEAD`` — "the time taken to generate packets" (§5): the
  packet-generation instructions for reads, writes, spawns, replies.
* ``SWITCHING`` — register save/restore, matching-unit invocation, and
  synchronisation spin checks.
* ``COMMUNICATION`` — EXU idle while the processor still has live work
  (outstanding reads, parked threads): the unmasked latency that
  multithreading tries to hide.

Switches are classified as the paper does: every remote read causes a
REMOTE_READ switch; barrier arrivals/spins are ITER_SYNC; merge-order
token waits are THREAD_SYNC.  EXPLICIT covers guest ``SwitchNow``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..errors import SimulationError

__all__ = ["Bucket", "SwitchKind", "PECounters"]


class Bucket(enum.Enum):
    """Destination of one EXU cycle (Fig. 8's four components).

    ``IDLE`` is a fifth, internal bucket: gaps when the processor has no
    live threads at all (before its first spawn arrives, or after its
    last thread died while other PEs finish).  It keeps the accounting
    identity exact but is excluded from the paper's four-way breakdown.
    """

    COMPUTATION = "computation"
    OVERHEAD = "overhead"
    COMMUNICATION = "communication"
    SWITCHING = "switching"
    IDLE = "idle"

    # Identity hash (C slot) instead of Enum's Python-level __hash__:
    # every burst charges 3-4 buckets, so these dict lookups are hot.
    __hash__ = object.__hash__


class SwitchKind(enum.Enum):
    """Context-switch classification (Fig. 9's three curves + explicit)."""

    REMOTE_READ = "remote_read"
    ITER_SYNC = "iter_sync"
    THREAD_SYNC = "thread_sync"
    EXPLICIT = "explicit"

    __hash__ = object.__hash__  # identity hash; see Bucket


@dataclass
class PECounters:
    """All instrumentation for one processor."""

    pe: int
    cycles: dict[Bucket, int] = field(
        default_factory=lambda: {b: 0 for b in Bucket}
    )
    switches: dict[SwitchKind, int] = field(
        default_factory=lambda: {k: 0 for k in SwitchKind}
    )
    #: Cycles burned on *failed* synchronisation re-checks (barrier
    #: spins).  These are inside the SWITCHING bucket; Fig. 6/7 report
    #: them together with idle as "communication time", because on the
    #: hardware this is time lost to waiting, not useful switching.
    sync_stall_cycles: int = 0
    comm_gap_count: int = 0
    comm_gap_max: int = 0
    reads_issued: int = 0
    block_reads_issued: int = 0
    block_words_requested: int = 0
    writes_issued: int = 0
    spawns_issued: int = 0
    reads_serviced: int = 0
    packets_handled: int = 0
    threads_started: int = 0
    threads_finished: int = 0
    ibu_overflows: int = 0
    #: Cycle at which this PE last did (or will finish) real work.
    last_active: int = 0
    first_active: int | None = None

    # ------------------------------------------------------------------
    def add_cycles(self, bucket: Bucket, cycles: int) -> None:
        """Charge ``cycles`` to one bucket."""
        if cycles < 0:
            raise SimulationError(f"negative cycle charge {cycles} to {bucket}")
        self.cycles[bucket] += cycles

    def add_switch(self, kind: SwitchKind, count: int = 1) -> None:
        """Count ``count`` context switches of ``kind``."""
        self.switches[kind] += count

    def note_active(self, start: int, end: int) -> None:
        """Record an activity span for busy-window bookkeeping."""
        if self.first_active is None:
            self.first_active = start
        if end > self.last_active:
            self.last_active = end

    # ------------------------------------------------------------------
    @property
    def total_cycles(self) -> int:
        """Sum of all buckets (the PE's accounted span)."""
        return sum(self.cycles.values())

    @property
    def total_switches(self) -> int:
        """All context switches regardless of kind."""
        return sum(self.switches.values())

    @property
    def busy_span(self) -> int:
        """Cycles between this PE's first and last activity."""
        if self.first_active is None:
            return 0
        return self.last_active - self.first_active

    def check_accounting(self) -> None:
        """Verify buckets cover the busy window exactly.

        Every cycle between first and last activity must be attributed
        to exactly one bucket; a mismatch means the EXU double-charged
        or dropped time, so this raises rather than warns.
        """
        if self.first_active is None:
            return
        if self.total_cycles != self.busy_span:
            raise SimulationError(
                f"PE {self.pe} bucket accounting mismatch: "
                f"buckets={self.total_cycles} busy_span={self.busy_span}"
            )
