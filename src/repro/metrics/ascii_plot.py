"""Terminal charts: log-scale curve plots for the figure CLI.

The paper's figures are log-y plots of a handful of curves; this module
renders the same thing in a terminal so `python -m repro fig6 a --plot`
shows the shape at a glance without any plotting dependency.
"""

from __future__ import annotations

import math

from ..errors import SimulationError

__all__ = ["plot_curves"]

_MARKS = "ox+*#@%&"


def plot_curves(
    curves: dict[str, dict[int, float]],
    width: int = 64,
    height: int = 16,
    logy: bool = True,
    title: str = "",
    ylabel: str = "",
) -> str:
    """Render named x→y curves as an ASCII chart.

    Each curve gets one marker character; the legend maps markers to
    names.  ``logy`` spaces the y-axis logarithmically (the paper's
    style for Figs. 6 and 9); non-positive values require ``logy=False``.
    """
    if not curves or not any(curves.values()):
        return "(no data)"
    if width < 16 or height < 4:
        raise SimulationError(f"plot area too small: {width}x{height}")
    if len(curves) > len(_MARKS):
        raise SimulationError(f"at most {len(_MARKS)} curves, got {len(curves)}")

    xs = sorted({x for curve in curves.values() for x in curve})
    ys = [y for curve in curves.values() for y in curve.values()]
    if logy and min(ys) <= 0:
        raise SimulationError("log-scale plot needs positive values; pass logy=False")

    def ty(y: float) -> float:
        return math.log10(y) if logy else y

    lo, hi = min(ty(y) for y in ys), max(ty(y) for y in ys)
    if hi == lo:
        hi = lo + 1.0
    x_lo, x_hi = xs[0], xs[-1]
    x_span = max(x_hi - x_lo, 1)

    grid = [[" "] * width for _ in range(height)]
    for (name, curve), mark in zip(curves.items(), _MARKS):
        for x, y in sorted(curve.items()):
            col = round((x - x_lo) / x_span * (width - 1))
            row = round((ty(y) - lo) / (hi - lo) * (height - 1))
            grid[height - 1 - row][col] = mark

    def ylab(value: float) -> str:
        real = 10**value if logy else value
        return f"{real:9.3g}"

    lines = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        frac = (height - 1 - i) / (height - 1)
        label = ylab(lo + frac * (hi - lo)) if i in (0, height // 2, height - 1) else " " * 9
        lines.append(f"{label} |{''.join(row)}|")
    axis = f"{'':9} +{'-' * width}+"
    lines.append(axis)
    xlabels = f"{'':9}  {x_lo:<8}{'threads':^{max(width - 16, 7)}}{x_hi:>8}"
    lines.append(xlabels)
    legend = "  ".join(f"{mark}={name}" for (name, _), mark in zip(curves.items(), _MARKS))
    lines.append(f"{'':9}  {legend}" + (f"   [{ylabel}]" if ylabel else ""))
    return "\n".join(lines)
