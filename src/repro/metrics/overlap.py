"""Overlap efficiency (Fig. 7).

The paper defines the efficiency of overlapping as

    E = (T_comm,1 − T_comm,h) / T_comm,1

— the fraction of the single-thread communication time that
multithreading with *h* threads managed to hide.  One thread can never
overlap anything ("there is no other thread to switch to"), so E(1) = 0
by construction.
"""

from __future__ import annotations

from typing import Mapping

from ..errors import SimulationError

__all__ = ["overlap_efficiency", "overlap_series"]


def overlap_efficiency(comm_one_thread: float, comm_h_threads: float) -> float:
    """E = (T₁ − Tₕ) / T₁, as a fraction (0.35 ↔ 35 %).

    Negative values are legal and meaningful: past the optimal thread
    count, excessive switching makes communication time *worse* than
    single-threaded (the paper's "larger numbers of threads have
    adversely affected the amount of overlapping").
    """
    if comm_one_thread <= 0:
        raise SimulationError(
            f"one-thread communication time must be positive, got {comm_one_thread}"
        )
    if comm_h_threads < 0:
        raise SimulationError(f"negative communication time {comm_h_threads}")
    return (comm_one_thread - comm_h_threads) / comm_one_thread


def overlap_series(comm_by_threads: Mapping[int, float]) -> dict[int, float]:
    """Per-thread-count efficiency from a Fig. 6-style series.

    ``comm_by_threads`` maps thread count → communication time; the
    entry for one thread is the baseline and must be present.
    """
    if 1 not in comm_by_threads:
        raise SimulationError("overlap series needs the one-thread baseline")
    base = comm_by_threads[1]
    return {h: overlap_efficiency(base, t) for h, t in sorted(comm_by_threads.items())}
