"""Structured observability for the EM-X simulator.

The paper's whole argument is about *where cycles go* — switch counts
by cause, unmasked communication gaps, per-packet latencies.  This
package records the event stream behind those numbers instead of only
their end-of-run aggregates:

* :mod:`~repro.obs.events` — the typed event vocabulary (switches,
  bursts, packets, matching, barriers, thread lifecycle), grouped into
  :class:`Category` families;
* :mod:`~repro.obs.bus` — the :class:`EventBus` the model emits
  through; ``EMX(config, obs=bus)`` installs one, and every emit site
  costs a single ``is None`` test when tracing is off;
* :mod:`~repro.obs.recorder` — the bounded :class:`RingRecorder` that
  keeps full-length runs memory-safe;
* :mod:`~repro.obs.views` — derived structures: per-packet lifecycle
  spans, latency histograms, per-PE burst timelines (feeding the ASCII
  renderer), and the paper's switch-attribution table;
* :mod:`~repro.obs.perfetto` — Chrome trace-event JSON export for
  ``ui.perfetto.dev``, with one track per PE and packet flow arrows.

Typical use::

    from repro import EMX, MachineConfig
    from repro.obs import EventBus, RingRecorder, write_perfetto

    bus = EventBus()
    rec = RingRecorder(bus)
    machine = EMX(MachineConfig(n_pes=4), obs=bus)
    ...
    machine.run()
    write_perfetto("run.perfetto.json", rec.events, n_pes=4)

Or from the CLI: ``python -m repro trace sort --out run.perfetto.json``.
"""

from .bus import EventBus
from .events import (
    BarrierEvent,
    BurstSpan,
    Category,
    FastForward,
    MatchEvent,
    PacketDeliver,
    PacketHop,
    PacketSend,
    ServiceEvent,
    ShardWindow,
    ThreadLife,
    ThreadSwitch,
)
from .perfetto import to_perfetto, validate_perfetto, write_perfetto
from .recorder import RingRecorder
from .views import (
    PacketSpan,
    burst_timeline,
    format_switch_table,
    latency_histogram,
    packet_spans,
    percentile_from_hist,
    queue_depth_profile,
    switch_table,
)

__all__ = [
    "Category",
    "ThreadSwitch",
    "BurstSpan",
    "PacketSend",
    "PacketHop",
    "PacketDeliver",
    "MatchEvent",
    "BarrierEvent",
    "ThreadLife",
    "ServiceEvent",
    "FastForward",
    "ShardWindow",
    "EventBus",
    "RingRecorder",
    "PacketSpan",
    "packet_spans",
    "latency_histogram",
    "percentile_from_hist",
    "queue_depth_profile",
    "burst_timeline",
    "switch_table",
    "format_switch_table",
    "to_perfetto",
    "write_perfetto",
    "validate_perfetto",
]
