"""Merging per-shard event streams into one deterministic trace.

A sharded run (:mod:`repro.sim.parallel`) gives each worker process its
own event log; this module canonicalises the ids that are only unique
*per process* and merges the streams into the single, totally ordered
stream a sequential run of the same semantics would produce:

* **Packet seqs** — ``Packet.seq`` comes from a per-process counter, so
  raw values depend on the partition.  The sharded network computes a
  canonical id ``(src_pe << 32) | per-source-seq`` for every injected
  packet and emits its hop/deliver events with it directly; only
  ``PacketSend`` (emitted by the OBU before the network assigns the
  per-source seq) still carries the local id and is remapped here via
  the network's ``seq_map``.
* **Thread ids** — tids are allocated per machine instance, i.e. per
  shard.  All ``ThreadLife("created")`` events are globally sorted by
  ``(t, pe, local tid)`` (a PE lives on exactly one shard and creates
  its threads in a deterministic order, so this sort is independent of
  the partition) and each ``(shard, tid)`` is renamed to its dense rank.
* **Order** — the merged stream is sorted by ``(t, type name, field
  values)``, a total order over distinct events, so any two partitions
  of the same run merge to the identical sequence.

The Perfetto exporter additionally densifies packet/barrier ids by
first appearance, so equal merged streams export byte-identically.
"""

from __future__ import annotations

import enum
from dataclasses import fields, replace

from .events import BarrierEvent, PacketSend, ThreadLife

__all__ = ["ShardEventLog", "merge_shard_events", "event_sort_key"]


class ShardEventLog:
    """Minimal ``EventBus`` stand-in: append every emitted event.

    Installed as ``machine.obs`` inside each shard so emit sites run
    unchanged; the collected events ship to the coordinating process at
    the final barrier and are replayed into the user's real bus after
    merging.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list = []

    def emit(self, event) -> None:
        self.events.append(event)

    def wants(self, category) -> bool:
        return True


_FIELD_NAMES: dict[type, tuple[str, ...]] = {}


def event_sort_key(ev) -> tuple:
    """Total-order key: ``(t, type name, normalised field values)``."""
    et = type(ev)
    names = _FIELD_NAMES.get(et)
    if names is None:
        names = _FIELD_NAMES[et] = tuple(f.name for f in fields(ev))
    values = tuple(
        v.value if isinstance(v, enum.Enum) else v
        for v in (getattr(ev, name) for name in names)
    )
    return (ev.t, et.__name__, values)


def _canonical_tids(streams: list[list]) -> dict[tuple[int, int], int]:
    """``(shard, local tid) → dense global tid`` from creation order."""
    creations: list[tuple[int, int, int, int]] = []
    for shard, events in enumerate(streams):
        for ev in events:
            if type(ev) is ThreadLife and ev.state == "created":
                creations.append((ev.t, ev.pe, ev.tid, shard))
    creations.sort()
    return {(shard, tid): rank for rank, (_, _, tid, shard) in enumerate(creations)}


def merge_shard_events(streams: list[list], seq_maps: list[dict]) -> list:
    """Canonicalise and merge per-shard event streams (see module doc)."""
    tid_map = _canonical_tids(streams)
    merged: list = []
    for shard, events in enumerate(streams):
        seq_map = seq_maps[shard] if shard < len(seq_maps) else {}
        for ev in events:
            et = type(ev)
            if et is PacketSend:
                canon = seq_map.get(ev.seq)
                if canon is not None and canon != ev.seq:
                    ev = replace(ev, seq=canon)
            elif et is ThreadLife:
                tid = tid_map.get((shard, ev.tid))
                if tid is not None and tid != ev.tid:
                    ev = replace(ev, tid=tid)
            merged.append(ev)
    merged.sort(key=event_sort_key)
    # Barrier ids come from a process-global counter whose start value
    # drifts across runs in one process (fork keeps it consistent
    # *within* a run).  Shifting every id by a constant preserves the
    # sort order above, so densifying by first appearance afterwards
    # yields the same stream no matter where the counter started.
    bar_map: dict[int, int] = {}
    for i, ev in enumerate(merged):
        if type(ev) is BarrierEvent:
            bid = bar_map.setdefault(ev.barrier_id, len(bar_map))
            if bid != ev.barrier_id:
                merged[i] = replace(ev, barrier_id=bid)
    return merged
