"""The event bus: the single funnel between the model and observers.

Design constraint: the simulator must pay **near-zero cost when tracing
is off**.  That property lives at the emit sites, not here — the
machine-wide handle (``EMX.obs``) is simply ``None`` when observability
is disabled, and every producer guards with one attribute-is-None test
before constructing an event.  When a bus *is* installed, :meth:`emit`
is a dict lookup plus a loop over the (usually one) subscribers that
asked for the event's category.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .events import Category

__all__ = ["EventBus"]

Subscriber = Callable[[object], None]


class EventBus:
    """Routes typed events to category-filtered subscribers."""

    __slots__ = ("_subscribers", "_by_category")

    def __init__(self) -> None:
        self._subscribers: list[tuple[Subscriber, frozenset[Category] | None]] = []
        self._by_category: dict[Category, tuple[Subscriber, ...]] = {
            c: () for c in Category
        }

    def subscribe(
        self, fn: Subscriber, categories: Iterable[Category] | None = None
    ) -> None:
        """Deliver every event (or only ``categories``) to ``fn``.

        ``categories=None`` means *every model category*: it excludes
        :attr:`Category.SHARD`, whose events describe the shard
        partition rather than the simulated machine and are delivered
        only to subscribers naming the category explicitly.
        """
        cats = None if categories is None else frozenset(categories)
        self._subscribers.append((fn, cats))
        self._rebuild()

    def unsubscribe(self, fn: Subscriber) -> None:
        """Remove every subscription of ``fn`` (no-op if absent).

        Compares with ``==`` so a re-derived bound method (``obj.method``
        creates a fresh object on every attribute access) still matches
        its registered subscription.
        """
        self._subscribers = [(f, c) for f, c in self._subscribers if f != fn]
        self._rebuild()

    def _rebuild(self) -> None:
        self._by_category = {
            c: tuple(
                fn
                for fn, cats in self._subscribers
                if (c is not Category.SHARD if cats is None else c in cats)
            )
            for c in Category
        }

    def wants(self, category: Category) -> bool:
        """True if any subscriber listens to ``category``.

        Producers with *expensive* event construction (per-hop packet
        events) may pre-check this to skip the work entirely.
        """
        return bool(self._by_category[category])

    def emit(self, event) -> None:
        """Dispatch one event to its category's subscribers."""
        for fn in self._by_category[event.category]:
            fn(event)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"EventBus(subscribers={len(self._subscribers)})"
