"""Chrome trace-event (Perfetto) export.

Serialises a recorded event stream to the JSON trace-event format that
``ui.perfetto.dev`` (and ``chrome://tracing``) load directly:

* one *process* per PE, with the EXU and the IBU's by-passing DMA as
  separate threads (tracks) — bursts, spins, EM-4 read services, idle
  communication gaps and DMA services render as duration slices;
* a synthetic ``network`` process carrying one async span per packet
  from injection to ejection, named by packet kind;
* flow arrows (``s``/``f`` events) from the sending PE's track to the
  receiving PE's track, so a remote read visually connects the
  suspending burst to the reply that resumes it;
* instant events for context switches (classified as the paper's
  Fig. 9 kinds), matching-store parks/matches, barrier protocol steps
  and thread lifecycle transitions;
* a ``shards`` pseudo-process with one track per shard, carrying the
  window-protocol schedule of sharded runs (SHARD-category
  :class:`~repro.obs.events.ShardWindow` events — recorded only by
  subscribers that opted into the category);
* instant ``cohort:*`` markers on the PE tracks for cohort-compiler
  progress (:class:`~repro.obs.events.CohortEvent` — present only on
  ``compiled=True`` runs).

Timestamps are microseconds (the trace-event unit) at the EM-X's
20 MHz clock: one cycle = 0.05 µs.  :func:`validate_perfetto` is the
schema check the tests and the CI smoke step share.
"""

from __future__ import annotations

import json
import pathlib

from ..config import CYCLE_SECONDS
from .events import (
    BarrierEvent,
    BurstSpan,
    CohortEvent,
    FastForward,
    MatchEvent,
    PacketDeliver,
    PacketHop,
    PacketSend,
    ShardWindow,
    ThreadLife,
    ThreadSwitch,
)

__all__ = ["to_perfetto", "write_perfetto", "validate_perfetto"]

#: Microseconds per simulated cycle (50 ns at 20 MHz).
CYCLE_US = CYCLE_SECONDS * 1e6

#: Thread (track) ids within a PE process.
EXU_TID = 0
IBU_TID = 1

_UNIT_TID = {"exu": EXU_TID, "ibu": IBU_TID}


def _us(t: int) -> float:
    """Cycle count -> trace-event microseconds (stable rounding)."""
    return round(t * CYCLE_US, 4)


def _metadata(pids: list[int], net_pid: int) -> list[dict]:
    out = []
    for pid in pids:
        out.append({"ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                    "args": {"name": f"PE {pid}"}})
        out.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": EXU_TID,
                    "args": {"name": "EXU"}})
        out.append({"ph": "M", "name": "thread_name", "pid": pid, "tid": IBU_TID,
                    "args": {"name": "IBU DMA"}})
    out.append({"ph": "M", "name": "process_name", "pid": net_pid, "tid": 0,
                "args": {"name": "network"}})
    return out


def to_perfetto(events, *, n_pes: int | None = None) -> dict:
    """Build the trace-event JSON object for a recorded event stream.

    ``n_pes`` fixes the PE process list (and the network pseudo-process
    id); when omitted both are inferred from the events themselves.

    Packets whose send or deliver endpoint fell off the recording ring
    are skipped so the exported async spans always pair — a truncated
    trace stays loadable.

    Raw ``Packet.seq`` and barrier ids come from process-global
    counters, so they depend on what ran earlier in the process; the
    export remaps both to dense first-appearance ids to keep the JSON
    deterministic for a given run.
    """
    sent_seqs = {ev.seq for ev in events if type(ev) is PacketSend}
    paired = {ev.seq for ev in events if type(ev) is PacketDeliver and ev.seq in sent_seqs}
    norm: dict[int, int] = {}
    bar_norm: dict[int, int] = {}

    def _id(seq: int) -> int:
        return norm.setdefault(seq, len(norm))

    def _bar_id(barrier_id: int) -> int:
        return bar_norm.setdefault(barrier_id, len(bar_norm))
    pes: set[int] = set(range(n_pes)) if n_pes is not None else set()
    shards: set[int] = set()
    trace: list[dict] = []
    for ev in events:
        et = type(ev)
        if et is BurstSpan:
            pes.add(ev.pe)
            entry = {
                "name": ev.thread or ev.kind,
                "cat": f"burst:{ev.kind}",
                "ph": "X",
                "ts": _us(ev.t),
                "dur": _us(ev.end) - _us(ev.t),
                "pid": ev.pe,
                "tid": _UNIT_TID.get(ev.unit, EXU_TID),
                "args": {"kind": ev.kind, "cycles": ev.end - ev.t},
            }
            trace.append(entry)
        elif et is ThreadSwitch:
            pes.add(ev.pe)
            trace.append({
                "name": f"switch:{ev.kind.value}",
                "cat": "switch",
                "ph": "i",
                "s": "t",
                "ts": _us(ev.t),
                "pid": ev.pe,
                "tid": EXU_TID,
                "args": {"thread": ev.thread},
            })
        elif et is PacketSend:
            pes.add(ev.src)
            pes.add(ev.dst)
            if ev.seq in paired:
                # Materialised below once the PE set (net pid) is known.
                trace.append(ev)
        elif et is PacketDeliver:
            pes.add(ev.src)
            pes.add(ev.dst)
            if ev.seq in paired:
                trace.append(ev)
        elif et is PacketHop:
            trace.append(ev)
        elif et is FastForward:
            pes.add(ev.pe)
            trace.append(ev)
        elif et is ShardWindow:
            shards.add(ev.shard)
            trace.append(ev)
        elif et is CohortEvent:
            # Compiler progress markers (record/trace/bail/bailout) on
            # the PE track — present only on compiled runs, so default
            # interpreted exports are untouched.
            pes.add(ev.pe)
            trace.append({
                "name": f"cohort:{ev.kind}",
                "cat": "cohort",
                "ph": "i",
                "s": "t",
                "ts": _us(ev.t),
                "pid": ev.pe,
                "tid": EXU_TID,
                "args": {"thread": ev.name, "n": ev.n},
            })
        elif et is MatchEvent:
            pes.add(ev.pe)
            trace.append({
                "name": "match" if ev.matched else "defer",
                "cat": "match",
                "ph": "i",
                "s": "t",
                "ts": _us(ev.t),
                "pid": ev.pe,
                "tid": EXU_TID,
                "args": {"frame": ev.frame_id, "slot": ev.slot},
            })
        elif et is BarrierEvent:
            pes.add(ev.pe)
            trace.append({
                "name": f"barrier:{ev.action}",
                "cat": "barrier",
                "ph": "i",
                "s": "t",
                "ts": _us(ev.t),
                "pid": ev.pe,
                "tid": EXU_TID,
                "args": {"barrier": _bar_id(ev.barrier_id), "gen": ev.gen},
            })
        elif et is ThreadLife:
            pes.add(ev.pe)
            trace.append({
                "name": f"{ev.name}:{ev.state}",
                "cat": "thread",
                "ph": "i",
                "s": "t",
                "ts": _us(ev.t),
                "pid": ev.pe,
                "tid": EXU_TID,
                "args": {"tid": ev.tid},
            })

    pids = sorted(pes)
    net_pid = (max(pids) + 1) if pids else 0
    out: list[dict] = _metadata(pids, net_pid)
    # Window-protocol track: one pseudo-process, one thread per shard.
    shard_pid = net_pid + 1
    for shard in sorted(shards):
        if shard == min(shards):
            out.append({"ph": "M", "name": "process_name", "pid": shard_pid,
                        "tid": 0, "args": {"name": "shards"}})
        out.append({"ph": "M", "name": "thread_name", "pid": shard_pid,
                    "tid": shard, "args": {"name": f"shard {shard}"}})
    for item in trace:
        et = type(item)
        if et is dict:
            out.append(item)
        elif et is PacketSend:
            name = item.kind.value
            out.append({
                "name": name, "cat": "packet", "ph": "b", "id": _id(item.seq),
                "ts": _us(item.t), "pid": net_pid, "tid": 0,
                "args": {"src": item.src, "dst": item.dst, "words": item.words},
            })
            out.append({
                "name": name, "cat": "flow", "ph": "s", "id": _id(item.seq),
                "ts": _us(item.t), "pid": item.src, "tid": EXU_TID,
            })
        elif et is PacketDeliver:
            name = item.kind.value
            out.append({
                "name": name, "cat": "packet", "ph": "e", "id": _id(item.seq),
                "ts": _us(item.t), "pid": net_pid, "tid": 0,
                "args": {"latency_cycles": item.latency, "hops": item.hops},
            })
            out.append({
                "name": name, "cat": "flow", "ph": "f", "bp": "e", "id": _id(item.seq),
                "ts": _us(item.t), "pid": item.dst, "tid": EXU_TID,
            })
        elif et is PacketHop:
            out.append({
                "name": f"sw{item.node}.{item.bit}", "cat": "hop", "ph": "i",
                "s": "t", "ts": _us(item.t), "pid": net_pid, "tid": 0,
                "args": {"seq": _id(item.seq)},
            })
        elif et is FastForward:
            # Skipped-region marker: a duration slice named FASTFORWARD
            # on the network track, so hybrid traces show exactly which
            # windows were advanced analytically instead of event by
            # event.  Instantaneous windows (inline kicks) still render
            # as zero-length slices, which the viewers accept.
            out.append({
                "name": "FASTFORWARD", "cat": f"fastforward:{item.kind}",
                "ph": "X", "ts": _us(item.t),
                "dur": _us(item.end) - _us(item.t),
                "pid": net_pid, "tid": 1,
                "args": {
                    "kind": item.kind, "pe": item.pe,
                    "cycles": item.end - item.t, "events_saved": item.saved,
                    **({"seq": _id(item.seq)} if item.seq in norm or item.seq in sent_seqs else {}),
                },
            })
        elif et is ShardWindow:
            # One duration slice per (shard, window) on the shard track:
            # the window-protocol schedule laid over the machine's
            # timeline, so barrier placement is visible next to the
            # bursts it paces.
            out.append({
                "name": f"window s{item.shard}", "cat": "shard",
                "ph": "X", "ts": _us(item.t),
                "dur": _us(item.end) - _us(item.t),
                "pid": shard_pid, "tid": item.shard,
                "args": {
                    "shard": item.shard, "cycles": item.end - item.t,
                    "barrier_us": item.barrier_us, "fired": item.fired,
                },
            })
    return {
        "traceEvents": out,
        "displayTimeUnit": "ns",
        "otherData": {"clock_hz": int(round(1.0 / CYCLE_SECONDS)), "source": "repro.obs"},
    }


def write_perfetto(path, events, *, n_pes: int | None = None) -> pathlib.Path:
    """Export ``events`` to ``path`` as trace-event JSON."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = to_perfetto(events, n_pes=n_pes)
    target.write_text(json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n")
    return target


_VALID_PHASES = {"M", "X", "i", "b", "e", "s", "f"}


def validate_perfetto(obj) -> list[str]:
    """Schema-check a trace-event JSON object; returns problem strings.

    Covers the invariants the viewers actually rely on: a
    ``traceEvents`` list, every event carrying ``ph``/``pid`` (and
    ``ts`` for non-metadata), non-negative durations, and paired async
    begin/end ids.  An empty return value means the trace loads.
    """
    problems: list[str] = []
    if not isinstance(obj, dict):
        return [f"trace must be a JSON object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list traceEvents"]
    open_async: dict[int, int] = {}
    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            problems.append(f"event {i} is not an object")
            continue
        ph = ev.get("ph")
        if ph not in _VALID_PHASES:
            problems.append(f"event {i}: unknown phase {ph!r}")
            continue
        if "pid" not in ev:
            problems.append(f"event {i}: missing pid")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {i}: bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {i}: bad dur {dur!r}")
        if ph == "b":
            open_async[ev.get("id")] = open_async.get(ev.get("id"), 0) + 1
        elif ph == "e":
            key = ev.get("id")
            if open_async.get(key, 0) < 1:
                problems.append(f"event {i}: async end without begin (id={key})")
            else:
                open_async[key] -= 1
    dangling = sum(1 for v in open_async.values() if v > 0)
    if dangling:
        problems.append(f"{dangling} async span(s) never ended")
    return problems
