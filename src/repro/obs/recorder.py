"""Bounded in-memory event recording.

A :class:`RingRecorder` subscribes to an :class:`~repro.obs.bus.EventBus`
and keeps the most recent ``capacity`` events in a ring buffer.  The
bound is what makes full-length runs memory-safe: a multi-million-cycle
sweep can run with tracing on and the recorder holds a fixed-size tail
instead of the whole stream.  ``dropped`` reports how many events were
evicted, so exporters can say loudly when a trace is a suffix rather
than the full run.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Iterable

from ..errors import ConfigError
from .bus import EventBus
from .events import Category

__all__ = ["RingRecorder"]


class RingRecorder:
    """Keeps the newest ``capacity`` events, oldest evicted first."""

    def __init__(
        self,
        bus: EventBus | None = None,
        *,
        capacity: int = 1_000_000,
        categories: Iterable[Category] | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigError(f"recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.categories = None if categories is None else frozenset(categories)
        self._ring: deque = deque(maxlen=capacity)
        #: Events offered to the recorder (recorded + evicted).
        self.seen = 0
        if bus is not None:
            bus.subscribe(self.record, self.categories)

    # ------------------------------------------------------------------
    def record(self, event) -> None:
        """Bus subscriber entry: append one event (evicting if full)."""
        self.seen += 1
        self._ring.append(event)

    # ------------------------------------------------------------------
    @property
    def events(self) -> list:
        """The recorded events, oldest first."""
        return list(self._ring)

    @property
    def dropped(self) -> int:
        """Events evicted by the ring bound."""
        return self.seen - len(self._ring)

    def select(self, *categories: Category) -> list:
        """Recorded events restricted to the given categories."""
        wanted = frozenset(categories)
        return [e for e in self._ring if e.category in wanted]

    def counts(self) -> Counter:
        """Recorded events per category."""
        return Counter(e.category for e in self._ring)

    def clear(self) -> None:
        """Forget everything (the eviction counter too)."""
        self._ring.clear()
        self.seen = 0

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RingRecorder({len(self._ring)}/{self.capacity} events, "
            f"{self.dropped} dropped)"
        )
