"""Derived views over a recorded event stream.

The recorder hands back a flat, time-ordered event list; these helpers
reshape it into the structures the paper's analysis actually uses:

* :func:`packet_spans` — per-packet lifecycle (send → deliver), the
  basis of latency histograms and queue-occupancy profiles that extend
  the aggregate :class:`~repro.network.stats.NetworkStats`;
* :func:`burst_timeline` — per-PE activity spans as
  :class:`~repro.trace.TraceEvent`, feeding the existing ASCII timeline
  renderer without requiring ``MachineConfig(trace=True)``;
* :func:`switch_table` — the per-kind switch-count attribution behind
  the paper's Tables 3/4, reconstructed from the event stream and
  cross-checkable against :class:`~repro.metrics.counters.PECounters`.

Everything here is pure post-processing over plain event records — no
simulator state is consulted, so views work equally on a live recorder
or on events round-tripped through another process.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from ..metrics.counters import SwitchKind
from ..packet import PacketKind
from ..trace import TraceEvent
from .events import BurstSpan, PacketDeliver, PacketSend, ThreadSwitch

__all__ = [
    "PacketSpan",
    "packet_spans",
    "latency_histogram",
    "percentile_from_hist",
    "queue_depth_profile",
    "burst_timeline",
    "switch_table",
    "format_switch_table",
]


@dataclass(frozen=True, slots=True)
class PacketSpan:
    """One packet's life: injection to ejection."""

    seq: int
    kind: PacketKind
    src: int
    dst: int
    sent: int
    delivered: int
    hops: int

    @property
    def latency(self) -> int:
        """Injection-to-delivery cycles."""
        return self.delivered - self.sent


def packet_spans(events) -> list[PacketSpan]:
    """Pair sends with delivers by packet sequence number.

    Packets whose send or deliver fell outside the recorded window
    (ring eviction, run truncation) are skipped — a span needs both
    endpoints.  Returns spans in delivery order.
    """
    sends: dict[int, PacketSend] = {}
    spans: list[PacketSpan] = []
    for ev in events:
        if type(ev) is PacketSend:
            sends[ev.seq] = ev
        elif type(ev) is PacketDeliver:
            sent = sends.pop(ev.seq, None)
            if sent is not None:
                spans.append(
                    PacketSpan(
                        seq=ev.seq,
                        kind=ev.kind,
                        src=ev.src,
                        dst=ev.dst,
                        sent=sent.t,
                        delivered=ev.t,
                        hops=ev.hops,
                    )
                )
    return spans


def latency_histogram(spans: list[PacketSpan]) -> Counter:
    """``{latency_cycles: packet_count}`` over the given spans."""
    return Counter(span.latency for span in spans)


def percentile_from_hist(hist: Counter, q: float) -> float:
    """The ``q``-quantile (0..1) of an integer-valued histogram.

    Nearest-rank definition: the smallest value whose cumulative count
    reaches ``q`` of the total.  Returns 0.0 for an empty histogram.
    """
    total = sum(hist.values())
    if total == 0:
        return 0.0
    rank = max(1, int(q * total + 0.5))
    seen = 0
    for value in sorted(hist):
        seen += hist[value]
        if seen >= rank:
            return float(value)
    return float(max(hist))  # pragma: no cover - rank <= total by construction


def queue_depth_profile(events) -> tuple[list[tuple[int, int]], int]:
    """In-flight packet depth over time, from send/deliver events.

    Returns ``(steps, max_depth)`` where ``steps`` is a list of
    ``(cycle, depth_after)`` change points.  Delivers recorded without a
    matching send (evicted head of a ring) are ignored so a truncated
    trace never reports a negative depth.
    """
    steps: list[tuple[int, int]] = []
    depth = 0
    max_depth = 0
    outstanding: set[int] = set()
    for ev in events:
        if type(ev) is PacketSend:
            outstanding.add(ev.seq)
            depth += 1
            if depth > max_depth:
                max_depth = depth
            steps.append((ev.t, depth))
        elif type(ev) is PacketDeliver:
            if ev.seq in outstanding:
                outstanding.discard(ev.seq)
                depth -= 1
                steps.append((ev.t, depth))
    return steps, max_depth


#: BurstSpan kinds the EXU timeline understands (the IBU's ``dma`` spans
#: live on a different hardware unit and are excluded from the EXU rows).
_TIMELINE_KINDS = {"burst", "spin", "service", "idle"}


def burst_timeline(events) -> dict[int, list[TraceEvent]]:
    """Per-PE EXU activity as :class:`~repro.trace.TraceEvent` lists.

    This reconstructs exactly what ``MachineConfig(trace=True)`` would
    have recorded, but from the observability stream — so one tracing
    mechanism feeds both the ASCII timeline and the Perfetto export.
    """
    traces: dict[int, list[TraceEvent]] = {}
    for ev in events:
        if type(ev) is BurstSpan and ev.unit == "exu" and ev.kind in _TIMELINE_KINDS:
            traces.setdefault(ev.pe, []).append(
                TraceEvent(ev.t, ev.end, ev.kind, ev.thread)
            )
    return traces


def switch_table(events) -> dict[int, dict[SwitchKind, int]]:
    """Per-PE, per-kind context-switch counts from the event stream.

    The observability mirror of ``PECounters.switches`` — the paper's
    Table 3/4 rows.  Equality between this table and the counters is a
    correctness invariant the tests enforce.
    """
    table: dict[int, dict[SwitchKind, int]] = {}
    for ev in events:
        if type(ev) is ThreadSwitch:
            row = table.setdefault(ev.pe, {k: 0 for k in SwitchKind})
            row[ev.kind] += 1
    return table


def format_switch_table(table: dict[int, dict[SwitchKind, int]]) -> str:
    """Render the switch-attribution table as aligned text."""
    kinds = list(SwitchKind)
    header = ["PE"] + [k.value for k in kinds] + ["total"]
    rows: list[list[str]] = []
    totals = {k: 0 for k in kinds}
    for pe in sorted(table):
        row = table[pe]
        rows.append(
            [str(pe)]
            + [str(row[k]) for k in kinds]
            + [str(sum(row.values()))]
        )
        for k in kinds:
            totals[k] += row[k]
    rows.append(
        ["all"]
        + [str(totals[k]) for k in kinds]
        + [str(sum(totals.values()))]
    )
    widths = [max(len(r[i]) for r in [header] + rows) for i in range(len(header))]
    lines = ["  ".join(h.rjust(w) for h, w in zip(header, widths))]
    for r in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(r, widths)))
    return "\n".join(lines)
