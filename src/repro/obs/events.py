"""The observability event vocabulary.

Every interesting thing the simulated machine does maps onto one typed,
immutable event record: a context switch with its paper classification,
a packet moving through the fabric, a matching-store park/match, a
barrier generation advancing, a thread changing state, or a span of
EXU/IBU activity.  Events carry the simulated cycle (``t``) and enough
identity (PE number, packet sequence number, thread id) for the derived
views in :mod:`repro.obs.views` to reconstruct timelines and per-packet
lifecycles without touching live simulator objects.

Events are grouped into :class:`Category` buckets so recorders can
subscribe to a subset — a full-length run with only ``SWITCH`` events
enabled stays tiny even when the packet stream would not.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import ClassVar

from ..metrics.counters import SwitchKind
from ..packet import PacketKind

__all__ = [
    "Category",
    "ThreadSwitch",
    "BurstSpan",
    "PacketSend",
    "PacketHop",
    "PacketDeliver",
    "MatchEvent",
    "BarrierEvent",
    "ThreadLife",
    "ServiceEvent",
    "FastForward",
    "CohortEvent",
    "ShardWindow",
]


class Category(enum.Enum):
    """Coarse event families, the unit of subscription filtering."""

    SWITCH = "switch"
    BURST = "burst"
    PACKET = "packet"
    MATCH = "match"
    BARRIER = "barrier"
    THREAD = "thread"
    SERVICE = "service"
    FASTFORWARD = "fastforward"
    COHORT = "cohort"
    #: Window-protocol diagnostics from sharded runs.  Opt-in only: a
    #: ``categories=None`` subscription does **not** receive it (see
    #: :class:`~repro.obs.bus.EventBus`), because these events describe
    #: the partition (K, barrier placement, wall time), not the
    #: simulated machine, and would break the K-invariance of default
    #: recordings.
    SHARD = "shard"


@dataclass(frozen=True, slots=True)
class ThreadSwitch:
    """One context switch, classified as the paper classifies them."""

    category: ClassVar[Category] = Category.SWITCH

    t: int
    pe: int
    kind: SwitchKind
    thread: str = ""


@dataclass(frozen=True, slots=True)
class BurstSpan:
    """A span of unit activity on one PE.

    ``kind`` is one of ``burst`` (running guest code), ``spin`` (a failed
    barrier re-check), ``service`` (EM-4-mode read service on the EXU),
    ``idle`` (unmasked communication gap) or ``dma`` (the IBU's
    by-passing DMA answering a remote read).  ``unit`` separates the EXU
    pipeline from the IBU so the exporters can draw them as distinct
    tracks.
    """

    category: ClassVar[Category] = Category.BURST

    t: int
    pe: int
    end: int
    kind: str
    thread: str = ""
    unit: str = "exu"


@dataclass(frozen=True, slots=True)
class PacketSend:
    """A packet handed to the network at cycle ``t``."""

    category: ClassVar[Category] = Category.PACKET

    t: int
    seq: int
    kind: PacketKind
    src: int
    dst: int
    words: int = 2


@dataclass(frozen=True, slots=True)
class PacketHop:
    """A packet reaching one switch output port (detailed model only)."""

    category: ClassVar[Category] = Category.PACKET

    t: int
    seq: int
    node: int
    bit: int


@dataclass(frozen=True, slots=True)
class PacketDeliver:
    """A packet ejected into its destination PE's switching unit."""

    category: ClassVar[Category] = Category.PACKET

    t: int
    seq: int
    kind: PacketKind
    src: int
    dst: int
    latency: int
    hops: int


@dataclass(frozen=True, slots=True)
class MatchEvent:
    """A two-token direct-matching step in matching memory.

    ``matched`` is False when the operand was parked to wait for its
    mate (a *defer*), True when the second arrival fired the match.
    """

    category: ClassVar[Category] = Category.MATCH

    t: int
    pe: int
    frame_id: int
    slot: int
    matched: bool


@dataclass(frozen=True, slots=True)
class BarrierEvent:
    """Barrier protocol progress: ``arrive``, ``hub``, or ``release``."""

    category: ClassVar[Category] = Category.BARRIER

    t: int
    pe: int
    barrier_id: int
    gen: int
    action: str


@dataclass(frozen=True, slots=True)
class ServiceEvent:
    """One sweep-service occurrence (wall clock, not simulated time).

    Unlike the simulator events, ``t`` is **microseconds since service
    start** — the service observes real execution, not modelled cycles.
    ``kind`` is one of ``request`` (a sweep arrived; ``n`` = jobs),
    ``warm``/``dedup``/``admit`` (per-job admission disposition; ``n`` =
    queue depth after), ``shed`` (backpressure rejected a request; ``n``
    = jobs turned away), ``batch`` (a batch dispatched; ``n`` = batch
    size), ``job`` (one execution finished; ``value`` = wall seconds,
    ``n`` = peak RSS KiB from the cache side channel) or ``drain``
    (graceful shutdown finished; ``n`` = results persisted).
    """

    category: ClassVar[Category] = Category.SERVICE

    t: int
    kind: str
    key: str = ""
    n: int = 0
    value: float = 0.0


@dataclass(frozen=True, slots=True)
class FastForward:
    """A conflict-free window advanced analytically (hybrid fidelity).

    Emitted instead of the per-hop packet events the window would have
    produced, so traces of ``fidelity="hybrid"`` runs show *where* the
    engine skipped detailed simulation.  ``kind`` is one of ``net`` (an
    uncontended packet transit forwarded to its delivery time), ``dma``
    (a by-passing DMA service folded into its request's arrival), or
    ``kick`` (an EXU wake-up dispatched inline without an event).
    ``t``/``end`` bound the skipped window in cycles; ``pe`` is the
    owning processor (the source PE for ``net``); ``seq`` identifies
    the packet for packet-backed windows; ``saved`` counts the discrete
    events the window did *not* fire.
    """

    category: ClassVar[Category] = Category.FASTFORWARD

    t: int
    end: int
    pe: int
    kind: str
    seq: int = -1
    saved: int = 0


@dataclass(frozen=True, slots=True)
class CohortEvent:
    """Cohort-compiler progress on a ``compiled=True`` machine.

    Like :class:`FastForward` these are diagnostic: they exist only on
    the compiled path and are excluded from interpreted-vs-compiled
    comparisons.  ``kind`` is one of ``emc_codegen``/``emc_trace``/
    ``emc_interp`` (an EM-C thread definition settling on a compile
    tier; ``n`` = params or trace ops), ``record`` (a generator shape
    recorded; ``n`` = trace effects), ``record_bail`` (the recorder
    declined a shape; ``n`` = failure count), or ``bailout`` (a
    lockstep-validated member diverged and fell back to its interpreted
    generator; ``n`` = effect position of the first divergence).
    """

    category: ClassVar[Category] = Category.COHORT

    t: int
    pe: int
    kind: str
    name: str = ""
    n: int = 0


@dataclass(frozen=True, slots=True)
class ShardWindow:
    """One conservative window executed by one shard.

    Emitted by the window protocol (:mod:`repro.sim.parallel`) after the
    final merge, one event per (shard, window), in ``(t, end, shard)``
    order.  ``t``/``end`` bound the window in simulated cycles;
    ``barrier_us`` is the *wall-clock* microseconds that shard spent in
    the window's opening barrier (like :class:`ServiceEvent`, real time
    rides along as a diagnostic); ``fired`` counts the events the shard
    fired inside the window (0 = it sat the window out).  SHARD-category
    — subscribe to it explicitly; see :class:`Category`.
    """

    category: ClassVar[Category] = Category.SHARD

    t: int
    end: int
    shard: int
    barrier_us: float = 0.0
    fired: int = 0


@dataclass(frozen=True, slots=True)
class ThreadLife:
    """A thread entering a lifecycle state (``created`` on spawn, then
    the :class:`~repro.core.thread.ThreadState` values)."""

    category: ClassVar[Category] = Category.THREAD

    t: int
    pe: int
    tid: int
    name: str
    state: str
