"""EMC-Y instruction-cost model.

The EXU is a register-based RISC pipeline: integer and single-precision
FP instructions retire in one cycle, FP division and the memory-exchange
instruction are multi-cycle, and packet generation takes one cycle.
Guest programs do not execute a real ISA — they *charge* cycle budgets
computed from these tables, which is exactly the granularity the paper's
analysis works at (run lengths, switch costs, latencies).
"""

from .costs import CostModel, InstructionClass, KERNEL_COSTS, KernelCosts

__all__ = ["CostModel", "InstructionClass", "KernelCosts", "KERNEL_COSTS"]
