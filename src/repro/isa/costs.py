"""Instruction classes, cost accounting, and per-kernel cycle budgets.

:class:`CostModel` turns abstract instruction mixes into cycle counts
using a :class:`~repro.config.TimingModel`.  :class:`KernelCosts` pins
down the cycle budgets of the two application inner loops exactly as the
paper characterises them:

* bitonic sorting's remote-read loop body is **12 instructions = 12
  clocks** (quoted verbatim in §4), and each merged element costs at
  most ~10 instructions;
* the FFT loop body is **hundreds of clocks** per point ("trigonometric
  function computations and a loop to find complex roots").
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..config import TimingModel
from ..errors import ConfigError

__all__ = ["InstructionClass", "CostModel", "KernelCosts", "KERNEL_COSTS"]


class InstructionClass(enum.Enum):
    """The EMC-Y instruction classes the timing model distinguishes."""

    INT = "int"
    FP = "fp"
    FP_DIV = "fp_div"
    MEM_EXCHANGE = "mem_exchange"
    PKT_GEN = "pkt_gen"


class CostModel:
    """Maps instruction mixes to cycles under a :class:`TimingModel`."""

    def __init__(self, timing: TimingModel) -> None:
        timing.validate()
        self.timing = timing
        self._table: dict[InstructionClass, int] = {
            InstructionClass.INT: timing.int_op,
            InstructionClass.FP: timing.fp_op,
            InstructionClass.FP_DIV: timing.fp_div,
            InstructionClass.MEM_EXCHANGE: timing.mem_exchange,
            InstructionClass.PKT_GEN: timing.pkt_gen,
        }

    def cost(self, klass: InstructionClass, count: int = 1) -> int:
        """Cycles to execute ``count`` instructions of ``klass``."""
        if count < 0:
            raise ConfigError(f"instruction count must be >= 0, got {count}")
        return self._table[klass] * count

    def mix(self, **counts: int) -> int:
        """Cycles for a mix, e.g. ``mix(int=10, fp=4, fp_div=1)``.

        Keyword names are the :class:`InstructionClass` values.
        """
        total = 0
        for name, count in counts.items():
            total += self.cost(InstructionClass(name), count)
        return total


@dataclass(frozen=True)
class KernelCosts:
    """Cycle budgets of the application inner loops (per element/point).

    Attributes
    ----------
    sort_read_loop_body:
        One iteration of the sorting read loop — issue one remote read,
        store into the merge buffer, loop control.  12 clocks (paper §4).
    sort_merge_per_element:
        Comparison + move per merged output element, ≤ 10 instructions
        (paper §4 puts it at "not more than 10 instructions excluding
        loop control"); we charge 8 work + 2 loop control.
    sort_local_sort_per_cmp:
        Per comparison/swap of the initial local sort.
    fft_read_loop_overhead:
        Address computation + loop control per point of the FFT read
        loop (two remote reads per point are charged separately as
        packet generation).
    fft_butterfly_per_point:
        The "lot of instructions" after the reads: complex multiply,
        twiddle evaluation via a root-finding loop, adds — hundreds of
        clocks (paper §4/§6: "run-length of FFT is very large with
        hundreds of clocks").
    fft_local_stage_per_point:
        Cost per point of a purely local (no-communication) FFT stage.
    """

    sort_read_loop_body: int = 12
    sort_merge_per_element: int = 10
    sort_local_sort_per_cmp: int = 4
    fft_read_loop_overhead: int = 8
    fft_butterfly_per_point: int = 240
    fft_local_stage_per_point: int = 60

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if not isinstance(value, int) or value <= 0:
                raise ConfigError(f"kernel cost {name!r} must be a positive int, got {value!r}")


#: The calibrated default kernel budget used by all experiments.
KERNEL_COSTS = KernelCosts()
