"""Workload generators for the two applications.

The paper uses "blocked data and workload distribution" over integers
(sorting) and complex points (FFT).  These generators produce inputs
with controlled structure so experiments can probe the data-dependent
behaviours the paper highlights — sorting's early termination and
irregular merge consumption depend on how values interleave between
mate processors.
"""

from __future__ import annotations

import numpy as np

from ..errors import ProgramError

__all__ = [
    "uniform_ints",
    "gaussian_ints",
    "nearly_sorted",
    "reversed_blocks",
    "zipf_ints",
    "white_noise_points",
    "tone_points",
    "chirp_points",
]


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_ints(n: int, seed: int = 0, lo: int = 0, hi: int = 2**31) -> list[int]:
    """Uniform random 31-bit integers — the experiments' default."""
    if n < 1:
        raise ProgramError(f"need at least one element, got {n}")
    return [int(x) for x in _rng(seed).integers(lo, hi, size=n)]


def gaussian_ints(n: int, seed: int = 0, sigma: float = 1e6) -> list[int]:
    """Normally distributed integers: heavy middle, thin tails."""
    if n < 1:
        raise ProgramError(f"need at least one element, got {n}")
    return [int(round(x)) for x in _rng(seed).normal(0.0, sigma, size=n)]


def nearly_sorted(n: int, seed: int = 0, swap_fraction: float = 0.05) -> list[int]:
    """An ascending sequence with a few random transpositions.

    Nearly sorted inputs maximise early termination: most compare-split
    steps need only a handful of mate elements.
    """
    if not (0.0 <= swap_fraction <= 1.0):
        raise ProgramError(f"swap fraction {swap_fraction} outside [0, 1]")
    data = list(range(n))
    rng = _rng(seed)
    for _ in range(int(n * swap_fraction)):
        i, j = rng.integers(0, n, size=2)
        data[i], data[j] = data[j], data[i]
    return data


def reversed_blocks(n: int, n_blocks: int, seed: int = 0) -> list[int]:
    """Descending runs block by block — the adversarial layout for a
    blocked distribution: every PE starts holding the wrong extreme."""
    if n_blocks < 1 or n % n_blocks:
        raise ProgramError(f"{n} elements do not split into {n_blocks} blocks")
    per = n // n_blocks
    out: list[int] = []
    for b in range(n_blocks):
        base = (n_blocks - 1 - b) * per
        out.extend(range(base + per - 1, base - 1, -1))
    return out


def zipf_ints(n: int, seed: int = 0, a: float = 2.0) -> list[int]:
    """Zipf-distributed integers: many duplicates of small values."""
    if a <= 1.0:
        raise ProgramError(f"zipf exponent must be > 1, got {a}")
    return [int(x) for x in _rng(seed).zipf(a, size=n)]


def white_noise_points(n: int, seed: int = 0) -> list[complex]:
    """Complex white noise — the FFT experiments' default input."""
    rng = _rng(seed)
    re = rng.standard_normal(n)
    im = rng.standard_normal(n)
    return [complex(a, b) for a, b in zip(re, im)]


def tone_points(n: int, k: int = 3, amplitude: float = 1.0) -> list[complex]:
    """A pure tone at bin ``k``: its DFT is a single spike — the
    classic FFT correctness probe."""
    if not (0 <= k < n):
        raise ProgramError(f"tone bin {k} outside 0..{n - 1}")
    return [
        amplitude * complex(np.cos(2 * np.pi * k * t / n), np.sin(2 * np.pi * k * t / n))
        for t in range(n)
    ]


def chirp_points(n: int, seed: int = 0) -> list[complex]:
    """A linear chirp plus a little noise: broadband, structured."""
    rng = _rng(seed)
    ts = np.arange(n) / n
    phase = 2 * np.pi * (n / 8) * ts * ts
    noise = 0.01 * (rng.standard_normal(n) + 1j * rng.standard_normal(n))
    return [complex(np.cos(p), np.sin(p)) + w for p, w in zip(phase, noise)]
