"""Multithreaded blocked FFT (paper §3.2).

n complex points are block-distributed over P processors; a
decimation-in-frequency FFT needs communication for exactly the first
log P iterations (the butterfly span exceeds the block size), and those
are what the paper measures.  In iteration *it* a processor's mate is
``pe ^ (P >> (it+1))`` and each of its points needs the mate's point at
the *same local offset* — one remote read for the real part and one for
the imaginary part, per the paper's inner-loop listing.

Unlike sorting, "FFT possesses no data dependence between elements
within an iteration": each of the h threads computes its points as soon
as its reads return, in any order, with no token — the large butterfly
budget (hundreds of clocks of trigonometric work) is the run length that
makes two or three threads enough to hide the entire latency.
"""

from __future__ import annotations

import cmath
from dataclasses import dataclass, field

import numpy as np

from ..api import register_app
from ..config import MachineConfig
from ..core.sync import GlobalBarrier
from ..errors import ProgramError
from ..isa.costs import KERNEL_COSTS, KernelCosts
from ..machine import EMX, MachineReport
from .reference import (
    bit_reverse_permute,
    dif_fft_stages,
    ilog2,
    is_power_of_two,
    partition_bounds,
)

__all__ = ["run_fft", "FFTResult", "FFTParams", "RE_BASE"]

#: Word offset of the stable real parts; imaginary parts follow at
#: ``RE_BASE + npp``.
RE_BASE = 0


@dataclass
class FFTParams:
    """Per-run constants shared by worker threads via guest state."""

    h: int
    n: int
    npp: int
    comm_stages: int
    local_stages: int
    kernel: KernelCosts
    barrier: GlobalBarrier
    copy_cycles_per_word: int = 2


@dataclass
class FFTResult:
    """Outcome of one simulated FFT."""

    report: MachineReport
    n: int
    n_pes: int
    h: int
    max_error: float
    verified: bool
    output: list[complex] = field(repr=False)


def _twiddle(i_global: int, half: int) -> complex:
    k = i_global % half if half else 0
    return cmath.exp(-2j * cmath.pi * k / (2 * half))


def _butterfly(re, im, out_re, out_im, k, my_base, half, v) -> None:
    """Host helper: one communication-stage butterfly for local point k."""
    vr, vi = v
    g = my_base + k
    mine = complex(re[k], im[k])
    theirs = complex(vr, vi)
    if g & half:
        # Upper half of the pair: (lower − upper) · twiddle.
        new = (theirs - mine) * _twiddle(g ^ half, half)
    else:
        new = mine + theirs
    out_re[k] = new.real
    out_im[k] = new.imag


def _publish_slices(mem, npp, lo, hi, out_re, out_im) -> None:
    """Host helper: write my slice of the stable arrays to local memory."""
    mem.write_block(RE_BASE + lo, out_re[lo:hi])
    mem.write_block(RE_BASE + npp + lo, out_im[lo:hi])


def _swap_stage_arrays(st: dict) -> None:
    """Host helper: thread 0 flips the double-buffered stage arrays."""
    st["re"], st["out_re"] = st["out_re"], st["re"]
    st["im"], st["out_im"] = st["out_im"], st["im"]


def _pair_indices(npp, my_base, half, h, t) -> list:
    """Host helper: lower butterfly indices owned by thread t this stage."""
    lowers = [k for k in range(npp) if not ((my_base + k) & half)]
    plo, phi = partition_bounds(len(lowers), h, t)
    return lowers[plo:phi]


def _local_point(re, im, k, g, half) -> None:
    """Host helper: one in-place local-stage butterfly pair."""
    a = complex(re[k], im[k])
    b = complex(re[k + half], im[k + half])
    upper = (a - b) * _twiddle(g, half)
    lower = a + b
    re[k], im[k] = lower.real, lower.imag
    re[k + half], im[k + half] = upper.real, upper.imag


def fft_worker(ctx, t: int):
    """Thread body of worker ``t`` (of h) on this processor."""
    st = ctx.state
    p: FFTParams = st["params"]
    bar = p.barrier
    h, n, npp, kc = p.h, p.n, p.npp, p.kernel
    lo, hi = partition_bounds(npp, h, t)
    pe = ctx.pe
    n_pes = ctx.n_pes
    my_base = pe * npp  # global index of this PE's first point

    # ---------------- communication stages ----------------
    for it in range(p.comm_stages):
        mate = pe ^ (n_pes >> (it + 1))
        half = n >> (it + 1)
        re, im = st["re"], st["im"]
        out_re, out_im = st["out_re"], st["out_im"]
        for k in range(lo, hi):
            # Address computation + loop control for this point.
            yield ctx.compute(kc.fft_read_loop_overhead)
            # Real and imaginary words in one two-token matched read,
            # as the paper's back-to-back remote_read pair.
            v = yield ctx.read_pair(
                ctx.ga(mate, RE_BASE + k), ctx.ga(mate, RE_BASE + npp + k)
            )
            ctx.host(_butterfly, re, im, out_re, out_im, k, my_base, half, v)
            yield ctx.compute(kc.fft_butterfly_per_point)
        yield ctx.barrier_wait(bar)
        # Publish my slice of the new stable arrays (the stage-start
        # captures: thread 0's swap below must not alias the publish).
        if hi > lo:
            ctx.host(_publish_slices, ctx.mem, npp, lo, hi, out_re, out_im)
            yield ctx.compute(p.copy_cycles_per_word * 2 * (hi - lo))
        if t == 0:
            ctx.host(_swap_stage_arrays, st)
        yield ctx.barrier_wait(bar)

    # ---------------- local stages (no communication) ----------------
    for s in range(p.local_stages):
        it = p.comm_stages + s
        half = n >> (it + 1)
        re, im = st["re"], st["im"]
        # Lower indices of the butterfly pairs inside my block, split
        # between threads; each pair is written only by its owner.
        # half < npp here, so each pair's partner is local.
        mine_pairs = ctx.host(_pair_indices, npp, my_base, half, h, t)
        for k in mine_pairs:
            ctx.host(_local_point, re, im, k, my_base + k, half)
            yield ctx.compute(2 * kc.fft_local_stage_per_point)
        yield ctx.barrier_wait(bar)
    # Final publish so the harness can read results from memory.
    if p.local_stages and hi > lo:
        re, im = st["re"], st["im"]
        ctx.host(_publish_slices, ctx.mem, npp, lo, hi, re, im)
        yield ctx.compute(p.copy_cycles_per_word * 2 * (hi - lo))


@register_app("fft")
def run_fft(
    *,
    n_pes: int,
    n: int,
    h: int,
    config: MachineConfig | None = None,
    obs=None,
    kernel: KernelCosts | None = None,
    data: list[complex] | None = None,
    seed: int = 0,
    verify: bool = True,
    comm_stages_only: bool = True,
    tolerance: float = 1e-6,
) -> FFTResult:
    """Transform ``n`` points on ``n_pes`` processors with ``h`` threads each.

    With ``comm_stages_only`` (the paper's measurement mode) only the
    first log P iterations run and the result is checked against a
    reference partial DIF transform; otherwise the full FFT runs and is
    checked against ``numpy.fft.fft``.
    """
    if not is_power_of_two(n_pes) or n_pes < 2:
        raise ProgramError(f"FFT needs a power-of-two processor count >= 2, got {n_pes}")
    if n % n_pes:
        raise ProgramError(f"{n} points do not divide over {n_pes} PEs")
    npp = n // n_pes
    if not is_power_of_two(npp):
        raise ProgramError(f"per-PE point count {npp} must be a power of two")
    if not (1 <= h <= npp):
        raise ProgramError(f"thread count {h} must be in 1..{npp} (the per-PE count)")

    kernel = kernel or KERNEL_COSTS
    kernel.validate()
    machine = EMX((config or MachineConfig()).with_(n_pes=n_pes), obs=obs)
    machine.register(fft_worker)
    barrier = machine.make_barrier(h)

    comm_stages = ilog2(n_pes)
    local_stages = 0 if comm_stages_only else ilog2(n) - comm_stages

    if data is None:
        rng = np.random.default_rng(seed)
        data = [complex(a, b) for a, b in zip(rng.standard_normal(n), rng.standard_normal(n))]
    elif len(data) != n:
        raise ProgramError(f"supplied data has {len(data)} points, expected {n}")

    params = FFTParams(
        h=h,
        n=n,
        npp=npp,
        comm_stages=comm_stages,
        local_stages=local_stages,
        kernel=kernel,
        barrier=barrier,
    )
    for pe in range(n_pes):
        block = data[pe * npp : (pe + 1) * npp]
        proc = machine.pes[pe]
        re = [z.real for z in block]
        im = [z.imag for z in block]
        proc.memory.write_block(RE_BASE, re)
        proc.memory.write_block(RE_BASE + npp, im)
        st = proc.guest_state
        st["params"] = params
        st["re"], st["im"] = re, im
        st["out_re"], st["out_im"] = [0.0] * npp, [0.0] * npp
        for t in range(h):
            machine.spawn(pe, "fft_worker", t)

    report = machine.run()

    output: list[complex] = []
    for pe in range(n_pes):
        re = machine.pes[pe].memory.read_block(RE_BASE, npp)
        im = machine.pes[pe].memory.read_block(RE_BASE + npp, npp)
        output.extend(complex(a, b) for a, b in zip(re, im))

    max_error = 0.0
    verified = True
    if verify:
        if comm_stages_only:
            expected = dif_fft_stages(list(data), comm_stages)
        else:
            expected = dif_fft_stages(list(data), ilog2(n))
        err = max(abs(a - b) for a, b in zip(output, expected))
        if not comm_stages_only:
            # Sanity: the completed DIF result, bit-reversed, is the DFT.
            nat = bit_reverse_permute(output)
            ref = np.fft.fft(np.array(data))
            err = max(err, float(np.max(np.abs(nat - ref))) / max(1.0, float(np.max(np.abs(ref)))))
        max_error = err
        verified = err <= tolerance

    return FFTResult(
        report=report,
        n=n,
        n_pes=n_pes,
        h=h,
        max_error=max_error,
        verified=verified,
        output=output,
    )
