"""Multithreaded bitonic sorting (paper §3.1).

Given P processors and n elements, each processor holds n/P.  After a
local sort, the merge schedule runs log P stages of substeps; in each
(i, j) iteration a processor compare-splits its ascending list with its
mate ``pe ^ 2^j``, keeping the low or high half.

The multithreaded version divides the inner loop into *h* threads, each
responsible for reading and merging n/(hP) elements of the mate's list:

* **Reading** (thread communication parallelism): each thread reads its
  chunk element by element through split-phase remote reads — the
  paper's 12-clock loop body — suspending at every read.
* **Merging** (no thread computation parallelism): merges must happen
  in thread order to keep the output ascending, enforced with an
  :class:`~repro.core.sync.OrderToken`; waiting threads take
  thread-sync switches.
* **Early termination**: a processor only needs n/P output elements, so
  once the merge completes, threads skip their remaining reads — the
  irregularity the paper highlights ("Thread 1 is therefore not
  required to read the fourth element 8 from the mate processor").
* A global barrier ends every iteration, "forcing loops to execute
  synchronously" exactly as the paper instruments it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api import register_app
from ..config import MachineConfig
from ..core.sync import GlobalBarrier, OrderToken
from ..errors import ProgramError
from ..isa.costs import KERNEL_COSTS, KernelCosts
from ..machine import EMX, MachineReport
from .reference import (
    compare_split_direction,
    ilog2,
    is_power_of_two,
    partition_bounds,
    reference_bitonic_schedule,
)

__all__ = ["run_bitonic", "BitonicResult", "BitonicParams", "STABLE_BASE"]

#: Word offset of the stable (mate-readable) sorted list in each PE.
STABLE_BASE = 0


@dataclass
class BitonicParams:
    """Per-run constants shared by every worker thread via guest state."""

    h: int
    npp: int
    kernel: KernelCosts
    barrier: GlobalBarrier
    schedule: list[tuple[int, int]]
    read_issue_cycles: int
    copy_cycles_per_word: int = 2
    #: Use the EMC-Y's block-read send instruction: one request per
    #: chunk instead of one per element (extension experiment A5 — the
    #: paper's per-element loop is the default).
    block_reads: bool = False


@dataclass
class BitonicResult:
    """Outcome of one simulated sort."""

    report: MachineReport
    n: int
    n_pes: int
    h: int
    sorted_ok: bool
    output: list[int] = field(repr=False)
    reads_issued: int = 0
    reads_possible: int = 0

    @property
    def reads_saved_fraction(self) -> float:
        """Fraction of mate reads skipped by early termination."""
        if self.reads_possible == 0:
            return 0.0
        return 1.0 - self.reads_issued / self.reads_possible


def _merge_chunk(mi: dict, L: list, buf: list, keep_low: bool, npp: int, last: bool) -> int:
    """Merge one thread's chunk into the shared iteration state.

    Returns the number of output elements produced (the merge's cycle
    charge).  ``mi['out']`` accumulates the kept half: ascending when
    keeping low, descending when keeping high.
    """
    out = mi["out"]
    produced = 0
    li = mi["li"]
    if keep_low:
        for v in buf:
            if len(out) >= npp:
                break
            while li < npp and L[li] <= v and len(out) < npp:
                out.append(L[li])
                li += 1
                produced += 1
            if len(out) >= npp:
                break
            out.append(v)
            produced += 1
        if last:
            while len(out) < npp and li < npp:
                out.append(L[li])
                li += 1
                produced += 1
    else:
        for v in buf:
            if len(out) >= npp:
                break
            while li >= 0 and L[li] >= v and len(out) < npp:
                out.append(L[li])
                li -= 1
                produced += 1
            if len(out) >= npp:
                break
            out.append(v)
            produced += 1
        if last:
            while len(out) < npp and li >= 0:
                out.append(L[li])
                li -= 1
                produced += 1
    mi["li"] = li
    if len(out) >= npp:
        mi["done"] = True
    return produced


def _local_sort(st: dict, mem) -> None:
    """Host helper: sort the local list and publish it as the stable copy."""
    L = st["L"]
    L.sort()
    mem.write_block(STABLE_BASE, L)


def _orient(block, keep_low: bool) -> list:
    """Host helper: orient a block-read chunk for the merge direction."""
    return list(block) if keep_low else list(block)[::-1]


def _final_list(mi: dict, keep_low: bool) -> list:
    """Host helper: the iteration's kept half in ascending order."""
    return mi["out"] if keep_low else mi["out"][::-1]


def _publish_slice(mem, base: int, values: list, lo: int, hi: int) -> None:
    """Host helper: write my slice of the new stable list to local memory."""
    mem.write_block(base + lo, values[lo:hi])


def _advance_iteration(st: dict, pe: int, it_idx: int, final: list) -> None:
    """Host helper: thread 0 installs the next iteration's shared state."""
    p: BitonicParams = st["params"]
    st["L"] = final
    if it_idx + 1 < len(p.schedule):
        _, kl_next = compare_split_direction(pe, *p.schedule[it_idx + 1])
        st["mi"] = _fresh_merge_state(kl_next, p.npp)
    st["token"].reset()


def bitonic_worker(ctx, t: int):
    """Thread body of worker ``t`` (of h) on this processor."""
    st = ctx.state
    p: BitonicParams = st["params"]
    bar = p.barrier
    token: OrderToken = st["token"]
    h, npp, kc = p.h, p.npp, p.kernel
    # The 12-clock loop body includes the read instruction itself; the
    # EXU charges packet generation separately, so the inline compute is
    # the remainder.
    read_body = max(1, kc.sort_read_loop_body - p.read_issue_cycles)

    # ---- Local sort phase (thread 0 sorts; the rest wait). ----
    if t == 0:
        ctx.host(_local_sort, st, ctx.mem)
        yield ctx.compute(npp * max(1, ilog2(npp)) * kc.sort_local_sort_per_cmp)
    yield ctx.barrier_wait(bar)

    for it_idx, (i, j) in enumerate(p.schedule):
        mate, keep_low = compare_split_direction(ctx.pe, i, j)
        mi = st["mi"]
        L = st["L"]

        # -------- Phase A: split-phase reads of my chunk --------
        if keep_low:
            lo, hi = partition_bounds(npp, h, t)
            indices = range(lo, hi)
        else:
            lo, hi = partition_bounds(npp, h, h - 1 - t)
            indices = range(hi - 1, lo - 1, -1)
        buf = []
        if p.block_reads:
            # One block-read request covers the whole chunk; early
            # termination can only skip whole chunks.
            if hi > lo and not mi["done"]:
                yield ctx.compute(read_body)
                block = yield ctx.read_block(ctx.ga(mate, STABLE_BASE + lo), hi - lo)
                buf = ctx.host(_orient, block, keep_low)
        else:
            for idx in indices:
                if mi["done"]:
                    break  # early termination: output already complete
                yield ctx.compute(read_body)
                v = yield ctx.read(ctx.ga(mate, STABLE_BASE + idx))
                buf.append(v)

        # -------- Phase B: token-ordered merge --------
        yield ctx.token_wait(token, t)
        produced = ctx.host(_merge_chunk, mi, L, buf, keep_low, npp, t == h - 1)
        if produced:
            yield ctx.compute(produced * kc.sort_merge_per_element)
        yield ctx.token_advance(token)

        # -------- Phase C: end-of-merge barrier --------
        yield ctx.barrier_wait(bar)

        # -------- Phase D: publish the new stable list --------
        final = ctx.host(_final_list, mi, keep_low)
        lo, hi = partition_bounds(npp, h, t)
        if hi > lo:
            ctx.host(_publish_slice, ctx.mem, STABLE_BASE, final, lo, hi)
            yield ctx.compute(p.copy_cycles_per_word * (hi - lo))
        if t == 0:
            ctx.host(_advance_iteration, st, ctx.pe, it_idx, final)
        yield ctx.barrier_wait(bar)


def _fresh_merge_state(keep_low: bool, npp: int) -> dict:
    return {"out": [], "li": 0 if keep_low else npp - 1, "done": False}


@register_app("sort", "bitonic")
def run_bitonic(
    *,
    n_pes: int,
    n: int,
    h: int,
    config: MachineConfig | None = None,
    obs=None,
    kernel: KernelCosts | None = None,
    data: list[int] | None = None,
    seed: int = 0,
    verify: bool = True,
    block_reads: bool = False,
) -> BitonicResult:
    """Sort ``n`` integers on ``n_pes`` processors with ``h`` threads each.

    Constraints (all inherited from the paper's setup): ``n_pes`` and
    ``n / n_pes`` are powers of two and ``h`` divides ``n / n_pes``.
    """
    if not is_power_of_two(n_pes):
        raise ProgramError(f"bitonic sort needs a power-of-two processor count, got {n_pes}")
    if n % n_pes:
        raise ProgramError(f"{n} elements do not divide over {n_pes} PEs")
    npp = n // n_pes
    if not is_power_of_two(npp):
        raise ProgramError(f"per-PE element count {npp} must be a power of two")
    if not (1 <= h <= npp):
        raise ProgramError(f"thread count {h} must be in 1..{npp} (the per-PE count)")

    kernel = kernel or KERNEL_COSTS
    kernel.validate()
    machine = EMX((config or MachineConfig()).with_(n_pes=n_pes), obs=obs)
    machine.register(bitonic_worker)
    barrier = machine.make_barrier(h)
    schedule = reference_bitonic_schedule(n_pes)

    if data is None:
        rng = np.random.default_rng(seed)
        data = [int(x) for x in rng.integers(0, 2**31, size=n)]
    elif len(data) != n:
        raise ProgramError(f"supplied data has {len(data)} elements, expected {n}")

    params = BitonicParams(
        h=h,
        npp=npp,
        kernel=kernel,
        barrier=barrier,
        schedule=schedule,
        read_issue_cycles=machine.config.timing.pkt_gen,
        block_reads=block_reads,
    )
    for pe in range(n_pes):
        block = list(data[pe * npp : (pe + 1) * npp])
        proc = machine.pes[pe]
        proc.memory.write_block(STABLE_BASE, block)
        st = proc.guest_state
        st["params"] = params
        st["token"] = OrderToken()
        st["L"] = block
        # First iteration of the schedule decides the first cursor shape.
        if schedule:
            _, keep_low0 = compare_split_direction(pe, *schedule[0])
        else:
            keep_low0 = True
        st["mi"] = _fresh_merge_state(keep_low0, npp)
        for t in range(h):
            machine.spawn(pe, "bitonic_worker", t)

    report = machine.run()

    output: list[int] = []
    for pe in range(n_pes):
        output.extend(int(v) for v in machine.pes[pe].memory.read_block(STABLE_BASE, npp))
    sorted_ok = (not verify) or output == sorted(int(x) for x in data)

    reads = sum(c.reads_issued + c.block_words_requested for c in report.counters)
    return BitonicResult(
        report=report,
        n=n,
        n_pes=n_pes,
        h=h,
        sorted_ok=sorted_ok,
        output=output,
        reads_issued=reads,
        reads_possible=len(schedule) * n,
    )
