"""Odd-even transposition sort: the baseline distributed sorter.

The natural comparison point for bitonic sorting (extension experiment
A6): P rounds of neighbour compare-splits instead of Batcher's
log P (log P + 1)/2 pair exchanges.  Same thread structure as the
multithreaded bitonic implementation — h threads per processor read the
neighbour's chunk through split-phase reads, merge in token order, and
synchronise with the iteration barrier — so any performance difference
is purely algorithmic (O(P) rounds vs O(log² P), all-neighbour traffic
vs hypercube strides).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api import register_app
from ..config import MachineConfig
from ..core.sync import GlobalBarrier, OrderToken
from ..errors import ProgramError
from ..isa.costs import KERNEL_COSTS, KernelCosts
from ..machine import EMX, MachineReport
from .bitonic import STABLE_BASE, _fresh_merge_state, _merge_chunk
from .reference import ilog2, is_power_of_two, partition_bounds

__all__ = ["run_transpose_sort", "TransposeResult", "TransposeParams"]


@dataclass
class TransposeParams:
    """Per-run constants shared by worker threads via guest state."""

    h: int
    npp: int
    rounds: int
    kernel: KernelCosts
    barrier: GlobalBarrier
    read_issue_cycles: int
    copy_cycles_per_word: int = 2


@dataclass
class TransposeResult:
    """Outcome of one transposition sort."""

    report: MachineReport
    n: int
    n_pes: int
    h: int
    sorted_ok: bool
    output: list[int] = field(repr=False)


def _partner(pe: int, rnd: int, n_pes: int) -> int | None:
    """Neighbour of ``pe`` in round ``rnd`` (odd-even alternation)."""
    if (pe + rnd) % 2 == 0:
        mate = pe + 1
    else:
        mate = pe - 1
    return mate if 0 <= mate < n_pes else None


def transpose_worker(ctx, t: int):
    """Thread body of worker ``t`` (of h) on this processor."""
    st = ctx.state
    p: TransposeParams = st["params"]
    bar = p.barrier
    token: OrderToken = st["token"]
    h, npp, kc = p.h, p.npp, p.kernel
    read_body = max(1, kc.sort_read_loop_body - p.read_issue_cycles)

    # ---- Local sort phase (thread 0 sorts; the rest wait). ----
    if t == 0:
        L = st["L"]
        L.sort()
        ctx.mem.write_block(STABLE_BASE, L)
        yield ctx.compute(npp * max(1, ilog2(npp)) * kc.sort_local_sort_per_cmp)
    yield ctx.barrier_wait(bar)

    for rnd in range(p.rounds):
        mate = _partner(ctx.pe, rnd, ctx.n_pes)
        if mate is None:
            # Edge processor sits this round out but keeps the barrier
            # schedule (two rendezvous per round, like active PEs) and
            # prepares its merge cursor for the next round.
            yield ctx.barrier_wait(bar)
            if t == 0:
                nxt = _partner(ctx.pe, rnd + 1, ctx.n_pes)
                st["mi"] = _fresh_merge_state(nxt is not None and ctx.pe < nxt, npp)
                token.reset()
            yield ctx.barrier_wait(bar)
            continue
        keep_low = ctx.pe < mate
        mi = st["mi"]
        L = st["L"]

        # -------- Phase A: split-phase reads of my chunk --------
        if keep_low:
            lo, hi = partition_bounds(npp, h, t)
            indices = range(lo, hi)
        else:
            lo, hi = partition_bounds(npp, h, h - 1 - t)
            indices = range(hi - 1, lo - 1, -1)
        buf = []
        for idx in indices:
            if mi["done"]:
                break
            yield ctx.compute(read_body)
            v = yield ctx.read(ctx.ga(mate, STABLE_BASE + idx))
            buf.append(v)

        # -------- Phase B: token-ordered merge --------
        yield ctx.token_wait(token, t)
        produced = _merge_chunk(mi, L, buf, keep_low, npp, last=(t == h - 1))
        if produced:
            yield ctx.compute(produced * kc.sort_merge_per_element)
        yield ctx.token_advance(token)

        # -------- Phase C: end-of-merge barrier --------
        yield ctx.barrier_wait(bar)

        # -------- Phase D: publish the new stable list --------
        final = mi["out"] if keep_low else mi["out"][::-1]
        lo2, hi2 = partition_bounds(npp, h, t)
        if hi2 > lo2:
            ctx.mem.write_block(STABLE_BASE + lo2, final[lo2:hi2])
            yield ctx.compute(p.copy_cycles_per_word * (hi2 - lo2))
        if t == 0:
            st["L"] = final
            nxt = _partner(ctx.pe, rnd + 1, ctx.n_pes)
            st["mi"] = _fresh_merge_state(nxt is not None and ctx.pe < nxt, npp)
            token.reset()
        yield ctx.barrier_wait(bar)


@register_app("transpose")
def run_transpose_sort(
    *,
    n_pes: int,
    n: int,
    h: int,
    config: MachineConfig | None = None,
    obs=None,
    kernel: KernelCosts | None = None,
    data: list[int] | None = None,
    seed: int = 0,
    verify: bool = True,
) -> TransposeResult:
    """Sort ``n`` integers with odd-even transposition over ``n_pes`` PEs.

    Unlike bitonic sorting this works for any processor count ≥ 2 (no
    power-of-two requirement); ``n / n_pes`` must still divide evenly
    and be a power of two, and ``1 ≤ h ≤ n/P`` as usual.
    """
    if n_pes < 2:
        raise ProgramError(f"transposition sort needs >= 2 processors, got {n_pes}")
    if n % n_pes:
        raise ProgramError(f"{n} elements do not divide over {n_pes} PEs")
    npp = n // n_pes
    if not is_power_of_two(npp):
        raise ProgramError(f"per-PE element count {npp} must be a power of two")
    if not (1 <= h <= npp):
        raise ProgramError(f"thread count {h} must be in 1..{npp}")

    kernel = kernel or KERNEL_COSTS
    kernel.validate()
    machine = EMX((config or MachineConfig()).with_(n_pes=n_pes), obs=obs)
    machine.register(transpose_worker)
    barrier = machine.make_barrier(h)
    rounds = n_pes  # odd-even transposition needs P rounds

    if data is None:
        rng = np.random.default_rng(seed)
        data = [int(x) for x in rng.integers(0, 2**31, size=n)]
    elif len(data) != n:
        raise ProgramError(f"supplied data has {len(data)} elements, expected {n}")

    params = TransposeParams(
        h=h,
        npp=npp,
        rounds=rounds,
        kernel=kernel,
        barrier=barrier,
        read_issue_cycles=machine.config.timing.pkt_gen,
    )
    for pe in range(n_pes):
        block = list(data[pe * npp : (pe + 1) * npp])
        proc = machine.pes[pe]
        proc.memory.write_block(STABLE_BASE, block)
        st = proc.guest_state
        st["params"] = params
        st["token"] = OrderToken()
        st["L"] = block
        first = _partner(pe, 0, n_pes)
        st["mi"] = _fresh_merge_state(first is not None and pe < first, npp)
        for t in range(h):
            machine.spawn(pe, "transpose_worker", t)

    report = machine.run()

    output: list[int] = []
    for pe in range(n_pes):
        output.extend(int(v) for v in machine.pes[pe].memory.read_block(STABLE_BASE, npp))
    sorted_ok = (not verify) or output == sorted(int(x) for x in data)
    return TransposeResult(
        report=report, n=n, n_pes=n_pes, h=h, sorted_ok=sorted_ok, output=output
    )
