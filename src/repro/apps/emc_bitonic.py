"""Multithreaded bitonic sorting written in EM-C.

The same §3.1 algorithm as :mod:`repro.apps.bitonic`, but expressed in
the thread-library language the paper's programs were actually written
in — every run length is charged from the source text by the EM-C
compiler rather than from hand-written :class:`Compute` budgets.

Per-processor memory layout (word offsets)::

    STABLE  [0,        npp)        the mate-readable sorted list
    OUT     [npp,      2·npp)      the merge output being built
    BUF     [2·npp,    3·npp)      per-thread read buffers (chunk slices)
    LI      3·npp                  merge cursor into STABLE
    COUNT   3·npp + 1              merged output count
    DONE    3·npp + 2              early-termination flag

Shared state lives in memory words, exactly as a C program on the
hardware would keep it; the merge-order token and the iteration barrier
come from the host environment.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..api import register_app
from ..config import MachineConfig
from ..core.sync import OrderToken
from ..errors import ProgramError
from ..machine import EMX, MachineReport
from ..emc import load_emc
from .reference import ilog2, is_power_of_two

__all__ = ["run_emc_bitonic", "EmcBitonicResult", "EMC_BITONIC_SOURCE"]

EMC_BITONIC_SOURCE = """
// Multithreaded bitonic sorting, one worker thread of h per processor.
// Parameters: t = thread index, h = threads/PE, npp = elements/PE,
// logp = log2(P), tok = this PE's merge-order token (a host object
// passed like a pointer argument).  Global from env: bar (barrier).
thread bitonic_worker(t, h, npp, logp, tok) {
    var stable = 0;
    var out = npp;
    var buf = 2 * npp;
    var li_addr = 3 * npp;
    var count_addr = 3 * npp + 1;
    var done_addr = 3 * npp + 2;

    // ---- local sort: thread 0 runs insertion sort on the block ----
    if (t == 0) {
        for (var i = 1; i < npp; i = i + 1) {
            var key = mem[stable + i];
            var j = i - 1;
            while (j >= 0 && mem[stable + j] > key) {
                mem[stable + j + 1] = mem[stable + j];
                j = j - 1;
            }
            mem[stable + j + 1] = key;
        }
    }
    barrier_wait(bar);

    for (var st = 0; st < logp; st = st + 1) {
        for (var sub = st; sub >= 0; sub = sub - 1) {
            // mate = pe XOR 2^sub; direction from bit st+1 of pe.
            var bit = 1;
            for (var s = 0; s < sub; s = s + 1) { bit = bit * 2; }
            var stagebit = 1;
            for (var s8 = 0; s8 <= st; s8 = s8 + 1) { stagebit = stagebit * 2; }
            var mate = pe() + bit;
            if ((pe() / bit) % 2 == 1) { mate = pe() - bit; }
            var asc = (pe() / stagebit) % 2 == 0;
            var keep_low = 0;
            if (pe() < mate) { keep_low = asc; } else { keep_low = !asc; }

            // chunk bounds (balanced partition; reversed for keep-high)
            var chunk = t;
            if (!keep_low) { chunk = h - 1 - t; }
            var lo = chunk * npp / h;
            var hi = (chunk + 1) * npp / h;

            // ---- phase A: split-phase reads, element by element ----
            var got = 0;
            for (var k = 0; k < hi - lo; k = k + 1) {
                if (mem[done_addr]) { break; }
                var idx = lo + k;                  // ascending chunk
                if (!keep_low) { idx = hi - 1 - k; } // descending chunk
                mem[buf + lo + got] = rread(mate, stable + idx);
                got = got + 1;
            }

            // ---- phase B: token-ordered merge into OUT ----
            token_wait(tok, t);
            var dir = 1;
            if (!keep_low) { dir = 0 - 1; }
            var li = mem[li_addr];
            var count = mem[count_addr];
            for (var b = 0; b < got; b = b + 1) {
                if (count >= npp) { break; }
                var v = mem[buf + lo + b];
                while (count < npp && li >= 0 && li < npp
                       && mem[stable + li] * dir <= v * dir) {
                    mem[out + count] = mem[stable + li];
                    li = li + dir;
                    count = count + 1;
                }
                if (count >= npp) { break; }
                mem[out + count] = v;
                count = count + 1;
            }
            if (t == h - 1) {
                while (count < npp && li >= 0 && li < npp) {
                    mem[out + count] = mem[stable + li];
                    li = li + dir;
                    count = count + 1;
                }
            }
            mem[li_addr] = li;
            mem[count_addr] = count;
            if (count >= npp) { mem[done_addr] = 1; }
            token_advance(tok);

            // ---- phase C: end-of-merge barrier ----
            barrier_wait(bar);

            // ---- phase D: publish OUT -> STABLE (this thread's slice)
            var plo = t * npp / h;
            var phi = (t + 1) * npp / h;
            for (var i2 = plo; i2 < phi; i2 = i2 + 1) {
                if (keep_low) { mem[stable + i2] = mem[out + i2]; }
                else { mem[stable + i2] = mem[out + npp - 1 - i2]; }
            }
            barrier_wait(bar);
            // reset shared merge state for the next iteration
            if (t == 0) {
                // direction of the NEXT (st, sub) decides the cursor;
                // recompute cheaply: next sub is sub-1, or next stage.
                var nst = st;
                var nsub = sub - 1;
                if (nsub < 0) { nst = st + 1; nsub = nst; }
                var nbit = 1;
                for (var s2 = 0; s2 < nsub; s2 = s2 + 1) { nbit = nbit * 2; }
                var nstagebit = 1;
                for (var s3 = 0; s3 <= nst; s3 = s3 + 1) { nstagebit = nstagebit * 2; }
                var nmate = pe() + nbit;
                if ((pe() / nbit) % 2 == 1) { nmate = pe() - nbit; }
                var nasc = (pe() / nstagebit) % 2 == 0;
                var nlow = 0;
                if (pe() < nmate) { nlow = nasc; } else { nlow = !nasc; }
                mem[li_addr] = 0;
                if (!nlow) { mem[li_addr] = npp - 1; }
                mem[count_addr] = 0;
                mem[done_addr] = 0;
                token_reset(tok);
            }
            barrier_wait(bar);
        }
    }
}
"""


@dataclass
class EmcBitonicResult:
    """Outcome of the EM-C sort."""

    report: MachineReport
    n: int
    n_pes: int
    h: int
    sorted_ok: bool
    output: list[int] = field(repr=False)


@register_app("emc-sort", "emc-bitonic")
def run_emc_bitonic(
    *,
    n_pes: int,
    n: int,
    h: int,
    config: MachineConfig | None = None,
    obs=None,
    data: list[int] | None = None,
    seed: int = 0,
    verify: bool = True,
) -> EmcBitonicResult:
    """Sort ``n`` integers with the EM-C implementation.

    Same constraints as :func:`repro.apps.run_bitonic`.  The insertion
    local sort makes this O(npp²) per block — keep per-PE sizes small;
    this exists to demonstrate the full paper workload running from
    EM-C source, not to race the native implementation.
    """
    if not is_power_of_two(n_pes):
        raise ProgramError(f"bitonic sort needs a power-of-two processor count, got {n_pes}")
    if n % n_pes:
        raise ProgramError(f"{n} elements do not divide over {n_pes} PEs")
    npp = n // n_pes
    if not is_power_of_two(npp):
        raise ProgramError(f"per-PE element count {npp} must be a power of two")
    if not (1 <= h <= npp):
        raise ProgramError(f"thread count {h} must be in 1..{npp}")

    machine = EMX((config or MachineConfig()).with_(n_pes=n_pes), obs=obs)
    barrier = machine.make_barrier(h)
    tokens = [OrderToken() for _ in range(n_pes)]

    if data is None:
        rng = np.random.default_rng(seed)
        data = [int(x) for x in rng.integers(0, 2**31, size=n)]
    elif len(data) != n:
        raise ProgramError(f"supplied data has {len(data)} elements, expected {n}")

    log_p = ilog2(n_pes)
    load_emc(machine, EMC_BITONIC_SOURCE, env={"bar": barrier})
    for pe in range(n_pes):
        proc = machine.pes[pe]
        proc.memory.write_block(0, list(data[pe * npp : (pe + 1) * npp]))
        # Seed the merge cursor for the first (st=0, sub=0) iteration:
        # keep-high processors merge from the top of their list.
        mate0 = pe ^ 1
        asc0 = ((pe >> 1) & 1) == 0
        keep_low0 = (pe < mate0) == asc0
        proc.memory.write(3 * npp, 0 if keep_low0 else npp - 1)
        for t in range(h):
            machine.spawn(pe, "bitonic_worker", t, h, npp, log_p, tokens[pe])

    report = machine.run()

    output: list[int] = []
    for pe in range(n_pes):
        output.extend(int(v) for v in machine.pes[pe].memory.read_block(0, npp))
    sorted_ok = (not verify) or output == sorted(int(x) for x in data)
    return EmcBitonicResult(
        report=report, n=n, n_pes=n_pes, h=h, sorted_ok=sorted_ok, output=output
    )
