"""The paper's workloads, written against the thread library.

* :mod:`~repro.apps.bitonic` — multithreaded bitonic sorting (§3.1):
  element-by-element split-phase reads with a 12-cycle loop body,
  token-ordered merges (thread synchronisation), early termination
  ("not all the elements residing in the mate processor need to be
  read"), and an iteration barrier.
* :mod:`~repro.apps.fft` — multithreaded blocked FFT (§3.2): two remote
  reads per point, a hundreds-of-cycles butterfly, no thread
  synchronisation, an iteration barrier.
* :mod:`~repro.apps.reference` — pure-Python references used to verify
  the simulated results (sortedness, DIF-FFT stage equivalence).
"""

from . import datagen
from .bitonic import BitonicResult, run_bitonic
from .fft import FFTResult, run_fft
from .reference import bit_reverse_permute, dif_fft_stages, reference_bitonic_schedule

__all__ = [
    "run_bitonic",
    "BitonicResult",
    "run_fft",
    "FFTResult",
    "dif_fft_stages",
    "bit_reverse_permute",
    "reference_bitonic_schedule",
    "datagen",
]

from .transpose import TransposeResult, run_transpose_sort  # noqa: E402

__all__ += ["run_transpose_sort", "TransposeResult"]

from .emc_bitonic import EmcBitonicResult, run_emc_bitonic  # noqa: E402

__all__ += ["run_emc_bitonic", "EmcBitonicResult"]
