"""Pure-Python references for verifying the simulated workloads.

These run on the host, outside the simulator, and define *what the
answer should be*: the bitonic compare-split schedule, and the
decimation-in-frequency FFT whose first log P stages are exactly the
communication stages the paper measures.
"""

from __future__ import annotations

import cmath

from ..errors import ProgramError

__all__ = [
    "is_power_of_two",
    "ilog2",
    "partition_bounds",
    "reference_bitonic_schedule",
    "dif_fft_stages",
    "bit_reverse_permute",
]


def partition_bounds(total: int, parts: int, index: int) -> tuple[int, int]:
    """Balanced contiguous partition: half-open bounds of chunk ``index``.

    Splits ``total`` items into ``parts`` chunks whose sizes differ by at
    most one, so any thread count 1..16 works against any per-PE element
    count, exactly as the paper sweeps h continuously.
    """
    if parts < 1 or not (0 <= index < parts):
        raise ProgramError(f"partition chunk {index} of {parts}")
    return index * total // parts, (index + 1) * total // parts


def is_power_of_two(x: int) -> bool:
    """True for 1, 2, 4, 8, …"""
    return x >= 1 and (x & (x - 1)) == 0


def ilog2(x: int) -> int:
    """log₂ of a power of two (raises otherwise)."""
    if not is_power_of_two(x):
        raise ProgramError(f"{x} is not a power of two")
    return x.bit_length() - 1


def reference_bitonic_schedule(n_pes: int) -> list[tuple[int, int]]:
    """The (stage i, substep j) pairs of hypercube bitonic sort.

    For P processors there are log P stages; stage *i* runs substeps
    j = i, i−1, …, 0 — the paper's inner j loop.  Total
    log P (log P + 1) / 2 merge iterations.
    """
    log_p = ilog2(n_pes)
    return [(i, j) for i in range(log_p) for j in range(i, -1, -1)]


def compare_split_direction(pe: int, i: int, j: int) -> tuple[int, bool]:
    """(mate, keep_low) for processor ``pe`` at schedule point (i, j).

    Every processor keeps its list ascending; the bitonic order is
    realised by which half of the merged pair each keeps.  ``keep_low``
    is true when this PE keeps the smaller half.
    """
    mate = pe ^ (1 << j)
    ascending = ((pe >> (i + 1)) & 1) == 0
    return mate, (pe < mate) == ascending


def dif_fft_stages(x: list[complex], stages: int) -> list[complex]:
    """Apply the first ``stages`` decimation-in-frequency FFT stages.

    Stage *s* (0-based) pairs indices ``i`` and ``i + half`` with
    ``half = n >> (s+1)``::

        x'[i]        = x[i] + x[i+half]
        x'[i + half] = (x[i] − x[i+half]) · exp(−2πj·(i mod half)/(2·half))

    Applying all log₂ n stages yields the DFT in bit-reversed order
    (undo with :func:`bit_reverse_permute`).  The paper's measured FFT
    runs only the first log₂ P stages — the ones that communicate.
    """
    n = len(x)
    log_n = ilog2(n)
    if not (0 <= stages <= log_n):
        raise ProgramError(f"{stages} stages for an FFT of {n} points")
    x = list(x)
    for s in range(stages):
        half = n >> (s + 1)
        for i in range(n):
            if i & half:
                continue
            a, b = x[i], x[i + half]
            k = i % half if half else 0
            w = cmath.exp(-2j * cmath.pi * k / (2 * half))
            x[i] = a + b
            x[i + half] = (a - b) * w
    return x


def bit_reverse_permute(x: list[complex]) -> list[complex]:
    """Reorder a bit-reversed sequence into natural order."""
    n = len(x)
    bits = ilog2(n)
    out = [0j] * n
    for i, v in enumerate(x):
        r = int(f"{i:0{bits}b}"[::-1], 2) if bits else 0
        out[r] = v
    return out
