"""Execution engine: parallel, cached, resumable experiment runs.

Every figure of the paper is a sweep over independent simulations, so
regenerating them is a scheduling problem, not a sequencing one.  This
package supplies the three pieces an experiment (or an inference stack)
needs to exploit that:

* :mod:`~repro.runner.jobs` — content-hashable :class:`JobSpec` values
  and sweep-expansion helpers (the dedup layer),
* :mod:`~repro.runner.cache` — an atomic, version-partitioned on-disk
  result store (the memoisation layer),
* :mod:`~repro.runner.pool` — a process-pool scheduler with per-job
  timeouts and crash retry (the batching layer),

glued together by :mod:`~repro.runner.sweep`, which the experiments
package, the CLI (``python -m repro sweep``), and the benchmark harness
all call.  A warm cache makes re-exports near-instant; a cold one
scales with core count.
"""

from .cache import ENV_CACHE_DIR, CacheStats, ResultCache, default_cache_root
from .jobs import (
    FIGURES,
    SCHEMA_VERSION,
    JobSpec,
    dedupe,
    expand_figures,
    expand_sweep,
    machine_fingerprint,
    spec_from_dict,
    spec_to_dict,
)
from .pool import PoolStatus, run_jobs
from .sweep import (
    RunnerOptions,
    RunStats,
    clear_memo,
    configure,
    get_options,
    memo_size,
    reset_options,
    reset_stats,
    run_job,
    run_specs,
    stats,
    sweep_figures,
    sweep_threads,
    using,
)
from .worker import (
    BatchOutcome,
    JobTimeout,
    execute_batch,
    execute_job,
    run_batch_worker,
    run_job_worker,
    trace_artifact_path,
)

__all__ = [
    "SCHEMA_VERSION",
    "FIGURES",
    "JobSpec",
    "machine_fingerprint",
    "dedupe",
    "spec_to_dict",
    "spec_from_dict",
    "expand_sweep",
    "expand_figures",
    "ENV_CACHE_DIR",
    "CacheStats",
    "ResultCache",
    "default_cache_root",
    "PoolStatus",
    "run_jobs",
    "JobTimeout",
    "execute_job",
    "run_job_worker",
    "BatchOutcome",
    "execute_batch",
    "run_batch_worker",
    "trace_artifact_path",
    "RunnerOptions",
    "RunStats",
    "configure",
    "get_options",
    "reset_options",
    "using",
    "stats",
    "reset_stats",
    "clear_memo",
    "memo_size",
    "run_job",
    "run_specs",
    "sweep_threads",
    "sweep_figures",
]
