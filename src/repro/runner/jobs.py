"""Content-addressed job specifications for the execution engine.

Every simulation a figure needs is described by a :class:`JobSpec` — a
frozen, hashable value object naming the workload (app, machine size,
per-PE elements, thread count) and everything that could change the
answer (machine policy switches, the RNG seed, and a fingerprint of the
full :class:`~repro.config.MachineConfig` including its timing model).

``JobSpec.key()`` is the content hash the on-disk cache files are named
after.  Two properties make it safe:

* **Completeness** — the hash covers the schema version, every workload
  parameter, and the machine fingerprint, so a change to any timing
  cost or policy default silently moves every job to a fresh key
  instead of serving stale numbers.
* **Stability** — the hash is computed from a canonical JSON encoding
  (sorted keys, no whitespace variance), so the same spec hashes the
  same across processes and Python versions.

The expansion helpers turn a figure's sweep (or all figures at once)
into a **deduplicated** job list: Fig. 7 reuses Fig. 6's runs and
Figs. 8/9 share one sweep, exactly mirroring the per-process memo the
experiments package has always relied on.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import InitVar, asdict, dataclass
from typing import Iterable, Sequence

from ..api import ExecutionPlan
from ..config import MachineConfig
from ..errors import ConfigError, PlanError

__all__ = [
    "SCHEMA_VERSION",
    "JobSpec",
    "machine_fingerprint",
    "dedupe",
    "spec_to_dict",
    "spec_from_dict",
    "expand_sweep",
    "expand_figures",
    "FIGURES",
]

#: Bump when the meaning of a cached result changes (new RunRecord
#: fields, a recalibrated timing model, a simulator fix).  Every cached
#: entry under the old version becomes unreachable — version-based
#: invalidation instead of trusting mtimes.
SCHEMA_VERSION = 1

#: The figures the engine knows how to expand.  fig7 reuses fig6's runs
#: and fig9 reuses fig8's, so their job sets are identical pairwise.
FIGURES = ("fig6", "fig7", "fig8", "fig9")


def machine_fingerprint(config: MachineConfig) -> str:
    """A short stable digest of every field of a machine config.

    Covers the nested :class:`~repro.config.TimingModel` too, so a
    recalibrated cycle cost invalidates cached results without anyone
    remembering to bump the schema version.  ``fidelity`` is excluded:
    the hybrid engine is differentially proven metric-identical to
    detailed (see :mod:`repro.sim.hybrid`), so it is an execution
    strategy, not a semantics change — the :class:`JobSpec` records it
    separately when a job explicitly requests it.  ``compiled`` is
    excluded for the same reason (see :mod:`repro.compile.differential`).
    """
    fields = asdict(config)
    fields.pop("fidelity", None)
    fields.pop("compiled", None)
    blob = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True, order=True)
class JobSpec:
    """One simulation the engine may run, memoise, or fetch from disk."""

    app: str
    n_pes: int
    npp: int
    h: int
    em4_mode: bool = False
    network_model: str = "detailed"
    priority_replies: bool = False
    seed: int = 0
    #: 0 = legacy sequential simulation; K >= 1 runs the sharded
    #: conservative-window semantics (see :mod:`repro.sim.parallel`)
    #: across K worker processes.  Metrics are K-independent, so the
    #: cache key only records *that* the sharded semantics was used,
    #: never the worker count.
    shards: int = 0
    #: "detailed" (default) drains every event; "hybrid" fast-forwards
    #: conflict-free transit windows (see :mod:`repro.sim.hybrid`).
    #: Metrics are differentially proven identical, but hybrid jobs
    #: still key distinctly so a cache entry records how it was made.
    fidelity: str = "detailed"
    #: Route thread creation through the cohort compiler
    #: (:mod:`repro.compile`).  Differentially proven byte-identical,
    #: but compiled jobs still key distinctly, like ``fidelity``.
    compiled: bool = False
    #: Construction-time alternative to the three execution fields: a
    #: :class:`repro.api.ExecutionPlan` whose ``shards``/``fidelity``/
    #: ``compiled`` are copied onto the spec, then discarded.  Keys,
    #: wire format and ordering see only the plain fields, so
    #: ``JobSpec(..., plan=ExecutionPlan(shards=2))`` and the legacy
    #: ``JobSpec(..., shards=2)`` are the same spec.
    plan: InitVar[ExecutionPlan | None] = None

    def __post_init__(self, plan: ExecutionPlan | None) -> None:
        if plan is not None:
            if self.shards or self.fidelity != "detailed" or self.compiled:
                raise PlanError(
                    "pass plan=ExecutionPlan(...) or the legacy "
                    "shards=/fidelity=/compiled= fields, not both"
                )
            plan.validate()
            object.__setattr__(self, "shards", int(plan.shards))
            object.__setattr__(self, "fidelity", str(plan.fidelity))
            object.__setattr__(self, "compiled", bool(plan.compiled))
        # Consumed: store None so dataclasses.replace() round-trips
        # without resurrecting (and re-applying) a stale plan.
        object.__setattr__(self, "plan", None)

    @property
    def execution_plan(self) -> ExecutionPlan:
        """This spec's execution strategy as one :class:`ExecutionPlan`."""
        return ExecutionPlan(
            shards=self.shards, fidelity=self.fidelity, compiled=self.compiled
        )

    def validate(self) -> None:
        """Raise on an unrunnable spec (unknown app, nonsense sizes)."""
        from ..api import app_names

        if self.app not in app_names():
            # ProgramError for compatibility with the pre-engine run_app.
            from ..errors import ProgramError

            raise ProgramError(
                f"unknown app {self.app!r}; expected one of {', '.join(app_names())}"
            )
        if self.n_pes < 1 or self.npp < 1 or self.h < 1:
            raise ConfigError(f"n_pes/npp/h must be >= 1, got {self}")
        if self.fidelity not in ("detailed", "hybrid"):
            raise ConfigError(
                f"fidelity must be 'detailed' or 'hybrid', got {self.fidelity!r}"
            )

    def config(self) -> MachineConfig:
        """The machine this job runs on (same construction `run_app` used)."""
        return MachineConfig(
            n_pes=self.n_pes,
            em4_mode=self.em4_mode,
            network_model=self.network_model,
            priority_replies=self.priority_replies,
            seed=self.seed,
            fidelity=self.fidelity,
            compiled=self.compiled,
        )

    def key(self) -> str:
        """Content hash naming this job's cache entry (hex sha256)."""
        payload = {
            "schema": SCHEMA_VERSION,
            "app": self.app,
            "n_pes": self.n_pes,
            "npp": self.npp,
            "h": self.h,
            "seed": self.seed,
            "machine": machine_fingerprint(self.config()),
        }
        if self.shards:
            # The sharded network is a distinct (K-independent)
            # semantics; legacy specs keep their historical keys.
            payload["sharded"] = True
        if self.fidelity != "detailed":
            # Metric-identical by the differential oracle, but a cache
            # entry still records how it was produced; detailed specs
            # keep their historical keys.
            payload["fidelity"] = self.fidelity
        if self.compiled:
            # Same treatment: byte-identical by the compile oracle, but
            # keyed distinctly; interpreted specs keep historical keys.
            payload["compiled"] = True
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def describe(self) -> str:
        """Short human-readable label for progress and error messages."""
        extras = []
        if self.em4_mode:
            extras.append("em4")
        if self.network_model != "detailed":
            extras.append(self.network_model)
        if self.priority_replies:
            extras.append("prio")
        if self.seed:
            extras.append(f"seed={self.seed}")
        if self.shards:
            extras.append(f"shards={self.shards}")
        if self.fidelity != "detailed":
            extras.append(self.fidelity)
        if self.compiled:
            extras.append("compiled")
        suffix = f" [{','.join(extras)}]" if extras else ""
        return f"{self.app} P={self.n_pes} n/P={self.npp} h={self.h}{suffix}"


def dedupe(specs: Iterable[JobSpec]) -> list[JobSpec]:
    """Drop duplicate specs, preserving first-seen order."""
    return list(dict.fromkeys(specs))


def spec_to_dict(spec: JobSpec) -> dict:
    """A :class:`JobSpec` as a JSON-safe dict (the service wire format)."""
    return asdict(spec)


#: Wire fields whose absence means "take the JobSpec default".
_SPEC_FIELDS = {
    "app": str,
    "n_pes": int,
    "npp": int,
    "h": int,
    "em4_mode": bool,
    "network_model": str,
    "priority_replies": bool,
    "seed": int,
    "shards": int,
    "fidelity": str,
    "compiled": bool,
}
_SPEC_REQUIRED = ("app", "n_pes", "npp", "h")


def spec_from_dict(payload: dict) -> JobSpec:
    """Rebuild a :class:`JobSpec` from :func:`spec_to_dict` output.

    The service's admission path: strict on shape (unknown fields and
    missing required ones raise :class:`~repro.errors.ConfigError`, so a
    client typo can never silently hash to a fresh key) but tolerant of
    omitted optionals, which take the dataclass defaults.
    """
    if not isinstance(payload, dict):
        raise ConfigError(f"job spec must be an object, got {type(payload).__name__}")
    unknown = set(payload) - set(_SPEC_FIELDS)
    if unknown:
        raise ConfigError(f"unknown job-spec fields {sorted(unknown)}")
    missing = [name for name in _SPEC_REQUIRED if name not in payload]
    if missing:
        raise ConfigError(f"job spec missing required fields {missing}")
    kwargs = {}
    for name, value in payload.items():
        convert = _SPEC_FIELDS[name]
        try:
            kwargs[name] = convert(value)
        except (TypeError, ValueError) as exc:
            raise ConfigError(f"bad job-spec field {name}={value!r}: {exc}") from None
    return JobSpec(**kwargs)


def expand_sweep(
    app: str,
    n_pes: int,
    npp: int,
    threads: Sequence[int],
    *,
    em4_mode: bool = False,
    network_model: str = "detailed",
    priority_replies: bool = False,
    seed: int = 0,
    fidelity: str = "detailed",
    compiled: bool = False,
) -> list[JobSpec]:
    """One (app, P, n/P) thread sweep as jobs, skipping h > n/P.

    The skip mirrors the hardware constraint every figure driver
    applies: a PE cannot run more threads than it holds elements.
    """
    return [
        JobSpec(
            app=app,
            n_pes=n_pes,
            npp=npp,
            h=h,
            em4_mode=em4_mode,
            network_model=network_model,
            priority_replies=priority_replies,
            seed=seed,
            fidelity=fidelity,
            compiled=compiled,
        )
        for h in threads
        if h <= npp
    ]


def expand_figures(
    scale,
    threads: Sequence[int],
    figures: Sequence[str] = FIGURES,
) -> list[JobSpec]:
    """Every job the requested figures need, deduplicated.

    ``scale`` is an :class:`~repro.experiments.common.ExperimentScale`;
    imported lazily to keep this module free of experiment imports (the
    experiments package itself imports the runner).
    """
    from ..experiments.fig6 import PANELS as FIG6_PANELS
    from ..experiments.fig8 import PANELS as FIG8_PANELS

    unknown = set(figures) - set(FIGURES)
    if unknown:
        raise ConfigError(f"unknown figures {sorted(unknown)}; valid: {sorted(FIGURES)}")

    specs: list[JobSpec] = []
    # Figs. 6 and 7 share one sweep per panel (fig7 is derived data).
    if "fig6" in figures or "fig7" in figures:
        for _, (app, which) in sorted(FIG6_PANELS.items()):
            n_pes = getattr(scale, which)
            for npp in scale.sizes_for(n_pes):
                specs.extend(expand_sweep(app, n_pes, npp, threads))
    # Figs. 8 and 9 share one sweep per panel at P = p_large.
    if "fig8" in figures or "fig9" in figures:
        for _, (app, size_role) in sorted(FIG8_PANELS.items()):
            npp = scale.small_size if size_role == "small" else scale.large_size
            specs.extend(expand_sweep(app, scale.p_large, npp, threads))
    return dedupe(specs)
