"""Sweep orchestration: memo → disk cache → process pool.

The figure drivers ask for thread sweeps; this module decides how each
job in a sweep is satisfied, cheapest source first:

1. the **per-process memo** (identity-preserving, what the experiments
   package has always had),
2. the **on-disk cache** (:mod:`repro.runner.cache`) keyed by the job's
   content hash, surviving across processes and branches,
3. **execution** — serial in-process when ``jobs == 1``, fanned across
   a process pool otherwise (:mod:`repro.runner.pool`).

Behaviour is controlled by a process-global :class:`RunnerOptions`
(set from CLI flags via :func:`configure`, or scoped with the
:func:`using` context manager), so existing call sites —
``fig6_panel(...)``, ``export_all(...)``, the benchmark harness — gain
parallelism and persistent caching without signature churn.
:func:`stats` reports how many jobs each source satisfied; the CLI
prints it so a warm re-export visibly executes **zero** simulations.
"""

from __future__ import annotations

import contextlib
import functools
import warnings
from dataclasses import dataclass, replace
from typing import Callable, Mapping, Sequence

from ..api import ExecutionPlan
from ..errors import ConfigError, PlanError
from .cache import ResultCache
from .jobs import FIGURES, JobSpec, dedupe, expand_figures, expand_sweep
from .pool import PoolStatus, run_jobs
from .worker import execute_job, run_job_worker

__all__ = [
    "RunnerOptions",
    "RunStats",
    "configure",
    "get_options",
    "reset_options",
    "using",
    "stats",
    "reset_stats",
    "clear_memo",
    "memo_size",
    "run_job",
    "run_specs",
    "sweep_threads",
    "sweep_figures",
]


@dataclass(frozen=True)
class RunnerOptions:
    """How sweeps execute: parallelism, cache location, budgets."""

    #: Worker processes; 1 = classic serial in-process execution.
    jobs: int = 1
    #: Cache root override (None → ``REPRO_CACHE_DIR`` → ``~/.cache/repro``).
    cache_dir: str | None = None
    #: Disk layer on/off (the memo is always on).
    use_cache: bool = True
    #: Per-job wall-clock budget in seconds (None = unlimited).
    timeout: float | None = None
    #: Called with a :class:`~repro.runner.pool.PoolStatus` after every
    #: completed/cached job.
    progress: Callable[[PoolStatus], None] | None = None
    #: When set, every *executed* job also writes a Perfetto trace
    #: under this directory (cache hits produce no artifact; the cache
    #: key is unaffected).
    trace_dir: str | None = None
    #: Shard workers *per job* (conservative-window parallel simulation,
    #: :mod:`repro.sim.parallel`).  0 = legacy sequential simulation;
    #: K >= 1 runs jobs whose specs don't pin ``shards`` under the
    #: sharded semantics with K processes each.  The pool fan-out is
    #: clamped so jobs × shards never oversubscribes the machine.
    shards: int = 0
    #: Fidelity applied to jobs whose specs don't pin their own:
    #: ``"hybrid"`` fast-forwards conflict-free windows (metric-proven
    #: identical, with automatic detailed fallback on a miss; see
    #: :mod:`repro.sim.hybrid`).
    fidelity: str = "detailed"
    #: Cohort compiler applied to jobs whose specs don't pin their own
    #: (byte-identical by the compile oracle; see :mod:`repro.compile`).
    compiled: bool = False

    def validate(self) -> None:
        if self.jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {self.jobs}")
        if self.shards < 0:
            raise ConfigError(f"shards must be >= 0, got {self.shards}")
        if self.fidelity not in ("detailed", "hybrid"):
            raise ConfigError(
                f"fidelity must be 'detailed' or 'hybrid', got {self.fidelity!r}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {self.timeout}")

    @property
    def plan(self) -> ExecutionPlan:
        """The execution strategy these options apply to unpinned specs."""
        return ExecutionPlan(
            shards=self.shards, fidelity=self.fidelity, compiled=self.compiled
        )


_options = RunnerOptions()

#: RunnerOptions fields subsumed by ``plan=``; passing them directly to
#: :func:`configure`/:func:`using` still works but is deprecated.
_PLAN_FIELDS = ("shards", "fidelity", "compiled")


def _expand_plan(overrides: dict) -> dict:
    """Fold a ``plan=ExecutionPlan(...)`` override into the flat fields."""
    plan = overrides.pop("plan", None)
    legacy = [name for name in _PLAN_FIELDS if name in overrides]
    if plan is not None:
        if legacy:
            raise PlanError(
                "pass plan=ExecutionPlan(...) or the legacy "
                "shards=/fidelity=/compiled= overrides, not both"
            )
        plan.validate()
        overrides.update(
            shards=plan.shards, fidelity=plan.fidelity, compiled=plan.compiled
        )
    elif legacy:
        warnings.warn(
            f"configure({', '.join(f'{name}=' for name in legacy)}...) is "
            "deprecated; pass plan=ExecutionPlan(...) instead",
            DeprecationWarning,
            stacklevel=3,
        )
    return overrides


def configure(**overrides) -> RunnerOptions:
    """Replace selected fields of the process-global options.

    Execution strategy comes in as one ``plan=ExecutionPlan(...)``
    override; the individual ``shards``/``fidelity``/``compiled``
    keywords remain as a deprecated shim.
    """
    global _options
    _options = replace(_options, **_expand_plan(overrides))
    _options.validate()
    return _options


def get_options() -> RunnerOptions:
    return _options


def reset_options() -> RunnerOptions:
    """Back to defaults (serial, default cache root, cache on)."""
    global _options
    _options = RunnerOptions()
    return _options


@contextlib.contextmanager
def using(**overrides):
    """Scoped options: ``with using(jobs=4): fig6_panel("a")``."""
    global _options
    saved = _options
    try:
        yield configure(**overrides)
    finally:
        _options = saved


@dataclass
class RunStats:
    """Where each job of the current accounting window came from."""

    executed: int = 0
    disk_hits: int = 0
    memo_hits: int = 0

    @property
    def total(self) -> int:
        return self.executed + self.disk_hits + self.memo_hits

    @property
    def cached(self) -> int:
        return self.disk_hits + self.memo_hits

    def describe(self) -> str:
        return (
            f"{self.total} jobs: {self.executed} executed, "
            f"{self.disk_hits} disk hits, {self.memo_hits} memoised"
        )


_stats = RunStats()

#: The per-process memo.  Keyed by JobSpec, so it doubles as the
#: dedup table for every orchestration path.
_memo: dict[JobSpec, object] = {}


def stats() -> RunStats:
    """A snapshot of the counters since the last :func:`reset_stats`."""
    return replace(_stats)


def reset_stats() -> RunStats:
    global _stats
    _stats = RunStats()
    return _stats


def clear_memo() -> None:
    _memo.clear()


def memo_size() -> int:
    return len(_memo)


def _cache_for(options: RunnerOptions) -> ResultCache | None:
    return ResultCache(options.cache_dir) if options.use_cache else None


def _write_back(cache: ResultCache | None, spec: JobSpec, record) -> None:
    """Ensure a memo-satisfied job also exists on disk.

    Results computed before the cache was configured (or under another
    cache root) would otherwise never persist, leaving later processes
    to recompute them.
    """
    if cache is not None and spec not in cache:
        cache.put(spec, record)


def _exec_spec(spec: JobSpec, options: RunnerOptions) -> JobSpec:
    """The spec actually executed: ``options.shards`` and
    ``options.fidelity`` applied unless the spec pins its own (memo and
    cache key off this one, so sharded/hybrid results never alias
    legacy entries)."""
    if options.shards and not spec.shards:
        spec = replace(spec, shards=options.shards)
    if options.fidelity != "detailed" and spec.fidelity == "detailed":
        spec = replace(spec, fidelity=options.fidelity)
    if options.compiled and not spec.compiled:
        spec = replace(spec, compiled=True)
    return spec


def run_job(spec: JobSpec, *, options: RunnerOptions | None = None):
    """Satisfy one job: memo, then disk, then execute in-process."""
    options = options or _options
    spec = _exec_spec(spec, options)
    cache = _cache_for(options)
    hit = _memo.get(spec)
    if hit is not None:
        _stats.memo_hits += 1
        _write_back(cache, spec, hit)
        return hit
    if cache is not None:
        record = cache.get(spec)
        if record is not None:
            _stats.disk_hits += 1
            _memo[spec] = record
            return record
    record = execute_job(spec, trace_dir=options.trace_dir)
    _stats.executed += 1
    _memo[spec] = record
    if cache is not None:
        cache.put(spec, record)
    return record


def run_specs(
    specs: Sequence[JobSpec], *, options: RunnerOptions | None = None
) -> dict[JobSpec, object]:
    """Satisfy a batch of jobs, fanning cache misses across the pool.

    Returns ``{spec: RunRecord}`` covering every *distinct* spec in
    ``specs``.  With ``jobs == 1`` the misses run serially in-process,
    which keeps single-job behaviour (and memo identity semantics)
    exactly as before the engine existed.
    """
    options = options or _options
    ordered = dedupe(specs)
    exec_of = {spec: _exec_spec(spec, options) for spec in ordered}
    results: dict[JobSpec, object] = {}
    misses: list[JobSpec] = []

    cache = _cache_for(options)
    for spec in ordered:
        espec = exec_of[spec]
        hit = _memo.get(espec)
        if hit is not None:
            _stats.memo_hits += 1
            _write_back(cache, espec, hit)
            results[spec] = hit
            continue
        if cache is not None:
            record = cache.get(espec)
            if record is not None:
                _stats.disk_hits += 1
                _memo[espec] = record
                results[spec] = record
                continue
        misses.append(spec)

    if misses:
        especs = dedupe(exec_of[spec] for spec in misses)
        workers = options.jobs
        if options.shards > 1 and workers > 1:
            # Every sharded job occupies `shards` cores: budget the pool
            # so jobs × shards stays within the machine.
            import os

            workers = max(1, min(workers, (os.cpu_count() or 1) // options.shards))
        status = PoolStatus(total=len(ordered), workers=workers, cached=len(results))
        if options.progress is not None:
            options.progress(status)
        worker = run_job_worker
        if options.trace_dir is not None:
            worker = functools.partial(run_job_worker, trace_dir=options.trace_dir)
        executed = run_jobs(
            especs,
            jobs=workers,
            timeout=options.timeout,
            worker=worker,
            progress=options.progress,
            status=status,
        )
        for espec in especs:
            record = executed[espec]
            _stats.executed += 1
            _memo[espec] = record
            if cache is not None:
                cache.put(espec, record)
        for spec in misses:
            results[spec] = _memo[exec_of[spec]]
    return {spec: results[spec] for spec in ordered}


def sweep_threads(
    app: str,
    n_pes: int,
    npp: int,
    threads: Sequence[int] | None = None,
    **kwargs,
) -> Mapping[int, object]:
    """Run one (app, P, n/P) configuration across a thread sweep.

    Thread counts exceeding the per-PE element count are skipped, the
    same constraint the hardware runs obeyed (h ≤ n/P).  This is the
    engine-backed replacement for the old private-memo sweep in
    ``experiments.common``; the return shape (``{h: RunRecord}``) is
    unchanged.
    """
    if threads is None:
        from ..experiments.common import THREAD_SWEEP

        threads = THREAD_SWEEP
    specs = expand_sweep(app, n_pes, npp, threads, **kwargs)
    records = run_specs(specs)
    return {spec.h: records[spec] for spec in specs}


def sweep_figures(
    scale=None,
    threads: Sequence[int] | None = None,
    figures: Sequence[str] = FIGURES,
    *,
    options: RunnerOptions | None = None,
) -> dict[JobSpec, object]:
    """Pre-run every simulation the requested figures need.

    The workhorse behind ``python -m repro sweep`` and the export
    prefetch: expands the figures into a deduplicated job list and
    satisfies it through :func:`run_specs`, so the figure drivers that
    run afterwards find everything memoised.
    """
    if scale is None or threads is None:
        from ..experiments.common import THREAD_SWEEP, default_scale

        scale = scale or default_scale()
        threads = threads or THREAD_SWEEP
    specs = expand_figures(scale, threads, figures)
    return run_specs(specs, options=options)
