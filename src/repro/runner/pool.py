"""Process-pool scheduler: fan independent jobs across cores.

Every job is an independent simulation, so the scheduling problem is
embarrassingly parallel: submit all jobs to a
``concurrent.futures.ProcessPoolExecutor`` sized by ``--jobs`` (default
``os.cpu_count()``), collect results as they complete, and keep the
caller informed through a progress callback.

Failure policy, in order of severity:

* **Workload errors** (wrong answer, deadlock, bad spec) are
  deterministic — they propagate immediately; retrying would only burn
  cycles reproducing the same failure.
* **Worker crashes** (a killed process breaks the whole pool, failing
  every in-flight future) get **one retry** in a fresh pool — the jobs
  themselves are deterministic, so a second crash means the job, not
  the machinery, is at fault and the run fails loudly.
* **Timeouts** are enforced *inside* the worker via ``SIGALRM``
  (:func:`~repro.runner.worker.deadline`), so an over-budget job fails
  its own future without wedging or poisoning the pool.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import SimulationError
from .jobs import JobSpec
from .worker import run_job_worker

__all__ = ["PoolStatus", "run_jobs"]


@dataclass
class PoolStatus:
    """Live counters handed to the progress callback after every event.

    ``total`` covers the whole request including jobs satisfied by a
    cache layer (the sweep orchestrator seeds ``cached``); the pool
    itself advances ``completed``, ``failed`` and ``retried``.
    """

    total: int
    workers: int = 1
    cached: int = 0
    completed: int = 0
    failed: int = 0
    retried: int = 0
    #: Labels of jobs currently believed to be executing (best effort).
    in_flight: set = field(default_factory=set)

    @property
    def outstanding(self) -> int:
        return max(0, self.total - self.cached - self.completed - self.failed)

    @property
    def running(self) -> int:
        """How many jobs are plausibly executing right now."""
        return min(self.workers, self.outstanding)

    def describe(self) -> str:
        done = self.cached + self.completed
        msg = f"{done}/{self.total} jobs ({self.cached} cached, {self.running} running)"
        if self.retried:
            msg += f", {self.retried} retried"
        return msg


ProgressCallback = Callable[[PoolStatus], None]


def _notify(progress: ProgressCallback | None, status: PoolStatus) -> None:
    if progress is not None:
        progress(status)


def _run_serial(
    specs: Sequence[JobSpec],
    timeout: float | None,
    worker,
    progress: ProgressCallback | None,
    status: PoolStatus,
) -> dict[JobSpec, object]:
    results: dict[JobSpec, object] = {}
    for spec in specs:
        results[spec] = worker(spec, timeout)
        status.completed += 1
        _notify(progress, status)
    return results


def _run_pass(
    specs: Sequence[JobSpec],
    jobs: int,
    timeout: float | None,
    worker,
    progress: ProgressCallback | None,
    status: PoolStatus,
) -> tuple[dict[JobSpec, object], list[JobSpec]]:
    """One executor pass; returns (results, crashed-spec list).

    Only pool breakage lands in the crash list — workload exceptions
    cancel what they can and propagate.
    """
    results: dict[JobSpec, object] = {}
    crashed: list[JobSpec] = []
    with ProcessPoolExecutor(max_workers=min(jobs, len(specs))) as pool:
        futures = {pool.submit(worker, spec, timeout): spec for spec in specs}
        for future in as_completed(futures):
            spec = futures[future]
            try:
                results[spec] = future.result()
            except BrokenProcessPool:
                crashed.append(spec)
                continue
            except Exception:
                # Deterministic workload failure: stop the presses.
                for pending in futures:
                    pending.cancel()
                raise
            status.completed += 1
            _notify(progress, status)
    return results, crashed


def run_jobs(
    specs: Sequence[JobSpec],
    *,
    jobs: int | None = None,
    timeout: float | None = None,
    worker=run_job_worker,
    progress: ProgressCallback | None = None,
    status: PoolStatus | None = None,
) -> dict[JobSpec, object]:
    """Execute ``specs`` and return ``{spec: RunRecord}``.

    ``jobs=1`` runs serially in-process (no pool, no pickling —
    byte-for-byte the classic sequential path).  ``jobs=None`` uses
    ``os.cpu_count()``.  ``worker`` is injectable for tests and
    benchmarks; it must be a picklable top-level callable taking
    ``(spec, timeout)``.
    """
    if jobs is None:
        jobs = os.cpu_count() or 1
    if jobs < 1:
        raise SimulationError(f"--jobs must be >= 1, got {jobs}")
    if status is None:
        status = PoolStatus(total=len(specs), workers=jobs)
    else:
        status.workers = jobs
    if not specs:
        return {}

    if jobs == 1 or len(specs) == 1:
        return _run_serial(specs, timeout, worker, progress, status)

    results, crashed = _run_pass(specs, jobs, timeout, worker, progress, status)
    if crashed:
        # A broken pool fails every in-flight future, including jobs
        # that never ran; give each exactly one more chance in a fresh
        # pool before declaring the run dead.
        status.retried += len(crashed)
        _notify(progress, status)
        retried, crashed_again = _run_pass(
            crashed, jobs, timeout, worker, progress, status
        )
        if crashed_again:
            labels = ", ".join(spec.describe() for spec in crashed_again[:4])
            raise SimulationError(
                f"worker crashed twice for {len(crashed_again)} job(s): {labels}"
            )
        results.update(retried)
    return results
