"""Job execution: the code that actually runs one simulation.

This module is what a pool worker process imports — it deliberately
avoids importing the orchestration layers (``pool``, ``sweep``) so a
forked worker touches only the simulator itself.  :func:`execute_job`
is the single place a :class:`~repro.runner.jobs.JobSpec` turns into a
:class:`~repro.experiments.common.RunRecord`; the serial path, the
process pool, and the benchmark harness all funnel through it.

A per-job wall-clock budget is enforced with ``SIGALRM`` *inside* the
worker (:func:`deadline`), which keeps the scheduler simple: a job that
exceeds its budget raises :class:`JobTimeout` in its own process and
surfaces as an ordinary failed future, not a wedged pool.
"""

from __future__ import annotations

import contextlib
import signal
import sys
import threading
import time

from ..api import get_app, result_ok
from ..errors import ProgramError, SimulationError
from ..metrics.serialize import run_record_from_report
from .jobs import JobSpec

__all__ = [
    "JobTimeout",
    "deadline",
    "execute_job",
    "run_job_worker",
    "trace_artifact_path",
]


class JobTimeout(SimulationError):
    """A job exceeded its per-job wall-clock budget."""


@contextlib.contextmanager
def deadline(seconds: float | None):
    """Raise :class:`JobTimeout` if the block runs longer than ``seconds``.

    Uses ``SIGALRM`` where available (main thread of a POSIX process —
    exactly what a pool worker is); elsewhere, or with ``seconds=None``,
    it is a no-op so the engine degrades gracefully rather than failing.
    """
    usable = (
        seconds is not None
        and seconds > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        yield
        return

    def _expired(_signum, _frame):
        raise JobTimeout(f"job exceeded its {seconds:.0f}s budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    # ceil to a whole second: signal.alarm(0) would disarm, not expire.
    signal.alarm(max(1, int(seconds + 0.999)))
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def trace_artifact_path(trace_dir: str, spec: JobSpec) -> str:
    """Where one job's Perfetto trace lands under ``trace_dir``.

    Named by workload parameters plus a content-hash prefix, so sweeps
    with overlapping shapes but different machine configs cannot
    clobber each other's artifacts.
    """
    import os

    name = (
        f"{spec.app}_P{spec.n_pes}_n{spec.npp}_h{spec.h}"
        f"_{spec.key()[:8]}.perfetto.json"
    )
    return os.path.join(trace_dir, name)


def execute_job(spec: JobSpec, *, trace_dir: str | None = None):
    """Run one simulation and return its ``RunRecord`` (no caching).

    Raises :class:`ProgramError` if the workload produces a wrong
    answer — a cached wrong answer would poison every later figure, so
    verification happens before any caching layer sees the record.

    With ``trace_dir`` set, the run is observed through an event bus
    and a Perfetto trace is written to :func:`trace_artifact_path`.
    Tracing never enters the cache key — a cache hit simply skips the
    artifact, and the cold path with ``trace_dir=None`` is untouched.
    """
    spec.validate()
    config = spec.config()
    n = spec.n_pes * spec.npp

    bus = recorder = None
    if trace_dir is not None:
        from ..obs import EventBus, RingRecorder

        bus = EventBus()
        recorder = RingRecorder(bus)

    started = time.perf_counter()
    fn = get_app(spec.app)
    kwargs = dict(
        n_pes=spec.n_pes, n=n, h=spec.h, config=config, seed=spec.seed, obs=bus
    )
    if spec.shards:
        from ..sim import parallel

        result = parallel.call_app(fn, spec.shards, kwargs)
    else:
        result = fn(**kwargs)
    verified = result_ok(result)
    if not verified:
        raise ProgramError(f"{spec.app} run produced a wrong answer at {spec.describe()}")

    if recorder is not None:
        import os

        from ..obs import write_perfetto

        os.makedirs(trace_dir, exist_ok=True)
        write_perfetto(
            trace_artifact_path(trace_dir, spec), recorder.events, n_pes=spec.n_pes
        )

    record = run_record_from_report(
        spec.app, spec.n_pes, spec.npp, spec.h, result.report, verified
    )
    # Execution cost rides along as a side channel, NOT a RunRecord
    # field: the record stays a pure function of the simulated run
    # (serialisation, equality and cached payloads are unchanged), and
    # the cache layer persists this separately for `cache stats`.
    object.__setattr__(
        record,
        "_exec",
        {
            "wall_seconds": time.perf_counter() - started,
            "max_rss_kb": _max_rss_kb(),
        },
    )
    return record


def _max_rss_kb() -> int | None:
    """Peak RSS of this process (and its reaped shard children), in KiB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    children = resource.getrusage(resource.RUSAGE_CHILDREN)
    peak = max(usage.ru_maxrss, children.ru_maxrss)
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def run_job_worker(
    spec: JobSpec, timeout: float | None = None, trace_dir: str | None = None
):
    """Pool entry point: execute one job under its wall-clock budget.

    Top-level (picklable) by design — ``ProcessPoolExecutor`` ships it
    to worker processes by qualified name; the sweep layer binds
    ``trace_dir`` with ``functools.partial`` when tracing is on.
    """
    with deadline(timeout):
        return execute_job(spec, trace_dir=trace_dir)
