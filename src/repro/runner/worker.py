"""Job execution: the code that actually runs one simulation.

This module is what a pool worker process imports — it deliberately
avoids importing the orchestration layers (``pool``, ``sweep``) so a
forked worker touches only the simulator itself.  :func:`execute_job`
is the single place a :class:`~repro.runner.jobs.JobSpec` turns into a
:class:`~repro.experiments.common.RunRecord`; the serial path, the
process pool, and the benchmark harness all funnel through it.

A per-job wall-clock budget is enforced *inside* the worker
(:func:`deadline`), which keeps the scheduler simple: a job that
exceeds its budget raises :class:`JobTimeout` in its own process (or
thread) and surfaces as an ordinary failed future, not a wedged pool.
On the main thread of a POSIX process the mechanism is ``SIGALRM``;
off the main thread — the sweep service runs batch workers in threads —
a watchdog thread injects the timeout asynchronously, so the budget is
enforced wherever the job runs.
"""

from __future__ import annotations

import contextlib
import signal
import sys
import threading
import time
from dataclasses import dataclass

from ..api import call_with_plan, get_app, result_ok
from ..errors import ProgramError, SimulationError
from ..metrics.serialize import run_record_from_report
from .jobs import JobSpec

__all__ = [
    "JobTimeout",
    "deadline",
    "execute_job",
    "run_job_worker",
    "BatchOutcome",
    "execute_batch",
    "run_batch_worker",
    "trace_artifact_path",
]


class JobTimeout(SimulationError):
    """A job exceeded its per-job wall-clock budget."""


def _async_raise(ident: int, exc_type) -> bool:
    """Inject ``exc_type`` into the thread ``ident`` (CPython only).

    Delivery happens at the target thread's next bytecode boundary —
    exactly right for the pure-Python simulator loop.  ``exc_type=None``
    cancels a pending, not-yet-delivered injection.  Returns whether the
    call affected exactly one thread; on anything other than CPython
    (no ``ctypes.pythonapi``) it returns False and the caller degrades
    to unenforced budgets, the historical non-main-thread behaviour.
    """
    try:
        import ctypes

        api = ctypes.pythonapi
    except (ImportError, AttributeError):  # pragma: no cover - non-CPython
        return False
    exc = ctypes.py_object(exc_type) if exc_type is not None else None
    touched = api.PyThreadState_SetAsyncExc(ctypes.c_ulong(ident), exc)
    if touched > 1:  # pragma: no cover - defensive: bad ident matched many
        api.PyThreadState_SetAsyncExc(ctypes.c_ulong(ident), None)
        return False
    return touched == 1


@contextlib.contextmanager
def _watchdog_deadline(seconds: float):
    """Non-main-thread budget: a watchdog injects :class:`JobTimeout`.

    Once the watchdog fires the outcome is deterministically a timeout:
    if the block won the race and finished before the injected exception
    was delivered, the pending injection is cancelled and the timeout is
    raised synchronously instead — a fired deadline never leaks an
    asynchronous exception into unrelated later code.
    """
    ident = threading.get_ident()
    finished = threading.Event()
    fired = threading.Event()

    def _arm() -> None:
        if not finished.wait(seconds):
            fired.set()
            _async_raise(ident, JobTimeout)

    watchdog = threading.Thread(target=_arm, name="repro-job-watchdog", daemon=True)
    watchdog.start()
    try:
        yield
    finally:
        finished.set()
        watchdog.join()
        if fired.is_set() and sys.exc_info()[0] is None:
            _async_raise(ident, None)
            raise JobTimeout(f"job exceeded its {seconds:.1f}s budget")


@contextlib.contextmanager
def deadline(seconds: float | None):
    """Raise :class:`JobTimeout` if the block runs longer than ``seconds``.

    On the main thread of a POSIX process (exactly what a pool worker
    is) the mechanism is ``SIGALRM``, ceiled to whole seconds.  On any
    other thread — the sweep service's batch workers — a watchdog thread
    enforces the budget at float precision via an injected exception.
    With ``seconds=None``, or where neither mechanism exists, it is a
    no-op so the engine degrades gracefully rather than failing.
    """
    if seconds is None or seconds <= 0:
        yield
        return
    if not (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    ):
        with _watchdog_deadline(seconds):
            yield
        return

    def _expired(_signum, _frame):
        raise JobTimeout(f"job exceeded its {seconds:.0f}s budget")

    previous = signal.signal(signal.SIGALRM, _expired)
    # ceil to a whole second: signal.alarm(0) would disarm, not expire.
    signal.alarm(max(1, int(seconds + 0.999)))
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


def trace_artifact_path(trace_dir: str, spec: JobSpec) -> str:
    """Where one job's Perfetto trace lands under ``trace_dir``.

    Named by workload parameters plus a content-hash prefix, so sweeps
    with overlapping shapes but different machine configs cannot
    clobber each other's artifacts.
    """
    import os

    name = (
        f"{spec.app}_P{spec.n_pes}_n{spec.npp}_h{spec.h}"
        f"_{spec.key()[:8]}.perfetto.json"
    )
    return os.path.join(trace_dir, name)


def execute_job(spec: JobSpec, *, trace_dir: str | None = None):
    """Run one simulation and return its ``RunRecord`` (no caching).

    Raises :class:`ProgramError` if the workload produces a wrong
    answer — a cached wrong answer would poison every later figure, so
    verification happens before any caching layer sees the record.

    With ``trace_dir`` set, the run is observed through an event bus
    and a Perfetto trace is written to :func:`trace_artifact_path`.
    Tracing never enters the cache key — a cache hit simply skips the
    artifact, and the cold path with ``trace_dir=None`` is untouched.
    """
    spec.validate()
    config = spec.config()
    n = spec.n_pes * spec.npp

    bus = recorder = None
    if trace_dir is not None:
        from ..obs import EventBus, RingRecorder

        bus = EventBus()
        recorder = RingRecorder(bus)

    started = time.perf_counter()
    fn = get_app(spec.app)
    kwargs = dict(
        n_pes=spec.n_pes, n=n, h=spec.h, config=config, seed=spec.seed, obs=bus
    )
    # One dispatch funnel for every execution mode: sharded runs,
    # hybrid fast-forward (with its detailed-rerun safety net), the
    # cohort compiler.  The spec's three execution fields are exactly
    # an ExecutionPlan; config already carries fidelity/compiled, so
    # the plan only adds the shard fan-out here.
    result = call_with_plan(fn, kwargs, spec.execution_plan)
    verified = result_ok(result)
    if not verified:
        raise ProgramError(f"{spec.app} run produced a wrong answer at {spec.describe()}")

    if recorder is not None:
        import os

        from ..obs import write_perfetto

        os.makedirs(trace_dir, exist_ok=True)
        write_perfetto(
            trace_artifact_path(trace_dir, spec), recorder.events, n_pes=spec.n_pes
        )

    record = run_record_from_report(
        spec.app, spec.n_pes, spec.npp, spec.h, result.report, verified
    )
    # Execution cost rides along as a side channel, NOT a RunRecord
    # field: the record stays a pure function of the simulated run
    # (serialisation, equality and cached payloads are unchanged), and
    # the cache layer persists this separately for `cache stats`.
    object.__setattr__(
        record,
        "_exec",
        {
            "wall_seconds": time.perf_counter() - started,
            "max_rss_kb": _max_rss_kb(),
        },
    )
    return record


def _max_rss_kb() -> int | None:
    """Peak RSS of this process (and its reaped shard children), in KiB."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    children = resource.getrusage(resource.RUSAGE_CHILDREN)
    peak = max(usage.ru_maxrss, children.ru_maxrss)
    # Linux reports KiB; macOS reports bytes.
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        peak //= 1024
    return int(peak)


def run_job_worker(
    spec: JobSpec, timeout: float | None = None, trace_dir: str | None = None
):
    """Pool entry point: execute one job under its wall-clock budget.

    Top-level (picklable) by design — ``ProcessPoolExecutor`` ships it
    to worker processes by qualified name; the sweep layer binds
    ``trace_dir`` with ``functools.partial`` when tracing is on.
    """
    with deadline(timeout):
        return execute_job(spec, trace_dir=trace_dir)


@dataclass(frozen=True)
class BatchOutcome:
    """One job's result inside a batch: record or error, never both.

    ``source`` is ``"executed"`` for a fresh simulation, ``"cache"``
    when the batch worker found the entry already on disk (another
    worker or server instance got there first), and ``"error"`` when
    the job failed; failures carry ``error`` (``"ExcType: message"``)
    instead of poisoning the whole batch.
    """

    key: str
    spec: JobSpec
    record: object | None
    source: str
    error: str | None = None
    wall_seconds: float = 0.0
    max_rss_kb: int = 0


def execute_batch(
    specs: list[JobSpec],
    *,
    timeout: float | None = None,
    cache_dir: str | None = None,
    use_cache: bool = True,
    trace_dir: str | None = None,
) -> list[BatchOutcome]:
    """Run several jobs back to back in this process (or thread).

    This is the sweep service's unit of dispatch: one batch amortizes
    process startup and task-submission overhead across many small
    jobs.  Each job gets its own :func:`deadline` budget, each result
    is written to the shared content-addressed cache *immediately* (so
    a crash or shutdown mid-batch loses only the job in progress, never
    completed work), and each failure is captured per job in its
    :class:`BatchOutcome` rather than aborting the rest of the batch.
    """
    cache = None
    if use_cache:
        from .cache import ResultCache

        cache = ResultCache(cache_dir)
    outcomes: list[BatchOutcome] = []
    for spec in specs:
        key = spec.key()
        started = time.perf_counter()
        try:
            record = cache.get(spec) if cache is not None else None
            source = "cache"
            if record is None:
                with deadline(timeout):
                    record = execute_job(spec, trace_dir=trace_dir)
                source = "executed"
                if cache is not None:
                    cache.put(spec, record)
        except Exception as exc:
            outcomes.append(
                BatchOutcome(
                    key=key,
                    spec=spec,
                    record=None,
                    source="error",
                    error=f"{type(exc).__name__}: {exc}",
                    wall_seconds=time.perf_counter() - started,
                )
            )
            continue
        exec_info = getattr(record, "_exec", None) or {}
        outcomes.append(
            BatchOutcome(
                key=key,
                spec=spec,
                record=record,
                source=source,
                wall_seconds=float(
                    exec_info.get("wall_seconds") or time.perf_counter() - started
                ),
                max_rss_kb=int(exec_info.get("max_rss_kb") or 0),
            )
        )
    return outcomes


def run_batch_worker(
    specs: list[JobSpec],
    timeout: float | None = None,
    cache_dir: str | None = None,
    use_cache: bool = True,
    trace_dir: str | None = None,
) -> list[BatchOutcome]:
    """Pool entry point for one batch (picklable, like its single-job
    sibling).  The service dispatches these across its worker pool."""
    return execute_batch(
        specs,
        timeout=timeout,
        cache_dir=cache_dir,
        use_cache=use_cache,
        trace_dir=trace_dir,
    )
