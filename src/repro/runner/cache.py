"""On-disk result store: content-hashed, atomic, version-partitioned.

Layout (one JSON file per completed job)::

    <root>/v<SCHEMA_VERSION>/<key[:2]>/<key>.json

where ``root`` is, in priority order, the explicit ``--cache-dir``
argument, the ``REPRO_CACHE_DIR`` environment variable, or
``~/.cache/repro``.  The two-character fan-out directory keeps any one
directory small even with tens of thousands of entries.

Safety properties:

* **Atomic writes** — entries are written to a same-directory temp file
  and ``os.replace``d into place, so a crashed or concurrent writer can
  never leave a half-written entry where a reader will find it.
  Concurrent writers of the same key are idempotent (same content, last
  rename wins).
* **Version invalidation** — the schema version is baked into both the
  directory name and each payload; bumping
  :data:`~repro.runner.jobs.SCHEMA_VERSION` orphans every old entry
  rather than reinterpreting it.
* **Corruption tolerance** — an unreadable, truncated, or key-mismatched
  entry is treated as a miss and deleted, never raised to the caller;
  the job simply reruns.
"""

from __future__ import annotations

import itertools
import json
import os
import pathlib
import shutil
import threading
from dataclasses import asdict, dataclass, field

from ..metrics.serialize import run_record_from_dict, run_record_to_dict
from .jobs import SCHEMA_VERSION, JobSpec

__all__ = ["ENV_CACHE_DIR", "CacheStats", "ResultCache", "default_cache_root"]

#: Environment override for the cache root (the CLI flag wins over it).
ENV_CACHE_DIR = "REPRO_CACHE_DIR"


def default_cache_root() -> pathlib.Path:
    """``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``."""
    env = os.environ.get(ENV_CACHE_DIR)
    if env:
        return pathlib.Path(env).expanduser()
    return pathlib.Path("~/.cache/repro").expanduser()


@dataclass(frozen=True)
class CacheStats:
    """Summary of one cache root (current schema version only)."""

    root: str
    schema: int
    entries: int
    bytes: int
    #: Aggregated execution cost of the entries that recorded it (older
    #: entries predate the side channel): total simulation wall time and
    #: the largest per-job peak RSS.  This is the data `cache stats`
    #: surfaces for budgeting jobs × shards against a machine's cores
    #: and memory.
    timed_entries: int = 0
    wall_seconds: float = 0.0
    peak_rss_kb: int = 0
    #: Live lookup counters of the :class:`ResultCache` instance that
    #: produced this snapshot (hits/misses/writes/discards, plus any
    #: counters a composing layer folds in — the sweep service adds
    #: ``dedup``).  A fresh CLI process reports zeros; the shape is the
    #: shared schema between ``cache stats --json`` and the service's
    #: status endpoint.
    counters: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe form — the one stats schema every surface shares."""
        return {
            "root": self.root,
            "schema": self.schema,
            "entries": self.entries,
            "bytes": self.bytes,
            "timed_entries": self.timed_entries,
            "wall_seconds": self.wall_seconds,
            "peak_rss_kb": self.peak_rss_kb,
            "counters": dict(self.counters),
        }

    def describe(self) -> str:
        kib = self.bytes / 1024.0
        line = f"{self.entries} entries, {kib:.1f} KiB at {self.root} (schema v{self.schema})"
        if self.timed_entries:
            line += (
                f"\n{self.timed_entries} timed entries: {self.wall_seconds:.1f}s "
                f"total wall, peak job RSS {self.peak_rss_kb / 1024.0:.1f} MiB"
            )
        return line


#: Process-wide uniquifier for temp-file names: two threads of one
#: process writing the same key share a pid, so pid alone can collide.
_TMP_SEQ = itertools.count()


class ResultCache:
    """Hash-keyed store of :class:`~repro.experiments.common.RunRecord`."""

    def __init__(self, root: str | os.PathLike | None = None):
        self.root = pathlib.Path(root).expanduser() if root else default_cache_root()
        #: Live per-instance lookup accounting, surfaced by
        #: :meth:`stats` (and through it the service status endpoint).
        self.counters: dict[str, int] = {
            "hits": 0,
            "misses": 0,
            "writes": 0,
            "discards": 0,
        }

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    @property
    def version_dir(self) -> pathlib.Path:
        """The subtree holding entries for the current schema version."""
        return self.root / f"v{SCHEMA_VERSION}"

    def path_for(self, spec: JobSpec) -> pathlib.Path:
        key = spec.key()
        return self.version_dir / key[:2] / f"{key}.json"

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------
    def get(self, spec: JobSpec):
        """The cached record for ``spec``, or ``None`` on miss.

        Any malformed entry (truncated JSON, wrong schema, wrong key,
        missing fields) is discarded and reported as a miss.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            self.counters["misses"] += 1
            return None
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            self._discard(path)
            self.counters["misses"] += 1
            return None
        try:
            if payload["schema"] != SCHEMA_VERSION or payload["key"] != spec.key():
                raise ValueError("stale or mismatched cache entry")
            record = run_record_from_dict(payload["record"])
        except (KeyError, TypeError, ValueError):
            self._discard(path)
            self.counters["misses"] += 1
            return None
        self.counters["hits"] += 1
        return record

    def put(self, spec: JobSpec, record) -> pathlib.Path:
        """Store ``record`` under ``spec``'s key (atomic tmp+rename)."""
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": SCHEMA_VERSION,
            "key": spec.key(),
            "spec": asdict(spec),
            "record": run_record_to_dict(record),
        }
        # Wall time / peak RSS ride along when the record carries them
        # (execute_job's side channel); never part of the record itself,
        # so cached payload equality across processes is preserved.
        exec_info = getattr(record, "_exec", None)
        if exec_info is not None:
            payload["exec"] = exec_info
        # Unique per (pid, thread, sequence): concurrent writers of the
        # same key — two pool processes, or two service batch threads —
        # each write their own temp file and race only on the atomic
        # rename, where last-writer-wins is idempotent (same content).
        tmp = path.parent / (
            f".{path.name}.{os.getpid()}.{threading.get_ident()}"
            f".{next(_TMP_SEQ)}.tmp"
        )
        try:
            tmp.write_text(json.dumps(payload, sort_keys=True))
            os.replace(tmp, path)
        except BaseException:
            try:
                tmp.unlink()
            except OSError:
                pass
            raise
        self.counters["writes"] += 1
        return path

    def __contains__(self, spec: JobSpec) -> bool:
        return self.path_for(spec).exists()

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def _entries(self) -> list[pathlib.Path]:
        if not self.version_dir.is_dir():
            return []
        return sorted(self.version_dir.glob("*/*.json"))

    def __len__(self) -> int:
        return len(self._entries())

    def stats(self) -> CacheStats:
        """Entry count, on-disk size and execution-cost aggregates for
        the current schema version."""
        entries = self._entries()
        size = 0
        timed = 0
        wall = 0.0
        peak_rss = 0
        for path in entries:
            try:
                size += path.stat().st_size
            except OSError:  # pragma: no cover - racing deletion
                pass
            try:
                exec_info = json.loads(path.read_text()).get("exec")
            except (OSError, json.JSONDecodeError, UnicodeDecodeError):
                continue
            if not isinstance(exec_info, dict):
                continue
            seconds = exec_info.get("wall_seconds")
            if isinstance(seconds, (int, float)):
                timed += 1
                wall += seconds
            rss = exec_info.get("max_rss_kb")
            if isinstance(rss, int) and rss > peak_rss:
                peak_rss = rss
        return CacheStats(
            root=str(self.root),
            schema=SCHEMA_VERSION,
            entries=len(entries),
            bytes=size,
            timed_entries=timed,
            wall_seconds=wall,
            peak_rss_kb=peak_rss,
            counters=dict(self.counters),
        )

    def purge(self) -> int:
        """Delete the whole cache root (all schema versions); return the
        number of current-version entries that were dropped."""
        dropped = len(self._entries())
        shutil.rmtree(self.root, ignore_errors=True)
        return dropped

    def _discard(self, path: pathlib.Path) -> None:
        self.counters["discards"] += 1
        try:
            path.unlink()
        except OSError:  # pragma: no cover - racing deletion
            pass
