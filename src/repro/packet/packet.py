"""Packet kinds and the packet record.

Every EM-X packet is two 32-bit words: an address word and a data word.
The four send-instruction families of the EMC-Y (remote read for one
word, block read, remote write, thread invocation) plus the runtime's
synchronisation traffic map onto :class:`PacketKind`.

Thread-invocation packets logically carry argument words; hardware sends
one packet per two words, which we model by making such a packet occupy
``word_count() / 2`` packet slots of port bandwidth rather than by
materialising the extra packet objects.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any

from ..errors import PacketError

__all__ = ["PacketKind", "Priority", "Packet"]

_seq_counter = itertools.count()


class PacketKind(enum.Enum):
    """What a packet asks its destination to do."""

    #: Split-phase read of one word; data word holds the continuation.
    READ_REQ = "read_req"
    #: Reply delivering one word to a continuation.
    READ_REPLY = "read_reply"
    #: Reply that is one operand of a two-token direct match: the first
    #: arrival parks in matching memory (no EXU cycles); the second
    #: fires the thread with both operands.
    READ_REPLY_PAIR = "read_reply_pair"
    #: Read ``count`` consecutive words; serviced as a reply burst.
    BLOCK_READ_REQ = "block_read_req"
    #: Reply delivering a whole block (modelled as one logical packet
    #: occupying ``count`` packet slots of bandwidth).
    BLOCK_READ_REPLY = "block_read_reply"
    #: One-word remote write; never suspends the issuing thread.
    WRITE = "write"
    #: Invoke a thread (function spawn) at the destination.
    INVOKE = "invoke"
    #: Locally re-enqueue a suspended thread (spin re-check / token grant).
    RESUME = "resume"
    #: Runtime barrier traffic: a PE announcing local arrival.
    SYNC_ARRIVE = "sync_arrive"
    #: Runtime barrier traffic: the hub releasing a waiting PE.
    SYNC_RELEASE = "sync_release"

    # Members are singletons compared by identity, so the id-based slot
    # hash is consistent — and C-level, unlike Enum.__hash__, which is a
    # Python call that shows up in profiles (stats count packets by kind
    # on every delivery).
    __hash__ = object.__hash__


class Priority(enum.IntEnum):
    """IBU buffer level; the IBU has two levels of priority FIFOs."""

    HIGH = 0
    NORMAL = 1


@dataclass(slots=True)
class Packet:
    """One (logical) network packet.

    Attributes
    ----------
    kind: what the packet does at the destination.
    src, dst: processor numbers.
    address: the packed address word (meaning depends on ``kind``).
    data: the data word — a value, a continuation id, or a small tuple
        for runtime packets.
    words: logical payload width in 32-bit words (2 for ordinary
        packets); only affects port bandwidth occupancy.
    priority: which IBU FIFO receives it.
    born: injection cycle (set by the sender), for latency accounting.
    """

    kind: PacketKind
    src: int
    dst: int
    address: int = 0
    data: Any = None
    words: int = 2
    priority: Priority = Priority.NORMAL
    born: int = 0
    seq: int = field(default_factory=_seq_counter.__next__)

    def __post_init__(self) -> None:
        if self.src < 0 or self.dst < 0:
            raise PacketError(f"negative endpoint in packet {self.kind}: src={self.src} dst={self.dst}")
        if self.words < 2:
            raise PacketError(f"packet narrower than 2 words: {self.words}")

    def slots(self, port_cycles_per_packet: int) -> int:
        """Port occupancy in cycles, given the per-packet port rate.

        A standard 2-word packet occupies ``port_cycles_per_packet``
        cycles; wider logical packets occupy proportionally more.
        """
        n_packets = (self.words + 1) // 2
        return n_packets * port_cycles_per_packet

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Packet({self.kind.value}, {self.src}->{self.dst}, "
            f"addr={self.address}, data={self.data!r}, seq={self.seq})"
        )
