"""Global addresses: (processor number, local word offset).

The EM-X compiler supports a global address space; a remote memory
access packet carries "the processor number and the local memory address
of the selected processor" (§2.3).  We model that as a
:class:`GlobalAddress` named tuple plus a packed single-word integer
encoding (<pe:high bits><offset:32 bits>) used inside packets.
"""

from __future__ import annotations

from typing import NamedTuple

from ..errors import AddressError

__all__ = ["GlobalAddress", "encode_address", "decode_address", "OFFSET_BITS"]

#: Bits reserved for the local word offset in the packed encoding.
OFFSET_BITS = 32
_OFFSET_MASK = (1 << OFFSET_BITS) - 1


class GlobalAddress(NamedTuple):
    """A word address in the machine-wide global address space."""

    pe: int
    offset: int

    def __add__(self, words: int) -> "GlobalAddress":  # type: ignore[override]
        """Pointer arithmetic within one processor's memory."""
        return GlobalAddress(self.pe, self.offset + words)

    def packed(self) -> int:
        """The single-word packed form carried in packets."""
        return encode_address(self.pe, self.offset)

    def __repr__(self) -> str:
        return f"ga(pe={self.pe}, off={self.offset})"


def encode_address(pe: int, offset: int) -> int:
    """Pack (pe, offset) into one integer address word.

    Raises :class:`AddressError` on negative components or an offset
    that does not fit the 32-bit offset field.
    """
    if pe < 0:
        raise AddressError(f"negative processor number {pe}")
    if offset < 0 or offset > _OFFSET_MASK:
        raise AddressError(f"offset {offset} outside the {OFFSET_BITS}-bit field")
    return (pe << OFFSET_BITS) | offset


def decode_address(word: int) -> GlobalAddress:
    """Unpack an address word produced by :func:`encode_address`."""
    if word < 0:
        raise AddressError(f"negative address word {word}")
    return GlobalAddress(word >> OFFSET_BITS, word & _OFFSET_MASK)
