"""Packets and global addressing.

All EM-X communication is 2-word fixed-size packets: one word of address
(destination processor + local offset, or a continuation) and one word
of data.  This package defines the global address encoding and the
packet kinds the model exchanges — remote read request/reply, remote
write, block transfers, thread invocation, and the runtime's
synchronisation packets.
"""

from .address import GlobalAddress, decode_address, encode_address
from .packet import Packet, PacketKind, Priority

__all__ = [
    "GlobalAddress",
    "encode_address",
    "decode_address",
    "Packet",
    "PacketKind",
    "Priority",
]
