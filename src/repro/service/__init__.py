"""The sweep service: a multi-client layer over the execution engine.

The figures of the paper are sweeps over content-keyed simulations, and
the north-star workload is many clients re-requesting the same keys.
This package turns the single-process runner into that service:

* :mod:`~repro.service.server` — ``SweepService``, an asyncio HTTP
  server: warm jobs answered from the shared content-addressed cache,
  in-flight jobs deduplicated by content key (N clients, one
  execution), cold jobs coalesced into batches over a worker pool,
  bounded admission with 429 + ``Retry-After`` backpressure, and a
  graceful drain that loses no completed result;
* :mod:`~repro.service.client` — ``SweepClient``, a blocking stdlib
  client with retry/backoff and streamed per-job progress;
* :mod:`~repro.service.protocol` — the minimal hand-rolled HTTP/1.1 +
  NDJSON layer both ends agree on;
* :mod:`~repro.service.stats` — ``ServiceStats``, the counters behind
  the ``/status`` endpoint and ``repro svc-status``.

From the CLI: ``repro serve`` starts a server, ``repro submit`` sends a
sweep to it, ``repro svc-status`` inspects it.  From code,
``repro.connect(url)`` returns a :class:`SweepClient`.
"""

from .client import ServiceError, ServiceUnavailable, SweepClient
from .server import DEFAULT_PORT, SweepService
from .stats import ServiceStats

__all__ = [
    "DEFAULT_PORT",
    "SweepService",
    "SweepClient",
    "ServiceError",
    "ServiceUnavailable",
    "ServiceStats",
]
