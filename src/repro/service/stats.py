"""Service-level accounting: where every submitted job was satisfied.

One :class:`ServiceStats` instance lives for the lifetime of a
:class:`~repro.service.server.SweepService` and is mutated only from
the event loop, so there is no locking.  The counters answer the three
questions the batching/dedup layer exists for:

* how much incoming demand collapsed onto shared work (``warm_hits`` +
  ``dedup_hits`` vs ``executed``),
* how well batching amortized dispatch (``batches`` vs
  ``batched_jobs``),
* whether admission control engaged (``shed_requests``,
  ``max_queue_depth`` against the configured bound).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

__all__ = ["ServiceStats"]


@dataclass
class ServiceStats:
    """Monotonic counters since service start (event-loop-only writes)."""

    #: HTTP-level traffic.
    requests: int = 0
    sweep_requests: int = 0
    shed_requests: int = 0
    bad_requests: int = 0

    #: Per-job disposition at admission time.
    jobs_received: int = 0
    warm_hits: int = 0       # answered straight from the result cache
    dedup_hits: int = 0      # attached to an already-in-flight execution
    admitted: int = 0        # entered the bounded execution queue

    #: Execution outcomes (counted as batches resolve).
    executed: int = 0
    cache_races_won_elsewhere: int = 0  # batch worker found it on disk
    failed: int = 0

    #: Batching behaviour.
    batches: int = 0
    batched_jobs: int = 0
    max_queue_depth: int = 0

    #: Aggregate execution cost, from the cache's wall/RSS side channel.
    wall_seconds: float = 0.0
    peak_rss_kb: int = 0

    def note_batch(self, size: int) -> None:
        self.batches += 1
        self.batched_jobs += size

    def note_queue_depth(self, depth: int) -> None:
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    def note_outcome(self, wall_seconds: float, max_rss_kb: int) -> None:
        self.wall_seconds += wall_seconds
        if max_rss_kb > self.peak_rss_kb:
            self.peak_rss_kb = max_rss_kb

    @property
    def mean_batch_size(self) -> float:
        return self.batched_jobs / self.batches if self.batches else 0.0

    def mean_job_seconds(self) -> float:
        return self.wall_seconds / self.executed if self.executed else 0.0

    def to_dict(self) -> dict:
        payload = asdict(self)
        payload["mean_batch_size"] = round(self.mean_batch_size, 3)
        return payload

    def describe(self) -> str:
        return (
            f"{self.jobs_received} jobs: {self.warm_hits} warm, "
            f"{self.dedup_hits} deduped, {self.executed} executed, "
            f"{self.failed} failed; {self.batches} batches "
            f"(mean {self.mean_batch_size:.1f} jobs), "
            f"{self.shed_requests} requests shed"
        )
