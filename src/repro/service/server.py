"""The sweep service: many clients, one shared execution of each job.

``SweepService`` is an asyncio HTTP server layered on the execution
engine (:mod:`repro.runner`).  Its job is to make N clients requesting
the same content-keyed simulations cost one execution:

* **warm path** — a job whose :meth:`~repro.runner.jobs.JobSpec.key`
  is already in the shared content-addressed cache is answered from
  disk, no execution;
* **in-flight dedup** — a job currently executing (for any client) is
  *attached to*, not re-admitted: every waiter shares one
  ``asyncio.Future``;
* **cold path** — genuinely new jobs enter a **bounded** admission
  queue.  A batcher coalesces queued jobs into per-worker batches
  (amortizing process startup and dispatch overhead across many small
  simulations) and fans the batches over a process pool — or an
  in-process thread pool with ``inline=True``, where the runner's
  watchdog deadline keeps per-job budgets enforceable off the main
  thread.

When the admission queue is full the service **sheds**: the sweep
request is rejected with HTTP 429 and a ``Retry-After`` estimate
derived from observed job cost, so saturation surfaces as backpressure
instead of unbounded memory growth.  Graceful shutdown stops admission,
drains every queued and in-flight batch, and — because batch workers
persist each result to the cache the moment it completes — loses no
finished work.

All service state is touched only from the event loop; worker results
re-enter through ``loop.run_in_executor`` futures, so there is no
locking anywhere in this module.
"""

from __future__ import annotations

import asyncio
import functools
import json
import os
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field

from ..errors import ConfigError, ReproError
from ..metrics.serialize import run_record_to_dict
from ..obs import EventBus, ServiceEvent
from ..runner.cache import ResultCache
from ..runner.jobs import JobSpec, spec_from_dict, spec_to_dict
from ..runner.worker import BatchOutcome, run_batch_worker
from .protocol import (
    ProtocolError,
    Request,
    end_chunks,
    read_request,
    send_json,
    send_ndjson_line,
    start_ndjson,
)
from .stats import ServiceStats

__all__ = ["SweepService", "DEFAULT_PORT"]

#: The CLI's default port; tests and CI bind port 0 (ephemeral).
DEFAULT_PORT = 8737

#: Sentinel shutting the batcher loop down after the queue drains.
_STOP = object()


@dataclass
class _Inflight:
    """One executing (or queued) job and everyone waiting on it."""

    spec: JobSpec
    key: str
    future: asyncio.Future = field(default_factory=asyncio.Future)
    waiters: int = 1


class _Shed(ReproError):
    """Admission queue full — reject the request with 429."""

    def __init__(self, needed: int, retry_after: int):
        super().__init__(
            f"admission queue full; retry in ~{retry_after}s ({needed} cold jobs)"
        )
        self.needed = needed
        self.retry_after = retry_after


class SweepService:
    """Multi-client sweep server over the shared result cache.

    Endpoints::

        GET  /healthz    liveness probe
        GET  /status     stats + queue + cache (shared stats schema)
        POST /sweep      {"jobs": [spec...], "stream": bool}
        POST /shutdown   graceful drain, then exit

    ``workers`` sizes the batch execution pool (default: CPU count);
    ``inline=True`` swaps the process pool for threads in this process
    — cheap for tests and tiny jobs.  ``batch_size``/``linger_s`` shape
    batching: a batch closes when full or when ``linger_s`` passes
    without a new job.  ``max_queue`` bounds admitted-but-unfinished
    jobs; beyond it, sweeps shed with 429.
    """

    def __init__(
        self,
        *,
        cache_dir: str | None = None,
        use_cache: bool = True,
        workers: int | None = None,
        inline: bool = False,
        batch_size: int = 8,
        linger_s: float = 0.02,
        max_queue: int = 256,
        timeout: float | None = None,
        obs: EventBus | None = None,
    ) -> None:
        if batch_size < 1:
            raise ConfigError(f"batch_size must be >= 1, got {batch_size}")
        if max_queue < 1:
            raise ConfigError(f"max_queue must be >= 1, got {max_queue}")
        self.cache = ResultCache(cache_dir) if use_cache else None
        self._cache_dir = cache_dir
        self._use_cache = use_cache
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        self.inline = inline
        self.batch_size = batch_size
        self.linger_s = linger_s
        self.max_queue = max_queue
        self.timeout = timeout
        self.obs = obs
        self.stats = ServiceStats()

        self._inflight: dict[str, _Inflight] = {}
        self._queue: asyncio.Queue = asyncio.Queue()
        self._queued = 0  # jobs admitted but not yet handed to a batch
        self._draining = False
        self._server: asyncio.AbstractServer | None = None
        self._batcher_task: asyncio.Task | None = None
        self._batch_tasks: set[asyncio.Task] = set()
        self._executor = None
        self._stopped = asyncio.Event()
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str = "127.0.0.1", port: int = 0) -> tuple[str, int]:
        """Bind and start serving; returns the actual (host, port)."""
        if self.inline:
            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-batch"
            )
        else:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
        self._batcher_task = asyncio.create_task(self._batcher())
        self._server = await asyncio.start_server(self._handle_conn, host, port)
        sock = self._server.sockets[0].getsockname()
        return sock[0], sock[1]

    async def wait_stopped(self) -> None:
        """Block until a shutdown (signal or POST /shutdown) completes."""
        await self._stopped.wait()

    async def shutdown(self, *, drain: bool = True) -> None:
        """Stop accepting work; with ``drain``, finish everything first.

        Completed results are already on disk (batch workers persist
        each one as it finishes), so even ``drain=False`` loses only
        jobs that never completed.
        """
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # The STOP sentinel queues behind every admitted job, so the
        # batcher drains FIFO before exiting.
        await self._queue.put(_STOP)
        if self._batcher_task is not None:
            if drain:
                await self._batcher_task
                if self._batch_tasks:
                    await asyncio.gather(*self._batch_tasks, return_exceptions=True)
            else:
                self._batcher_task.cancel()
                for task in self._batch_tasks:
                    task.cancel()
        for job in list(self._inflight.values()):
            if not job.future.done():
                job.future.set_exception(
                    ReproError("service shut down before the job ran")
                )
        self._inflight.clear()
        if self._executor is not None:
            self._executor.shutdown(wait=drain, cancel_futures=not drain)
        self._emit("drain", n=self.stats.executed)
        self._stopped.set()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _emit(self, kind: str, key: str = "", n: int = 0, value: float = 0.0) -> None:
        if self.obs is not None:
            self.obs.emit(
                ServiceEvent(
                    t=int((time.monotonic() - self._t0) * 1e6),
                    kind=kind,
                    key=key,
                    n=n,
                    value=value,
                )
            )

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _retry_after(self, extra_jobs: int) -> int:
        """A coarse, honest backlog estimate in whole seconds."""
        backlog = self._queued + len(self._inflight) + extra_jobs
        per_job = self.stats.mean_job_seconds() or 0.5
        return max(1, min(60, int(backlog * per_job / self.workers) + 1))

    def _admit_sweep(self, specs: list[JobSpec]) -> list[tuple[str, JobSpec, str, object]]:
        """Resolve every job of one request to a source, atomically.

        Returns ``(key, spec, source, record_or_future)`` rows where
        ``source`` is ``warm`` (record in hand), ``dedup`` (future of
        an in-flight execution) or ``admitted`` (fresh future, queued).
        Runs entirely inside one event-loop step, so the
        capacity check below cannot race another request: either the
        whole sweep is admitted or nothing changes and it sheds.
        """
        plan: list[tuple[str, JobSpec, str, object]] = []
        fresh: dict[str, _Inflight] = {}
        for spec in specs:
            key = spec.key()
            self.stats.jobs_received += 1
            if key in fresh:
                # Duplicate within one request: share the new future.
                self.stats.dedup_hits += 1
                plan.append((key, spec, "dedup", fresh[key].future))
                continue
            inflight = self._inflight.get(key)
            if inflight is not None:
                inflight.waiters += 1
                self.stats.dedup_hits += 1
                self._emit("dedup", key=key, n=self._queued)
                plan.append((key, spec, "dedup", inflight.future))
                continue
            record = self.cache.get(spec) if self.cache is not None else None
            if record is not None:
                self.stats.warm_hits += 1
                self._emit("warm", key=key, n=self._queued)
                plan.append((key, spec, "warm", record))
                continue
            fresh[key] = _Inflight(spec=spec, key=key)
            plan.append((key, spec, "admitted", fresh[key].future))

        if self._queued + len(fresh) > self.max_queue:
            # Nothing was published yet — the request sheds whole, and
            # already-running work other clients share is untouched.
            self.stats.shed_requests += 1
            retry = self._retry_after(len(fresh))
            self._emit("shed", n=len(fresh))
            raise _Shed(len(fresh), retry)

        for key, job in fresh.items():
            self._inflight[key] = job
            self._queued += 1
            self.stats.admitted += 1
            self._queue.put_nowait(job)
            self._emit("admit", key=key, n=self._queued)
        self.stats.note_queue_depth(self._queued)
        return plan

    # ------------------------------------------------------------------
    # Batching and execution
    # ------------------------------------------------------------------
    async def _batcher(self) -> None:
        """Coalesce queued jobs into batches and dispatch them."""
        loop = asyncio.get_running_loop()
        while True:
            first = await self._queue.get()
            if first is _STOP:
                return
            batch = [first]
            closes_at = loop.time() + self.linger_s
            stop = False
            while len(batch) < self.batch_size:
                remaining = closes_at - loop.time()
                if remaining <= 0:
                    break
                try:
                    nxt = await asyncio.wait_for(self._queue.get(), remaining)
                except asyncio.TimeoutError:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                batch.append(nxt)
            self._queued -= len(batch)
            self.stats.note_batch(len(batch))
            self._emit("batch", n=len(batch))
            task = asyncio.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)
            if stop:
                return

    async def _run_batch(self, batch: list[_Inflight]) -> None:
        loop = asyncio.get_running_loop()
        work = functools.partial(
            run_batch_worker,
            [job.spec for job in batch],
            self.timeout,
            self._cache_dir,
            self._use_cache,
        )
        try:
            outcomes = await loop.run_in_executor(self._executor, work)
        except Exception as exc:  # pool breakage, pickling, OOM-kill
            outcomes = [
                BatchOutcome(
                    key=job.key,
                    spec=job.spec,
                    record=None,
                    source="error",
                    error=f"{type(exc).__name__}: {exc}",
                )
                for job in batch
            ]
        for job, outcome in zip(batch, outcomes):
            if outcome.source == "executed":
                self.stats.executed += 1
                self.stats.note_outcome(outcome.wall_seconds, outcome.max_rss_kb)
            elif outcome.source == "cache":
                self.stats.cache_races_won_elsewhere += 1
            else:
                self.stats.failed += 1
            self._emit(
                "job",
                key=job.key,
                n=outcome.max_rss_kb,
                value=outcome.wall_seconds,
            )
            self._inflight.pop(job.key, None)
            if not job.future.done():
                job.future.set_result(outcome)

    # ------------------------------------------------------------------
    # HTTP surface
    # ------------------------------------------------------------------
    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                request = await read_request(reader)
            except ProtocolError as exc:
                self.stats.bad_requests += 1
                await send_json(writer, exc.status, {"error": str(exc)})
                return
            if request is None:
                return
            self.stats.requests += 1
            await self._route(request, writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.TimeoutError):
            pass  # client went away; shared work continues regardless
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _route(self, request: Request, writer: asyncio.StreamWriter) -> None:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            await send_json(writer, 200, {"ok": True, "draining": self._draining})
        elif route == ("GET", "/status"):
            await send_json(writer, 200, self.status())
        elif route == ("POST", "/sweep"):
            await self._handle_sweep(request, writer)
        elif route == ("POST", "/shutdown"):
            await send_json(writer, 200, {"ok": True, "stats": self.stats.to_dict()})
            # Reply first, then drain — the asyncio server keeps this
            # connection's response flowing while new accepts stop.
            asyncio.create_task(self.shutdown(drain=True))
        elif request.path in ("/healthz", "/status", "/sweep", "/shutdown"):
            self.stats.bad_requests += 1
            await send_json(writer, 405, {"error": f"{request.method} not allowed"})
        else:
            self.stats.bad_requests += 1
            await send_json(writer, 404, {"error": f"no route {request.path}"})

    def status(self) -> dict:
        """The /status payload; ``cache`` uses the shared stats schema
        (``repro cache stats --json``) with the service's live counters
        plus its dedup count folded in."""
        cache_payload = None
        if self.cache is not None:
            cache_stats = self.cache.stats().to_dict()
            cache_stats["counters"]["dedup"] = self.stats.dedup_hits
            cache_payload = cache_stats
        return {
            "ok": True,
            "draining": self._draining,
            "workers": self.workers,
            "inline": self.inline,
            "batch_size": self.batch_size,
            "max_queue": self.max_queue,
            "uptime_seconds": round(time.monotonic() - self._t0, 3),
            "queue": {
                "depth": self._queued,
                "capacity": self.max_queue,
                "inflight_jobs": len(self._inflight),
                "inflight_batches": len(self._batch_tasks),
            },
            "stats": self.stats.to_dict(),
            "cache": cache_payload,
        }

    async def _handle_sweep(self, request: Request, writer: asyncio.StreamWriter) -> None:
        if self._draining:
            await send_json(
                writer, 503, {"error": "service is draining"},
                extra_headers=[("Retry-After", "5")],
            )
            return
        try:
            payload = request.json()
            if not isinstance(payload, dict) or not isinstance(
                payload.get("jobs"), list
            ):
                raise ProtocolError(400, 'body must be {"jobs": [spec, ...]}')
            if not payload["jobs"]:
                raise ProtocolError(400, "empty job list")
            specs = [spec_from_dict(entry) for entry in payload["jobs"]]
            for spec in specs:
                spec.validate()
        except ProtocolError as exc:
            self.stats.bad_requests += 1
            await send_json(writer, exc.status, {"error": str(exc)})
            return
        except ReproError as exc:
            self.stats.bad_requests += 1
            await send_json(writer, 400, {"error": str(exc)})
            return

        self.stats.sweep_requests += 1
        self._emit("request", n=len(specs))
        stream = bool(payload.get("stream", True))
        try:
            plan = self._admit_sweep(specs)
        except _Shed as exc:
            await send_json(
                writer, 429,
                {"error": str(exc), "retry_after": exc.retry_after},
                extra_headers=[("Retry-After", str(exc.retry_after))],
            )
            return

        accepted = {
            "event": "accepted",
            "jobs": len(plan),
            "warm": sum(1 for row in plan if row[2] == "warm"),
            "dedup": sum(1 for row in plan if row[2] == "dedup"),
            "admitted": sum(1 for row in plan if row[2] == "admitted"),
        }
        if stream:
            await start_ndjson(writer)
            await send_ndjson_line(writer, accepted)

        # Completion order, not submission order: warm rows are ready
        # now, futures land as batches finish.  A per-request queue
        # serializes them back into one response stream.
        done_q: asyncio.Queue = asyncio.Queue()
        for index, (key, spec, source, payload_obj) in enumerate(plan):
            if source == "warm":
                done_q.put_nowait((index, payload_obj, source))
            else:
                def _deliver(fut, index=index, source=source):
                    done_q.put_nowait((index, fut, source))

                payload_obj.add_done_callback(_deliver)

        results: list[dict | None] = [None] * len(plan)
        failed = 0
        for _ in range(len(plan)):
            index, obj, source = await done_q.get()
            key, spec, _, _ = plan[index]
            entry = self._result_entry(key, spec, obj, source)
            if entry["error"] is not None:
                failed += 1
            results[index] = entry
            if stream:
                progress = dict(entry)
                progress["event"] = "job"
                progress.pop("record", None)  # records ride the summary
                await send_ndjson_line(writer, progress)

        summary = {
            "event": "done",
            "jobs": len(plan),
            "warm": accepted["warm"],
            "dedup": accepted["dedup"],
            "executed": sum(
                1 for entry in results if entry and entry["source"] == "executed"
            ),
            "failed": failed,
            "results": results,
            "stats": self.stats.to_dict(),
        }
        if stream:
            await send_ndjson_line(writer, summary)
            await end_chunks(writer)
        else:
            await send_json(writer, 200, summary)

    def _result_entry(self, key: str, spec: JobSpec, obj, source: str) -> dict:
        """One job's wire entry from a record, outcome, or dead future."""
        entry = {
            "key": key,
            "spec": spec_to_dict(spec),
            "source": source,
            "record": None,
            "error": None,
            "exec": None,
        }
        if source == "warm":
            entry["record"] = run_record_to_dict(obj)
            return entry
        future = obj
        exc = future.exception()
        if exc is not None:
            entry["source"] = "error"
            entry["error"] = f"{type(exc).__name__}: {exc}"
            return entry
        outcome: BatchOutcome = future.result()
        if outcome.error is not None:
            entry["source"] = "error"
            entry["error"] = outcome.error
            return entry
        if source != "dedup":
            # An admitted job may still come back source="cache" when
            # another server instance won the disk race.
            entry["source"] = outcome.source
        entry["record"] = run_record_to_dict(outcome.record)
        entry["exec"] = {
            "wall_seconds": outcome.wall_seconds,
            "max_rss_kb": outcome.max_rss_kb,
        }
        return entry


def parse_ndjson_lines(chunks: bytes) -> list[dict]:
    """Split a byte buffer of NDJSON into parsed events (test helper)."""
    return [
        json.loads(line)
        for line in chunks.decode("utf-8").splitlines()
        if line.strip()
    ]
