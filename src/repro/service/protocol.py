"""A minimal HTTP/1.1 layer over asyncio streams — no dependencies.

The sweep service speaks just enough HTTP for real clients (``curl``,
``http.client``, browsers) to interoperate: request-line + headers +
``Content-Length`` bodies in, status + headers + either fixed-length
JSON or chunked NDJSON streams out.  Anything fancier (keep-alive
pipelining, compression, TLS) is deliberately out of scope — the
service sits behind one request per connection, which keeps the parser
~a page and the failure modes enumerable.

Responses come in two shapes:

* :func:`send_json` — one JSON document with ``Content-Length``, for
  status and error replies;
* :func:`start_ndjson` + :func:`send_ndjson_line` + :func:`end_chunks`
  — a ``Transfer-Encoding: chunked`` stream of newline-delimited JSON
  events, one line per job completion, which is what lets a client
  watch a sweep progress without polling.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

__all__ = [
    "MAX_BODY_BYTES",
    "MAX_HEADERS",
    "ProtocolError",
    "Request",
    "read_request",
    "send_json",
    "start_ndjson",
    "send_ndjson_line",
    "end_chunks",
    "STATUS_REASONS",
]

#: Largest request body the server will buffer (a million-job sweep is
#: ~100 MiB of specs; callers that big should shard their requests).
MAX_BODY_BYTES = 32 * 1024 * 1024
#: Header-count bound — way above any legitimate client, low enough to
#: stop a slow-loris drip of header lines.
MAX_HEADERS = 64
#: One header or request line may not exceed this many bytes.
MAX_LINE_BYTES = 16 * 1024

STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class ProtocolError(Exception):
    """A malformed or over-limit request; carries the HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self):
        """The body decoded as JSON (raises :class:`ProtocolError`)."""
        if not self.body:
            return None
        try:
            return json.loads(self.body)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ProtocolError(400, f"request body is not valid JSON: {exc}")


async def _read_line(reader: asyncio.StreamReader) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return b""  # clean EOF between requests
        raise ProtocolError(400, "truncated request")
    except asyncio.LimitOverrunError:
        raise ProtocolError(413, "request line too long")
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(413, "request line too long")
    return line


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request; ``None`` on clean EOF before a request line."""
    start = await _read_line(reader)
    if not start:
        return None
    parts = start.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ProtocolError(400, f"malformed request line {start!r}")
    method, target, _version = parts
    path, _, query = target.partition("?")

    headers: dict[str, str] = {}
    while True:
        line = await _read_line(reader)
        if line in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADERS:
            raise ProtocolError(413, "too many headers")
        name, sep, value = line.decode("latin-1").partition(":")
        if not sep:
            raise ProtocolError(400, f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()

    body = b""
    length = headers.get("content-length")
    if length is not None:
        try:
            n = int(length)
        except ValueError:
            raise ProtocolError(400, f"bad Content-Length {length!r}")
        if n < 0 or n > MAX_BODY_BYTES:
            raise ProtocolError(413, f"body of {n} bytes exceeds {MAX_BODY_BYTES}")
        if n:
            try:
                body = await reader.readexactly(n)
            except asyncio.IncompleteReadError:
                raise ProtocolError(400, "truncated request body")
    elif "chunked" in headers.get("transfer-encoding", "").lower():
        raise ProtocolError(400, "chunked request bodies are not supported")
    return Request(method=method, path=path, query=query, headers=headers, body=body)


def _head(status: int, headers: list[tuple[str, str]]) -> bytes:
    reason = STATUS_REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    lines += [f"{name}: {value}" for name, value in headers]
    lines += ["Connection: close", "", ""]
    return "\r\n".join(lines).encode("latin-1")


async def send_json(
    writer: asyncio.StreamWriter,
    status: int,
    payload,
    *,
    extra_headers: list[tuple[str, str]] | None = None,
) -> None:
    """One fixed-length JSON response (status, errors, final results)."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    headers = [
        ("Content-Type", "application/json"),
        ("Content-Length", str(len(body))),
    ] + (extra_headers or [])
    writer.write(_head(status, headers) + body)
    await writer.drain()


async def start_ndjson(writer: asyncio.StreamWriter, status: int = 200) -> None:
    """Open a chunked NDJSON stream (one JSON event per line)."""
    headers = [
        ("Content-Type", "application/x-ndjson"),
        ("Transfer-Encoding", "chunked"),
    ]
    writer.write(_head(status, headers))
    await writer.drain()


async def send_ndjson_line(writer: asyncio.StreamWriter, payload) -> None:
    """Emit one event line on an open chunked stream."""
    line = json.dumps(payload, sort_keys=True).encode("utf-8") + b"\n"
    writer.write(f"{len(line):x}\r\n".encode("latin-1") + line + b"\r\n")
    await writer.drain()


async def end_chunks(writer: asyncio.StreamWriter) -> None:
    """Terminate a chunked stream."""
    writer.write(b"0\r\n\r\n")
    await writer.drain()
