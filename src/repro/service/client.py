"""Client for the sweep service: retry, backoff, streamed progress.

``SweepClient`` wraps the service's little HTTP surface in a blocking,
dependency-free API (stdlib ``http.client``).  Submission is safe to
retry by construction — jobs are content-keyed, the server dedups
in-flight work and answers warm keys from the cache — so the client
retries *aggressively*: connection errors back off exponentially,
HTTP 429 honours the server's ``Retry-After``, and a retried sweep
costs at most a cache read per job, never a duplicate simulation.

Typical use::

    from repro.runner import expand_sweep
    from repro.service import SweepClient

    client = SweepClient("http://127.0.0.1:8737")
    summary = client.submit(
        expand_sweep("sort", 8, 64, [1, 2, 4, 8]),
        on_progress=lambda ev: print(ev["key"][:8], ev["source"]),
    )
    print(summary["executed"], "executed,", summary["warm"], "warm")
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.parse
from typing import Callable, Iterable

from ..errors import ReproError
from ..runner.jobs import JobSpec, spec_to_dict

__all__ = ["ServiceError", "ServiceUnavailable", "SweepClient"]


class ServiceError(ReproError):
    """The service answered with an error (carries the HTTP status)."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceUnavailable(ServiceError):
    """Retries exhausted against backpressure or a dead server."""


class SweepClient:
    """Blocking client with retry/backoff for one sweep service."""

    def __init__(
        self,
        url: str = "http://127.0.0.1:8737",
        *,
        retries: int = 5,
        backoff_s: float = 0.2,
        max_backoff_s: float = 10.0,
        timeout_s: float = 300.0,
    ) -> None:
        parsed = urllib.parse.urlsplit(url if "//" in url else f"http://{url}")
        if parsed.scheme != "http":
            raise ReproError(f"only http:// service URLs are supported, got {url!r}")
        self.host = parsed.hostname or "127.0.0.1"
        self.port = parsed.port or 80
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------
    def _connect(self) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=self.timeout_s)

    def _request(
        self,
        method: str,
        path: str,
        payload: dict | None = None,
        *,
        consume: Callable[[http.client.HTTPResponse], object] | None = None,
    ):
        """One request with the retry policy; returns parsed JSON or the
        value of ``consume(response)`` for streaming endpoints."""
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        delay = self.backoff_s
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(min(delay, self.max_backoff_s))
                delay *= 2
            conn = self._connect()
            try:
                conn.request(method, path, body=body, headers=headers)
                response = conn.getresponse()
                if response.status == 429 or response.status == 503:
                    retry_after = response.getheader("Retry-After")
                    detail = response.read().decode("utf-8", "replace").strip()
                    last_error = ServiceUnavailable(response.status, detail)
                    if retry_after is not None:
                        try:
                            delay = max(float(retry_after), self.backoff_s)
                        except ValueError:
                            pass
                    continue
                if response.status >= 400:
                    detail = response.read().decode("utf-8", "replace").strip()
                    try:
                        detail = json.loads(detail).get("error", detail)
                    except (json.JSONDecodeError, AttributeError):
                        pass
                    raise ServiceError(response.status, detail)
                if consume is not None:
                    return consume(response)
                return json.loads(response.read().decode("utf-8"))
            except (ConnectionError, TimeoutError, http.client.HTTPException, OSError) as exc:
                # Safe to retry: submission is idempotent (content keys).
                last_error = exc
                continue
            finally:
                conn.close()
        raise ServiceUnavailable(
            getattr(last_error, "status", 503),
            f"no usable response from {self.host}:{self.port} after "
            f"{self.retries + 1} attempts ({last_error})",
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    def health(self) -> bool:
        """Liveness: True when the server answers and is not draining."""
        try:
            payload = self._request("GET", "/healthz")
        except ReproError:
            return False
        return bool(payload.get("ok")) and not payload.get("draining")

    def status(self) -> dict:
        """The server's /status payload (stats, queue, cache schema)."""
        return self._request("GET", "/status")

    def shutdown(self) -> dict:
        """Ask the server to drain and exit; returns its final stats."""
        return self._request("POST", "/shutdown")

    def submit(
        self,
        specs: Iterable[JobSpec | dict],
        *,
        stream: bool = True,
        on_progress: Callable[[dict], None] | None = None,
    ) -> dict:
        """Submit one sweep and block until every job is resolved.

        Returns the server's ``done`` summary: per-request ``warm`` /
        ``dedup`` / ``executed`` / ``failed`` counts and a ``results``
        list of ``{key, spec, source, record, error, exec}`` entries in
        submission order.  With ``stream`` (default) the server sends
        one NDJSON event per completed job and ``on_progress`` sees each
        one; without it the call returns only the final document.
        """
        jobs = [
            spec_to_dict(spec) if isinstance(spec, JobSpec) else dict(spec)
            for spec in specs
        ]
        if not jobs:
            raise ReproError("submit() needs at least one job spec")
        payload = {"jobs": jobs, "stream": stream}
        if not stream:
            return self._request("POST", "/sweep", payload)

        def consume(response: http.client.HTTPResponse) -> dict:
            summary = None
            while True:
                line = response.readline()
                if not line:
                    break
                event = json.loads(line.decode("utf-8"))
                if on_progress is not None:
                    on_progress(event)
                if event.get("event") == "done":
                    summary = event
            if summary is None:
                raise ServiceError(502, "stream ended before the done event")
            return summary

        return self._request("POST", "/sweep", payload, consume=consume)
