"""Exception hierarchy for the EM-X reproduction library.

Every error raised by this package derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
letting genuine programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigError",
    "PlanError",
    "PlanCompatibilityWarning",
    "SimulationError",
    "FastForwardMiss",
    "CompileDivergence",
    "DeadlockError",
    "AddressError",
    "MemoryFault",
    "SegmentError",
    "NetworkError",
    "RoutingError",
    "PacketError",
    "SchedulerError",
    "ThreadProtocolError",
    "BarrierError",
    "ProgramError",
    "EmcSyntaxError",
    "EmcRuntimeError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigError(ReproError):
    """An invalid machine, timing, or experiment configuration."""


class PlanError(ConfigError):
    """An invalid or self-contradictory :class:`repro.api.ExecutionPlan`.

    Raised by ``ExecutionPlan.validate()`` (and the entry points that
    funnel through it) for malformed plans — an unknown fidelity, a
    negative shard count, a plan passed alongside the legacy keyword
    knobs it replaces.  Mode *incompatibilities* that the engine can
    resolve safely (hybrid fidelity under sharding, strict cohort
    validation without the compiler) are downgraded to
    :class:`PlanCompatibilityWarning` instead.
    """


class PlanCompatibilityWarning(RuntimeWarning):
    """An execution-plan combination that is legal but partially inert.

    The single warning category for mode interactions: hybrid fidelity
    under ``shards=K`` (the sharded engine always runs detailed),
    strict cohort validation without ``compiled=True`` (nothing to
    validate).  Subclasses :class:`RuntimeWarning` so pre-existing
    ``pytest.warns(RuntimeWarning)`` callers keep matching.
    """


class SimulationError(ReproError):
    """The discrete-event engine reached an inconsistent state."""


class FastForwardMiss(SimulationError):
    """A hybrid fast-forward precondition broke after the fact.

    Raised by the ``fidelity="hybrid"`` machinery when an already
    fast-forwarded window turns out to be contended (a packet would have
    beaten a forwarded reservation to a port, a memory word read early
    by a folded DMA was overwritten before the real service time, or the
    canonical in-flight reconstruction is interleaving-dependent).  The
    hybrid driver catches it and re-runs the workload at
    ``fidelity="detailed"`` — metric exactness is preserved by falling
    back, never by guessing.
    """


class CompileDivergence(SimulationError):
    """A compiled cohort trace disagreed with the interpreted thread.

    Only raised when the cohort manager runs in ``strict`` mode (the
    differential harness and divergence tests); production runs handle
    the same condition with a silent per-thread bailout instead.  The
    message carries the first-divergent-effect diagnosis.
    """


class DeadlockError(SimulationError):
    """The simulation stalled: live threads remain but no event can fire.

    Raised when the event queue drains while threads are still suspended
    (for example a barrier that can never be released, or a remote read
    whose reply packet was lost).
    """


class AddressError(ReproError):
    """A malformed or out-of-range global address."""


class MemoryFault(ReproError):
    """An access outside a processor's local memory bounds."""


class SegmentError(MemoryFault):
    """Template / operand segment allocation failure."""


class NetworkError(ReproError):
    """Interconnect-level failure."""


class RoutingError(NetworkError):
    """A packet could not be routed to its destination switch."""


class PacketError(ReproError):
    """A malformed packet (wrong kind, bad payload width, …)."""


class SchedulerError(ReproError):
    """The hardware FIFO thread scheduler was driven incorrectly."""


class ThreadProtocolError(ReproError):
    """A thread body yielded something that is not a valid effect.

    Thread bodies are generators that must yield :class:`repro.core.effects.Effect`
    instances; yielding anything else is a programming error in the
    *guest* program, reported with this dedicated type.
    """


class BarrierError(ReproError):
    """Misuse of an iteration barrier (wrong party count, reuse, …)."""


class ProgramError(ReproError):
    """A guest program violated the machine's execution contract."""


class EmcSyntaxError(ProgramError):
    """Lexing or parsing failure in an EM-C source program."""


class EmcRuntimeError(ProgramError):
    """An EM-C program failed while executing on the machine."""
