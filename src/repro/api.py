"""One front door to the paper's workloads.

Every workload (`repro.apps`) registers itself in :data:`APPS` under its
CLI name via :func:`register_app`; :func:`run` is the single public
entry point that looks the app up, runs it with the unified keyword-only
signature, checks verification, and returns the
:class:`~repro.machine.MachineReport`::

    import repro

    report = repro.run("sort", n=1024, n_pes=16, h=4)
    print(report.runtime_cycles)

The CLI (``python -m repro``) and the experiment runner dispatch through
the same registry, so adding a workload is one ``@register_app("name")``
decorator — not parallel edits to three hand-maintained dicts.

**Legacy calls.**  The ``run_*`` functions were historically called with
``(n_pes, n, h)`` positional; :func:`register_app` wraps each app with a
shim that still accepts that pattern but emits a
:class:`DeprecationWarning`.  New code passes keywords only.
"""

from __future__ import annotations

import functools
import warnings
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, ClassVar

from .errors import PlanCompatibilityWarning, PlanError, ProgramError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import MachineReport

__all__ = [
    "APPS",
    "ExecutionPlan",
    "register_app",
    "get_app",
    "app_names",
    "result_ok",
    "call_with_plan",
    "run",
    "connect",
]

#: Registry of runnable workloads, keyed by CLI name (and aliases).
#: Populated as a side effect of importing :mod:`repro.apps`; use
#: :func:`get_app`/:func:`app_names` to read it with loading handled.
APPS: dict[str, Callable[..., Any]] = {}

#: Historical positional order of the ``run_*`` entry points.
_LEGACY_POSITIONAL = ("n_pes", "n", "h")


def register_app(name: str, *aliases: str) -> Callable:
    """Register a workload entry point under ``name`` (plus aliases).

    The decorated function must take keyword-only arguments including at
    least ``n_pes``, ``n``, ``h``, ``config`` and ``obs``, and return a
    result object exposing ``.report`` (a MachineReport) and a
    verification flag (``sorted_ok`` or ``verified``).  The returned
    wrapper additionally accepts up to three *legacy* positional
    arguments, mapped to ``(n_pes, n, h)`` with a DeprecationWarning.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if args:
                if len(args) > len(_LEGACY_POSITIONAL):
                    raise TypeError(
                        f"{fn.__name__}() takes at most {len(_LEGACY_POSITIONAL)} "
                        f"positional arguments ({len(args)} given)"
                    )
                warnings.warn(
                    f"calling {fn.__name__} with positional arguments is "
                    f"deprecated; pass {', '.join(_LEGACY_POSITIONAL[: len(args)])} "
                    f"as keywords",
                    DeprecationWarning,
                    stacklevel=2,
                )
                for pname, value in zip(_LEGACY_POSITIONAL, args):
                    if pname in kwargs:
                        raise TypeError(
                            f"{fn.__name__}() got multiple values for argument {pname!r}"
                        )
                    kwargs[pname] = value
            return fn(**kwargs)

        wrapper.app_names = (name, *aliases)  # type: ignore[attr-defined]
        for key in (name, *aliases):
            if key in APPS:
                raise ProgramError(f"app name {key!r} registered twice")
            APPS[key] = wrapper
        return wrapper

    return decorate


def _load_apps() -> None:
    """Make sure the registry is populated (idempotent)."""
    from . import apps  # noqa: F401  (import side effect: decorators run)


def get_app(name: str) -> Callable[..., Any]:
    """The registered entry point for ``name``; raises ProgramError."""
    _load_apps()
    try:
        return APPS[name]
    except KeyError:
        raise ProgramError(
            f"unknown app {name!r}; registered apps: {', '.join(app_names())}"
        ) from None


def app_names() -> tuple[str, ...]:
    """All registered app names (sorted, aliases included)."""
    _load_apps()
    return tuple(sorted(APPS))


def result_ok(result: Any) -> bool:
    """Did an app result pass its self-verification?

    Apps flag verification as ``sorted_ok`` (the sorters) or
    ``verified`` (FFT); results with neither are treated as passing.
    """
    ok = getattr(result, "sorted_ok", None)
    if ok is None:
        ok = getattr(result, "verified", True)
    return bool(ok)


@dataclass(frozen=True)
class ExecutionPlan:
    """How to execute a workload — the one bundle of engine-mode knobs.

    Execution strategy used to sprawl: ``shards=``, ``fidelity=`` and
    ``compiled=`` were threaded separately through :func:`run`,
    :class:`~repro.config.MachineConfig`,
    :class:`~repro.runner.jobs.JobSpec`,
    :class:`~repro.runner.sweep.RunnerOptions` and every CLI
    subcommand.  An ``ExecutionPlan`` carries all of them once::

        report = repro.run("sort", n=1024, n_pes=16, h=4,
                           plan=repro.ExecutionPlan(shards=4))

    * ``shards`` — run the simulation across K forked worker processes
      under the conservative-window scheme (:mod:`repro.sim.parallel`);
      metrics are identical for every K, ``0`` keeps the sequential
      engine.
    * ``fidelity`` — ``"hybrid"`` fast-forwards conflict-free windows
      analytically (:mod:`repro.sim.hybrid`); ``"detailed"`` (default)
      defers to the machine config, which itself defaults to detailed.
    * ``compiled`` — route thread creation through the cohort compiler
      (:mod:`repro.compile`).

    The class is frozen (hashable, safe as a cache-key ingredient) and
    deliberately small; future execution modes (optimistic sync,
    alternate topologies) extend it here rather than adding another
    keyword to every entry point.  :meth:`validate` is the single home
    for mode-combination rules; :meth:`parse` turns the CLI's
    ``--plan shards=4,fidelity=hybrid`` spelling into a plan.
    """

    shards: int = 0
    fidelity: str = "detailed"
    compiled: bool = False

    FIDELITIES: ClassVar[tuple[str, ...]] = ("detailed", "hybrid")

    def validate(self) -> "ExecutionPlan":
        """Check the plan; returns ``self`` so call sites can chain.

        Malformed plans raise :class:`~repro.errors.PlanError`.  Legal
        but partially-inert combinations emit a single
        :class:`~repro.errors.PlanCompatibilityWarning`:

        * ``fidelity="hybrid"`` with ``shards=K`` — the sharded engine
          always simulates at detailed fidelity (metrics unaffected);
        * ``compiled=True`` with ``fidelity="hybrid"`` — supported, but
          a fast-forward miss reruns the app at detailed fidelity and
          the cohort compiler repeats its trace/record work on the
          rerun (metrics unaffected; cohort diagnostics describe the
          run that produced the returned report);
        * strict cohort validation (:func:`repro.compile.strict_cohorts`)
          active without ``compiled=True`` — nothing to validate.
        """
        if type(self.shards) is not int or self.shards < 0:
            raise PlanError(f"shards must be a non-negative int, got {self.shards!r}")
        if self.fidelity not in self.FIDELITIES:
            raise PlanError(
                f"unknown fidelity {self.fidelity!r}; expected one of {self.FIDELITIES}"
            )
        if type(self.compiled) is not bool:
            raise PlanError(f"compiled must be a bool, got {self.compiled!r}")
        if self.shards and self.fidelity == "hybrid":
            warnings.warn(
                f"fidelity='hybrid' is disabled under shards={self.shards}: the "
                "sharded engine always simulates at detailed fidelity (metrics "
                "are unaffected; drop shards= to get fast-forward)",
                PlanCompatibilityWarning,
                stacklevel=2,
            )
        if self.compiled and self.fidelity == "hybrid":
            warnings.warn(
                "compiled=True with fidelity='hybrid': a fast-forward miss "
                "reruns the app at detailed fidelity, repeating the cohort "
                "compiler's trace/record work (metrics are unaffected; cohort "
                "diagnostics describe the run that produced the report)",
                PlanCompatibilityWarning,
                stacklevel=2,
            )
        if not self.compiled:
            # strict_cohorts() can only be active if its module is
            # already imported; don't pull the compiler in just to ask.
            import sys

            cohort = sys.modules.get("repro.compile.cohort")
            if cohort is not None and cohort.strict_default():
                warnings.warn(
                    "strict_cohorts() is active but the plan has compiled=False: "
                    "no cohort traces will be validated",
                    PlanCompatibilityWarning,
                    stacklevel=2,
                )
        return self

    @classmethod
    def parse(cls, text: str) -> "ExecutionPlan":
        """Build a plan from the CLI spelling ``key=value[,key=value...]``.

        Keys are the field names; ``compiled`` accepts a bare flag or a
        boolean literal: ``"shards=4,fidelity=hybrid"``,
        ``"shards=2,compiled"``.  An empty string is the default plan.
        """
        values: dict[str, Any] = {}
        for token in filter(None, (t.strip() for t in text.split(","))):
            key, sep, raw = token.partition("=")
            if not sep and key == "compiled":
                key, raw = "compiled", "true"
            elif not sep:
                raise PlanError(f"malformed plan token {token!r}; expected key=value")
            if key == "shards":
                try:
                    values[key] = int(raw)
                except ValueError:
                    raise PlanError(f"shards must be an int, got {raw!r}") from None
            elif key == "fidelity":
                values[key] = raw
            elif key == "compiled":
                if raw.lower() not in ("true", "false", "1", "0"):
                    raise PlanError(f"compiled must be a boolean, got {raw!r}")
                values[key] = raw.lower() in ("true", "1")
            else:
                raise PlanError(
                    f"unknown plan key {key!r}; expected shards/fidelity/compiled"
                )
        return cls(**values).validate()

    def describe(self) -> str:
        """The canonical compact spelling (parseable by :meth:`parse`)."""
        parts = [f"shards={self.shards}", f"fidelity={self.fidelity}"]
        if self.compiled:
            parts.append("compiled")
        return ",".join(parts)


def call_with_plan(fn: Callable[..., Any], kwargs: dict, plan: ExecutionPlan) -> Any:
    """Run ``fn(**kwargs)`` under ``plan`` — the single dispatch funnel.

    Every entry point (:func:`run`, the CLI, the runner's
    :func:`~repro.runner.worker.execute_job`) resolves its knobs into an
    :class:`ExecutionPlan` and lands here.  ``kwargs`` is the app's
    keyword dict (``config``/``obs`` included); plan fields left at
    their defaults defer to any machine config already present, so a
    config built with ``fidelity="hybrid"`` or ``compiled=True`` keeps
    meaning what it always did.
    """
    config = kwargs.get("config")
    if plan.compiled and (config is None or not config.compiled):
        from dataclasses import replace as _replace

        from .config import MachineConfig

        config = (
            MachineConfig(compiled=True)
            if config is None
            else _replace(config, compiled=True)
        )
        kwargs = {**kwargs, "config": config}
    fidelity = plan.fidelity
    if fidelity == "detailed" and config is not None and config.fidelity == "hybrid":
        fidelity = "hybrid"  # plan left at default: the config's choice stands
    elif fidelity == "hybrid" and (config is None or config.fidelity != "hybrid"):
        from .sim.hybrid import _with_fidelity

        kwargs = _with_fidelity(kwargs, "hybrid")
    # Validate the *effective* plan — config-carried fidelity folded in —
    # so the mode-combination rules fire no matter how the knob arrived.
    effective = (
        plan
        if plan.fidelity == fidelity
        else ExecutionPlan(shards=plan.shards, fidelity=fidelity, compiled=plan.compiled)
    )
    effective.validate()
    if plan.shards:
        from .sim import parallel

        return parallel.call_app(fn, plan.shards, kwargs)
    if fidelity == "hybrid":
        from .sim.hybrid import call_with_fallback

        return call_with_fallback(fn, kwargs)
    return fn(**kwargs)


def run(
    app: str,
    *,
    n: int,
    n_pes: int,
    h: int,
    config: Any = None,
    obs: Any = None,
    plan: ExecutionPlan | None = None,
    shards: int | None = None,
    fidelity: str | None = None,
    compiled: bool | None = None,
    **app_kwargs: Any,
) -> "MachineReport":
    """Run one workload and return its :class:`~repro.machine.MachineReport`.

    ``app`` is a registry name (see :func:`app_names`); ``n`` the problem
    size, ``n_pes`` the processor count, ``h`` the threads per processor.
    Execution strategy comes in as ``plan=ExecutionPlan(...)`` — see
    :class:`ExecutionPlan` for what each field does.  Extra keywords are
    forwarded to the app (e.g. ``seed=``, ``verify=``, ``kernel=``).
    Raises :class:`~repro.errors.ProgramError` for unknown apps or when
    the run fails its self-verification.

    The separate ``shards=``/``fidelity=``/``compiled=`` keywords are
    the pre-plan spelling, kept as a deprecated shim: each call site
    using them gets one :class:`DeprecationWarning` and the equivalent
    plan built on its behalf.  They cannot be combined with ``plan=``.
    """
    fn = get_app(app)
    kwargs = dict(n_pes=n_pes, n=n, h=h, config=config, obs=obs, **app_kwargs)
    legacy = {
        name: value
        for name, value in (
            ("shards", shards), ("fidelity", fidelity), ("compiled", compiled),
        )
        if value is not None
    }
    if legacy:
        if plan is not None:
            raise PlanError(
                "pass plan=ExecutionPlan(...) or the legacy "
                "shards=/fidelity=/compiled= keywords, not both"
            )
        warnings.warn(
            f"repro.run({', '.join(f'{k}=' for k in sorted(legacy))}...) is "
            "deprecated; pass plan=repro.ExecutionPlan(...) instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if compiled is not None:
            # Explicit compiled=False historically forced the compiler
            # *off* even when config said otherwise; preserve that by
            # rewriting the config here, before the plan dispatch.
            from dataclasses import replace as _replace

            from .config import MachineConfig

            cfg = kwargs.get("config")
            kwargs["config"] = (
                MachineConfig(compiled=compiled)
                if cfg is None
                else _replace(cfg, compiled=compiled)
            )
        if fidelity is not None:
            from .sim.hybrid import _with_fidelity

            kwargs = _with_fidelity(kwargs, fidelity)
        plan = ExecutionPlan(
            shards=shards or 0,
            fidelity=fidelity or "detailed",
            compiled=bool(compiled),
        )
    result = call_with_plan(fn, kwargs, plan or ExecutionPlan())
    if not result_ok(result):
        raise ProgramError(f"app {app!r} (n={n}, n_pes={n_pes}, h={h}) failed verification")
    return result.report


def connect(url: str = "http://127.0.0.1:8737", **client_kwargs: Any):
    """A :class:`~repro.service.client.SweepClient` for a running sweep
    service (``repro serve``) — the remote counterpart of :func:`run`::

        client = repro.connect("http://127.0.0.1:8737")
        summary = client.submit(expand_sweep("sort", 8, 64, [1, 2, 4]))

    Submissions are content-keyed, deduplicated against other clients'
    in-flight work on the server, and answered from its shared result
    cache when warm.  Keyword arguments (``retries``, ``backoff_s``,
    ``timeout_s``) configure the client's retry policy.
    """
    from .service import SweepClient

    return SweepClient(url, **client_kwargs)
