"""One front door to the paper's workloads.

Every workload (`repro.apps`) registers itself in :data:`APPS` under its
CLI name via :func:`register_app`; :func:`run` is the single public
entry point that looks the app up, runs it with the unified keyword-only
signature, checks verification, and returns the
:class:`~repro.machine.MachineReport`::

    import repro

    report = repro.run("sort", n=1024, n_pes=16, h=4)
    print(report.runtime_cycles)

The CLI (``python -m repro``) and the experiment runner dispatch through
the same registry, so adding a workload is one ``@register_app("name")``
decorator — not parallel edits to three hand-maintained dicts.

**Legacy calls.**  The ``run_*`` functions were historically called with
``(n_pes, n, h)`` positional; :func:`register_app` wraps each app with a
shim that still accepts that pattern but emits a
:class:`DeprecationWarning`.  New code passes keywords only.
"""

from __future__ import annotations

import functools
import warnings
from typing import TYPE_CHECKING, Any, Callable

from .errors import ProgramError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .machine import MachineReport

__all__ = [
    "APPS",
    "register_app",
    "get_app",
    "app_names",
    "result_ok",
    "run",
    "connect",
]

#: Registry of runnable workloads, keyed by CLI name (and aliases).
#: Populated as a side effect of importing :mod:`repro.apps`; use
#: :func:`get_app`/:func:`app_names` to read it with loading handled.
APPS: dict[str, Callable[..., Any]] = {}

#: Historical positional order of the ``run_*`` entry points.
_LEGACY_POSITIONAL = ("n_pes", "n", "h")


def register_app(name: str, *aliases: str) -> Callable:
    """Register a workload entry point under ``name`` (plus aliases).

    The decorated function must take keyword-only arguments including at
    least ``n_pes``, ``n``, ``h``, ``config`` and ``obs``, and return a
    result object exposing ``.report`` (a MachineReport) and a
    verification flag (``sorted_ok`` or ``verified``).  The returned
    wrapper additionally accepts up to three *legacy* positional
    arguments, mapped to ``(n_pes, n, h)`` with a DeprecationWarning.
    """

    def decorate(fn: Callable[..., Any]) -> Callable[..., Any]:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            if args:
                if len(args) > len(_LEGACY_POSITIONAL):
                    raise TypeError(
                        f"{fn.__name__}() takes at most {len(_LEGACY_POSITIONAL)} "
                        f"positional arguments ({len(args)} given)"
                    )
                warnings.warn(
                    f"calling {fn.__name__} with positional arguments is "
                    f"deprecated; pass {', '.join(_LEGACY_POSITIONAL[: len(args)])} "
                    f"as keywords",
                    DeprecationWarning,
                    stacklevel=2,
                )
                for pname, value in zip(_LEGACY_POSITIONAL, args):
                    if pname in kwargs:
                        raise TypeError(
                            f"{fn.__name__}() got multiple values for argument {pname!r}"
                        )
                    kwargs[pname] = value
            return fn(**kwargs)

        wrapper.app_names = (name, *aliases)  # type: ignore[attr-defined]
        for key in (name, *aliases):
            if key in APPS:
                raise ProgramError(f"app name {key!r} registered twice")
            APPS[key] = wrapper
        return wrapper

    return decorate


def _load_apps() -> None:
    """Make sure the registry is populated (idempotent)."""
    from . import apps  # noqa: F401  (import side effect: decorators run)


def get_app(name: str) -> Callable[..., Any]:
    """The registered entry point for ``name``; raises ProgramError."""
    _load_apps()
    try:
        return APPS[name]
    except KeyError:
        raise ProgramError(
            f"unknown app {name!r}; registered apps: {', '.join(app_names())}"
        ) from None


def app_names() -> tuple[str, ...]:
    """All registered app names (sorted, aliases included)."""
    _load_apps()
    return tuple(sorted(APPS))


def result_ok(result: Any) -> bool:
    """Did an app result pass its self-verification?

    Apps flag verification as ``sorted_ok`` (the sorters) or
    ``verified`` (FFT); results with neither are treated as passing.
    """
    ok = getattr(result, "sorted_ok", None)
    if ok is None:
        ok = getattr(result, "verified", True)
    return bool(ok)


def run(
    app: str,
    *,
    n: int,
    n_pes: int,
    h: int,
    config: Any = None,
    obs: Any = None,
    shards: int | None = None,
    fidelity: str | None = None,
    compiled: bool | None = None,
    **app_kwargs: Any,
) -> "MachineReport":
    """Run one workload and return its :class:`~repro.machine.MachineReport`.

    ``app`` is a registry name (see :func:`app_names`); ``n`` the problem
    size, ``n_pes`` the processor count, ``h`` the threads per processor.
    ``shards=K`` runs the simulation itself across K worker processes
    under the conservative-window scheme (see
    :mod:`repro.sim.parallel`) — metrics are identical for every K ≥ 1,
    while ``shards=None`` (default) keeps the legacy sequential models.
    ``fidelity="hybrid"`` fast-forwards conflict-free windows with the
    closed-form analytic costs (metric-identical by construction; see
    :mod:`repro.sim.hybrid`), transparently falling back to one
    detailed rerun if the fast-forward layer declares a miss;
    ``fidelity=None`` defers to ``config`` (whose default is
    ``"detailed"``).  ``compiled=True`` routes thread creation through
    the cohort compiler (:mod:`repro.compile`) — identical metrics and
    events with threads of a shared shape replaying a compiled effect
    trace; ``compiled=None`` defers to ``config``.  Extra keywords are
    forwarded to the app (e.g.
    ``seed=``, ``verify=``, ``kernel=``).  Raises
    :class:`~repro.errors.ProgramError` for unknown apps or when the
    run fails its self-verification.
    """
    fn = get_app(app)
    kwargs = dict(n_pes=n_pes, n=n, h=h, config=config, obs=obs, **app_kwargs)
    if compiled is not None:
        from dataclasses import replace as _replace

        from .config import MachineConfig

        cfg = kwargs.get("config")
        kwargs["config"] = (
            MachineConfig(compiled=compiled)
            if cfg is None
            else _replace(cfg, compiled=compiled)
        )
        config = kwargs["config"]
    if fidelity is not None:
        from .sim.hybrid import _with_fidelity

        kwargs = _with_fidelity(kwargs, fidelity)
    if shards:
        from .sim import parallel

        result = parallel.call_app(fn, shards, kwargs)
    elif fidelity == "hybrid" or (
        config is not None and config.fidelity == "hybrid" and fidelity is None
    ):
        from .sim.hybrid import call_with_fallback

        result = call_with_fallback(fn, kwargs)
    else:
        result = fn(**kwargs)
    if not result_ok(result):
        raise ProgramError(f"app {app!r} (n={n}, n_pes={n_pes}, h={h}) failed verification")
    return result.report


def connect(url: str = "http://127.0.0.1:8737", **client_kwargs: Any):
    """A :class:`~repro.service.client.SweepClient` for a running sweep
    service (``repro serve``) — the remote counterpart of :func:`run`::

        client = repro.connect("http://127.0.0.1:8737")
        summary = client.submit(expand_sweep("sort", 8, 64, [1, 2, 4]))

    Submissions are content-keyed, deduplicated against other clients'
    in-flight work on the server, and answered from its shared result
    cache when warm.  Keyword arguments (``retries``, ``backoff_s``,
    ``timeout_s``) configure the client's retry policy.
    """
    from .service import SweepClient

    return SweepClient(url, **client_kwargs)
