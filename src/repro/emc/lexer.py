"""EM-C lexer.

Hand-written scanner producing a flat token stream with line/column
positions for error messages.  C-style ``//`` line comments and
``/* */`` block comments are skipped.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import EmcSyntaxError

__all__ = ["TokenKind", "Token", "Lexer", "KEYWORDS"]


class TokenKind(enum.Enum):
    """Lexical categories."""

    INT = "int"
    FLOAT = "float"
    STRING = "string"
    IDENT = "ident"
    KEYWORD = "keyword"
    OP = "op"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {"thread", "var", "if", "else", "while", "for", "break", "continue", "return", "mem"}
)

# Longest first so '==' wins over '='.
_OPERATORS = (
    "==", "!=", "<=", ">=", "&&", "||",
    "+", "-", "*", "/", "%", "<", ">", "=", "!",
)
_PUNCT = "(){}[],;"


@dataclass(frozen=True)
class Token:
    """One lexeme with its source position."""

    kind: TokenKind
    text: str
    line: int
    col: int

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.col})"


class Lexer:
    """Scan EM-C source into tokens."""

    def __init__(self, source: str) -> None:
        self.src = source
        self.pos = 0
        self.line = 1
        self.col = 1

    def _error(self, message: str) -> EmcSyntaxError:
        return EmcSyntaxError(f"lex error at {self.line}:{self.col}: {message}")

    def _peek(self, ahead: int = 0) -> str:
        i = self.pos + ahead
        return self.src[i] if i < len(self.src) else ""

    def _advance(self, n: int = 1) -> None:
        for _ in range(n):
            if self.pos < len(self.src):
                if self.src[self.pos] == "\n":
                    self.line += 1
                    self.col = 1
                else:
                    self.col += 1
                self.pos += 1

    def _skip_trivia(self) -> None:
        while True:
            ch = self._peek()
            if not ch:
                return
            if ch in " \t\r\n":
                self._advance()
            elif ch == "/" and self._peek(1) == "/":
                while self._peek() and self._peek() != "\n":
                    self._advance()
            elif ch == "/" and self._peek(1) == "*":
                self._advance(2)
                while self._peek() and not (self._peek() == "*" and self._peek(1) == "/"):
                    self._advance()
                if not self._peek():
                    raise self._error("unterminated block comment")
                self._advance(2)
            else:
                return

    def tokens(self) -> list[Token]:
        """Scan the whole source; always ends with one EOF token."""
        out: list[Token] = []
        while True:
            self._skip_trivia()
            line, col = self.line, self.col
            ch = self._peek()
            if not ch:
                out.append(Token(TokenKind.EOF, "", line, col))
                return out
            if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
                out.append(self._number(line, col))
            elif ch.isalpha() or ch == "_":
                out.append(self._ident(line, col))
            elif ch == '"':
                out.append(self._string(line, col))
            elif ch in _PUNCT:
                self._advance()
                out.append(Token(TokenKind.PUNCT, ch, line, col))
            else:
                for op in _OPERATORS:
                    if self.src.startswith(op, self.pos):
                        self._advance(len(op))
                        out.append(Token(TokenKind.OP, op, line, col))
                        break
                else:
                    raise self._error(f"unexpected character {ch!r}")

    def _number(self, line: int, col: int) -> Token:
        start = self.pos
        saw_dot = False
        while self._peek().isdigit() or (self._peek() == "." and not saw_dot):
            if self._peek() == ".":
                saw_dot = True
            self._advance()
        text = self.src[start : self.pos]
        if text.endswith("."):
            raise self._error(f"malformed number {text!r}")
        kind = TokenKind.FLOAT if saw_dot else TokenKind.INT
        return Token(kind, text, line, col)

    def _ident(self, line: int, col: int) -> Token:
        start = self.pos
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        text = self.src[start : self.pos]
        kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
        return Token(kind, text, line, col)

    def _string(self, line: int, col: int) -> Token:
        self._advance()  # opening quote
        start = self.pos
        while self._peek() and self._peek() != '"':
            if self._peek() == "\n":
                raise self._error("newline inside string literal")
            self._advance()
        if not self._peek():
            raise self._error("unterminated string literal")
        text = self.src[start : self.pos]
        self._advance()  # closing quote
        return Token(TokenKind.STRING, text, line, col)
