"""EM-C recursive-descent parser.

Grammar (EBNF)::

    program    = { threaddef } ;
    threaddef  = "thread" IDENT "(" [ params ] ")" block ;
    params     = IDENT { "," IDENT } ;
    block      = "{" { stmt } "}" ;
    stmt       = "var" IDENT "=" expr ";"
               | IDENT "=" expr ";"
               | "mem" "[" expr "]" "=" expr ";"
               | "if" "(" expr ")" block [ "else" ( block | ifstmt ) ]
               | "while" "(" expr ")" block
               | "for" "(" [ simple ] ";" [ expr ] ";" [ simple ] ")" block
               | "break" ";" | "continue" ";"
               | "return" [ expr ] ";"
               | expr ";" ;
    simple     = "var" IDENT "=" expr | IDENT "=" expr
               | "mem" "[" expr "]" "=" expr | expr ;
    expr       = or ;  (C precedence: || < && < == != < relational < +- < */% < unary)
    primary    = INT | FLOAT | STRING | IDENT [ "(" args ")" ]
               | "mem" "[" expr "]" | "(" expr ")" ;
"""

from __future__ import annotations

from ..errors import EmcSyntaxError
from . import ast
from .lexer import Lexer, Token, TokenKind

__all__ = ["Parser", "parse"]


def parse(source: str) -> ast.Program:
    """Parse EM-C source into a :class:`~repro.emc.ast.Program`."""
    return Parser(Lexer(source).tokens()).program()


class Parser:
    """Token stream → AST."""

    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._i = 0

    # ------------------------------------------------------------------
    # Token helpers
    # ------------------------------------------------------------------
    @property
    def _cur(self) -> Token:
        return self._tokens[self._i]

    def _error(self, message: str) -> EmcSyntaxError:
        tok = self._cur
        what = tok.text or "<eof>"
        return EmcSyntaxError(f"parse error at {tok.line}:{tok.col} near {what!r}: {message}")

    def _advance(self) -> Token:
        tok = self._cur
        if tok.kind is not TokenKind.EOF:
            self._i += 1
        return tok

    def _check(self, kind: TokenKind, text: str | None = None) -> bool:
        tok = self._cur
        return tok.kind is kind and (text is None or tok.text == text)

    def _accept(self, kind: TokenKind, text: str | None = None) -> Token | None:
        if self._check(kind, text):
            return self._advance()
        return None

    def _expect(self, kind: TokenKind, text: str | None = None) -> Token:
        tok = self._accept(kind, text)
        if tok is None:
            want = text or kind.value
            raise self._error(f"expected {want!r}")
        return tok

    # ------------------------------------------------------------------
    # Top level
    # ------------------------------------------------------------------
    def program(self) -> ast.Program:
        prog = ast.Program()
        while not self._check(TokenKind.EOF):
            tdef = self.thread_def()
            if tdef.name in prog.threads:
                raise self._error(f"duplicate thread definition {tdef.name!r}")
            prog.threads[tdef.name] = tdef
        if not prog.threads:
            raise EmcSyntaxError("empty program: no 'thread' definitions")
        return prog

    def thread_def(self) -> ast.ThreadDef:
        kw = self._expect(TokenKind.KEYWORD, "thread")
        name = self._expect(TokenKind.IDENT).text
        self._expect(TokenKind.PUNCT, "(")
        params: list[str] = []
        if not self._check(TokenKind.PUNCT, ")"):
            params.append(self._expect(TokenKind.IDENT).text)
            while self._accept(TokenKind.PUNCT, ","):
                params.append(self._expect(TokenKind.IDENT).text)
        self._expect(TokenKind.PUNCT, ")")
        if len(set(params)) != len(params):
            raise self._error(f"duplicate parameter in thread {name!r}")
        body = self.block()
        return ast.ThreadDef(name, tuple(params), body, kw.line)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def block(self) -> ast.Block:
        brace = self._expect(TokenKind.PUNCT, "{")
        stmts: list[ast.Stmt] = []
        while not self._check(TokenKind.PUNCT, "}"):
            if self._check(TokenKind.EOF):
                raise self._error("unterminated block")
            stmts.append(self.statement())
        self._expect(TokenKind.PUNCT, "}")
        return ast.Block(tuple(stmts), brace.line)

    def statement(self) -> ast.Stmt:
        tok = self._cur
        if self._check(TokenKind.KEYWORD, "if"):
            return self._if_stmt()
        if self._check(TokenKind.KEYWORD, "while"):
            return self._while_stmt()
        if self._check(TokenKind.KEYWORD, "for"):
            return self._for_stmt()
        if self._accept(TokenKind.KEYWORD, "break"):
            self._expect(TokenKind.PUNCT, ";")
            return ast.Break(tok.line)
        if self._accept(TokenKind.KEYWORD, "continue"):
            self._expect(TokenKind.PUNCT, ";")
            return ast.Continue(tok.line)
        if self._accept(TokenKind.KEYWORD, "return"):
            value = None if self._check(TokenKind.PUNCT, ";") else self.expression()
            self._expect(TokenKind.PUNCT, ";")
            return ast.Return(value, tok.line)
        if self._check(TokenKind.PUNCT, "{"):
            return self.block()
        stmt = self._simple_statement()
        self._expect(TokenKind.PUNCT, ";")
        return stmt

    def _simple_statement(self) -> ast.Stmt:
        """A declaration, assignment, mem-store or expression (no ';')."""
        tok = self._cur
        if self._accept(TokenKind.KEYWORD, "var"):
            name = self._expect(TokenKind.IDENT).text
            self._expect(TokenKind.OP, "=")
            return ast.VarDecl(name, self.expression(), tok.line)
        if self._check(TokenKind.KEYWORD, "mem"):
            save = self._i
            self._advance()
            self._expect(TokenKind.PUNCT, "[")
            index = self.expression()
            self._expect(TokenKind.PUNCT, "]")
            if self._accept(TokenKind.OP, "="):
                return ast.MemStore(index, self.expression(), tok.line)
            self._i = save  # plain mem[i] expression, re-parse below
        if self._check(TokenKind.IDENT):
            nxt = self._tokens[self._i + 1]
            if nxt.kind is TokenKind.OP and nxt.text == "=":
                name = self._advance().text
                self._advance()  # '='
                return ast.Assign(name, self.expression(), tok.line)
        return ast.ExprStmt(self.expression(), tok.line)

    def _if_stmt(self) -> ast.If:
        kw = self._expect(TokenKind.KEYWORD, "if")
        self._expect(TokenKind.PUNCT, "(")
        cond = self.expression()
        self._expect(TokenKind.PUNCT, ")")
        then_block = self.block()
        else_block: ast.Block | None = None
        if self._accept(TokenKind.KEYWORD, "else"):
            if self._check(TokenKind.KEYWORD, "if"):
                nested = self._if_stmt()
                else_block = ast.Block((nested,), nested.line)
            else:
                else_block = self.block()
        return ast.If(cond, then_block, else_block, kw.line)

    def _while_stmt(self) -> ast.While:
        kw = self._expect(TokenKind.KEYWORD, "while")
        self._expect(TokenKind.PUNCT, "(")
        cond = self.expression()
        self._expect(TokenKind.PUNCT, ")")
        return ast.While(cond, self.block(), kw.line)

    def _for_stmt(self) -> ast.For:
        kw = self._expect(TokenKind.KEYWORD, "for")
        self._expect(TokenKind.PUNCT, "(")
        init = None if self._check(TokenKind.PUNCT, ";") else self._simple_statement()
        self._expect(TokenKind.PUNCT, ";")
        cond = None if self._check(TokenKind.PUNCT, ";") else self.expression()
        self._expect(TokenKind.PUNCT, ";")
        step = None if self._check(TokenKind.PUNCT, ")") else self._simple_statement()
        self._expect(TokenKind.PUNCT, ")")
        return ast.For(init, cond, step, self.block(), kw.line)

    # ------------------------------------------------------------------
    # Expressions (precedence climbing)
    # ------------------------------------------------------------------
    _LEVELS = (
        ("||",),
        ("&&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def expression(self) -> ast.Expr:
        return self._binary(0)

    def _binary(self, level: int) -> ast.Expr:
        if level == len(self._LEVELS):
            return self._unary()
        ops = self._LEVELS[level]
        left = self._binary(level + 1)
        while self._cur.kind is TokenKind.OP and self._cur.text in ops:
            op = self._advance()
            right = self._binary(level + 1)
            left = ast.BinOp(op.text, left, right, op.line)
        return left

    def _unary(self) -> ast.Expr:
        tok = self._cur
        if tok.kind is TokenKind.OP and tok.text in ("-", "!"):
            self._advance()
            return ast.UnaryOp(tok.text, self._unary(), tok.line)
        return self._primary()

    def _primary(self) -> ast.Expr:
        tok = self._cur
        if self._accept(TokenKind.INT):
            return ast.Literal(int(tok.text), tok.line)
        if self._accept(TokenKind.FLOAT):
            return ast.Literal(float(tok.text), tok.line)
        if self._accept(TokenKind.STRING):
            return ast.Literal(tok.text, tok.line)
        if self._accept(TokenKind.KEYWORD, "mem"):
            self._expect(TokenKind.PUNCT, "[")
            index = self.expression()
            self._expect(TokenKind.PUNCT, "]")
            return ast.MemLoad(index, tok.line)
        if self._accept(TokenKind.PUNCT, "("):
            inner = self.expression()
            self._expect(TokenKind.PUNCT, ")")
            return inner
        if self._check(TokenKind.IDENT):
            name = self._advance().text
            if self._accept(TokenKind.PUNCT, "("):
                args: list[ast.Expr] = []
                if not self._check(TokenKind.PUNCT, ")"):
                    args.append(self.expression())
                    while self._accept(TokenKind.PUNCT, ","):
                        args.append(self.expression())
                self._expect(TokenKind.PUNCT, ")")
                return ast.Call(name, tuple(args), tok.line)
            return ast.VarRef(name, tok.line)
        raise self._error("expected an expression")
