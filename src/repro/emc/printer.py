"""EM-C pretty-printer: AST → canonical source.

``parse(pretty(ast)) == ast`` up to source positions — the property the
test suite checks with generated programs.  Useful for debugging
compiled programs and for emitting canonical forms of generated code.
"""

from __future__ import annotations

from ..errors import EmcSyntaxError
from . import ast

__all__ = ["pretty"]

_IND = "    "


def pretty(node) -> str:
    """Render a program, thread definition, statement or expression."""
    if isinstance(node, ast.Program):
        return "\n\n".join(_thread(t) for t in node.threads.values()) + "\n"
    if isinstance(node, ast.ThreadDef):
        return _thread(node)
    if isinstance(node, ast.Block):
        return _block(node, 0)
    if _is_stmt(node):
        return _stmt(node, 0)
    return _expr(node)


def _is_stmt(node) -> bool:
    return isinstance(
        node,
        (
            ast.VarDecl,
            ast.Assign,
            ast.MemStore,
            ast.If,
            ast.While,
            ast.For,
            ast.Break,
            ast.Continue,
            ast.Return,
            ast.ExprStmt,
            ast.Block,
        ),
    )


def _thread(t: ast.ThreadDef) -> str:
    params = ", ".join(t.params)
    return f"thread {t.name}({params}) {_block(t.body, 0)}"


def _block(block: ast.Block, depth: int) -> str:
    if not block.statements:
        return "{\n" + _IND * depth + "}"
    inner = "\n".join(_stmt(s, depth + 1) for s in block.statements)
    return "{\n" + inner + "\n" + _IND * depth + "}"


def _stmt(stmt, depth: int) -> str:
    pad = _IND * depth
    kind = type(stmt)
    if kind is ast.VarDecl:
        return f"{pad}var {stmt.name} = {_expr(stmt.value)};"
    if kind is ast.Assign:
        return f"{pad}{stmt.name} = {_expr(stmt.value)};"
    if kind is ast.MemStore:
        return f"{pad}mem[{_expr(stmt.index)}] = {_expr(stmt.value)};"
    if kind is ast.ExprStmt:
        return f"{pad}{_expr(stmt.expr)};"
    if kind is ast.Block:
        return pad + _block(stmt, depth)
    if kind is ast.If:
        out = f"{pad}if ({_expr(stmt.condition)}) {_block(stmt.then_block, depth)}"
        if stmt.else_block is not None:
            out += f" else {_block(stmt.else_block, depth)}"
        return out
    if kind is ast.While:
        return f"{pad}while ({_expr(stmt.condition)}) {_block(stmt.body, depth)}"
    if kind is ast.For:
        init = _inline_stmt(stmt.init)
        cond = _expr(stmt.condition) if stmt.condition is not None else ""
        step = _inline_stmt(stmt.step)
        return f"{pad}for ({init}; {cond}; {step}) {_block(stmt.body, depth)}"
    if kind is ast.Break:
        return f"{pad}break;"
    if kind is ast.Continue:
        return f"{pad}continue;"
    if kind is ast.Return:
        if stmt.value is None:
            return f"{pad}return;"
        return f"{pad}return {_expr(stmt.value)};"
    raise EmcSyntaxError(f"cannot print statement {stmt!r}")


def _inline_stmt(stmt) -> str:
    """A simple statement inside a for-header (no trailing ';')."""
    if stmt is None:
        return ""
    rendered = _stmt(stmt, 0)
    return rendered[:-1] if rendered.endswith(";") else rendered


# Operator precedence levels matching the parser's climb.
_PREC = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}
_UNARY_PREC = 7


def _expr(expr, parent_prec: int = 0) -> str:
    kind = type(expr)
    if kind is ast.Literal:
        if isinstance(expr.value, str):
            return f'"{expr.value}"'
        return repr(expr.value)
    if kind is ast.VarRef:
        return expr.name
    if kind is ast.MemLoad:
        return f"mem[{_expr(expr.index)}]"
    if kind is ast.Call:
        args = ", ".join(_expr(a) for a in expr.args)
        return f"{expr.name}({args})"
    if kind is ast.UnaryOp:
        inner = _expr(expr.operand, _UNARY_PREC)
        text = f"{expr.op}{inner}"
        return f"({text})" if parent_prec > _UNARY_PREC else text
    if kind is ast.BinOp:
        prec = _PREC[expr.op]
        left = _expr(expr.left, prec)
        # Right operand binds one tighter (left-associative operators).
        right = _expr(expr.right, prec + 1)
        text = f"{left} {expr.op} {right}"
        return f"({text})" if parent_prec > prec else text
    raise EmcSyntaxError(f"cannot print expression {expr!r}")
