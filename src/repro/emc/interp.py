"""EM-C execution: AST → explicit-switch threads with cycle accounting.

Compiling an EM-C program yields one generator function per ``thread``
definition, directly registrable with :class:`~repro.machine.EMX`.  The
interpreter walks the AST accumulating EMC-Y cycles for every operator,
assignment, branch and memory access (:class:`~repro.emc.costs.EmcCosts`)
and flushes the accumulated budget as a single
:class:`~repro.core.effects.Compute` immediately before any effectful
builtin — so packets depart at the correct cycle offsets and the
thread's run length between remote reads is exactly what its source
implies, the way the paper derives the sorting loop's 12 clocks from
its C code.
"""

from __future__ import annotations

from typing import Any, Callable

from ..errors import EmcRuntimeError, EmcSyntaxError
from . import ast
from .costs import EmcCosts
from .parser import parse

__all__ = ["CompiledProgram", "compile_program", "load_emc"]


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value: Any) -> None:
        self.value = value


class _Interp:
    """One thread's interpreter instance."""

    def __init__(self, ctx, program: ast.Program, env: dict, costs: EmcCosts) -> None:
        self.ctx = ctx
        self.program = program
        self.env = env
        self.costs = costs
        self.pending = 0

    # ------------------------------------------------------------------
    def charge(self, cycles: int) -> None:
        self.pending += cycles

    def flush(self):
        """Yield the accumulated compute budget (if any)."""
        if self.pending:
            cycles, self.pending = self.pending, 0
            yield self.ctx.compute(cycles)

    def fail(self, line: int, message: str) -> EmcRuntimeError:
        return EmcRuntimeError(f"EM-C runtime error at line {line}: {message}")

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def exec_block(self, block: ast.Block, scope: dict):
        for stmt in block.statements:
            yield from self.exec_stmt(stmt, scope)

    def exec_stmt(self, stmt: ast.Stmt, scope: dict):
        kind = type(stmt)
        if kind is ast.VarDecl or kind is ast.Assign:
            if kind is ast.Assign and stmt.name not in scope:
                raise self.fail(stmt.line, f"assignment to undeclared variable {stmt.name!r}")
            value = yield from self.eval(stmt.value, scope)
            self.charge(self.costs.assign)
            scope[stmt.name] = value
        elif kind is ast.MemStore:
            index = yield from self.eval(stmt.index, scope)
            value = yield from self.eval(stmt.value, scope)
            self.charge(self.costs.mem_index + self.costs.mem_access)
            self.ctx.mem.write(self._as_index(index, stmt.line), value)
        elif kind is ast.ExprStmt:
            yield from self.eval(stmt.expr, scope)
        elif kind is ast.Block:
            yield from self.exec_block(stmt, scope)
        elif kind is ast.If:
            cond = yield from self.eval(stmt.condition, scope)
            self.charge(self.costs.branch)
            if self._truthy(cond):
                yield from self.exec_block(stmt.then_block, scope)
            elif stmt.else_block is not None:
                yield from self.exec_block(stmt.else_block, scope)
        elif kind is ast.While:
            while True:
                cond = yield from self.eval(stmt.condition, scope)
                self.charge(self.costs.branch)
                if not self._truthy(cond):
                    break
                try:
                    yield from self.exec_block(stmt.body, scope)
                except _Break:
                    break
                except _Continue:
                    pass
                self.charge(self.costs.loop_back)
        elif kind is ast.For:
            if stmt.init is not None:
                yield from self.exec_stmt(stmt.init, scope)
            while True:
                if stmt.condition is not None:
                    cond = yield from self.eval(stmt.condition, scope)
                    self.charge(self.costs.branch)
                    if not self._truthy(cond):
                        break
                try:
                    yield from self.exec_block(stmt.body, scope)
                except _Break:
                    break
                except _Continue:
                    pass
                if stmt.step is not None:
                    yield from self.exec_stmt(stmt.step, scope)
                self.charge(self.costs.loop_back)
        elif kind is ast.Break:
            raise _Break()
        elif kind is ast.Continue:
            raise _Continue()
        elif kind is ast.Return:
            value = None
            if stmt.value is not None:
                value = yield from self.eval(stmt.value, scope)
            raise _Return(value)
        else:  # pragma: no cover - parser produces only the above
            raise self.fail(getattr(stmt, "line", 0), f"unknown statement {stmt!r}")

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def eval(self, expr: ast.Expr, scope: dict):
        kind = type(expr)
        if kind is ast.Literal:
            return expr.value
        if kind is ast.VarRef:
            if expr.name in scope:
                return scope[expr.name]
            if expr.name in self.env:
                return self.env[expr.name]
            raise self.fail(expr.line, f"undefined variable {expr.name!r}")
        if kind is ast.MemLoad:
            index = yield from self.eval(expr.index, scope)
            self.charge(self.costs.mem_index + self.costs.mem_access)
            return self.ctx.mem.read(self._as_index(index, expr.line))
        if kind is ast.BinOp:
            return (yield from self._binop(expr, scope))
        if kind is ast.UnaryOp:
            operand = yield from self.eval(expr.operand, scope)
            self.charge(self.costs.unary_op)
            if expr.op == "-":
                return -operand
            return 0 if self._truthy(operand) else 1
        if kind is ast.Call:
            return (yield from self._call(expr, scope))
        raise self.fail(getattr(expr, "line", 0), f"unknown expression {expr!r}")  # pragma: no cover

    def _binop(self, expr: ast.BinOp, scope: dict):
        op = expr.op
        left = yield from self.eval(expr.left, scope)
        # Short-circuit logicals evaluate the right side conditionally.
        if op == "&&":
            self.charge(self.costs.alu_op)
            if not self._truthy(left):
                return 0
            right = yield from self.eval(expr.right, scope)
            return 1 if self._truthy(right) else 0
        if op == "||":
            self.charge(self.costs.alu_op)
            if self._truthy(left):
                return 1
            right = yield from self.eval(expr.right, scope)
            return 1 if self._truthy(right) else 0
        right = yield from self.eval(expr.right, scope)
        self.charge(self.costs.binop(op))
        try:
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if isinstance(left, int) and isinstance(right, int):
                    q = abs(left) // abs(right)
                    return q if (left >= 0) == (right >= 0) else -q
                return left / right
            if op == "%":
                if not (isinstance(left, int) and isinstance(right, int)):
                    raise self.fail(expr.line, "'%' needs integer operands")
                return left - right * (left // right if (left >= 0) == (right >= 0)
                                       else -(abs(left) // abs(right)))
            if op == "==":
                return 1 if left == right else 0
            if op == "!=":
                return 1 if left != right else 0
            if op == "<":
                return 1 if left < right else 0
            if op == "<=":
                return 1 if left <= right else 0
            if op == ">":
                return 1 if left > right else 0
            if op == ">=":
                return 1 if left >= right else 0
        except ZeroDivisionError:
            raise self.fail(expr.line, "division by zero") from None
        raise self.fail(expr.line, f"unknown operator {op!r}")  # pragma: no cover

    @staticmethod
    def _truthy(value: Any) -> bool:
        return bool(value)

    def _as_index(self, value: Any, line: int) -> int:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise self.fail(line, f"memory index must be numeric, got {value!r}")
        index = int(value)
        if index != value:
            raise self.fail(line, f"memory index must be integral, got {value!r}")
        return index

    # ------------------------------------------------------------------
    # Builtins
    # ------------------------------------------------------------------
    def _call(self, expr: ast.Call, scope: dict):
        name = expr.name
        args = []
        for arg in expr.args:
            value = yield from self.eval(arg, scope)
            args.append(value)

        def need(n: int) -> None:
            if len(args) != n:
                raise self.fail(expr.line, f"{name}() takes {n} arguments, got {len(args)}")

        ctx = self.ctx
        self.charge(self.costs.call_overhead)

        if name == "rread":
            need(2)
            yield from self.flush()
            return (yield ctx.read(ctx.ga(int(args[0]), int(args[1]))))
        if name == "rread2":
            need(3)
            yield from self.flush()
            pe = int(args[0])
            pair = yield ctx.read_pair(ctx.ga(pe, int(args[1])), ctx.ga(pe, int(args[2])))
            return list(pair)
        if name == "rblock":
            need(3)
            yield from self.flush()
            block = yield ctx.read_block(ctx.ga(int(args[0]), int(args[1])), int(args[2]))
            return list(block)
        if name == "rwrite":
            need(3)
            yield from self.flush()
            yield ctx.write(ctx.ga(int(args[0]), int(args[1])), args[2])
            return 0
        if name == "spawn":
            if len(args) < 2:
                raise self.fail(expr.line, "spawn() needs (pe, name, args...)")
            if not isinstance(args[1], str):
                raise self.fail(expr.line, "spawn() target must be a string thread name")
            if args[1] not in self.program.threads:
                raise self.fail(expr.line, f"spawn of unknown thread {args[1]!r}")
            yield from self.flush()
            yield ctx.spawn(int(args[0]), args[1], *args[2:])
            return 0
        if name == "barrier_wait":
            need(1)
            yield from self.flush()
            yield ctx.barrier_wait(args[0])
            return 0
        if name == "token_wait":
            need(2)
            yield from self.flush()
            yield ctx.token_wait(args[0], int(args[1]))
            return 0
        if name == "token_advance":
            need(1)
            yield from self.flush()
            yield ctx.token_advance(args[0])
            return 0
        if name == "token_reset":
            need(1)
            args[0].reset()  # restart turn numbering (new iteration)
            return 0
        if name == "switch_now":
            need(0)
            yield from self.flush()
            yield ctx.switch()
            return 0
        if name == "compute":
            need(1)
            self.charge(int(args[0]))
            return 0
        if name == "at":
            need(2)
            self.charge(self.costs.mem_index)
            try:
                return args[0][int(args[1])]
            except (TypeError, IndexError):
                raise self.fail(expr.line, f"bad at() access: {args!r}") from None
        if name == "len":
            need(1)
            try:
                return len(args[0])
            except TypeError:
                raise self.fail(expr.line, f"len() of non-sequence {args[0]!r}") from None
        if name == "pe":
            need(0)
            return ctx.pe
        if name == "npes":
            need(0)
            return ctx.n_pes
        if name == "print":
            ctx.state.setdefault("emc_output", []).append(" ".join(str(a) for a in args))
            return 0
        raise self.fail(expr.line, f"unknown builtin {name!r}")

    # ------------------------------------------------------------------
    def run_thread(self, tdef: ast.ThreadDef, args: tuple):
        if len(args) != len(tdef.params):
            raise EmcRuntimeError(
                f"thread {tdef.name!r} takes {len(tdef.params)} arguments, got {len(args)}"
            )
        scope = dict(zip(tdef.params, args))
        try:
            yield from self.exec_block(tdef.body, scope)
        except _Return:
            pass
        except (_Break, _Continue):
            raise EmcRuntimeError(
                f"break/continue outside a loop in thread {tdef.name!r}"
            ) from None
        yield from self.flush()


class CompiledProgram:
    """A compiled EM-C program: thread functions keyed by name."""

    def __init__(self, program: ast.Program, env: dict, costs: EmcCosts) -> None:
        self.ast = program
        self.env = env
        self.costs = costs
        self.functions: dict[str, Callable] = {
            name: self._make(tdef) for name, tdef in program.threads.items()
        }

    def _make(self, tdef: ast.ThreadDef) -> Callable:
        program, env, costs = self.ast, self.env, self.costs

        def thread_func(ctx, *args):
            interp = _Interp(ctx, program, env, costs)
            yield from interp.run_thread(tdef, args)

        thread_func.__name__ = tdef.name
        thread_func.__qualname__ = f"emc.{tdef.name}"
        thread_func.__doc__ = f"EM-C thread {tdef.name!r} (compiled)."
        # Lets the cohort compiler recognise EM-C threads and lower the
        # definition itself instead of recording the interpreter.
        thread_func.__emc_thread__ = (self, tdef)
        return thread_func

    def register(self, machine) -> list[str]:
        """Register every thread function with a machine; returns names."""
        return [machine.register(fn, name) for name, fn in self.functions.items()]


def compile_program(
    source: str,
    env: dict | None = None,
    costs: EmcCosts | None = None,
) -> CompiledProgram:
    """Compile EM-C source into thread functions.

    ``env`` provides host objects (barriers, tokens, constants) visible
    as free identifiers inside the program.
    """
    costs = costs or EmcCosts()
    costs.validate()
    program = parse(source)
    if env:
        for key in env:
            if key in program.threads:
                raise EmcSyntaxError(f"env name {key!r} collides with a thread definition")
    return CompiledProgram(program, dict(env or {}), costs)


def load_emc(
    machine,
    source: str,
    env: dict | None = None,
    costs: EmcCosts | None = None,
) -> list[str]:
    """Compile ``source`` and register its threads with ``machine``."""
    return compile_program(source, env, costs).register(machine)
