"""EM-C: the thread-library language layer.

The paper's programs are "written in C with the thread library" and
"compiled into explicit-switch threads" (§2.3).  This package provides
that substrate: a small C-like language whose programs compile into
threads for the EM-X runtime, with *automatic* cycle accounting — every
evaluated operator, assignment and branch charges EMC-Y cycles, so run
lengths emerge from the program text instead of hand-written
:class:`~repro.core.effects.Compute` budgets.

A flavour of the language::

    thread reader(mate, m) {
        var sum = 0;
        for (var k = 0; k < m; k = k + 1) {
            var v = rread(mate, k);      // split-phase: suspends here
            sum = sum + v;
        }
        mem[100] = sum;                  // local memory store
        rwrite(mate, 200, sum);          // remote write, no suspension
        barrier_wait(bar);               // bar injected via env
    }

Use :func:`load_emc` to compile a source string and register every
``thread`` definition with a machine::

    names = load_emc(machine, source, env={"bar": machine.make_barrier(1)})
    machine.spawn(0, "reader", 1, 16)

Builtins: ``rread(pe, off)``, ``rread2(pe, offA, offB)`` (matched pair,
returns the sum of charging both into locals is done via ``at``),
``rblock(pe, off, n)``, ``rwrite(pe, off, v)``,
``spawn(pe, "name", args…)``, ``barrier_wait(b)``, ``token_wait(t, s)``,
``token_advance(t)``, ``switch_now()``, ``compute(n)``, ``mem[i]``
loads/stores, ``at(list, i)``, ``len(x)``, ``pe()``, ``npes()``,
``print(…)`` (collects into ``ctx.state['emc_output']``).
"""

from .costs import EmcCosts
from .interp import CompiledProgram, compile_program, load_emc
from .lexer import Lexer, Token, TokenKind
from .parser import Parser, parse
from .printer import pretty

__all__ = [
    "compile_program",
    "load_emc",
    "CompiledProgram",
    "EmcCosts",
    "Lexer",
    "Parser",
    "parse",
    "pretty",
    "Token",
    "TokenKind",
]
