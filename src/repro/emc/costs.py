"""Cycle costs of EM-C constructs.

The interpreter charges these per evaluated AST node, so a compiled
thread's run length *emerges* from its source: the paper's 12-clock
sorting read-loop body corresponds to a handful of EM-C statements
(index arithmetic, buffer store, loop compare + increment) plus the
read-issue instructions the EXU charges separately.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["EmcCosts"]


@dataclass(frozen=True)
class EmcCosts:
    """Per-construct EMC-Y cycle charges."""

    #: +, -, *, comparisons, logical ops (one clock each on the EMC-Y).
    alu_op: int = 1
    #: Division (the one multi-cycle arithmetic instruction).
    div_op: int = 8
    #: Modulo (shift/mask sequences in practice).
    mod_op: int = 2
    unary_op: int = 1
    #: Register move for assignments / declarations.
    assign: int = 1
    #: Local memory word access (address already computed).
    mem_access: int = 1
    #: Address computation for mem[expr].
    mem_index: int = 1
    #: Conditional branch (compare is charged by the condition itself).
    branch: int = 1
    #: Loop back-edge (increment/jump beyond the step's own cost).
    loop_back: int = 1
    #: Builtin call sequence overhead (argument marshalling).
    call_overhead: int = 1

    def validate(self) -> None:
        for name, value in self.__dict__.items():
            if not isinstance(value, int) or value < 0:
                raise ConfigError(f"EM-C cost {name!r} must be a non-negative int, got {value!r}")

    def binop(self, op: str) -> int:
        """Cost of one binary operator."""
        if op == "/":
            return self.div_op
        if op == "%":
            return self.mod_op
        return self.alu_op
