"""EM-C abstract syntax tree.

Plain dataclasses; every node carries the source line for diagnostics.
The interpreter in :mod:`repro.emc.interp` walks these directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

__all__ = [
    "Program",
    "ThreadDef",
    "Block",
    "VarDecl",
    "Assign",
    "MemStore",
    "If",
    "While",
    "For",
    "Break",
    "Continue",
    "Return",
    "ExprStmt",
    "BinOp",
    "UnaryOp",
    "Literal",
    "VarRef",
    "MemLoad",
    "Call",
    "Stmt",
    "Expr",
]


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Literal:
    value: int | float | str
    line: int = 0


@dataclass(frozen=True)
class VarRef:
    name: str
    line: int = 0


@dataclass(frozen=True)
class MemLoad:
    """``mem[index]`` — a local memory word load."""

    index: "Expr"
    line: int = 0


@dataclass(frozen=True)
class Call:
    """A builtin call: ``rread(pe, off)``, ``spawn(...)``, …"""

    name: str
    args: tuple["Expr", ...]
    line: int = 0


@dataclass(frozen=True)
class BinOp:
    op: str
    left: "Expr"
    right: "Expr"
    line: int = 0


@dataclass(frozen=True)
class UnaryOp:
    op: str
    operand: "Expr"
    line: int = 0


Expr = Union[Literal, VarRef, MemLoad, Call, BinOp, UnaryOp]


# ----------------------------------------------------------------------
# Statements
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VarDecl:
    name: str
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class Assign:
    name: str
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class MemStore:
    """``mem[index] = value;``"""

    index: Expr
    value: Expr
    line: int = 0


@dataclass(frozen=True)
class Block:
    statements: tuple["Stmt", ...]
    line: int = 0


@dataclass(frozen=True)
class If:
    condition: Expr
    then_block: Block
    else_block: Block | None
    line: int = 0


@dataclass(frozen=True)
class While:
    condition: Expr
    body: Block
    line: int = 0


@dataclass(frozen=True)
class For:
    init: "Stmt | None"
    condition: Expr | None
    step: "Stmt | None"
    body: Block
    line: int = 0


@dataclass(frozen=True)
class Break:
    line: int = 0


@dataclass(frozen=True)
class Continue:
    line: int = 0


@dataclass(frozen=True)
class Return:
    value: Expr | None
    line: int = 0


@dataclass(frozen=True)
class ExprStmt:
    expr: Expr
    line: int = 0


Stmt = Union[VarDecl, Assign, MemStore, Block, If, While, For, Break, Continue, Return, ExprStmt]


# ----------------------------------------------------------------------
# Top level
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ThreadDef:
    name: str
    params: tuple[str, ...]
    body: Block
    line: int = 0


@dataclass(frozen=True)
class Program:
    threads: dict[str, ThreadDef] = field(default_factory=dict)
