"""Analytic models.

:mod:`~repro.analysis.saavedra` implements the multithreaded-processor
model of Saavedra-Barrera, Culler & von Eicken (SPAA 1990) — the paper's
reference [16].  It predicts processor efficiency from run length R,
latency L and switch cost C, and classifies operation into the linear,
transition and saturation regions the EM-X paper cites.  Experiment A2
cross-validates the simulator against it.
"""

from .queueing import OmegaLoadModel
from .saavedra import Region, SaavedraModel

__all__ = ["SaavedraModel", "Region", "OmegaLoadModel"]
