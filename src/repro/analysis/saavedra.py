"""The Saavedra-Barrera analytic model of multithreading.

Reference [16] of the paper: R. Saavedra-Barrera, D. Culler, T. von
Eicken, *Analysis of Multithreaded Architectures for Parallel
Computing*, SPAA 1990.  A processor runs threads with deterministic run
length **R** (cycles between remote references), remote latency **L**,
and context-switch cost **C**.  With N threads:

* **Linear region** (N below saturation): the processor still idles
  between bursts; efficiency grows linearly::

      E(N) = N · R / (R + C + L)

* **Saturation region** (enough threads to cover the latency): the
  processor always has a thread to run; efficiency is capped by switch
  overhead::

      E_sat = R / (R + C)

* The **transition** happens around  N_d = 1 + (L + C) / (R + C)  — in
  stochastic variants the knee is smooth; this deterministic form is
  what the EM-X paper's "two to four threads for a 20–40 cycle latency
  at run length 12" arithmetic uses.

The model also predicts the *unmasked communication time* per reference,
``max(0, L − (N−1)(R + C))``, which is what Fig. 6 plots (divided by the
reference rate).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import ConfigError

__all__ = ["Region", "SaavedraModel"]


class Region(enum.Enum):
    """Operating regions of a multithreaded processor."""

    LINEAR = "linear"
    TRANSITION = "transition"
    SATURATION = "saturation"


@dataclass(frozen=True)
class SaavedraModel:
    """Deterministic Saavedra-Barrera model with parameters R, L, C."""

    run_length: int  # R
    latency: int  # L
    switch_cost: int  # C

    def __post_init__(self) -> None:
        if self.run_length < 1:
            raise ConfigError(f"run length must be >= 1, got {self.run_length}")
        if self.latency < 0:
            raise ConfigError(f"latency must be >= 0, got {self.latency}")
        if self.switch_cost < 0:
            raise ConfigError(f"switch cost must be >= 0, got {self.switch_cost}")

    # ------------------------------------------------------------------
    @property
    def saturation_efficiency(self) -> float:
        """E_sat = R / (R + C): the switch-overhead-limited ceiling."""
        return self.run_length / (self.run_length + self.switch_cost)

    @property
    def saturation_threads(self) -> float:
        """N_d = 1 + (L + C) / (R + C): threads needed to hide L."""
        return 1.0 + (self.latency + self.switch_cost) / (self.run_length + self.switch_cost)

    def efficiency(self, n_threads: int) -> float:
        """Processor efficiency (useful cycles / total) with N threads."""
        if n_threads < 1:
            raise ConfigError(f"need at least one thread, got {n_threads}")
        linear = (
            n_threads
            * self.run_length
            / (self.run_length + self.switch_cost + self.latency)
        )
        return min(linear, self.saturation_efficiency)

    def region(self, n_threads: int) -> Region:
        """Which operating region N threads land in."""
        n_d = self.saturation_threads
        if n_threads < n_d - 0.5:
            return Region.LINEAR
        if n_threads <= n_d + 0.5:
            return Region.TRANSITION
        return Region.SATURATION

    # ------------------------------------------------------------------
    def unmasked_latency(self, n_threads: int) -> float:
        """Idle cycles per remote reference that N threads fail to hide."""
        if n_threads < 1:
            raise ConfigError(f"need at least one thread, got {n_threads}")
        hidden = (n_threads - 1) * (self.run_length + self.switch_cost)
        return max(0.0, float(self.latency - hidden))

    def predict_window(self, n_threads: int) -> float:
        """Engine-facing prediction of one issue-to-wakeup window, in cycles.

        The expected span between a thread issuing a remote reference
        and the processor next needing event service: the burst itself
        (R), the explicit switch (C), and whatever part of the latency
        the other ``n_threads - 1`` ready threads fail to mask.  The
        hybrid engine's differential harness reports this alongside the
        simulated window so the closed form and the event-driven model
        can be cross-checked on every run (the paper's Fig. 6/7 claim is
        exactly that these agree in shape).
        """
        return self.run_length + self.switch_cost + self.unmasked_latency(n_threads)

    def comm_time_fraction(self, n_threads: int) -> float:
        """Unmasked communication as a fraction of the one-thread value."""
        base = self.unmasked_latency(1)
        if base == 0:
            return 0.0
        return self.unmasked_latency(n_threads) / base

    def overlap_efficiency(self, n_threads: int) -> float:
        """The paper's Fig. 7 metric, predicted analytically."""
        return 1.0 - self.comm_time_fraction(n_threads)

    @classmethod
    def for_sorting(cls, latency: int = 30) -> "SaavedraModel":
        """The paper's sorting parameters: run length 12, C ≈ 7."""
        return cls(run_length=12, latency=latency, switch_cost=7)

    @classmethod
    def for_fft(cls, latency: int = 30) -> "SaavedraModel":
        """The paper's FFT parameters: run length of hundreds of cycles."""
        return cls(run_length=240, latency=latency, switch_cost=7)
