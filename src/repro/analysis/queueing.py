"""Closed-form load model of the circular Omega fabric.

Predicts the *loaded* remote-read latency from first principles, the
counterpart of the paper's "average remote memory latency, when the
network is normally loaded, is approximately 1 to 2 µs".  Every switch
output port is a deterministic server (one 2-word packet per
``port_cycles_per_packet`` cycles); traffic offered by P processors at
``packets_per_cycle_per_pe`` spreads over the fabric's ports along
routes of the topology's mean hop count, and M/D/1 waiting time

    W = ρ · S / (2 · (1 − ρ))

adds per-hop queueing on top of the virtual cut-through base latency.
A ``hotspot_factor`` scales the average port utilisation up to the
busiest port's, because shuffle-ring routes concentrate flows (the
measured factor is available from
:meth:`repro.network.OmegaNetworkBase.hottest_ports`).

Experiment A7 cross-validates this model against the simulator's
measured latencies across offered loads.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..network.topology import CircularOmegaTopology

__all__ = ["OmegaLoadModel", "uncontended_transit"]


def uncontended_transit(hops: int, eject: int) -> int:
    """Closed-form conflict-free transit time of one packet, in cycles.

    This is the engine-facing zero-load special case of the M/D/1 model:
    with every port free, a packet injected at cycle ``t`` cuts through
    its first switch in the same cycle, pays one cycle per remaining
    shuffle hop, and spends ``eject`` cycles entering the destination
    IBU — arriving at ``t + hops + eject``.  The hybrid fast-forward
    layer (:class:`repro.network.HybridOmegaNetwork`) uses exactly this
    form to advance conflict-free packets without per-hop events; it is
    cycle-identical to the detailed simulator's uncontended hop walk,
    which the differential suite asserts.
    """
    if hops < 0 or eject < 1:
        raise ConfigError(f"need hops >= 0 and eject >= 1, got {hops}, {eject}")
    return hops + eject


@dataclass(frozen=True)
class OmegaLoadModel:
    """Analytic latency/utilisation model for one machine shape."""

    n_pes: int
    port_cycles_per_packet: int = 2
    eject_cycles: int = 1
    dma_service: int = 3
    #: Ratio of busiest-port to average-port utilisation.
    hotspot_factor: float = 2.0

    def __post_init__(self) -> None:
        if self.n_pes < 1:
            raise ConfigError(f"n_pes must be >= 1, got {self.n_pes}")
        if self.port_cycles_per_packet < 1:
            raise ConfigError("port service must be >= 1 cycle")
        if self.hotspot_factor < 1.0:
            raise ConfigError(f"hotspot factor must be >= 1, got {self.hotspot_factor}")

    # ------------------------------------------------------------------
    @property
    def topology(self) -> CircularOmegaTopology:
        return CircularOmegaTopology(self.n_pes)

    @property
    def mean_hops(self) -> float:
        """Average switch hops per packet over all PE pairs."""
        return self.topology.mean_hops()

    @property
    def fabric_ports(self) -> int:
        """Switch output ports available to carry traffic."""
        return 2 * self.topology.n_switches

    # ------------------------------------------------------------------
    def mean_port_utilization(self, packets_per_cycle_per_pe: float) -> float:
        """Average port utilisation at the given per-PE injection rate."""
        if packets_per_cycle_per_pe < 0:
            raise ConfigError(f"negative offered load {packets_per_cycle_per_pe}")
        offered = self.n_pes * packets_per_cycle_per_pe  # packets/cycle
        port_work = offered * self.mean_hops * self.port_cycles_per_packet
        return port_work / self.fabric_ports

    def hot_port_utilization(self, packets_per_cycle_per_pe: float) -> float:
        """Busiest-port utilisation (mean × hotspot factor, capped)."""
        return min(0.999, self.mean_port_utilization(packets_per_cycle_per_pe) * self.hotspot_factor)

    @staticmethod
    def md1_wait(rho: float, service: float) -> float:
        """M/D/1 mean waiting time for utilisation ``rho``."""
        if not (0.0 <= rho < 1.0):
            raise ConfigError(f"utilisation {rho} outside [0, 1)")
        return rho * service / (2.0 * (1.0 - rho))

    # ------------------------------------------------------------------
    def one_way_latency(self, packets_per_cycle_per_pe: float = 0.0) -> float:
        """Mean injection-to-delivery cycles at the offered load.

        Uses the *mean* port utilisation for the per-hop wait — the
        average packet sees average ports; the hotspot factor only
        matters for where the fabric saturates.
        """
        rho = min(0.999, self.mean_port_utilization(packets_per_cycle_per_pe))
        per_hop_wait = self.md1_wait(rho, self.port_cycles_per_packet)
        base = self.mean_hops + 1  # k hops in k+1 cycles
        return base + self.mean_hops * per_hop_wait + (self.eject_cycles - 1)

    def predict_window(self, hops: int, packets_per_cycle_per_pe: float = 0.0) -> float:
        """Engine-facing per-route transit prediction, in cycles.

        Unlike :meth:`one_way_latency` (which averages over the mean hop
        count), this predicts the transit of one *specific* route of
        ``hops`` switch hops under the offered load.  At zero load it
        degenerates to :func:`uncontended_transit` — the exact
        conflict-free window the hybrid engine fast-forwards; under load
        it adds the M/D/1 per-hop wait, which is the model's estimate of
        how contended a window would have been had it not been eligible.
        """
        rho = min(0.999, self.mean_port_utilization(packets_per_cycle_per_pe))
        per_hop_wait = self.md1_wait(rho, self.port_cycles_per_packet)
        return uncontended_transit(hops, self.eject_cycles) + hops * per_hop_wait

    def read_rtt(self, packets_per_cycle_per_pe: float = 0.0) -> float:
        """Round-trip cycles of a remote read: request + DMA + reply."""
        return 2.0 * self.one_way_latency(packets_per_cycle_per_pe) + self.dma_service

    def saturation_load(self) -> float:
        """Per-PE injection rate (packets/cycle) that saturates the
        fabric's hottest ports."""
        # hot utilisation == 1  =>  mean == 1 / hotspot_factor.
        return self.fabric_ports / (
            self.n_pes * self.mean_hops * self.port_cycles_per_packet * self.hotspot_factor
        )
