"""EM-C pretty-printer: examples + the parse∘pretty round-trip property."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.emc import parse, pretty
from repro.emc import ast as A


def strip_lines(node):
    """Recursively zero the source-position fields for comparison."""
    if isinstance(node, A.Program):
        return {name: strip_lines(t) for name, t in node.threads.items()}
    if dataclasses.is_dataclass(node):
        values = []
        for f in dataclasses.fields(node):
            if f.name == "line":
                values.append(0)
            else:
                values.append(strip_lines(getattr(node, f.name)))
        return (type(node).__name__, tuple(values))
    if isinstance(node, tuple):
        return tuple(strip_lines(x) for x in node)
    return node


def roundtrip(src: str):
    first = parse(src)
    again = parse(pretty(first))
    assert strip_lines(first) == strip_lines(again), pretty(first)


def test_pretty_simple():
    out = pretty(parse("thread f(a){var x=a+1;}"))
    assert "thread f(a) {" in out
    assert "var x = a + 1;" in out


def test_pretty_precedence_parentheses():
    src = "thread f() { var x = (1 + 2) * 3; var y = 1 + 2 * 3; }"
    out = pretty(parse(src))
    assert "(1 + 2) * 3" in out
    assert "1 + 2 * 3" in out


def test_pretty_right_assoc_parens():
    """a - (b - c) must keep its parentheses."""
    src = "thread f(a, b, c) { var x = a - (b - c); }"
    out = pretty(parse(src))
    assert "a - (b - c)" in out
    roundtrip(src)


def test_roundtrip_statements():
    roundtrip(
        """
        thread f(n) {
            var total = 0;
            for (var i = 0; i < n; i = i + 1) {
                if (i % 2 == 0) { continue; } else { total = total + i; }
                while (total > 100) { total = total - 10; break; }
            }
            mem[total] = mem[0] + 1;
            return total;
        }
        thread g() { spawn(0, "f", 3); print("hi", 1.5); }
        """
    )


def test_roundtrip_unary_chains():
    roundtrip("thread f(x) { var y = --x; var z = !(x || -1); }")


def test_roundtrip_empty_bodies():
    roundtrip("thread f() { for (;;) { break; } }")


# ----------------------------------------------------------------------
# Property: pretty-printed random programs re-parse to the same AST.
# ----------------------------------------------------------------------
_names = st.sampled_from(["a", "b", "c", "x", "y"])

_expr = st.recursive(
    st.one_of(
        st.integers(0, 999).map(lambda v: A.Literal(v)),
        _names.map(lambda n: A.VarRef(n)),
    ),
    lambda child: st.one_of(
        st.tuples(st.sampled_from(list("+-*/%") + ["==", "<", "&&", "||"]), child, child).map(
            lambda t: A.BinOp(t[0], t[1], t[2])
        ),
        st.tuples(st.sampled_from(["-", "!"]), child).map(lambda t: A.UnaryOp(t[0], t[1])),
        child.map(lambda e: A.MemLoad(e)),
        st.tuples(st.sampled_from(["len", "at", "compute"]), st.lists(child, min_size=1, max_size=2)).map(
            lambda t: A.Call(t[0], tuple(t[1]))
        ),
    ),
    max_leaves=12,
)

_stmt = st.recursive(
    st.one_of(
        st.tuples(_names, _expr).map(lambda t: A.VarDecl(t[0], t[1])),
        st.tuples(_names, _expr).map(lambda t: A.Assign(t[0], t[1])),
        st.tuples(_expr, _expr).map(lambda t: A.MemStore(t[0], t[1])),
        _expr.map(lambda e: A.ExprStmt(e)),
        st.just(A.Return(None)),
        _expr.map(lambda e: A.Return(e)),
    ),
    lambda child: st.one_of(
        st.tuples(_expr, st.lists(child, max_size=3)).map(
            lambda t: A.If(t[0], A.Block(tuple(t[1])), None)
        ),
        st.tuples(_expr, st.lists(child, max_size=3), st.lists(child, max_size=2)).map(
            lambda t: A.If(t[0], A.Block(tuple(t[1])), A.Block(tuple(t[2])))
        ),
        st.tuples(_expr, st.lists(child, max_size=3)).map(
            lambda t: A.While(t[0], A.Block(tuple(t[1]) + (A.Break(),)))
        ),
    ),
    max_leaves=8,
)


@settings(max_examples=60, deadline=None)
@given(st.lists(_stmt, min_size=1, max_size=6))
def test_roundtrip_property(statements):
    prog = A.Program({"f": A.ThreadDef("f", ("a", "b", "c", "x", "y"), A.Block(tuple(statements)))})
    src = pretty(prog)
    reparsed = parse(src)
    assert strip_lines(prog) == strip_lines(reparsed), src
