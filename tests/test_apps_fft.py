"""Simulated multithreaded FFT: numerical correctness and mechanics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import MachineConfig, SwitchKind
from repro.apps import run_fft
from repro.errors import ProgramError


def test_comm_stages_match_reference():
    r = run_fft(n_pes=4, n=32, h=2)
    assert r.verified
    assert r.max_error < 1e-9


def test_full_fft_matches_numpy():
    r = run_fft(n_pes=4, n=64, h=2, comm_stages_only=False)
    assert r.verified
    assert r.max_error < 1e-9


def test_full_fft_impulse():
    """FFT of a unit impulse is all ones."""
    data = [0j] * 32
    data[0] = 1 + 0j
    r = run_fft(n_pes=4, n=32, h=1, data=data, comm_stages_only=False)
    assert r.verified
    from repro.apps.reference import bit_reverse_permute

    nat = bit_reverse_permute(r.output)
    assert np.allclose(nat, np.ones(32))


def test_single_thread_baseline():
    r = run_fft(n_pes=4, n=32, h=1)
    assert r.verified


def test_many_threads():
    r = run_fft(n_pes=4, n=64, h=16)
    assert r.verified


def test_non_dividing_thread_count():
    assert run_fft(n_pes=4, n=32, h=3).verified


def test_no_thread_sync_switches():
    """FFT requires no thread synchronisation (the paper's key contrast)."""
    r = run_fft(n_pes=4, n=64, h=4)
    assert r.report.switches(SwitchKind.THREAD_SYNC) == 0


def test_reads_are_paired():
    """Two reads per point, one suspension per pair via direct matching."""
    r = run_fft(n_pes=4, n=32, h=2)
    npp, stages = 8, 2
    per_pe_reads = sum(c.reads_issued for c in r.report.counters) / 4
    assert per_pe_reads == 2 * npp * stages
    per_pe_suspends = r.report.switches(SwitchKind.REMOTE_READ)
    assert per_pe_suspends == npp * stages


def test_em4_mode_verifies_but_slower():
    fast = run_fft(n_pes=4, n=32, h=2)
    slow = run_fft(n_pes=4, n=32, h=2, config=MachineConfig(n_pes=4, em4_mode=True))
    assert slow.verified
    assert slow.report.runtime_cycles > fast.report.runtime_cycles


def test_validation_rejects_bad_shapes():
    with pytest.raises(ProgramError):
        run_fft(n_pes=1, n=8, h=1)  # needs >= 2 PEs to communicate
    with pytest.raises(ProgramError):
        run_fft(n_pes=3, n=24, h=1)
    with pytest.raises(ProgramError):
        run_fft(n_pes=4, n=24, h=1)  # n/P = 6 not a power of two
    with pytest.raises(ProgramError):
        run_fft(n_pes=4, n=32, h=100)
    with pytest.raises(ProgramError):
        run_fft(n_pes=4, n=32, h=1, data=[1j, 2j])


@settings(max_examples=8, deadline=None)
@given(
    st.sampled_from([(2, 8), (4, 8), (8, 4)]),
    st.sampled_from([1, 2, 4]),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.booleans(),
)
def test_property_matches_reference(shape, h, seed, full):
    """Simulated FFT == host reference for random inputs and shapes."""
    n_pes, npp = shape
    r = run_fft(n_pes=n_pes, n=n_pes * npp, h=h, seed=seed, comm_stages_only=not full)
    assert r.verified, f"max_error={r.max_error}"
