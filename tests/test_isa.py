"""Instruction cost model and kernel budgets."""

import pytest

from repro.config import TimingModel
from repro.errors import ConfigError
from repro.isa import KERNEL_COSTS, CostModel, InstructionClass, KernelCosts


def test_default_instruction_costs_match_paper():
    """Integer and single-precision FP take one clock; packet generation
    takes one clock (§2.2)."""
    cm = CostModel(TimingModel())
    assert cm.cost(InstructionClass.INT) == 1
    assert cm.cost(InstructionClass.FP) == 1
    assert cm.cost(InstructionClass.PKT_GEN) == 1
    assert cm.cost(InstructionClass.FP_DIV) > 1
    assert cm.cost(InstructionClass.MEM_EXCHANGE) > 1


def test_cost_scales_with_count():
    cm = CostModel(TimingModel())
    assert cm.cost(InstructionClass.INT, 12) == 12


def test_negative_count_rejected():
    cm = CostModel(TimingModel())
    with pytest.raises(ConfigError):
        cm.cost(InstructionClass.INT, -1)


def test_mix():
    cm = CostModel(TimingModel())
    assert cm.mix(int=10, fp=4, fp_div=1) == 10 + 4 + TimingModel().fp_div


def test_mix_unknown_class_rejected():
    cm = CostModel(TimingModel())
    with pytest.raises(ValueError):
        cm.mix(simd=3)


def test_kernel_costs_paper_values():
    """The budgets the paper quotes: 12-clock sorting loop body, <= 10
    instructions per merged element, hundreds of clocks per FFT point."""
    assert KERNEL_COSTS.sort_read_loop_body == 12
    assert KERNEL_COSTS.sort_merge_per_element <= 10
    assert KERNEL_COSTS.fft_butterfly_per_point >= 100


def test_kernel_costs_validation():
    with pytest.raises(ConfigError):
        KernelCosts(sort_read_loop_body=0).validate()
    KERNEL_COSTS.validate()


def test_custom_timing_propagates():
    cm = CostModel(TimingModel().scaled(fp_div=20))
    assert cm.cost(InstructionClass.FP_DIV) == 20
