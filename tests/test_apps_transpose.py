"""Odd-even transposition sort (baseline app, extension A6)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SwitchKind
from repro.apps import run_bitonic, run_transpose_sort
from repro.errors import ProgramError


def test_sorts_basic():
    r = run_transpose_sort(n_pes=4, n=32, h=2)
    assert r.sorted_ok
    assert r.output == sorted(r.output)


def test_non_power_of_two_processors():
    """Transposition has no hypercube structure: any P >= 2 works."""
    for P in (3, 5, 6, 7):
        r = run_transpose_sort(n_pes=P, n=P * 8, h=2)
        assert r.sorted_ok, P


def test_single_thread():
    assert run_transpose_sort(n_pes=4, n=32, h=1).sorted_ok


def test_many_threads():
    r = run_transpose_sort(n_pes=4, n=64, h=16)
    assert r.sorted_ok
    assert r.report.switches(SwitchKind.THREAD_SYNC) > 0


def test_adversarial_inputs():
    down = list(range(32))[::-1]
    dup = [3] * 32
    assert run_transpose_sort(n_pes=4, n=32, h=2, data=down).sorted_ok
    assert run_transpose_sort(n_pes=4, n=32, h=2, data=dup).sorted_ok


def test_more_rounds_than_bitonic():
    """The algorithmic gap: P rounds vs log P (log P + 1) / 2 — at P=8
    that is 8 vs 6 merge iterations, visible in iteration-sync traffic
    and runtime."""
    trans = run_transpose_sort(n_pes=8, n=8 * 32, h=2, seed=5)
    biton = run_bitonic(n_pes=8, n=8 * 32, h=2, seed=5)
    assert trans.sorted_ok and biton.sorted_ok
    assert trans.report.runtime_cycles > biton.report.runtime_cycles
    assert trans.output == biton.output


def test_validation():
    with pytest.raises(ProgramError):
        run_transpose_sort(n_pes=1, n=8, h=1)
    with pytest.raises(ProgramError):
        run_transpose_sort(n_pes=4, n=30, h=1)
    with pytest.raises(ProgramError):
        run_transpose_sort(n_pes=4, n=24, h=1)  # npp=6 not a power of two
    with pytest.raises(ProgramError):
        run_transpose_sort(n_pes=4, n=32, h=9)
    with pytest.raises(ProgramError):
        run_transpose_sort(n_pes=4, n=32, h=1, data=[1])


@settings(max_examples=8, deadline=None)
@given(
    st.sampled_from([(2, 8), (3, 8), (4, 4), (5, 4)]),
    st.sampled_from([1, 2, 4]),
    st.integers(min_value=0, max_value=2**31 - 1),
)
def test_property_always_sorted(shape, h, seed):
    n_pes, npp = shape
    import numpy as np

    rng = np.random.default_rng(seed)
    data = [int(x) for x in rng.integers(-500, 500, size=n_pes * npp)]
    r = run_transpose_sort(n_pes=n_pes, n=n_pes * npp, h=h, data=data)
    assert r.sorted_ok
    assert r.output == sorted(data)
