"""Event-queue ordering and cancellation tests (incl. hypothesis)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import EventQueue


def drain(q: EventQueue) -> list:
    out = []
    while q:
        ev = q.pop()
        out.append((ev.time, ev.args))
    return out


def test_pop_orders_by_time():
    q = EventQueue()
    q.push(5, lambda: None, "b")
    q.push(1, lambda: None, "a")
    q.push(9, lambda: None, "c")
    assert [t for t, _ in drain(q)] == [1, 5, 9]


def test_same_time_is_fifo():
    q = EventQueue()
    for i in range(20):
        q.push(7, lambda: None, i)
    assert [args[0] for _, args in drain(q)] == list(range(20))


def test_pop_empty_raises():
    with pytest.raises(SimulationError):
        EventQueue().pop()


def test_negative_time_rejected():
    with pytest.raises(SimulationError):
        EventQueue().push(-1, lambda: None)


def test_cancel_removes_event():
    q = EventQueue()
    h1 = q.push(1, lambda: None, "a")
    q.push(2, lambda: None, "b")
    q.cancel(h1)
    assert len(q) == 1
    assert drain(q) == [(2, ("b",))]


def test_cancel_unknown_is_noop():
    q = EventQueue()
    q.cancel(12345)
    assert len(q) == 0


def test_peek_time_skips_cancelled():
    q = EventQueue()
    h = q.push(1, lambda: None)
    q.push(4, lambda: None)
    q.cancel(h)
    assert q.peek_time() == 4


def test_peek_time_empty_is_none():
    assert EventQueue().peek_time() is None


def test_len_and_bool():
    q = EventQueue()
    assert not q
    q.push(0, lambda: None)
    assert q and len(q) == 1


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200))
def test_pop_sequence_is_sorted_and_stable(times):
    """Events come out sorted by time; equal times keep push order."""
    q = EventQueue()
    for i, t in enumerate(times):
        q.push(t, lambda: None, t, i)
    out = [args for _, args in drain(q)]
    assert [t for t, _ in out] == sorted(times)
    # Stability: among equal times, sequence numbers ascend.
    by_time: dict[int, list[int]] = {}
    for t, i in out:
        by_time.setdefault(t, []).append(i)
    for seqs in by_time.values():
        assert seqs == sorted(seqs)


@given(
    st.lists(st.integers(min_value=0, max_value=100), min_size=2, max_size=50),
    st.data(),
)
def test_cancellation_never_loses_other_events(times, data):
    q = EventQueue()
    handles = [q.push(t, lambda: None, idx) for idx, t in enumerate(times)]
    to_cancel = data.draw(
        st.sets(st.integers(min_value=0, max_value=len(times) - 1), max_size=len(times) // 2)
    )
    for idx in to_cancel:
        q.cancel(handles[idx])
    survivors = {args[0] for _, args in drain(q)}
    assert survivors == set(range(len(times))) - to_cancel
