"""The `repro.api` front door: registry, facade, and legacy-call shims."""

import inspect

import pytest

import repro
from repro.api import app_names, get_app, result_ok
from repro.apps.bitonic import run_bitonic
from repro.errors import ProgramError
from repro.machine import MachineReport

#: Every registered app must take these, keyword-only, in any order.
CORE_PARAMS = ("n_pes", "n", "h", "config", "obs", "seed")


# ----------------------------------------------------------------------
# The facade
# ----------------------------------------------------------------------
def test_run_from_bare_import():
    report = repro.run("sort", n=16, n_pes=2, h=2)
    assert isinstance(report, MachineReport)
    assert report.runtime_cycles > 0
    assert report.events_fired > 0


def test_run_matches_direct_app_call():
    direct = run_bitonic(n_pes=2, n=16, h=2, seed=0)
    via_api = repro.run("sort", n=16, n_pes=2, h=2, seed=0)
    assert via_api.runtime_cycles == direct.report.runtime_cycles
    assert via_api.events_fired == direct.report.events_fired


def test_run_forwards_app_kwargs():
    # Unknown keywords surface as the app's own TypeError …
    with pytest.raises(TypeError):
        repro.run("sort", n=16, n_pes=2, h=2, bogus_kwarg=1)
    # … and a real app keyword changes behaviour (block reads batch
    # the element fetches, so the packet count must drop).
    a = repro.run("sort", n=64, n_pes=2, h=2, block_reads=False)
    b = repro.run("sort", n=64, n_pes=2, h=2, block_reads=True)
    assert a.network.packets != b.network.packets


def test_failed_verification_raises():
    with pytest.raises(ProgramError, match="failed verification"):
        repro.run("fft", n=16, n_pes=2, h=2, tolerance=-1.0)


# ----------------------------------------------------------------------
# The registry
# ----------------------------------------------------------------------
def test_registry_contains_cli_names_and_aliases():
    names = app_names()
    for expected in ("sort", "bitonic", "fft", "transpose", "emc-sort", "emc-bitonic"):
        assert expected in names
    assert get_app("sort") is get_app("bitonic")
    assert get_app("emc-sort") is get_app("emc-bitonic")


def test_unknown_app_raises_with_listing():
    with pytest.raises(ProgramError, match="unknown app 'quicksort'.*sort"):
        get_app("quicksort")
    with pytest.raises(ProgramError):
        repro.run("quicksort", n=16, n_pes=2, h=2)


def test_public_surface_reexported():
    for name in ("run", "APPS", "app_names", "get_app", "register_app"):
        assert name in repro.__all__
        assert hasattr(repro, name)


# ----------------------------------------------------------------------
# Unified signatures
# ----------------------------------------------------------------------
def test_every_app_signature_has_unified_core():
    for name in app_names():
        fn = inspect.unwrap(get_app(name))
        params = inspect.signature(fn).parameters
        for pname in CORE_PARAMS:
            assert pname in params, f"{name} lacks parameter {pname!r}"
            assert params[pname].kind is inspect.Parameter.KEYWORD_ONLY, (
                f"{name}'s {pname!r} is not keyword-only"
            )
        # Nothing is accepted positionally on the real entry points.
        assert all(
            p.kind in (inspect.Parameter.KEYWORD_ONLY, inspect.Parameter.VAR_KEYWORD)
            for p in params.values()
        ), f"{name} still has positional parameters"


# ----------------------------------------------------------------------
# Legacy positional shim
# ----------------------------------------------------------------------
def test_legacy_positional_maps_and_warns():
    with pytest.warns(DeprecationWarning, match="positional"):
        legacy = run_bitonic(2, 16, 2, seed=0)
    modern = run_bitonic(n_pes=2, n=16, h=2, seed=0)
    assert legacy.report.runtime_cycles == modern.report.runtime_cycles
    assert legacy.report.events_fired == modern.report.events_fired


def test_legacy_too_many_positionals_is_typeerror():
    with pytest.raises(TypeError, match="positional"):
        run_bitonic(2, 16, 2, 0)


def test_legacy_duplicate_keyword_is_typeerror():
    with pytest.raises(TypeError, match="multiple values"):
        with pytest.warns(DeprecationWarning):
            run_bitonic(2, 16, 2, h=2)


# ----------------------------------------------------------------------
# result_ok
# ----------------------------------------------------------------------
def test_result_ok_reads_either_flag():
    class R:
        pass

    plain = R()
    assert result_ok(plain) is True  # no flag: trusted

    verified = R()
    verified.verified = False
    assert result_ok(verified) is False

    sorter = R()
    sorter.sorted_ok = False
    sorter.verified = True  # sorted_ok takes precedence
    assert result_ok(sorter) is False
