"""Activation-frame table: tree structure, register images, release rules."""

import pytest

from repro.errors import SegmentError
from repro.memory import FrameTable, SegmentAllocator
from repro.memory.frames import FRAME_REGISTER_WORDS


def table(capacity=4096):
    return FrameTable(SegmentAllocator(capacity), pe=0)


def test_create_allocates_register_area():
    t = table()
    f = t.create()
    assert f.segment.size == FRAME_REGISTER_WORDS
    assert f.live


def test_create_with_locals():
    t = table()
    f = t.create(extra_words=10)
    assert f.segment.size == FRAME_REGISTER_WORDS + 10


def test_frames_form_a_tree():
    t = table()
    root = t.create()
    kid = t.create(parent_id=root.frame_id)
    grandkid = t.create(parent_id=kid.frame_id)
    assert kid.parent_id == root.frame_id
    assert grandkid.frame_id in t.get(kid.frame_id).children
    t.assert_tree()


def test_unknown_parent_rejected():
    t = table()
    with pytest.raises(SegmentError):
        t.create(parent_id=99)


def test_release_frees_segment():
    t = table(64)
    f1 = t.create()
    f2 = t.create()
    t.release(f1.frame_id)
    t.release(f2.frame_id)
    # The arena is empty again: a new full-size alloc succeeds.
    t.create(extra_words=64 - FRAME_REGISTER_WORDS)


def test_release_with_live_children_rejected():
    t = table()
    root = t.create()
    t.create(parent_id=root.frame_id)
    with pytest.raises(SegmentError, match="live children"):
        t.release(root.frame_id)


def test_release_after_children_die():
    t = table()
    root = t.create()
    kid = t.create(parent_id=root.frame_id)
    t.release(kid.frame_id)
    t.release(root.frame_id)
    assert t.live_count == 0


def test_double_release_rejected():
    t = table()
    f = t.create()
    t.release(f.frame_id)
    with pytest.raises(SegmentError):
        t.release(f.frame_id)


def test_register_save_restore():
    t = table()
    f = t.create()
    f.save_registers((1, 2, "x"))
    assert f.restore_registers() == (1, 2, "x")
    assert f.restore_registers() == ()  # cleared after restore


def test_peak_live_tracks_high_water():
    t = table()
    frames = [t.create() for _ in range(5)]
    for f in frames:
        t.release(f.frame_id)
    assert t.peak_live == 5
    assert t.live_count == 0


def test_get_unknown_frame():
    with pytest.raises(SegmentError):
        table().get(123)
