"""Unit tests for the service's hand-rolled HTTP/NDJSON layer."""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.service.protocol import (
    MAX_BODY_BYTES,
    ProtocolError,
    read_request,
)


def parse(raw: bytes):
    """Feed raw bytes through the asyncio parser synchronously."""

    async def _run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(_run())


def test_parse_get_with_headers_and_query():
    req = parse(b"GET /status?verbose=1 HTTP/1.1\r\n"
                b"Host: localhost\r\nAccept: application/json\r\n\r\n")
    assert req.method == "GET"
    assert req.path == "/status"
    assert req.query == "verbose=1"
    assert req.headers["host"] == "localhost"
    assert req.body == b""
    assert req.json() is None


def test_parse_post_with_json_body():
    body = json.dumps({"jobs": [{"app": "sort"}]}).encode()
    req = parse(b"POST /sweep HTTP/1.1\r\n"
                + f"Content-Length: {len(body)}\r\n\r\n".encode()
                + body)
    assert req.method == "POST"
    assert req.json() == {"jobs": [{"app": "sort"}]}


def test_clean_eof_returns_none():
    assert parse(b"") is None


def test_malformed_request_line_rejected():
    with pytest.raises(ProtocolError) as err:
        parse(b"NONSENSE\r\n\r\n")
    assert err.value.status == 400


def test_malformed_header_rejected():
    with pytest.raises(ProtocolError) as err:
        parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n")
    assert err.value.status == 400


def test_truncated_body_rejected():
    with pytest.raises(ProtocolError) as err:
        parse(b"POST /sweep HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc")
    assert err.value.status == 400


def test_oversized_body_rejected_without_reading_it():
    with pytest.raises(ProtocolError) as err:
        parse(b"POST /sweep HTTP/1.1\r\n"
              + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode())
    assert err.value.status == 413


def test_bad_content_length_rejected():
    with pytest.raises(ProtocolError) as err:
        parse(b"POST /sweep HTTP/1.1\r\nContent-Length: nope\r\n\r\n")
    assert err.value.status == 400


def test_chunked_request_body_rejected():
    with pytest.raises(ProtocolError) as err:
        parse(b"POST /sweep HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
    assert err.value.status == 400


def test_invalid_json_body_raises_on_access():
    req = parse(b"POST /sweep HTTP/1.1\r\nContent-Length: 4\r\n\r\n{oop")
    with pytest.raises(ProtocolError) as err:
        req.json()
    assert err.value.status == 400
