"""CLI surface of the execution engine: sweep, cache, export flags."""

from __future__ import annotations

import csv
import json
import pathlib

import pytest

from repro.__main__ import main
from repro.runner import clear_memo


@pytest.fixture()
def cache_dir(tmp_path):
    return tmp_path / "cache"


def test_cli_sweep_cold_then_warm(capsys, cache_dir):
    argv = ["sweep", "--jobs", "2", "--figures", "fig6",
            "--threads", "1,2", "--cache-dir", str(cache_dir)]
    clear_memo()
    main(argv)
    cold = capsys.readouterr().out
    assert "sweep: scale 'tiny'" in cold
    assert "0 executed" not in cold and "executed" in cold
    assert "cache:" in cold

    clear_memo()  # force the disk layer to prove itself
    main(argv)
    warm = capsys.readouterr().out
    assert "0 executed" in warm
    assert "disk hits" in warm


def test_cli_sweep_no_cache(capsys, cache_dir):
    clear_memo()
    main(["sweep", "--jobs", "1", "--figures", "fig8", "--threads", "1",
          "--cache-dir", str(cache_dir), "--no-cache"])
    out = capsys.readouterr().out
    assert "disk cache off" in out
    assert not cache_dir.exists()


def test_cli_cache_stats_and_purge(capsys, cache_dir):
    clear_memo()
    main(["sweep", "--jobs", "1", "--figures", "fig8", "--threads", "1",
          "--cache-dir", str(cache_dir)])
    capsys.readouterr()

    main(["cache", "stats", "--cache-dir", str(cache_dir)])
    assert "entries" in capsys.readouterr().out

    main(["cache", "purge", "--cache-dir", str(cache_dir)])
    assert "purged" in capsys.readouterr().out
    assert not cache_dir.exists()

    main(["cache", "stats", "--cache-dir", str(cache_dir)])
    assert "0 entries" in capsys.readouterr().out


def test_cli_cache_stats_json_schema(capsys, cache_dir):
    clear_memo()
    main(["sweep", "--jobs", "1", "--figures", "fig8", "--threads", "1",
          "--cache-dir", str(cache_dir)])
    capsys.readouterr()

    main(["cache", "stats", "--json", "--cache-dir", str(cache_dir)])
    payload = json.loads(capsys.readouterr().out)
    # The shared stats schema: same keys the service /status endpoint
    # returns under "cache" (which adds a live "dedup" counter).
    assert {"root", "schema", "entries", "bytes", "timed_entries",
            "wall_seconds", "peak_rss_kb", "counters"} == set(payload)
    assert payload["entries"] > 0
    assert payload["root"] == str(cache_dir)
    assert {"hits", "misses", "writes", "discards"} == set(payload["counters"])


def test_cli_export_reports_runner_summary(capsys, tmp_path, cache_dir):
    out_a = tmp_path / "a"
    main(["export", "--out", str(out_a), "--jobs", "1",
          "--cache-dir", str(cache_dir)])
    out = capsys.readouterr().out
    assert "runner:" in out
    assert (out_a / "all_figures.csv").exists()

    # Warm re-export from a fresh memo: zero simulations executed.
    clear_memo()
    out_b = tmp_path / "b"
    main(["export", "--out", str(out_b), "--jobs", "2",
          "--cache-dir", str(cache_dir)])
    warm = capsys.readouterr().out
    assert "0 executed" in warm

    # And the two exports are byte-identical, file by file.
    for path in sorted(out_a.glob("*.csv")):
        assert (out_b / path.name).read_bytes() == path.read_bytes()


def test_cli_export_outdir_alias(capsys, tmp_path, cache_dir):
    outdir = tmp_path / "legacy"
    main(["export", "--outdir", str(outdir), "--jobs", "1",
          "--cache-dir", str(cache_dir)])
    capsys.readouterr()
    rows = list(csv.DictReader((outdir / "fig6.csv").open()))
    assert rows and rows[0]["figure"] == "fig6"


def test_cli_fig_command_accepts_runner_flags(capsys, cache_dir):
    main(["fig6", "a", "--jobs", "2", "--cache-dir", str(cache_dir)])
    assert "Fig 6(a)" in capsys.readouterr().out
    assert cache_dir.exists(), "panel run should populate the disk cache"


def test_cli_sweep_rejects_unknown_figure():
    with pytest.raises(SystemExit):
        main(["sweep", "--figures", "fig42"])
