"""JobSpec content-key stability: golden hashes and cross-process checks.

The content key names cache files shared between processes, machines,
and the sweep service's many clients — a key that drifted between runs
would silently turn every warm hit into a re-execution (or worse, a
collision).  The golden fixture pins the exact hex digests; the
subprocess test proves a fresh interpreter derives the same keys.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import sys

import pytest

from repro.runner.jobs import JobSpec, spec_from_dict, spec_to_dict

GOLDENS_PATH = pathlib.Path(__file__).parent / "goldens" / "jobspec_keys.json"
GOLDENS = json.loads(GOLDENS_PATH.read_text())


@pytest.mark.parametrize(
    "golden", GOLDENS, ids=[g["key"][:8] for g in GOLDENS]
)
def test_golden_key_is_stable(golden):
    spec = spec_from_dict(golden["spec"])
    assert spec.key() == golden["key"]


def test_goldens_cover_every_spec_field():
    """Every JobSpec field is exercised by at least one golden, so a
    field that stops affecting (or starts affecting) the key fails here."""
    defaults = spec_to_dict(JobSpec(app="x", n_pes=1, npp=1, h=1))
    non_default = set()
    for golden in GOLDENS:
        for name, value in golden["spec"].items():
            if name in ("app", "n_pes", "npp", "h") or value != defaults[name]:
                non_default.add(name)
    assert non_default == set(defaults)


def test_key_is_invariant_to_dict_round_trip():
    for golden in GOLDENS:
        spec = spec_from_dict(golden["spec"])
        again = spec_from_dict(spec_to_dict(spec))
        assert again == spec
        assert again.key() == spec.key()


def test_key_is_invariant_to_field_order():
    payload = dict(GOLDENS[0]["spec"])
    reordered = dict(reversed(list(payload.items())))
    assert spec_from_dict(reordered).key() == GOLDENS[0]["key"]


def test_distinct_specs_have_distinct_keys():
    keys = [golden["key"] for golden in GOLDENS]
    assert len(set(keys)) == len(keys)


def test_seed_and_machine_flags_move_the_key():
    base = JobSpec(app="sort", n_pes=4, npp=32, h=2)
    variants = [
        JobSpec(app="sort", n_pes=4, npp=32, h=2, seed=1),
        JobSpec(app="sort", n_pes=4, npp=32, h=2, em4_mode=True),
        JobSpec(app="sort", n_pes=4, npp=32, h=2, priority_replies=True),
        JobSpec(app="sort", n_pes=4, npp=32, h=2, shards=2),
    ]
    keys = {base.key()} | {variant.key() for variant in variants}
    assert len(keys) == len(variants) + 1


def test_shard_count_does_not_move_the_key():
    """Sharding is K-independent semantics: K=2 and K=8 share a key."""
    two = JobSpec(app="sort", n_pes=4, npp=32, h=2, shards=2)
    eight = JobSpec(app="sort", n_pes=4, npp=32, h=2, shards=8)
    assert two.key() == eight.key()


def test_keys_match_across_processes():
    """A fresh interpreter (fresh hash seed, fresh imports) derives the
    same key for every golden spec — the property that lets separate
    service instances and CLI runs share one cache."""
    script = (
        "import json, sys\n"
        "from repro.runner.jobs import spec_from_dict\n"
        "goldens = json.load(open(sys.argv[1]))\n"
        "print(json.dumps([spec_from_dict(g['spec']).key() for g in goldens]))\n"
    )
    out = subprocess.run(
        [sys.executable, "-c", script, str(GOLDENS_PATH)],
        capture_output=True,
        text=True,
        check=True,
        cwd=pathlib.Path(__file__).parent.parent,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin", "PYTHONHASHSEED": "random"},
    )
    assert json.loads(out.stdout) == [golden["key"] for golden in GOLDENS]
