"""Batch execution (`execute_batch`) and thread-safe deadlines.

The sweep service dispatches whole batches to pool workers; these tests
pin the batch semantics (immediate per-job caching, per-job error
isolation) and the `deadline` context manager's off-main-thread
watchdog path, which the SIGALRM mechanism cannot cover.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.runner import BatchOutcome, JobSpec, ResultCache, execute_batch, run_batch_worker
from repro.runner.worker import JobTimeout, deadline

GOOD = JobSpec(app="sort", n_pes=2, npp=8, h=1)
GOOD2 = JobSpec(app="sort", n_pes=2, npp=8, h=2)
BAD = JobSpec(app="sort", n_pes=2, npp=8, h=0)  # h < 1: fails validation


# ----------------------------------------------------------------------
# execute_batch
# ----------------------------------------------------------------------

def test_cold_batch_executes_and_persists_each_job(tmp_path):
    outcomes = execute_batch([GOOD, GOOD2], cache_dir=str(tmp_path))
    assert [o.source for o in outcomes] == ["executed", "executed"]
    assert all(o.error is None and o.record is not None for o in outcomes)
    assert all(o.wall_seconds > 0 for o in outcomes)
    cache = ResultCache(tmp_path)
    assert len(cache) == 2
    assert cache.get(GOOD) is not None and cache.get(GOOD2) is not None


def test_warm_batch_answers_from_cache(tmp_path):
    execute_batch([GOOD], cache_dir=str(tmp_path))
    outcomes = execute_batch([GOOD], cache_dir=str(tmp_path))
    assert [o.source for o in outcomes] == ["cache"]
    assert outcomes[0].record is not None


def test_failure_is_isolated_to_its_job(tmp_path):
    outcomes = execute_batch([GOOD, BAD, GOOD2], cache_dir=str(tmp_path))
    assert [o.source for o in outcomes] == ["executed", "error", "executed"]
    assert outcomes[1].record is None
    assert "ConfigError" in outcomes[1].error
    # The good jobs still persisted despite the failure between them.
    cache = ResultCache(tmp_path)
    assert len(cache) == 2


def test_batch_without_cache_never_touches_disk(tmp_path):
    outcomes = execute_batch([GOOD], cache_dir=str(tmp_path), use_cache=False)
    assert [o.source for o in outcomes] == ["executed"]
    assert len(ResultCache(tmp_path)) == 0


def test_run_batch_worker_is_the_picklable_entry_point(tmp_path):
    outcomes = run_batch_worker([GOOD], None, str(tmp_path), True)
    assert isinstance(outcomes[0], BatchOutcome)
    assert outcomes[0].key == GOOD.key()
    assert outcomes[0].source == "executed"


def test_duplicate_specs_in_one_batch_hit_cache_after_first(tmp_path):
    outcomes = execute_batch([GOOD, GOOD], cache_dir=str(tmp_path))
    assert [o.source for o in outcomes] == ["executed", "cache"]


# ----------------------------------------------------------------------
# deadline: off-main-thread watchdog (the service's batch threads)
# ----------------------------------------------------------------------

def run_in_thread(fn, timeout=30):
    with ThreadPoolExecutor(max_workers=1) as pool:
        return pool.submit(fn).result(timeout=timeout)


def test_watchdog_times_out_a_busy_loop_off_main_thread():
    def job():
        assert threading.current_thread() is not threading.main_thread()
        started = time.monotonic()
        with pytest.raises(JobTimeout):
            with deadline(0.2):
                end = time.monotonic() + 30
                while time.monotonic() < end:
                    pass
        return time.monotonic() - started

    elapsed = run_in_thread(job)
    assert elapsed < 10  # fired at ~0.2s, nowhere near the 30s loop


def test_watchdog_lets_a_fast_block_finish():
    def job():
        with deadline(5.0):
            return "done"

    assert run_in_thread(job) == "done"


def test_fired_watchdog_is_a_timeout_even_if_the_block_just_finished():
    """Once the watchdog fires the outcome is deterministically
    JobTimeout — a block that wins the delivery race still times out,
    and no asynchronous exception leaks into later code."""

    def job():
        with pytest.raises(JobTimeout):
            with deadline(0.05):
                # Sleep in C past the budget: the async exception cannot
                # be delivered until the sleep returns, at which point
                # the block is about to exit — the race the synchronous
                # re-raise in `deadline` exists to close.
                time.sleep(0.3)
        # Prove nothing is pending: this loop must run unharmed.
        for _ in range(10000):
            pass
        return "clean"

    assert run_in_thread(job) == "clean"


def test_deadline_none_and_zero_are_noops_off_main_thread():
    def job():
        with deadline(None):
            with deadline(0):
                return "ran"

    assert run_in_thread(job) == "ran"


def test_block_exception_propagates_unchanged_through_the_watchdog():
    def job():
        with pytest.raises(ValueError):
            with deadline(5.0):
                raise ValueError("the block's own error")
        return "ok"

    assert run_in_thread(job) == "ok"


def test_batch_timeout_surfaces_per_job(tmp_path):
    def job():
        return execute_batch(
            [JobSpec(app="sort", n_pes=4, npp=64, h=4)],
            timeout=0.001,
            cache_dir=str(tmp_path),
        )

    outcomes = run_in_thread(job)
    assert outcomes[0].source == "error"
    assert "JobTimeout" in outcomes[0].error
    assert len(ResultCache(tmp_path)) == 0


def test_sigalrm_deadline_still_enforced_on_main_thread():
    started = time.monotonic()
    with pytest.raises(JobTimeout):
        with deadline(1):
            end = time.monotonic() + 30
            while time.monotonic() < end:
                pass
    assert time.monotonic() - started < 10
