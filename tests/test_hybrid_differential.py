"""Differential oracle for the hybrid fast-forward engine.

The hybrid fidelity's contract is *metric identity*: every number a
detailed run produces — runtime cycles, per-PE switch counts, network
stats, breakdowns — must come out bit-identical when conflict-free
windows are advanced analytically.  These tests enforce that contract
three ways:

* the full fig6/fig7 sweep grid (tiny scale) for both paper workloads,
  with the fast-forward win itself asserted on the conflict-free
  low-h points;
* a seeded randomized-shape sweep over tiny machines, plus direct
  exercises of the harness's shrinking and first-divergence diagnosis;
* the integration seams — sharded execution, the runner's JobSpec
  keying, and Perfetto tracing of fast-forward windows.
"""

from __future__ import annotations

import json
import pathlib
import random
from dataclasses import replace

import pytest

import repro
from repro import MachineConfig
from repro.errors import FastForwardMiss
from repro.experiments.common import THREAD_SWEEP
from repro.metrics.serialize import run_record_to_dict
from repro.obs import Category, EventBus, RingRecorder, to_perfetto, validate_perfetto
from repro.runner.jobs import JobSpec, machine_fingerprint, spec_from_dict, spec_to_dict
from repro.runner.worker import execute_job
from repro.sim.hybrid import (
    HybridDifferentialHarness,
    call_with_fallback,
    comparable_report,
    diff_paths,
)

GOLDEN_DIR = pathlib.Path(__file__).parent / "goldens"

#: The fig6/fig7 sweep grid at the tiny scale: both workloads on the
#: small (P=8) and large (P=16) machines over the full per-PE size
#: ladder.  fig7 derives its curves from fig6's runs, so this grid *is*
#: both figures' coverage.
FIG_GRID = [
    (app, n_pes, npp)
    for app in ("sort", "fft")
    for n_pes in (8, 16)
    for npp in (8, 16, 32)
]


# ----------------------------------------------------------------------
# Satellite 1: fig6/fig7 grid equality
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app,n_pes,npp", FIG_GRID)
def test_fig_grid_metric_identical(app, n_pes, npp):
    """Hybrid matches detailed on every (shape, h) the figures sweep,
    never fires more events, and wins >=3x on the conflict-free h=1
    points (the paper's single-thread latency-bound regime)."""
    harness = HybridDifferentialHarness(app, seed=0)
    for h in THREAD_SWEEP:
        if h > npp:
            continue
        result = harness.check(n_pes=n_pes, n=n_pes * npp, h=h)
        assert result.miss is None, f"unexpected fallback: {result.describe()}"
        ratio = result.events_saved_ratio
        assert ratio >= 1.0, f"hybrid fired MORE events: {result.describe()}"
        if h == 1:
            assert ratio >= 3.0, f"fast-forward win too small: {result.describe()}"


def test_run_records_identical_modulo_event_count():
    """The serialised RunRecord — what figures and the cache consume —
    is equal across fidelities except for the diagnostic event count."""
    for app in ("sort", "fft"):
        records = {}
        for fidelity in ("detailed", "hybrid"):
            spec = JobSpec(app=app, n_pes=8, npp=8, h=2, fidelity=fidelity)
            payload = run_record_to_dict(execute_job(spec))
            assert payload.pop("events") > 0
            records[fidelity] = payload
        assert records["detailed"] == records["hybrid"]


# ----------------------------------------------------------------------
# Satellite 2: randomized shapes + the shrinking/diagnosis machinery
# ----------------------------------------------------------------------
def test_randomized_small_shapes():
    """Seeded property sweep: tiny machines (P <= 4, n <= 64, h <= 4).

    On failure, ``check`` shrinks the shape and names the first
    divergent per-PE event and its fast-forward window — the
    AssertionError it raises *is* the shrunk reproducer.
    """
    rng = random.Random(0x0E4)
    harnesses = {app: HybridDifferentialHarness(app, seed=0) for app in ("sort", "fft")}
    seen = set()
    for _ in range(16):
        app = rng.choice(("sort", "fft"))
        n_pes = rng.choice((2, 4) if app == "fft" else (1, 2, 4))
        npp = rng.choice((1, 2, 4, 8, 16))
        h = rng.randint(1, min(4, npp))
        shape = (app, n_pes, n_pes * npp, h)
        if n_pes * npp > 64 or shape in seen:
            continue
        seen.add(shape)
        result = harnesses[app].check(n_pes=n_pes, n=n_pes * npp, h=h)
        assert result.identical


class _PerturbedHarness(HybridDifferentialHarness):
    """Test double: runs detailed on both sides but reports one extra
    cycle for 'hybrid', manufacturing a divergence on every shape so the
    shrinker's fixed point and error text can be asserted."""

    def _run(self, fidelity, shape, obs=None):
        report = super()._run("detailed", shape, obs=obs)
        if fidelity == "hybrid":
            report = replace(report, runtime_cycles=report.runtime_cycles + 1)
        return report


def test_shrink_reduces_to_minimal_shape():
    harness = _PerturbedHarness("sort", seed=0)
    small = harness.shrink({"n_pes": 2, "n": 16, "h": 2})
    # Every shape diverges, so the shrinker should bottom out at the
    # smallest shape the app accepts: one PE, one element, one thread.
    assert small.shape == {"n_pes": 1, "n": 1, "h": 1}
    assert not small.identical
    assert "runtime_cycles" in small.diff


def test_check_raises_with_shrunk_reproducer():
    harness = _PerturbedHarness("sort", seed=0)
    with pytest.raises(AssertionError) as excinfo:
        harness.check(n_pes=2, n=16, h=2)
    message = str(excinfo.value)
    assert "minimal failing shape" in message
    # The perturbation is aggregate-only, so the replay correctly finds
    # no per-PE stream divergence.
    assert "aggregate accounting only" in message


class _SkewedHarness(HybridDifferentialHarness):
    """Test double: the 'hybrid' side genuinely runs the hybrid engine
    but with one thread fewer, so the per-PE execution streams truly
    split and the window-naming diagnosis has something to find."""

    def _run(self, fidelity, shape, obs=None):
        if fidelity == "hybrid" and shape.get("h", 1) > 1:
            shape = {**shape, "h": shape["h"] - 1}
        return super()._run(fidelity, shape, obs=obs)


def test_first_divergence_names_event_and_window():
    harness = _SkewedHarness("sort", seed=0)
    message = harness.first_divergence({"n_pes": 4, "n": 32, "h": 2})
    assert "first divergent event on PE" in message
    # Whichever way the trace falls, the diagnosis must report the
    # fast-forward window question: either the covering window or the
    # (exculpatory) absence of one.
    assert "first divergent window" in message or "no fast-forward window" in message


def test_first_divergence_on_identical_runs():
    harness = HybridDifferentialHarness("sort", seed=0)
    message = harness.first_divergence({"n_pes": 2, "n": 16, "h": 2})
    assert "identical" in message


def test_harness_reports_miss_as_fallback():
    class _MissingHarness(HybridDifferentialHarness):
        def _run(self, fidelity, shape, obs=None):
            if fidelity == "hybrid":
                raise FastForwardMiss("synthetic miss")
            return super()._run(fidelity, shape, obs=obs)

    result = _MissingHarness("sort", seed=0).run_pair(n_pes=2, n=16, h=2)
    assert result.miss == "synthetic miss"
    assert result.identical  # falling back is correct, not a divergence
    assert result.events_saved_ratio == 1.0
    assert "miss" in result.describe()


def test_call_with_fallback_reruns_detailed_on_miss():
    fidelities_called = []

    class _Result:
        report = object()
        verified = True

    def fake_app(**kwargs):
        fidelities_called.append(kwargs["config"].fidelity)
        if kwargs["config"].fidelity == "hybrid":
            raise FastForwardMiss("window could not be arbitrated")
        return _Result()

    out = call_with_fallback(fake_app, {"n_pes": 2, "n": 16, "h": 2, "config": None})
    assert isinstance(out, _Result)
    assert fidelities_called == ["hybrid", "detailed"]


def test_diff_paths_names_leaf_differences():
    a = {"cycles": 10, "network": {"hops": [1, 2], "peak": 3}}
    b = {"cycles": 11, "network": {"hops": [1, 5], "peak": 3}}
    assert diff_paths(a, b) == ["cycles", "network.hops[1]"]
    assert diff_paths(a, a) == []
    assert diff_paths({"x": 1}, {"y": 1}) == ["x", "y"]


# ----------------------------------------------------------------------
# Satellite 3a: sharded execution x hybrid
# ----------------------------------------------------------------------
def test_sharded_hybrid_cross_k_identity():
    """Sharded runs ignore the hybrid fast-forward layer (cross-process
    windows can't be arbitrated analytically), so hybrid specs must
    produce records identical to detailed ones at every K — including
    the event count."""
    base = dict(app="sort", n_pes=4, npp=8, h=2)
    records = {
        label: run_record_to_dict(execute_job(JobSpec(**base, **extra)))
        for label, extra in {
            "detailed-k1": {"shards": 1},
            "hybrid-k1": {"shards": 1, "fidelity": "hybrid"},
            "hybrid-k2": {"shards": 2, "fidelity": "hybrid"},
        }.items()
    }
    assert records["detailed-k1"] == records["hybrid-k1"] == records["hybrid-k2"]


def test_run_api_sharded_hybrid_config_matches_detailed():
    config = MachineConfig(fidelity="hybrid")
    hybrid_sharded = repro.run("sort", n=32, n_pes=4, h=2, config=config, shards=2)
    detailed = repro.run("sort", n=32, n_pes=4, h=2, shards=2)
    assert comparable_report(hybrid_sharded) == comparable_report(detailed)


# ----------------------------------------------------------------------
# Satellite 3b: runner/JobSpec integration
# ----------------------------------------------------------------------
def test_hybrid_jobspec_roundtrips_and_keys_distinctly():
    spec = JobSpec(app="sort", n_pes=4, npp=16, h=2, fidelity="hybrid")
    assert spec_from_dict(spec_to_dict(spec)) == spec
    assert spec.key() != replace(spec, fidelity="detailed").key()


def test_fidelity_outside_machine_fingerprint():
    """Fidelity is an execution strategy, not a machine: the config
    fingerprint ignores it, so hybrid-validated records stay compatible
    with the historical detailed cache namespace (the JobSpec payload —
    not the fingerprint — is what keys hybrid runs separately)."""
    assert machine_fingerprint(MachineConfig(fidelity="hybrid")) == machine_fingerprint(
        MachineConfig()
    )


def test_hybrid_spec_executes_hybrid_engine():
    record = execute_job(JobSpec(app="sort", n_pes=4, npp=8, h=1, fidelity="hybrid"))
    detailed = execute_job(JobSpec(app="sort", n_pes=4, npp=8, h=1))
    assert record.events < detailed.events  # fast-forward actually engaged
    d, h = run_record_to_dict(detailed), run_record_to_dict(record)
    d.pop("events"), h.pop("events")
    assert d == h


# ----------------------------------------------------------------------
# Satellite 3c: observability — FASTFORWARD spans in Perfetto traces
# ----------------------------------------------------------------------
def _hybrid_trace(n_pes=2, n=16, h=2):
    bus = EventBus()
    rec = RingRecorder(bus)
    repro.run(
        "sort", n=n, n_pes=n_pes, h=h, seed=0,
        config=MachineConfig(fidelity="hybrid"), obs=bus,
    )
    return rec.events


def test_hybrid_perfetto_matches_golden():
    fresh = to_perfetto(_hybrid_trace(), n_pes=2)
    golden = json.loads(
        (GOLDEN_DIR / "sort_p2_n16_h2.hybrid.perfetto.json").read_text()
    )
    assert fresh == golden


def test_hybrid_perfetto_contains_fastforward_spans():
    obj = to_perfetto(_hybrid_trace(), n_pes=2)
    assert validate_perfetto(obj) == []
    spans = [e for e in obj["traceEvents"] if e.get("name") == "FASTFORWARD"]
    assert spans, "hybrid trace carries no FASTFORWARD spans"
    kinds = set()
    for span in spans:
        assert span["ph"] == "X"
        assert span["cat"].startswith("fastforward:")
        assert span["args"]["events_saved"] >= 0
        kinds.add(span["args"]["kind"])
    assert kinds <= {"net", "dma", "kick"}
    # Saved-event accounting in the trace must agree with the report.
    report = repro.run(
        "sort", n=16, n_pes=2, h=2, seed=0, config=MachineConfig(fidelity="hybrid")
    )
    assert sum(s["args"]["events_saved"] for s in spans) == report.fastforward[
        "events_saved"
    ]


def test_detailed_trace_has_no_fastforward_events():
    bus = EventBus()
    rec = RingRecorder(bus)
    repro.run("sort", n=16, n_pes=2, h=2, seed=0, obs=bus)
    assert all(ev.category is not Category.FASTFORWARD for ev in rec.events)
