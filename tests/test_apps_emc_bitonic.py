"""The paper's sorting workload written in EM-C (the thread-library
language), end to end on the simulated machine."""

import pytest

from repro import SwitchKind
from repro.apps import run_bitonic, run_emc_bitonic
from repro.errors import ProgramError


def test_sorts_multithreaded():
    r = run_emc_bitonic(n_pes=4, n=32, h=2, seed=5)
    assert r.sorted_ok


def test_matches_native_implementation():
    """Same algorithm, two implementations (Python effects vs EM-C):
    identical outputs."""
    native = run_bitonic(n_pes=4, n=32, h=2, seed=9)
    emc = run_emc_bitonic(n_pes=4, n=32, h=2, seed=9)
    assert emc.sorted_ok and native.sorted_ok
    assert emc.output == native.output


def test_thread_count_sweep():
    for h in (1, 2, 4, 8):
        assert run_emc_bitonic(n_pes=4, n=32, h=h, seed=h).sorted_ok


def test_eight_processors():
    assert run_emc_bitonic(n_pes=8, n=64, h=2).sorted_ok


def test_emc_threads_take_remote_read_switches():
    r = run_emc_bitonic(n_pes=4, n=32, h=2)
    assert r.report.switches(SwitchKind.REMOTE_READ) > 0
    assert r.report.switches(SwitchKind.ITER_SYNC) > 0
    assert r.report.switches(SwitchKind.THREAD_SYNC) > 0


def test_run_length_regime():
    """The EM-C sort stays fine-grain: computation per remote read is
    tens of cycles, not thousands (the insertion local sort and merges
    are included, so the bound is loose; the read loop itself compiles
    to ~12 cycles — asserted directly in test_emc_interp)."""
    r = run_emc_bitonic(n_pes=2, n=16, h=1)
    comp = r.report.breakdown.computation
    reads = sum(c.reads_issued for c in r.report.counters)
    assert reads > 0
    assert 10 < comp / reads < 400


def test_adversarial_data():
    down = list(range(32))[::-1]
    assert run_emc_bitonic(n_pes=4, n=32, h=2, data=down).sorted_ok
    dup = [7] * 32
    assert run_emc_bitonic(n_pes=4, n=32, h=4, data=dup).sorted_ok


def test_validation():
    with pytest.raises(ProgramError):
        run_emc_bitonic(n_pes=3, n=24, h=1)
    with pytest.raises(ProgramError):
        run_emc_bitonic(n_pes=4, n=32, h=64)
