"""Machine-level tests for the cohort manager.

Covers the full contract: byte-identical metrics on compilable
workloads, cohort splitting by branch shape, per-thread (never per-run)
fallback for unrecordable threads, sampled lockstep validation, the
forced mid-run divergence bailout, strict-mode surfacing, and EM-C
front-end tier selection.
"""

from __future__ import annotations

import pytest

import repro
from repro import EMX, MachineConfig
from repro.compile import strict_cohorts
from repro.compile.differential import comparable_compile_report
from repro.errors import CompileDivergence
from repro.obs import Category, EventBus, RingRecorder


def _pingpong_machine(compiled: bool, obs=None, n_pes: int = 4, per_pe: int = 4):
    """A compilable workload: every PE reads a neighbour slot and
    writes the result back locally."""
    m = EMX(MachineConfig(n_pes=n_pes, compiled=compiled), obs)

    @m.thread
    def worker(ctx, peer, slot):
        yield ctx.compute(5)
        value = yield ctx.read(ctx.ga(peer, slot))
        yield ctx.write(ctx.ga(ctx.pe, 16 + slot), value)

    for pe in range(n_pes):
        for slot in range(per_pe):
            m.pes[pe].memory.write(slot, 100 * pe + slot)
            m.spawn(pe, "worker", (pe + 1) % n_pes, slot)
    return m


def test_compiled_run_metric_identical():
    interpreted = _pingpong_machine(False).run()
    compiled = _pingpong_machine(True).run()
    assert comparable_compile_report(interpreted) == comparable_compile_report(
        compiled
    )
    assert interpreted.cohort is None
    summary = compiled.cohort
    assert summary["records"] == 1
    assert summary["gen_compiled_threads"] == 16
    assert summary["gen_interpreted_threads"] == 0
    assert summary["bailouts"] == 0
    assert summary["compiled_effects"] > 0
    assert summary["occupancy"] == 1.0


def test_compiled_memory_state_matches():
    a, b = _pingpong_machine(False), _pingpong_machine(True)
    a.run(), b.run()
    for pe in range(4):
        for slot in range(4):
            assert a.pes[pe].memory.read(16 + slot) == b.pes[pe].memory.read(
                16 + slot
            )


def test_branch_shapes_form_separate_cohorts():
    m = EMX(MachineConfig(n_pes=4, compiled=True))

    @m.thread
    def branchy(ctx, k):
        if ctx.pe == 0:
            yield ctx.compute(10)
        else:
            yield ctx.compute(20)
        yield ctx.compute(k)

    for pe in range(4):
        m.spawn(pe, "branchy", 7)
    report = m.run()
    assert report.cohort["cohorts"] == 2  # pe==0 shape vs the rest
    assert report.cohort["records"] == 2
    assert report.cohort["gen_compiled_threads"] == 4


def test_unrecordable_thread_falls_back_per_thread():
    """ctx.mem users stay interpreted; recording is attempted at most
    twice per shape, and the run still completes correctly."""
    bus = EventBus()
    rec = RingRecorder(bus)
    m = EMX(MachineConfig(n_pes=4, compiled=True), bus)

    @m.thread
    def impure(ctx, slot):
        ctx.mem.write(slot, ctx.mem.read(slot) + 1)
        yield ctx.compute(3)

    for pe in range(4):
        m.pes[pe].memory.write(0, 0)
        m.spawn(pe, "impure", 0)
    report = m.run()
    summary = report.cohort
    assert summary["gen_interpreted_threads"] == 4
    assert summary["gen_compiled_threads"] == 0
    assert summary["record_failures"] == 2  # capped, then straight to interp
    bails = [
        ev
        for ev in rec.events
        if ev.category is Category.COHORT and ev.kind == "record_bail"
    ]
    assert len(bails) == 2
    for pe in range(4):
        assert m.pes[pe].memory.read(0) == 1


def test_validation_sampling(monkeypatch):
    import repro.compile.cohort as cohort_mod

    monkeypatch.setattr(cohort_mod, "VALIDATE_STRIDE", 2)
    m = _pingpong_machine(True)
    report = m.run()
    summary = report.cohort
    # Members at index 1, 3, 5, ... of the 16-member cohort validate.
    assert summary["gen_validated_threads"] == 8
    assert summary["bailouts"] == 0
    assert comparable_compile_report(report) == comparable_compile_report(
        _pingpong_machine(False).run()
    )


def _divergent_machine(compiled: bool, obs=None):
    """Closure-captured mutable state: the second *instantiation* takes
    a different path than the recorded representative, so the first
    validated member must diverge mid-run and bail out."""
    m = EMX(MachineConfig(n_pes=2, compiled=compiled), obs)
    instances = []

    @m.thread
    def shifty(ctx, k):
        # Only the recording pass and validated members actually run
        # this body (fast replay steps the trace), so the second real
        # instantiation is the first lockstep-validated member.
        instances.append(None)
        if len(instances) >= 2:
            yield ctx.compute(99)
        else:
            yield ctx.compute(5)
        yield ctx.compute(k)

    for pe in range(2):
        for _ in range(2):
            m.spawn(pe, "shifty", 1)
    return m


def test_forced_midrun_divergence_bails_per_thread():
    bus = EventBus()
    rec = RingRecorder(bus)
    report = _divergent_machine(True, bus).run()
    summary = report.cohort
    assert summary["bailouts"] >= 1
    bail_events = [
        ev
        for ev in rec.events
        if ev.category is Category.COHORT and ev.kind == "bailout"
    ]
    assert bail_events and bail_events[0].name == "shifty"
    # The bailed member finished on its interpreted twin: the run
    # drained, every thread completed, and the machine reports cleanly.
    assert report.runtime_cycles > 0


def test_forced_midrun_divergence_strict_raises():
    with strict_cohorts():
        m = _divergent_machine(True)
        with pytest.raises(CompileDivergence) as excinfo:
            m.run()
    message = str(excinfo.value)
    assert "diverged at effect" in message
    assert "pe=" in message and "cycle=" in message  # EXU context enrichment


def test_trace_outliving_thread_bails():
    """A validated member whose real generator ends early (impure guest
    shrinking its own trip count) bails instead of fabricating effects."""
    m = EMX(MachineConfig(n_pes=2, compiled=True))
    instances = []

    @m.thread
    def shrinking(ctx, k):
        instances.append(None)
        yield ctx.compute(5)
        if len(instances) < 2:  # representative + member 0 only
            yield ctx.compute(k)

    m.spawn(0, "shrinking", 3)
    m.spawn(1, "shrinking", 3)
    report = m.run()
    assert report.cohort["bailouts"] == 1


def test_emc_front_end_uses_codegen_tier():
    report = repro.run("emc-sort", n=64, n_pes=4, h=2, compiled=True)
    summary = report.cohort
    assert summary["emc_codegen_threads"] > 0
    assert summary["emc_interp_threads"] == 0
    assert summary["occupancy"] == 1.0


def test_emc_compiled_matches_interpreted():
    base = dict(n=64, n_pes=4, h=2)
    interpreted = repro.run("emc-sort", **base)
    compiled = repro.run("emc-sort", compiled=True, **base)
    assert comparable_compile_report(interpreted) == comparable_compile_report(
        compiled
    )


def test_config_compiled_flag_round_trip():
    """compiled=True via config object, repro.run keyword, and default
    off all agree on whether the cohort section exists."""
    via_config = repro.run(
        "sort", n=32, n_pes=4, h=1, config=MachineConfig(compiled=True)
    )
    via_kwarg = repro.run("sort", n=32, n_pes=4, h=1, compiled=True)
    off = repro.run("sort", n=32, n_pes=4, h=1)
    assert via_config.cohort is not None
    assert via_kwarg.cohort is not None
    assert off.cohort is None
