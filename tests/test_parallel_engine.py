"""Sharded parallel simulation: determinism, lookahead, differentials.

The contract under test (see ``src/repro/sim/parallel.py``): a run with
``shards=K`` is *metrics-identical* for every K — all ``MachineReport``
counters, cycle counts, switch attributions, network statistics, merged
observability streams and per-PE traces are pure functions of the
simulated run, never of the partition.  Plus the window math the
protocol leans on: the lookahead L derived from ``MachineConfig`` is a
true lower bound on delivery latency in *both* legacy network models,
and empty windows (no boundary traffic) cannot deadlock the barrier
protocol.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

import repro
from repro import EMX, MachineConfig
from repro.config import TimingModel
from repro.errors import SimulationError
from repro.metrics.serialize import report_to_dict
from repro.network import build_network
from repro.network.sharded import lookahead
from repro.packet import Packet, PacketKind
from repro.sim import Engine
from repro.sim import parallel


def _report_dict(app, n_pes, npp, h, shards):
    report = repro.run(app, n=n_pes * npp, n_pes=n_pes, h=h, shards=shards)
    return report_to_dict(report)


# ----------------------------------------------------------------------
# Tentpole acceptance: K in {2, 4} identical to K = 1
# ----------------------------------------------------------------------
@pytest.mark.parametrize("app", ["sort", "fft"])
@pytest.mark.parametrize("n_pes,npp,h", [(16, 8, 2), (64, 2, 1)])
def test_shard_count_never_changes_metrics(app, n_pes, npp, h):
    base = _report_dict(app, n_pes, npp, h, shards=1)
    for k in (2, 4):
        assert _report_dict(app, n_pes, npp, h, shards=k) == base


def test_sharded_run_verifies_and_reports_runtime():
    report = repro.run("sort", n=128, n_pes=8, h=2, shards=2)
    assert report.runtime_cycles > 0
    assert report.network.packets > 0
    assert len(report.counters) == 8


def test_shards_clamped_to_pe_count():
    # K > P cannot give every shard a PE; the count clamps to P.
    base = _report_dict("sort", 4, 8, 2, shards=1)
    assert _report_dict("sort", 4, 8, 2, shards=16) == base


# ----------------------------------------------------------------------
# Observability: merged streams and traces are K-independent
# ----------------------------------------------------------------------
def _recorded_events(app, shards):
    from repro.obs import EventBus, RingRecorder

    bus = EventBus()
    recorder = RingRecorder(bus, capacity=500_000)
    repro.run(app, n=128, n_pes=8, h=2, shards=shards, obs=bus)
    return recorder.events


@pytest.mark.parametrize("app", ["sort", "fft"])
def test_merged_event_stream_identical_across_shard_counts(app):
    streams = {k: _recorded_events(app, k) for k in (1, 2, 4)}
    assert streams[1] == streams[2] == streams[4]


def test_perfetto_export_byte_identical_across_shard_counts():
    import json

    from repro.obs.perfetto import to_perfetto

    exports = []
    for k in (1, 2):
        events = _recorded_events("fft", k)
        exports.append(json.dumps(to_perfetto(events, n_pes=8), sort_keys=True))
    assert exports[0] == exports[1]


def test_machine_traces_identical_across_shard_counts():
    def traced(k):
        cfg = MachineConfig(n_pes=8, trace=True)
        return repro.run("sort", n=128, n_pes=8, h=2, config=cfg, shards=k).traces

    t1, t2, t4 = traced(1), traced(2), traced(4)
    assert set(t1) == set(range(8))
    assert t1 == t2 == t4


# ----------------------------------------------------------------------
# Lookahead: L from MachineConfig is a true delivery-latency lower bound
# ----------------------------------------------------------------------
def _probe_latencies(n_pes, model):
    """Per-packet delivery latency of every ordered pair, one packet in
    flight at a time (1000-cycle spacing leaves every port idle)."""
    config = MachineConfig(n_pes=n_pes, network_model=model)
    engine = Engine()
    net = build_network(engine, config)
    latencies = {}
    sent_at = {}

    def sink_for(dst):
        def sink(pkt):
            latencies[(pkt.src, pkt.dst)] = engine.now - sent_at[(pkt.src, pkt.dst)]

        return sink

    for pe in range(n_pes):
        net.attach(pe, sink_for(pe))
    pairs = [(s, d) for s in range(n_pes) for d in range(n_pes) if s != d]
    for i, (src, dst) in enumerate(pairs):
        when = i * 1000
        sent_at[(src, dst)] = when
        pkt = Packet(kind=PacketKind.READ_REQ, src=src, dst=dst, data=None)
        engine.schedule_at(when, net.send, pkt)
    engine.run()
    assert len(latencies) == len(pairs)
    return latencies


@pytest.mark.parametrize("model", ["detailed", "analytic"])
@pytest.mark.parametrize("n_pes", [2, 16, 64])
def test_lookahead_is_a_true_lower_bound(model, n_pes):
    config = MachineConfig(n_pes=n_pes, network_model=model)
    L = lookahead(config)
    latencies = _probe_latencies(n_pes, model)
    assert min(latencies.values()) >= L
    # ... and tight: some pair achieves exactly L, so no larger window
    # would be conservative.
    assert min(latencies.values()) == L


def test_lookahead_tracks_timing_model():
    slow = MachineConfig(n_pes=16, timing=TimingModel(eject=7))
    fast = MachineConfig(n_pes=16)
    assert lookahead(slow) - lookahead(fast) == 7 - fast.timing.eject


def test_sharded_network_rejects_lookahead_violations():
    # The guard exists so a future timing change that breaks the bound
    # fails loudly instead of silently corrupting a window.
    config = MachineConfig(n_pes=4)
    spec = parallel.ShardSpec(0, 2, parallel.partition(4, 2))
    from repro.network.sharded import ShardedOmegaNetwork

    engine = Engine()
    net = ShardedOmegaNetwork(engine, config, spec.owns)
    for pe in range(4):
        net.attach(pe, lambda pkt: None)
    net.lookahead = 10_000  # simulate an over-estimated window
    with pytest.raises(SimulationError, match="lookahead violation"):
        net.send(Packet(kind=PacketKind.READ_REQ, src=0, dst=3, data=None))


# ----------------------------------------------------------------------
# Differential: analytic vs detailed agree on conflict-free traffic
# ----------------------------------------------------------------------
@pytest.mark.parametrize("n_pes", [2, 16, 64])
def test_models_agree_on_conflict_free_traffic(n_pes):
    detailed = _probe_latencies(n_pes, "detailed")
    analytic = _probe_latencies(n_pes, "analytic")
    assert detailed == analytic


@pytest.mark.parametrize("model", ["detailed", "analytic"])
def test_sharded_network_matches_legacy_on_conflict_free_traffic(model):
    """Same probe through the sharded fabric: per-source planes change
    nothing when at most one packet is in flight."""
    n_pes = 16
    config = MachineConfig(n_pes=n_pes, network_model=model)
    spec = parallel.ShardSpec(0, 1, parallel.partition(n_pes, 1))
    from repro.network.sharded import ShardedOmegaNetwork

    engine = Engine()
    net = ShardedOmegaNetwork(engine, config, spec.owns)
    latencies = {}
    sent_at = {}

    def sink_for(dst):
        def sink(pkt):
            latencies[(pkt.src, pkt.dst)] = engine.now - sent_at[(pkt.src, pkt.dst)]

        return sink

    for pe in range(n_pes):
        net.attach(pe, sink_for(pe))
    pairs = [(s, d) for s in range(n_pes) for d in range(n_pes) if s != d]
    for i, (src, dst) in enumerate(pairs):
        when = i * 1000
        sent_at[(src, dst)] = when
        pkt = Packet(kind=PacketKind.READ_REQ, src=src, dst=dst, data=None)
        engine.schedule_at(when, net.send, pkt)
    engine.run()
    assert latencies == _probe_latencies(n_pes, model)


# ----------------------------------------------------------------------
# Window protocol: empty windows cannot deadlock
# ----------------------------------------------------------------------
def _compute_only_app(*, n_pes, n, h, config=None, obs=None, seed=0):
    """An app whose threads never touch the network: every window
    barrier exchanges zero boundary packets."""
    machine = EMX(config or MachineConfig(n_pes=n_pes), obs=obs)

    @machine.thread
    def spin(ctx):
        yield ctx.compute(25)
        yield ctx.compute(25)

    for pe in range(n_pes):
        for _ in range(h):
            machine.spawn(pe, "spin")
    report = machine.run()
    return SimpleNamespace(report=report, verified=True)


@pytest.mark.parametrize("shards", [1, 2, 4])
def test_empty_window_exchange_terminates(shards):
    result = parallel.call_app(
        _compute_only_app, shards, dict(n_pes=4, n=4, h=2)
    )
    report = result.report
    assert report.network.packets == 0
    assert report.runtime_cycles > 0
    assert sum(c.threads_started for c in report.counters) == 8


def test_empty_window_metrics_match_across_shards():
    dicts = [
        report_to_dict(
            parallel.call_app(_compute_only_app, k, dict(n_pes=4, n=4, h=2)).report
        )
        for k in (1, 2, 4)
    ]
    assert dicts[0] == dicts[1] == dicts[2]


# ----------------------------------------------------------------------
# Failure policy: deterministic errors propagate, loudly
# ----------------------------------------------------------------------
def _failing_app(*, n_pes, n, h, config=None, obs=None, seed=0):
    machine = EMX(config or MachineConfig(n_pes=n_pes), obs=obs)

    @machine.thread
    def boom(ctx):
        yield ctx.compute(5)
        raise ValueError("guest bug")

    machine.spawn(n_pes - 1, "boom")  # lands on the last shard
    report = machine.run()
    return SimpleNamespace(report=report, verified=True)


@pytest.mark.parametrize("shards", [1, 2])
def test_guest_errors_fail_the_whole_run(shards):
    with pytest.raises(Exception):
        parallel.call_app(_failing_app, shards, dict(n_pes=4, n=4, h=1))


# ----------------------------------------------------------------------
# Partitioning
# ----------------------------------------------------------------------
def test_partition_covers_all_pes_contiguously():
    for n_pes in (2, 5, 16, 64):
        for k in range(1, n_pes + 1):
            bounds = parallel.partition(n_pes, k)
            assert bounds[0][0] == 0 and bounds[-1][1] == n_pes
            for (a, b), (c, d) in zip(bounds, bounds[1:]):
                assert b == c and a < b and c < d


def test_partition_rejects_bad_counts():
    with pytest.raises(SimulationError):
        parallel.partition(4, 5)
    with pytest.raises(SimulationError):
        parallel.partition(4, 0)


# ----------------------------------------------------------------------
# Runner integration: spec mapping, cache keys, exec side channel
# ----------------------------------------------------------------------
def test_jobspec_shards_key_semantics():
    from repro.runner import JobSpec

    legacy = JobSpec(app="sort", n_pes=8, npp=16, h=2)
    sharded2 = JobSpec(app="sort", n_pes=8, npp=16, h=2, shards=2)
    sharded4 = JobSpec(app="sort", n_pes=8, npp=16, h=2, shards=4)
    # The sharded semantics gets its own key; the worker count does not
    # (metrics are K-independent, so K=2 and K=4 share cache entries).
    assert legacy.key() != sharded2.key()
    assert sharded2.key() == sharded4.key()
    assert "shards=2" in sharded2.describe()


def test_runner_shards_option_maps_specs(tmp_path):
    from repro.runner import JobSpec, ResultCache, run_specs, using

    spec = JobSpec(app="sort", n_pes=4, npp=8, h=2)
    with using(cache_dir=str(tmp_path), shards=2):
        records = run_specs([spec])
        cache = ResultCache(str(tmp_path))
        # Result keyed by the caller's spec; cache keyed by the exec spec.
        assert spec in records
        from dataclasses import replace

        assert replace(spec, shards=2) in cache
        assert spec not in cache


def test_execute_job_records_wall_time_and_rss(tmp_path):
    from repro.runner import JobSpec, ResultCache
    from repro.runner.worker import execute_job

    spec = JobSpec(app="sort", n_pes=4, npp=8, h=2, shards=2)
    record = execute_job(spec)
    exec_info = getattr(record, "_exec")
    assert exec_info["wall_seconds"] > 0
    assert exec_info["max_rss_kb"] is None or exec_info["max_rss_kb"] > 0
    cache = ResultCache(str(tmp_path))
    cache.put(spec, record)
    stats = cache.stats()
    assert stats.timed_entries == 1
    assert stats.wall_seconds > 0
    assert "timed entries" in stats.describe()
    # The side channel never leaks into record equality or serialisation.
    from repro.metrics.serialize import run_record_to_dict

    assert "_exec" not in run_record_to_dict(record)
    assert cache.get(spec) == record
