"""Saavedra-Barrera analytic model tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis import Region, SaavedraModel
from repro.errors import ConfigError


def test_saturation_efficiency():
    m = SaavedraModel(run_length=12, latency=30, switch_cost=7)
    assert m.saturation_efficiency == pytest.approx(12 / 19)


def test_linear_region_grows_linearly():
    m = SaavedraModel(run_length=12, latency=100, switch_cost=7)
    assert m.efficiency(2) == pytest.approx(2 * m.efficiency(1))


def test_efficiency_caps_at_saturation():
    m = SaavedraModel(run_length=12, latency=30, switch_cost=7)
    assert m.efficiency(100) == m.saturation_efficiency


def test_paper_arithmetic_two_to_four_threads():
    """Run length 12, latency 20-40 cycles -> 2..4 threads saturate,
    exactly the paper's 'two to four threads' claim."""
    for latency in (20, 30, 40):
        m = SaavedraModel.for_sorting(latency=latency)
        assert 2 <= m.saturation_threads <= 4


def test_fft_saturates_with_two_threads():
    m = SaavedraModel.for_fft(latency=40)
    assert m.saturation_threads < 2.1
    assert m.efficiency(2) == m.saturation_efficiency


def test_regions_classification():
    m = SaavedraModel(run_length=12, latency=100, switch_cost=7)
    n_d = m.saturation_threads
    assert m.region(1) is Region.LINEAR
    assert m.region(int(n_d + 0.5)) in (Region.TRANSITION, Region.SATURATION)
    assert m.region(int(n_d) + 5) is Region.SATURATION


def test_unmasked_latency_decreases_then_zero():
    m = SaavedraModel(run_length=12, latency=40, switch_cost=7)
    vals = [m.unmasked_latency(n) for n in range(1, 6)]
    assert vals[0] == 40
    assert all(a >= b for a, b in zip(vals, vals[1:]))
    assert vals[-1] == 0.0


def test_overlap_efficiency_prediction():
    m = SaavedraModel(run_length=12, latency=38, switch_cost=7)
    assert m.overlap_efficiency(1) == 0.0
    assert m.overlap_efficiency(2) == pytest.approx(0.5)
    assert m.overlap_efficiency(3) == pytest.approx(1.0)


def test_zero_latency_comm_fraction():
    m = SaavedraModel(run_length=12, latency=0, switch_cost=7)
    assert m.comm_time_fraction(2) == 0.0


def test_validation():
    with pytest.raises(ConfigError):
        SaavedraModel(run_length=0, latency=1, switch_cost=1)
    with pytest.raises(ConfigError):
        SaavedraModel(run_length=1, latency=-1, switch_cost=1)
    m = SaavedraModel(run_length=1, latency=1, switch_cost=0)
    with pytest.raises(ConfigError):
        m.efficiency(0)
    with pytest.raises(ConfigError):
        m.unmasked_latency(-1)


@given(
    st.integers(1, 500),
    st.integers(0, 500),
    st.integers(0, 100),
    st.integers(1, 64),
)
def test_efficiency_monotone_and_bounded(r, l, c, n):
    m = SaavedraModel(run_length=r, latency=l, switch_cost=c)
    e_n = m.efficiency(n)
    assert 0 < e_n <= 1.0
    assert m.efficiency(n + 1) >= e_n
    assert 0.0 <= m.comm_time_fraction(n) <= 1.0
