"""Block-read sorting variant (extension A5: EMC-Y block transfers)."""

import pytest

from repro import SwitchKind
from repro.apps import run_bitonic


def test_block_reads_sort_correctly():
    element = run_bitonic(n_pes=4, n=64, h=2, seed=3)
    block = run_bitonic(n_pes=4, n=64, h=2, seed=3, block_reads=True)
    assert block.sorted_ok
    assert block.output == element.output


def test_block_reads_cut_switches():
    """One suspension per chunk instead of per element."""
    element = run_bitonic(n_pes=4, n=64, h=2, seed=3)
    block = run_bitonic(n_pes=4, n=64, h=2, seed=3, block_reads=True)
    per_el = element.report.switches(SwitchKind.REMOTE_READ)
    per_blk = block.report.switches(SwitchKind.REMOTE_READ)
    assert per_blk < per_el / 4


def test_block_reads_faster():
    element = run_bitonic(n_pes=8, n=8 * 64, h=2, seed=1)
    block = run_bitonic(n_pes=8, n=8 * 64, h=2, seed=1, block_reads=True)
    assert block.report.runtime_cycles < element.report.runtime_cycles


def test_block_reads_account_words():
    block = run_bitonic(n_pes=4, n=64, h=2, block_reads=True)
    # All mate words still transferred (no early-termination savings on
    # this input): reads_possible = schedule x n.
    assert block.reads_issued == block.reads_possible


def test_block_reads_many_threads():
    assert run_bitonic(n_pes=4, n=64, h=8, block_reads=True).sorted_ok


def test_block_reads_single_thread():
    assert run_bitonic(n_pes=4, n=32, h=1, block_reads=True).sorted_ok


@pytest.mark.parametrize("h", [1, 2, 4])
def test_block_vs_element_same_result(h):
    for seed in (0, 7):
        a = run_bitonic(n_pes=4, n=32, h=h, seed=seed)
        b = run_bitonic(n_pes=4, n=32, h=h, seed=seed, block_reads=True)
        assert a.output == b.output
