"""ExecutionPlan: the one bundle of execution-strategy knobs.

Covers the frozen dataclass itself (parse/describe/validate and the
centralised mode-combination rules), the ``plan=`` plumbing through
``repro.run``, ``JobSpec``, the runner options and the CLI, the legacy
keyword shims (one DeprecationWarning, same behaviour, same cache
keys), and the SHARD-category observability the sharded engine emits.
"""

from __future__ import annotations

import json
import warnings

import pytest

import repro
from repro import ExecutionPlan, MachineConfig
from repro.errors import PlanCompatibilityWarning, PlanError
from repro.metrics.serialize import report_to_dict
from repro.obs import Category, EventBus, RingRecorder, ShardWindow
from repro.obs.perfetto import to_perfetto, validate_perfetto


# ----------------------------------------------------------------------
# The dataclass: parse, describe, validate
# ----------------------------------------------------------------------
def test_default_plan_is_sequential_detailed_interpreted():
    plan = ExecutionPlan()
    assert (plan.shards, plan.fidelity, plan.compiled) == (0, "detailed", False)
    assert plan.validate() is plan


def test_plan_is_frozen_and_hashable():
    plan = ExecutionPlan(shards=4)
    with pytest.raises(Exception):
        plan.shards = 2  # type: ignore[misc]
    assert hash(plan) == hash(ExecutionPlan(shards=4))
    assert plan != ExecutionPlan(shards=2)


@pytest.mark.parametrize(
    "text,expected",
    [
        ("", ExecutionPlan()),
        ("shards=4", ExecutionPlan(shards=4)),
        ("shards=2,compiled", ExecutionPlan(shards=2, compiled=True)),
        ("compiled=false", ExecutionPlan()),
        ("fidelity=hybrid", ExecutionPlan(fidelity="hybrid")),
    ],
)
def test_parse_accepts_cli_spellings(text, expected):
    assert ExecutionPlan.parse(text) == expected


@pytest.mark.parametrize(
    "text,match",
    [
        ("shards=four", "shards must be an int"),
        ("turbo", "malformed plan token"),
        ("speed=11", "unknown plan key"),
        ("fidelity=turbo", "unknown fidelity"),
        ("compiled=maybe", "compiled must be a boolean"),
        ("shards=-2", "non-negative"),
    ],
)
def test_parse_rejects_malformed_plans(text, match):
    with pytest.raises(PlanError, match=match):
        ExecutionPlan.parse(text)


@pytest.mark.parametrize(
    "plan",
    [
        ExecutionPlan(),
        ExecutionPlan(shards=4),
        ExecutionPlan(fidelity="hybrid"),
        ExecutionPlan(shards=2, compiled=True),
    ],
)
def test_describe_parse_round_trip(plan):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        assert ExecutionPlan.parse(plan.describe()) == plan


def test_validate_rejects_bad_field_types():
    with pytest.raises(PlanError, match="non-negative"):
        ExecutionPlan(shards=-1).validate()
    with pytest.raises(PlanError, match="unknown fidelity"):
        ExecutionPlan(fidelity="fast").validate()
    with pytest.raises(PlanError, match="compiled must be a bool"):
        ExecutionPlan(compiled="yes").validate()  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Centralised mode-combination rules
# ----------------------------------------------------------------------
def test_hybrid_under_shards_warns_once():
    with pytest.warns(PlanCompatibilityWarning, match="hybrid.*disabled under shards"):
        ExecutionPlan(shards=2, fidelity="hybrid").validate()


def test_plan_warning_is_a_runtime_warning():
    # Callers filtering on the historical RuntimeWarning still match.
    with pytest.warns(RuntimeWarning):
        ExecutionPlan(shards=2, fidelity="hybrid").validate()


def test_hybrid_config_under_sharded_plan_warns_and_runs():
    """The warning fires even when hybrid arrives via the machine
    config rather than the plan — validate() sees the effective plan."""
    cfg = MachineConfig(n_pes=8, fidelity="hybrid")
    with pytest.warns(PlanCompatibilityWarning, match="disabled under shards"):
        report = repro.run(
            "sort", n=128, n_pes=8, h=2, config=cfg, plan=ExecutionPlan(shards=2)
        )
    base = repro.run("sort", n=128, n_pes=8, h=2, plan=ExecutionPlan(shards=2))
    assert report_to_dict(report) == report_to_dict(base)


def test_compiled_with_hybrid_warns_but_is_legal():
    with pytest.warns(PlanCompatibilityWarning, match="compiled=True.*hybrid"):
        plan = ExecutionPlan(fidelity="hybrid", compiled=True).validate()
    assert plan == ExecutionPlan(fidelity="hybrid", compiled=True)


def test_compiled_under_hybrid_keeps_metric_identity():
    """compiled= changes strategy, never numbers — also at hybrid
    fidelity.  Only the diagnostic cohort section may differ (the
    interpreted run has none)."""
    from repro.compile.live import clear_registry

    with pytest.warns(PlanCompatibilityWarning, match="fast-forward miss"):
        compiled = repro.run(
            "sort", n=128, n_pes=8, h=2,
            plan=ExecutionPlan(fidelity="hybrid", compiled=True),
        )
    clear_registry()
    interp = repro.run(
        "sort", n=128, n_pes=8, h=2, plan=ExecutionPlan(fidelity="hybrid")
    )
    dc, di = report_to_dict(compiled), report_to_dict(interp)
    assert dc.pop("cohort") is not None
    assert di.pop("cohort", None) is None
    assert dc == di


def test_strict_cohorts_without_compiled_warns():
    from repro.compile import strict_cohorts

    with strict_cohorts():
        with pytest.warns(PlanCompatibilityWarning, match="compiled=False"):
            ExecutionPlan().validate()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        ExecutionPlan(compiled=True).validate()  # no warning


# ----------------------------------------------------------------------
# repro.run(plan=) and the legacy keyword shim
# ----------------------------------------------------------------------
def test_run_plan_matches_legacy_shards_keyword():
    planned = repro.run("sort", n=128, n_pes=8, h=2, plan=ExecutionPlan(shards=2))
    with pytest.warns(DeprecationWarning, match="shards=.*deprecated"):
        legacy = repro.run("sort", n=128, n_pes=8, h=2, shards=2)
    assert report_to_dict(planned) == report_to_dict(legacy)


def test_run_plan_compiled_matches_legacy_compiled_keyword():
    from repro.compile.live import clear_registry

    planned = repro.run("sort", n=32, n_pes=4, h=1, plan=ExecutionPlan(compiled=True))
    # Cold-start the second run too: the live-trace registry is warm
    # after the first, which would change the (diagnostic) cohort
    # section this test compares in full.
    clear_registry()
    with pytest.warns(DeprecationWarning, match="compiled=.*deprecated"):
        legacy = repro.run("sort", n=32, n_pes=4, h=1, compiled=True)
    assert planned.cohort is not None
    assert report_to_dict(planned) == report_to_dict(legacy)


def test_run_rejects_plan_plus_legacy_keywords():
    with pytest.raises(PlanError, match="not both"):
        repro.run(
            "sort", n=32, n_pes=4, h=1, plan=ExecutionPlan(shards=2), shards=2
        )


# ----------------------------------------------------------------------
# JobSpec and RunnerOptions integration
# ----------------------------------------------------------------------
def test_jobspec_plan_is_the_same_spec_as_legacy_fields():
    from repro.runner import JobSpec

    planned = JobSpec(
        app="sort", n_pes=8, npp=16, h=2, plan=ExecutionPlan(shards=2)
    )
    legacy = JobSpec(app="sort", n_pes=8, npp=16, h=2, shards=2)
    assert planned == legacy
    assert planned.key() == legacy.key()
    assert planned.describe() == legacy.describe()
    assert planned.execution_plan == ExecutionPlan(shards=2)


def test_jobspec_rejects_plan_plus_legacy_fields():
    from repro.runner import JobSpec

    with pytest.raises(PlanError, match="not both"):
        JobSpec(app="sort", n_pes=8, npp=16, h=2, shards=2,
                plan=ExecutionPlan(shards=2))


def test_jobspec_replace_does_not_resurrect_the_plan():
    from dataclasses import replace

    from repro.runner import JobSpec

    spec = JobSpec(app="sort", n_pes=8, npp=16, h=2, plan=ExecutionPlan(shards=2))
    bumped = replace(spec, h=4)
    assert bumped.shards == 2 and bumped.h == 4


def test_runner_using_accepts_plan(tmp_path):
    from repro.runner import using
    from repro.runner.sweep import get_options

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        with using(cache_dir=str(tmp_path), plan=ExecutionPlan(shards=2)):
            opts = get_options()
            assert opts.shards == 2
            assert opts.plan == ExecutionPlan(shards=2)


def test_runner_legacy_fields_deprecated(tmp_path):
    from repro.runner import using

    with pytest.warns(DeprecationWarning, match="deprecated"):
        with using(cache_dir=str(tmp_path), shards=2):
            pass


# ----------------------------------------------------------------------
# CLI: --plan, legacy flag shims
# ----------------------------------------------------------------------
def test_cli_plan_flag_runs_and_prints_window_summary(capsys):
    from repro.__main__ import main

    main(["sort", "--pes", "8", "--size", "128", "--threads", "2",
          "--plan", "shards=2"])
    out = capsys.readouterr().out
    assert "OK" in out
    assert "window protocol: adaptive" in out


def test_cli_compiled_plan_prints_cohort_diagnostics(capsys):
    from repro.__main__ import main

    main(["sort", "--pes", "4", "--size", "16", "--threads", "2",
          "--plan", "compiled"])
    out = capsys.readouterr().out
    assert "OK" in out
    assert "cohorts: occupancy" in out
    assert "live_traces=" in out


def test_cli_plan_conflicts_with_legacy_flags():
    from repro.__main__ import main

    with pytest.raises(PlanError, match="--plan cannot be combined"):
        main(["sort", "--pes", "8", "--size", "128", "--threads", "2",
              "--plan", "shards=2", "--shards", "2"])


def test_cli_legacy_shards_flag_still_works_with_warning(capsys):
    from repro.__main__ import main

    with pytest.warns(DeprecationWarning, match="--shards is deprecated"):
        main(["sort", "--pes", "8", "--size", "128", "--threads", "2",
              "--shards", "2"])
    assert "OK" in capsys.readouterr().out


def test_cli_help_advertises_plan():
    from repro.__main__ import main

    with pytest.raises(SystemExit):
        main(["sort", "--help"])


# ----------------------------------------------------------------------
# SHARD-category observability
# ----------------------------------------------------------------------
def _sharded_events(categories):
    bus = EventBus()
    recorder = RingRecorder(bus, capacity=500_000, categories=categories)
    report = repro.run(
        "sort", n=128, n_pes=8, h=2, plan=ExecutionPlan(shards=2), obs=bus
    )
    return report, recorder.events


def test_default_subscriptions_exclude_shard_windows():
    _, events = _sharded_events(None)
    assert not any(type(ev) is ShardWindow for ev in events)


def test_opt_in_subscription_sees_one_event_per_shard_window():
    report, events = _sharded_events([Category.SHARD])
    windows = [ev for ev in events if type(ev) is ShardWindow]
    assert windows and len(events) == len(windows)
    # One event per (shard, window), matching the report's accounting.
    per_shard = report.windows["per_shard"]
    assert len(windows) == sum(per["windows"] for per in per_shard)
    assert {ev.shard for ev in windows} == {0, 1}
    assert all(ev.end >= ev.t and ev.category is Category.SHARD for ev in windows)


def test_perfetto_renders_the_shard_track():
    _, events = _sharded_events([Category.SHARD, Category.PACKET])
    trace = to_perfetto(events, n_pes=8)
    assert validate_perfetto(trace) == []
    names = {
        ev["args"]["name"]
        for ev in trace["traceEvents"]
        if ev["ph"] == "M" and ev["name"] == "process_name"
    }
    assert "shards" in names
    slices = [ev for ev in trace["traceEvents"] if ev.get("cat") == "shard"]
    assert slices
    assert all(ev["ph"] == "X" and ev["dur"] >= 0 for ev in slices)
    assert {ev["args"]["shard"] for ev in slices} == {0, 1}


def test_shard_events_do_not_disturb_default_perfetto_identity():
    """Default recordings (no SHARD opt-in) stay byte-identical across
    K — the new track is invisible unless asked for."""
    exports = []
    for k in (1, 2):
        bus = EventBus()
        recorder = RingRecorder(bus, capacity=500_000)
        repro.run("fft", n=128, n_pes=8, h=2, plan=ExecutionPlan(shards=k), obs=bus)
        exports.append(
            json.dumps(to_perfetto(recorder.events, n_pes=8), sort_keys=True)
        )
    assert exports[0] == exports[1]
